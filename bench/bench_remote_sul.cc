// Transport-cost bench for the remote-SUL boundary (DESIGN.md §12).
//
// Measures membership-query throughput for the same L* workload in three
// placements of the learner/SUL boundary:
//
//   in-process      — learner::UeSul, the PR-3 baseline (no transport);
//   remote          — RemoteUeSul → SulServer over clean loopback TCP
//                     (framing + CRC + syscall cost per query);
//   remote+chaos    — the same link through ChaosProxy under a lossless
//                     delay/fragment regime (what fault tolerance costs when
//                     faults actually fire).
//
// Standalone (no google-benchmark) because each row needs its own
// server/proxy lifecycle; wall-clock timing over thousands of queries is
// stable enough for the comparison this table makes.
//
// --clients runs the concurrent-learner mode instead of the sweep over 1/2/4/8
// sessions against one multi-session server; each client pushes the full
// workload through its own session and the table reports aggregate plus
// per-session throughput. --write-json records everything machine-readably.
//
// --rtt-ms M adds the RTT-amortization sweep for the wire-v3 word protocol:
// the same workload through a chaos proxy that delays every chunk ~M ms, once
// per protocol shape — per-symbol (--batch 0), word-level (batch 1), and
// batched (the negotiated batch, default 16). On loopback the RTT is ~zero
// and all three shapes tie; with a real RTT the per-symbol shape pays
// 2·(|word|+1) delays per query and the batched shape amortizes two delays
// across a whole batch, which is the point of wire v3.
//
// --journal measures what the crash-safe learn journal (DESIGN.md §15) costs
// where it matters: a full supervised learn over the word protocol through a
// ~2 ms delay proxy (so the fsync cadence has real RPC latency to amortize
// against), journaled vs unjournaled, median of 3 interleaved runs each.
// The mode exits nonzero when the overhead exceeds 3% — the regression gate
// for the journaling fast path.
//
//   ./bench_remote_sul [--words N] [--clients N] [--rtt-ms M] [--batch N]
//                      [--journal] [--write-json [path]]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "learner/learn_supervisor.h"
#include "learner/lstar.h"
#include "learner/sul.h"
#include "net/chaos_proxy.h"
#include "net/remote_sul.h"
#include "net/sul_server.h"
#include "ue/profile.h"

namespace {

using namespace procheck;

struct Workload {
  std::vector<std::vector<std::string>> words;
  long total_steps = 0;
};

// The same deterministic query mix for every row: random words over the
// learning alphabet, the shape L*'s table-filling traffic has.
Workload make_workload(int count) {
  Workload w;
  Rng rng(0xB35C);
  const auto& alphabet = learner::input_alphabet();
  for (int i = 0; i < count; ++i) {
    std::vector<std::string> word;
    const int len = 1 + static_cast<int>(rng.next_below(7));
    for (int k = 0; k < len; ++k) {
      word.push_back(alphabet[rng.next_below(alphabet.size())]);
    }
    w.total_steps += len;
    w.words.push_back(std::move(word));
  }
  return w;
}

struct Row {
  const char* name;
  double seconds = 0;
  double queries_per_sec = 0;
  double us_per_step = 0;
  std::string note;
};

Row run_row(const char* name, learner::Sul& sul, const Workload& w) {
  const auto start = std::chrono::steady_clock::now();
  for (const auto& word : w.words) sul.run(word);
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  Row row;
  row.name = name;
  row.seconds = seconds;
  row.queries_per_sec = static_cast<double>(w.words.size()) / seconds;
  row.us_per_step = seconds * 1e6 / static_cast<double>(w.total_steps);
  return row;
}

struct ClientsSample {
  int clients = 0;
  double wall_seconds = 0;       // slowest session (the user-visible wall)
  double aggregate_qps = 0;      // clients * words / wall
  double per_session_qps = 0;    // mean of each session's own throughput
  long server_sessions = 0;
};

// N learners, each with its own session on one multi-session server, each
// pushing the full workload. Aggregate throughput tells you what the server
// sustains; per-session throughput tells you what each learner still sees.
ClientsSample run_clients(int clients, const Workload& w,
                          const ue::StackProfile& profile) {
  net::SulServerOptions sopts;
  sopts.max_sessions = clients;
  net::SulServer server(profile, sopts);
  ClientsSample sample;
  sample.clients = clients;
  if (!server.start()) {
    std::fprintf(stderr, "error: cannot start loopback SUL server\n");
    return sample;
  }
  std::vector<double> session_seconds(static_cast<std::size_t>(clients), 0);
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      net::RemoteSulOptions opts;
      opts.port = server.port();
      net::RemoteUeSul sul(opts);
      const auto t0 = std::chrono::steady_clock::now();
      for (const auto& word : w.words) sul.run(word);
      session_seconds[static_cast<std::size_t>(i)] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    });
  }
  for (std::thread& t : threads) t.join();
  sample.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  server.stop();
  sample.server_sessions = server.stats().sessions_admitted;
  const double queries = static_cast<double>(w.words.size());
  sample.aggregate_qps =
      static_cast<double>(clients) * queries / sample.wall_seconds;
  for (double s : session_seconds) {
    if (s > 0) sample.per_session_qps += queries / s;
  }
  sample.per_session_qps /= static_cast<double>(clients);
  return sample;
}

struct RttRow {
  int batch = 0;  // 0 = per-symbol v2 protocol, 1 = one kQueryWord per word
  double seconds = 0;
  double queries_per_sec = 0;
  long server_resets = 0;  // what prefix-sorted execution actually saved
  long server_steps = 0;
};

// One protocol shape through a delaying (but lossless) proxy. The learner-side
// traffic is identical in all shapes — only the wire shape changes — so the
// rows are directly comparable.
RttRow run_rtt_row(int batch, int rtt_ms, const Workload& w,
                   const ue::StackProfile& profile) {
  RttRow row;
  row.batch = batch;
  net::SulServer server(profile);
  if (!server.start()) {
    std::fprintf(stderr, "error: cannot start loopback SUL server\n");
    return row;
  }
  net::ChaosProxyOptions popts;
  popts.upstream_port = server.port();
  popts.faults.delay = 1.0;  // every chunk pays the synthetic RTT
  popts.max_delay_ms = rtt_ms;
  net::ChaosProxy proxy(popts);
  if (!proxy.start()) {
    std::fprintf(stderr, "error: cannot start chaos proxy\n");
    return row;
  }
  net::RemoteSulOptions opts;
  opts.port = proxy.port();
  opts.max_batch_words = batch;
  opts.call_deadline_seconds = 5.0;  // the delays are the point, not a fault
  net::RemoteUeSul sul(opts);
  const auto start = std::chrono::steady_clock::now();
  if (batch > 1) {
    // The learner hands whole rounds to query_batch; feed it group-sized
    // slices so the client's chunking + in-flight window do the batching.
    std::size_t i = 0;
    while (i < w.words.size()) {
      const std::size_t n = std::min<std::size_t>(w.words.size() - i,
                                                  static_cast<std::size_t>(batch) * 4);
      std::vector<std::vector<std::string>> group(
          w.words.begin() + static_cast<std::ptrdiff_t>(i),
          w.words.begin() + static_cast<std::ptrdiff_t>(i + n));
      sul.query_batch(group);
      i += n;
    }
  } else {
    for (const auto& word : w.words) sul.run(word);
  }
  row.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  row.queries_per_sec = static_cast<double>(w.words.size()) / row.seconds;
  server.stop();
  const net::SulServerStats sstats = server.stats();
  row.server_resets = sstats.resets;
  row.server_steps = sstats.steps;
  return row;
}

struct JournalOverhead {
  bool measured = false;
  double unjournaled_seconds = 0;  // median of 3
  double journaled_seconds = 0;    // median of 3
  double overhead_pct = 0;
  long journal_records = 0;
};

// One supervised learn over the word protocol through a delaying proxy;
// journaled when `journal_path` is non-empty. Returns wall seconds.
double run_supervised_learn(std::uint16_t port, const std::string& journal_path,
                            long* records_out) {
  if (!journal_path.empty()) {
    std::remove(journal_path.c_str());
    std::remove((journal_path + ".lock").c_str());
    std::remove((journal_path + ".tmp").c_str());
  }
  net::RemoteSulOptions opts;
  opts.port = port;
  opts.max_batch_words = 1;  // one kQueryWord per word: every query pays the RTT
  opts.call_deadline_seconds = 5.0;
  net::RemoteUeSul sul(opts);
  learner::LearnSupervisorOptions lopts;
  lopts.learn.eq_test_words = 20;
  lopts.learn.eq_test_max_length = 4;
  lopts.learn.seed = 0xBE7C;
  lopts.journal_path = journal_path;
  lopts.run_tag = "cls";
  const auto start = std::chrono::steady_clock::now();
  const learner::SupervisedLearn run = learner::learn_supervised(sul, lopts);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (!run.result.converged) {
    std::fprintf(stderr, "error: journal bench learn did not converge: %s\n",
                 run.result.note.c_str());
    return -1;
  }
  if (records_out != nullptr) *records_out = static_cast<long>(run.journal_records);
  return seconds;
}

JournalOverhead run_journal_overhead(const ue::StackProfile& profile) {
  JournalOverhead jo;
  net::SulServer server(profile);
  if (!server.start()) {
    std::fprintf(stderr, "error: cannot start loopback SUL server\n");
    return jo;
  }
  net::ChaosProxyOptions popts;
  popts.upstream_port = server.port();
  popts.faults.delay = 1.0;
  popts.max_delay_ms = 2;  // every chunk pays ~2 ms: realistic RPC latency
  net::ChaosProxy proxy(popts);
  if (!proxy.start()) {
    std::fprintf(stderr, "error: cannot start chaos proxy\n");
    return jo;
  }
  const std::string path = "/tmp/bench_learn_journal.journal";
  std::vector<double> plain, journaled;
  for (int round = 0; round < 3; ++round) {  // interleaved: drift hits both arms
    const double u = run_supervised_learn(proxy.port(), "", nullptr);
    const double j = run_supervised_learn(proxy.port(), path, &jo.journal_records);
    if (u < 0 || j < 0) return jo;
    plain.push_back(u);
    journaled.push_back(j);
  }
  std::sort(plain.begin(), plain.end());
  std::sort(journaled.begin(), journaled.end());
  jo.unjournaled_seconds = plain[1];
  jo.journaled_seconds = journaled[1];
  jo.overhead_pct =
      (jo.journaled_seconds - jo.unjournaled_seconds) / jo.unjournaled_seconds * 100.0;
  jo.measured = true;
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
  std::remove((path + ".tmp").c_str());
  return jo;
}

void write_json(const std::string& path, const Workload& w,
                const std::vector<Row>& rows,
                const std::vector<ClientsSample>& sweep, int rtt_ms,
                const std::vector<RttRow>& rtt_rows,
                const JournalOverhead& jo) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"remote_sul\",\n");
  // Detected core count: client-sweep scaling curves are only comparable
  // between machines once normalized by this (EXPERIMENTS.md §multicore).
  std::fprintf(f, "  \"hardware_concurrency\": %zu,\n", ThreadPool::default_parallelism());
  std::fprintf(f, "  \"words\": %zu,\n  \"steps\": %ld,\n", w.words.size(),
               w.total_steps);
  std::fprintf(f, "  \"placements\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"seconds\": %.3f,"
                 " \"queries_per_sec\": %.0f, \"us_per_step\": %.2f}%s\n",
                 r.name, r.seconds, r.queries_per_sec, r.us_per_step,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"clients_sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const ClientsSample& s = sweep[i];
    std::fprintf(f,
                 "    {\"clients\": %d, \"wall_seconds\": %.3f,"
                 " \"aggregate_qps\": %.0f, \"per_session_qps\": %.0f,"
                 " \"server_sessions\": %ld}%s\n",
                 s.clients, s.wall_seconds, s.aggregate_qps, s.per_session_qps,
                 s.server_sessions, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"rtt_ms\": %d,\n  \"rtt_sweep\": [\n", rtt_ms);
  for (std::size_t i = 0; i < rtt_rows.size(); ++i) {
    const RttRow& r = rtt_rows[i];
    std::fprintf(f,
                 "    {\"batch\": %d, \"seconds\": %.3f, \"queries_per_sec\": %.0f,"
                 " \"server_resets\": %ld, \"server_steps\": %ld}%s\n",
                 r.batch, r.seconds, r.queries_per_sec, r.server_resets, r.server_steps,
                 i + 1 < rtt_rows.size() ? "," : "");
  }
  if (jo.measured) {
    std::fprintf(f,
                 "  ],\n  \"journal_overhead\": {\"rtt_ms\": 2, \"batch\": 1,"
                 " \"unjournaled_seconds\": %.3f, \"journaled_seconds\": %.3f,"
                 " \"overhead_pct\": %.2f, \"journal_records\": %ld}\n}\n",
                 jo.unjournaled_seconds, jo.journaled_seconds, jo.overhead_pct,
                 jo.journal_records);
  } else {
    std::fprintf(f, "  ]\n}\n");
  }
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int count = 2000;
  int clients_override = 0;
  int rtt_ms = 0;
  int batch_size = 16;
  bool journal_mode = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--words") == 0 && i + 1 < argc) {
      count = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients_override = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--rtt-ms") == 0 && i + 1 < argc) {
      rtt_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      batch_size = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--journal") == 0) {
      journal_mode = true;
    } else if (std::strcmp(argv[i], "--write-json") == 0) {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-')
                      ? argv[++i]
                      : "BENCH_remote_sul.json";
    } else {
      std::fprintf(stderr,
                   "usage: bench_remote_sul [--words N] [--clients N] [--rtt-ms M]"
                   " [--batch N] [--journal] [--write-json [path]]\n");
      return 2;
    }
  }
  const Workload w = make_workload(count);
  const ue::StackProfile profile = ue::StackProfile::cls();
  std::printf("remote-SUL transport cost: %zu words, %ld steps\n\n", w.words.size(),
              w.total_steps);

  std::vector<Row> rows;

  {
    learner::UeSul sul(profile);
    rows.push_back(run_row("in-process", sul, w));
  }

  {
    net::SulServer server(profile);
    if (!server.start()) {
      std::fprintf(stderr, "error: cannot start loopback SUL server\n");
      return 1;
    }
    net::RemoteSulOptions opts;
    opts.port = server.port();
    net::RemoteUeSul sul(opts);
    rows.push_back(run_row("remote (loopback)", sul, w));
    rows.back().note = "framing + CRC + TCP round-trip per query";
  }

  {
    net::SulServer server(profile);
    if (!server.start()) {
      std::fprintf(stderr, "error: cannot start loopback SUL server\n");
      return 1;
    }
    net::ChaosProxyOptions popts;
    popts.upstream_port = server.port();
    popts.faults.delay = 0.05;
    popts.faults.fragment = 0.05;
    popts.max_delay_ms = 2;
    net::ChaosProxy proxy(popts);
    if (!proxy.start()) {
      std::fprintf(stderr, "error: cannot start chaos proxy\n");
      return 1;
    }
    net::RemoteSulOptions opts;
    opts.port = proxy.port();
    net::RemoteUeSul sul(opts);
    rows.push_back(run_row("remote + chaos (lossless)", sul, w));
    const auto stats = proxy.stats();
    rows.back().note = std::to_string(stats.faults()) + " proxy faults injected";
  }

  std::printf("%-28s %10s %12s %12s  %s\n", "placement", "seconds", "queries/s", "us/step",
              "note");
  for (const Row& row : rows) {
    std::printf("%-28s %10.3f %12.0f %12.2f  %s\n", row.name, row.seconds,
                row.queries_per_sec, row.us_per_step, row.note.c_str());
  }
  std::printf(
      "\nThe gap between rows 1 and 2 is the price of the socket boundary; the\n"
      "gap between rows 2 and 3 is the price of tolerated faults (retries,\n"
      "reconnects, replay). Correctness is identical in all three placements —\n"
      "the net suite pins remote learning byte-identical to in-process.\n");

  // Concurrent-learner mode: N sessions on one server, each running the full
  // workload. On a single-core host aggregate throughput is flat and
  // per-session throughput divides by N; the sweep exists so multi-core hosts
  // can see (and regress against) the session-per-thread scaling.
  std::vector<ClientsSample> sweep;
  std::vector<int> client_counts;
  if (clients_override > 0) {
    client_counts.push_back(clients_override);
  } else {
    client_counts = {1, 2, 4, 8};
  }
  std::printf("\nconcurrent learners (one session each, full workload each):\n");
  std::printf("%8s %12s %14s %18s %10s\n", "clients", "wall s", "aggregate q/s",
              "per-session q/s", "sessions");
  for (int n : client_counts) {
    sweep.push_back(run_clients(n, w, profile));
    const ClientsSample& s = sweep.back();
    std::printf("%8d %12.3f %14.0f %18.0f %10ld\n", s.clients, s.wall_seconds,
                s.aggregate_qps, s.per_session_qps, s.server_sessions);
  }

  // RTT-amortization sweep (wire v3). A smaller sub-workload keeps the
  // per-symbol row tolerable: at M ms per chunk it pays ~2·(|word|+1)·M ms
  // per query.
  std::vector<RttRow> rtt_rows;
  if (rtt_ms > 0) {
    Workload rw = w;
    const std::size_t rtt_words = std::min<std::size_t>(rw.words.size(), 300);
    if (rw.words.size() > rtt_words) {
      rw.words.resize(rtt_words);
      rw.total_steps = 0;
      for (const auto& word : rw.words) rw.total_steps += static_cast<long>(word.size());
    }
    std::printf("\nRTT amortization at ~%d ms per chunk (%zu words):\n", rtt_ms,
                rw.words.size());
    std::printf("%-22s %10s %12s %10s %10s %9s\n", "protocol shape", "seconds",
                "queries/s", "resets", "steps", "speedup");
    const std::vector<int> shapes = {0, 1, batch_size > 1 ? batch_size : 16};
    double base_qps = 0;
    for (int b : shapes) {
      rtt_rows.push_back(run_rtt_row(b, rtt_ms, rw, profile));
      const RttRow& r = rtt_rows.back();
      if (b == 0) base_qps = r.queries_per_sec;
      char name[48];
      if (b == 0) {
        std::snprintf(name, sizeof(name), "per-symbol (batch=0)");
      } else if (b == 1) {
        std::snprintf(name, sizeof(name), "word-level (batch=1)");
      } else {
        std::snprintf(name, sizeof(name), "batched    (batch=%d)", b);
      }
      std::printf("%-22s %10.3f %12.0f %10ld %10ld %8.1fx\n", name, r.seconds,
                  r.queries_per_sec, r.server_resets, r.server_steps,
                  base_qps > 0 ? r.queries_per_sec / base_qps : 0.0);
    }
  }

  // Journal-overhead gate: a supervised learn through a ~2 ms delay proxy
  // over the word protocol, journaled vs not, median of 3 each.
  JournalOverhead jo;
  if (journal_mode) {
    std::printf("\nlearn-journal overhead (word protocol, ~2 ms RTT, median of 3):\n");
    jo = run_journal_overhead(profile);
    if (!jo.measured) return 1;
    std::printf("%-22s %10.3f s\n", "unjournaled learn", jo.unjournaled_seconds);
    std::printf("%-22s %10.3f s  (%ld records)\n", "journaled learn", jo.journaled_seconds,
                jo.journal_records);
    std::printf("%-22s %9.2f %%\n", "overhead", jo.overhead_pct);
  }

  if (!json_path.empty()) write_json(json_path, w, rows, sweep, rtt_ms, rtt_rows, jo);

  if (journal_mode && jo.overhead_pct >= 3.0) {
    std::fprintf(stderr,
                 "error: journaled learning overhead %.2f%% exceeds the 3%% budget\n",
                 jo.overhead_pct);
    return 1;
  }
  return 0;
}
