// Transport-cost bench for the remote-SUL boundary (DESIGN.md §12).
//
// Measures membership-query throughput for the same L* workload in three
// placements of the learner/SUL boundary:
//
//   in-process      — learner::UeSul, the PR-3 baseline (no transport);
//   remote          — RemoteUeSul → SulServer over clean loopback TCP
//                     (framing + CRC + syscall cost per query);
//   remote+chaos    — the same link through ChaosProxy under a lossless
//                     delay/fragment regime (what fault tolerance costs when
//                     faults actually fire).
//
// Standalone (no google-benchmark) because each row needs its own
// server/proxy lifecycle; wall-clock timing over thousands of queries is
// stable enough for the comparison this table makes.
//
//   ./bench_remote_sul [--words N]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "learner/sul.h"
#include "net/chaos_proxy.h"
#include "net/remote_sul.h"
#include "net/sul_server.h"
#include "ue/profile.h"

namespace {

using namespace procheck;

struct Workload {
  std::vector<std::vector<std::string>> words;
  long total_steps = 0;
};

// The same deterministic query mix for every row: random words over the
// learning alphabet, the shape L*'s table-filling traffic has.
Workload make_workload(int count) {
  Workload w;
  Rng rng(0xB35C);
  const auto& alphabet = learner::input_alphabet();
  for (int i = 0; i < count; ++i) {
    std::vector<std::string> word;
    const int len = 1 + static_cast<int>(rng.next_below(7));
    for (int k = 0; k < len; ++k) {
      word.push_back(alphabet[rng.next_below(alphabet.size())]);
    }
    w.total_steps += len;
    w.words.push_back(std::move(word));
  }
  return w;
}

struct Row {
  const char* name;
  double seconds = 0;
  double queries_per_sec = 0;
  double us_per_step = 0;
  std::string note;
};

Row run_row(const char* name, learner::Sul& sul, const Workload& w) {
  const auto start = std::chrono::steady_clock::now();
  for (const auto& word : w.words) sul.run(word);
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  Row row;
  row.name = name;
  row.seconds = seconds;
  row.queries_per_sec = static_cast<double>(w.words.size()) / seconds;
  row.us_per_step = seconds * 1e6 / static_cast<double>(w.total_steps);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  int count = 2000;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--words") == 0) count = std::atoi(argv[i + 1]);
  }
  const Workload w = make_workload(count);
  const ue::StackProfile profile = ue::StackProfile::cls();
  std::printf("remote-SUL transport cost: %zu words, %ld steps\n\n", w.words.size(),
              w.total_steps);

  std::vector<Row> rows;

  {
    learner::UeSul sul(profile);
    rows.push_back(run_row("in-process", sul, w));
  }

  {
    net::SulServer server(profile);
    if (!server.start()) {
      std::fprintf(stderr, "error: cannot start loopback SUL server\n");
      return 1;
    }
    net::RemoteSulOptions opts;
    opts.port = server.port();
    net::RemoteUeSul sul(opts);
    rows.push_back(run_row("remote (loopback)", sul, w));
    rows.back().note = "framing + CRC + TCP round-trip per query";
  }

  {
    net::SulServer server(profile);
    if (!server.start()) {
      std::fprintf(stderr, "error: cannot start loopback SUL server\n");
      return 1;
    }
    net::ChaosProxyOptions popts;
    popts.upstream_port = server.port();
    popts.faults.delay = 0.05;
    popts.faults.fragment = 0.05;
    popts.max_delay_ms = 2;
    net::ChaosProxy proxy(popts);
    if (!proxy.start()) {
      std::fprintf(stderr, "error: cannot start chaos proxy\n");
      return 1;
    }
    net::RemoteSulOptions opts;
    opts.port = proxy.port();
    net::RemoteUeSul sul(opts);
    rows.push_back(run_row("remote + chaos (lossless)", sul, w));
    const auto stats = proxy.stats();
    rows.back().note = std::to_string(stats.faults()) + " proxy faults injected";
  }

  std::printf("%-28s %10s %12s %12s  %s\n", "placement", "seconds", "queries/s", "us/step",
              "note");
  for (const Row& row : rows) {
    std::printf("%-28s %10.3f %12.0f %12.2f  %s\n", row.name, row.seconds,
                row.queries_per_sec, row.us_per_step, row.note.c_str());
  }
  std::printf(
      "\nThe gap between rows 1 and 2 is the price of the socket boundary; the\n"
      "gap between rows 2 and 3 is the price of tolerated faults (retries,\n"
      "reconnects, replay). Correctness is identical in all three placements —\n"
      "the net suite pins remote learning byte-identical to in-process.\n");
  return 0;
}
