// Scalability of the full-catalog analysis (the RQ3 trajectory data): runs
// the complete 62-property verification of the CLS profile at jobs=1/2/4/8
// and reports wall-clock seconds, model-checker throughput (states/sec)
// and the peak visited-set footprint of any single property search.
//
//   bench_catalog_parallel [--profile <cls|srsue|oai>] [--write-json <path>]
//                          [--supervised]
//
// --write-json emits BENCH_catalog.json (machine-readable trajectory file;
// run from the repo root to place it there). Every run's report is checked
// against the jobs=1 report — a determinism violation fails the benchmark.
//
// --supervised additionally measures the fault-free cost of the analysis
// supervisor (retries armed + durable journal) against an adjacent jobs=1
// baseline and fails the benchmark if the overhead exceeds 3%.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "checker/prochecker.h"
#include "common/journal.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace {

using namespace procheck;

struct RunSample {
  int jobs = 1;
  double wall_seconds = 0;
  double extraction_seconds = 0;
  std::size_t states = 0;
  std::size_t peak_visited_bytes = 0;
  int verified = 0;
  int attacks = 0;
};

std::string fingerprint(const checker::ImplementationReport& rep) {
  std::string out;
  for (const checker::PropertyResult& r : rep.results) {
    out += r.property_id;
    out += ':';
    out += std::to_string(static_cast<int>(r.status));
    out += ':';
    out += std::to_string(r.refinements.size());
    out += ':';
    out += r.counterexample ? std::to_string(r.counterexample->steps.size()) : "-";
    out += ';';
  }
  for (const std::string& id : rep.attacks_found) {
    out += id;
    out += ',';
  }
  return out;
}

RunSample run_catalog(const ue::StackProfile& profile, int jobs, std::string* print,
                      const std::string& journal_path = {}, int retries = 0) {
  checker::AnalysisOptions options;
  options.jobs = jobs;
  options.retries = retries;
  options.journal_path = journal_path;
  auto t0 = std::chrono::steady_clock::now();
  checker::ImplementationReport rep = checker::ProChecker::analyze(profile, options);
  RunSample s;
  s.jobs = jobs;
  s.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  s.extraction_seconds = rep.extraction_seconds;
  s.verified = rep.verified_count();
  s.attacks = rep.attack_count();
  for (const checker::PropertyResult& r : rep.results) {
    s.states += r.total_states;
    s.peak_visited_bytes = std::max(s.peak_visited_bytes, r.peak_visited_bytes);
  }
  *print = fingerprint(rep);
  return s;
}

struct SupervisedSample {
  bool measured = false;
  double baseline_wall = 0;
  double supervised_wall = 0;
  double overhead_pct = 0;
  std::size_t journal_records = 0;
};

void write_json(const std::string& path, const std::string& profile,
                const std::vector<RunSample>& runs, const SupervisedSample& sup) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"catalog_parallel\",\n");
  std::fprintf(f, "  \"profile\": \"%s\",\n", profile.c_str());
  std::fprintf(f, "  \"properties\": 62,\n");
  std::fprintf(f, "  \"hardware_concurrency\": %zu,\n", ThreadPool::default_parallelism());
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunSample& s = runs[i];
    std::fprintf(f,
                 "    {\"jobs\": %d, \"wall_seconds\": %.3f, \"states\": %zu,"
                 " \"states_per_sec\": %.0f, \"peak_visited_bytes\": %zu,"
                 " \"verified\": %d, \"attacks\": %d}%s\n",
                 s.jobs, s.wall_seconds, s.states,
                 s.wall_seconds > 0 ? static_cast<double>(s.states) / s.wall_seconds : 0.0,
                 s.peak_visited_bytes, s.verified, s.attacks,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  double j1 = runs.front().wall_seconds;
  double j8 = runs.back().wall_seconds;
  std::fprintf(f, "  \"speedup_max_jobs_vs_jobs1\": %.2f%s\n", j8 > 0 ? j1 / j8 : 0.0,
               sup.measured ? "," : "");
  if (sup.measured) {
    std::fprintf(f,
                 "  \"supervised\": {\"baseline_wall_seconds\": %.3f,"
                 " \"supervised_wall_seconds\": %.3f, \"overhead_pct\": %.2f,"
                 " \"journal_records\": %zu}\n",
                 sup.baseline_wall, sup.supervised_wall, sup.overhead_pct,
                 sup.journal_records);
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string profile_name = "cls";
  std::string json_path;
  bool supervised = false;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--profile" && i + 1 < argc) {
      profile_name = argv[++i];
    } else if (a == "--write-json") {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i] : "BENCH_catalog.json";
    } else if (a == "--supervised") {
      supervised = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_catalog_parallel [--profile <cls|srsue|oai>]"
                   " [--write-json [path]] [--supervised]\n");
      return 2;
    }
  }
  ue::StackProfile profile = ue::StackProfile::cls();
  if (profile_name == "srsue") {
    profile = ue::StackProfile::srsue();
  } else if (profile_name == "oai") {
    profile = ue::StackProfile::oai();
  } else if (profile_name != "cls") {
    std::fprintf(stderr, "unknown profile %s\n", profile_name.c_str());
    return 2;
  }

  std::vector<RunSample> runs;
  std::string reference;
  for (int jobs : {1, 2, 4, 8}) {
    std::string print;
    RunSample s = run_catalog(profile, jobs, &print);
    if (jobs == 1) {
      reference = print;
    } else if (print != reference) {
      std::fprintf(stderr, "DETERMINISM VIOLATION: jobs=%d report differs from jobs=1\n",
                   jobs);
      return 1;
    }
    std::printf("jobs=%d: %.2fs wall, %zu states (%.0f states/sec), peak visited %.1f MiB\n",
                s.jobs, s.wall_seconds, s.states,
                s.wall_seconds > 0 ? static_cast<double>(s.states) / s.wall_seconds : 0.0,
                static_cast<double>(s.peak_visited_bytes) / (1024.0 * 1024.0));
    std::fflush(stdout);
    runs.push_back(s);
  }

  TextTable t({"jobs", "wall (s)", "states/sec", "peak visited (MiB)", "speedup vs jobs=1"});
  for (const RunSample& s : runs) {
    char wall[32], rate[32], mem[32], speedup[32];
    std::snprintf(wall, sizeof(wall), "%.2f", s.wall_seconds);
    std::snprintf(rate, sizeof(rate), "%.0f",
                  s.wall_seconds > 0 ? static_cast<double>(s.states) / s.wall_seconds : 0.0);
    std::snprintf(mem, sizeof(mem), "%.1f",
                  static_cast<double>(s.peak_visited_bytes) / (1024.0 * 1024.0));
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  s.wall_seconds > 0 ? runs.front().wall_seconds / s.wall_seconds : 0.0);
    t.add_row({std::to_string(s.jobs), wall, rate, mem, speedup});
  }
  std::printf("\nFull-catalog analysis scalability (%s profile, %zu hardware threads)\n%s",
              profile.name.c_str(), ThreadPool::default_parallelism(), t.render().c_str());
  std::printf("Reports at every jobs level are identical (determinism contract held).\n");

  SupervisedSample sup;
  if (supervised) {
    // Fault-free supervisor overhead: retries armed, durable journal on, no
    // faults injected — the watchdog polling and journal fsyncs are the only
    // extra work. Measured against an *adjacent* jobs=1 baseline so machine
    // drift between the sweep above and this section cannot skew the ratio.
    std::string base_print;
    double base = run_catalog(profile, 1, &base_print).wall_seconds;
    const std::string journal = "/tmp/bench_catalog_journal.jsonl";
    std::remove(journal.c_str());
    std::string sup_print;
    RunSample s = run_catalog(profile, 1, &sup_print, journal, /*retries=*/2);
    if (sup_print != reference || base_print != reference) {
      std::fprintf(stderr, "DETERMINISM VIOLATION: supervised report differs from jobs=1\n");
      return 1;
    }
    JournalLoad load = load_journal(journal);
    std::remove(journal.c_str());
    sup.measured = true;
    sup.baseline_wall = base;
    sup.supervised_wall = s.wall_seconds;
    sup.overhead_pct = base > 0 ? (s.wall_seconds - base) / base * 100.0 : 0.0;
    // Header line is bookkeeping, not an outcome.
    sup.journal_records = load.payloads.empty() ? 0 : load.payloads.size() - 1;
    std::printf(
        "\nSupervised overhead (jobs=1, fault-free): baseline %.2fs,"
        " supervised %.2fs, overhead %.2f%%, %zu journal records\n",
        sup.baseline_wall, sup.supervised_wall, sup.overhead_pct, sup.journal_records);
    if (sup.overhead_pct >= 3.0) {
      std::fprintf(stderr, "SUPERVISED OVERHEAD EXCEEDS 3%% (%.2f%%)\n", sup.overhead_pct);
      return 1;
    }
  }

  if (!json_path.empty()) write_json(json_path, profile.name, runs, sup);
  return 0;
}
