// Scalability of the full-catalog analysis (the RQ3 trajectory data): runs
// the complete 62-property verification of the CLS profile at jobs=1/2/4/8
// and reports wall-clock seconds, model-checker throughput (states/sec)
// and the peak visited-set footprint of any single property search.
//
//   bench_catalog_parallel [--profile <cls|srsue|oai>] [--write-json <path>]
//
// --write-json emits BENCH_catalog.json (machine-readable trajectory file;
// run from the repo root to place it there). Every run's report is checked
// against the jobs=1 report — a determinism violation fails the benchmark.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "checker/prochecker.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace {

using namespace procheck;

struct RunSample {
  int jobs = 1;
  double wall_seconds = 0;
  double extraction_seconds = 0;
  std::size_t states = 0;
  std::size_t peak_visited_bytes = 0;
  int verified = 0;
  int attacks = 0;
};

std::string fingerprint(const checker::ImplementationReport& rep) {
  std::string out;
  for (const checker::PropertyResult& r : rep.results) {
    out += r.property_id;
    out += ':';
    out += std::to_string(static_cast<int>(r.status));
    out += ':';
    out += std::to_string(r.refinements.size());
    out += ':';
    out += r.counterexample ? std::to_string(r.counterexample->steps.size()) : "-";
    out += ';';
  }
  for (const std::string& id : rep.attacks_found) {
    out += id;
    out += ',';
  }
  return out;
}

RunSample run_catalog(const ue::StackProfile& profile, int jobs, std::string* print) {
  checker::AnalysisOptions options;
  options.jobs = jobs;
  auto t0 = std::chrono::steady_clock::now();
  checker::ImplementationReport rep = checker::ProChecker::analyze(profile, options);
  RunSample s;
  s.jobs = jobs;
  s.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  s.extraction_seconds = rep.extraction_seconds;
  s.verified = rep.verified_count();
  s.attacks = rep.attack_count();
  for (const checker::PropertyResult& r : rep.results) {
    s.states += r.total_states;
    s.peak_visited_bytes = std::max(s.peak_visited_bytes, r.peak_visited_bytes);
  }
  *print = fingerprint(rep);
  return s;
}

void write_json(const std::string& path, const std::string& profile,
                const std::vector<RunSample>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"catalog_parallel\",\n");
  std::fprintf(f, "  \"profile\": \"%s\",\n", profile.c_str());
  std::fprintf(f, "  \"properties\": 62,\n");
  std::fprintf(f, "  \"hardware_concurrency\": %zu,\n", ThreadPool::default_parallelism());
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunSample& s = runs[i];
    std::fprintf(f,
                 "    {\"jobs\": %d, \"wall_seconds\": %.3f, \"states\": %zu,"
                 " \"states_per_sec\": %.0f, \"peak_visited_bytes\": %zu,"
                 " \"verified\": %d, \"attacks\": %d}%s\n",
                 s.jobs, s.wall_seconds, s.states,
                 s.wall_seconds > 0 ? static_cast<double>(s.states) / s.wall_seconds : 0.0,
                 s.peak_visited_bytes, s.verified, s.attacks,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  double j1 = runs.front().wall_seconds;
  double j8 = runs.back().wall_seconds;
  std::fprintf(f, "  \"speedup_max_jobs_vs_jobs1\": %.2f\n", j8 > 0 ? j1 / j8 : 0.0);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string profile_name = "cls";
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--profile" && i + 1 < argc) {
      profile_name = argv[++i];
    } else if (a == "--write-json") {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i] : "BENCH_catalog.json";
    } else {
      std::fprintf(stderr,
                   "usage: bench_catalog_parallel [--profile <cls|srsue|oai>]"
                   " [--write-json [path]]\n");
      return 2;
    }
  }
  ue::StackProfile profile = ue::StackProfile::cls();
  if (profile_name == "srsue") {
    profile = ue::StackProfile::srsue();
  } else if (profile_name == "oai") {
    profile = ue::StackProfile::oai();
  } else if (profile_name != "cls") {
    std::fprintf(stderr, "unknown profile %s\n", profile_name.c_str());
    return 2;
  }

  std::vector<RunSample> runs;
  std::string reference;
  for (int jobs : {1, 2, 4, 8}) {
    std::string print;
    RunSample s = run_catalog(profile, jobs, &print);
    if (jobs == 1) {
      reference = print;
    } else if (print != reference) {
      std::fprintf(stderr, "DETERMINISM VIOLATION: jobs=%d report differs from jobs=1\n",
                   jobs);
      return 1;
    }
    std::printf("jobs=%d: %.2fs wall, %zu states (%.0f states/sec), peak visited %.1f MiB\n",
                s.jobs, s.wall_seconds, s.states,
                s.wall_seconds > 0 ? static_cast<double>(s.states) / s.wall_seconds : 0.0,
                static_cast<double>(s.peak_visited_bytes) / (1024.0 * 1024.0));
    std::fflush(stdout);
    runs.push_back(s);
  }

  TextTable t({"jobs", "wall (s)", "states/sec", "peak visited (MiB)", "speedup vs jobs=1"});
  for (const RunSample& s : runs) {
    char wall[32], rate[32], mem[32], speedup[32];
    std::snprintf(wall, sizeof(wall), "%.2f", s.wall_seconds);
    std::snprintf(rate, sizeof(rate), "%.0f",
                  s.wall_seconds > 0 ? static_cast<double>(s.states) / s.wall_seconds : 0.0);
    std::snprintf(mem, sizeof(mem), "%.1f",
                  static_cast<double>(s.peak_visited_bytes) / (1024.0 * 1024.0));
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  s.wall_seconds > 0 ? runs.front().wall_seconds / s.wall_seconds : 0.0);
    t.add_row({std::to_string(s.jobs), wall, rate, mem, speedup});
  }
  std::printf("\nFull-catalog analysis scalability (%s profile, %zu hardware threads)\n%s",
              profile.name.c_str(), ThreadPool::default_parallelism(), t.render().c_str());
  std::printf("Reports at every jobs level are identical (determinism contract held).\n");

  if (!json_path.empty()) write_json(json_path, profile.name, runs);
  return 0;
}
