// Regenerates **Table II** of the paper: the properties common to
// ProChecker and LTEInspector (the set whose verification times Fig. 8
// compares). Also benchmarks catalog construction and property compilation
// against a threat model.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "checker/baseline.h"
#include "checker/property.h"
#include "common/table.h"
#include "threat/compose.h"

namespace {

using procheck::checker::common_properties;
using procheck::checker::property_catalog;
using procheck::checker::PropertyDef;

void BM_CatalogConstruction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(property_catalog().size());
  }
}
BENCHMARK(BM_CatalogConstruction);

void BM_PropertyCompile(benchmark::State& state) {
  procheck::threat::ThreatModel tm =
      procheck::threat::compose(procheck::checker::lteinspector_ue_model(),
                                procheck::checker::lteinspector_mme_model());
  for (auto _ : state) {
    for (const PropertyDef* p : common_properties()) {
      if (p->kind == PropertyDef::Kind::kEdgeNever) {
        benchmark::DoNotOptimize(p->bad.compile(tm));
      } else {
        benchmark::DoNotOptimize(p->trigger.compile(tm));
        benchmark::DoNotOptimize(p->response.compile(tm));
      }
    }
  }
}
BENCHMARK(BM_PropertyCompile);

void print_table2() {
  procheck::TextTable t({"#", "Id", "Type", "Kind", "Property"});
  int i = 0;
  for (const PropertyDef* p : common_properties()) {
    t.add_row({std::to_string(++i), p->id,
               p->type == PropertyDef::Type::kSecurity ? "Security" : "Privacy",
               p->kind == PropertyDef::Kind::kEdgeNever ? "safety" : "liveness",
               p->description});
  }
  std::printf("\nTABLE II: Common properties of ProChecker and LTEInspector (paper Table II)\n%s\n",
              t.render().c_str());

  int security = 0;
  int privacy = 0;
  for (const PropertyDef& p : property_catalog()) {
    (p.type == PropertyDef::Type::kSecurity ? security : privacy) += 1;
  }
  std::printf("Catalog: %zu properties total — %d security, %d privacy (paper: 62 = 37 + 25);"
              " %zu common with LTEInspector (paper Table II: 14)\n",
              property_catalog().size(), security, privacy, common_properties().size());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table2();
  return 0;
}
