// Regenerates the paper's **"Impact on 5G"** findings (§VII-A): the SQN
// scheme of authentication_request is identical in the 5G specifications
// (P1/P2 carry over), and the T3555-supervised configuration-update
// procedure has the same abort-after-five-tries discipline (P3 carries
// over) — while SUCI concealment removes the LTE-style plaintext-identity
// exposure. Runs against the nr/ 5G stack.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/table.h"
#include "nr/nr_stack.h"

namespace {

using namespace procheck;

constexpr std::uint64_t kHnKey = 0x5159;
constexpr std::uint64_t kKey = 0xFEED5;
constexpr const char* kSupi = "001010987654321";

struct FiveGRig {
  nr::Amf amf{kHnKey};
  nr::NrUe ue{kKey, kSupi, kHnKey};
  FiveGRig() { amf.provision_subscriber(kSupi, kKey); }
};

void BM_FiveGRegistration(benchmark::State& state) {
  for (auto _ : state) {
    FiveGRig rig;
    bool ok = nr::complete_registration(rig.ue, rig.amf);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_FiveGRegistration)->Unit(benchmark::kMicrosecond);

void BM_SuciConcealment(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(nr::conceal_supi(kSupi, kHnKey));
  }
}
BENCHMARK(BM_SuciConcealment);

bool p1_carries_over(bool freshness_limit) {
  nr::Amf amf(kHnKey);
  nr::NrUe ue(kKey, kSupi, kHnKey, nullptr,
              freshness_limit ? std::optional<std::uint64_t>{1} : std::nullopt);
  amf.provision_subscriber(kSupi, kKey);
  // Adversary elicits + captures a challenge the victim never consumes.
  nas::NasMessage rogue(nas::MsgType::kRegistrationRequest);
  rogue.set_s("identity", nr::conceal_supi(kSupi, kHnKey));
  auto challenge = amf.handle_uplink(nas::encode_plain(rogue));
  if (challenge.size() != 1) return false;
  if (!nr::complete_registration(ue, amf)) return false;
  if (freshness_limit) {
    // Age the capture beyond the window.
    for (int i = 0; i < 3; ++i) {
      nr::exchange(ue, amf, ue.trigger_deregister());
      if (!nr::complete_registration(ue, amf)) return false;
    }
  }
  auto out = ue.handle_downlink(challenge[0]);
  if (out.size() != 1) return false;
  auto resp = nas::decode_payload(out[0].payload);
  return resp && resp->type == nas::MsgType::kAuthenticationResponse;
}

int p3_transmissions_before_abort() {
  FiveGRig rig;
  if (!nr::complete_registration(rig.ue, rig.amf)) return -1;
  int transmissions = static_cast<int>(rig.amf.start_configuration_update().size());
  for (int tick = 0; tick < nr::Amf::kTimerPeriod * (nr::Amf::kMaxRetransmissions + 2);
       ++tick) {
    transmissions += static_cast<int>(rig.amf.tick().size());  // all dropped
  }
  return rig.amf.procedures_aborted() == 1 ? transmissions : -1;
}

void print_impact() {
  TextTable t({"5G finding", "result", "paper's claim"});
  t.add_row({"P1: stale (captured) SQN accepted by the 5G USIM",
             p1_carries_over(false) ? "yes — vulnerable" : "no",
             "identical Annex C scheme => 5G directly vulnerable"});
  t.add_row({"P1 with the optional freshness limit L",
             p1_carries_over(true) ? "still vulnerable" : "mitigated",
             "L closes the replay window (optional, unimplemented)"});
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%d transmissions then abort",
                p3_transmissions_before_abort());
  t.add_row({"P3: configuration_update_command drops (T3555)", buf,
             "retransmitted 4 times; aborted on the 5th expiry"});
  std::string suci = nr::conceal_supi(kSupi, kHnKey);
  t.add_row({"SUPI exposure during registration",
             suci.find(kSupi) == std::string::npos ? "concealed (SUCI)" : "LEAKED",
             "5G fixes LTE-style plaintext identity exposure"});
  std::printf("\nIMPACT ON 5G (paper §VII-A 'Impact on 5G' notes)\n%s\n", t.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_impact();
  return 0;
}
