// Regenerates the paper's **RQ3 extraction-scalability** data point: "for
// the largest log from the closed-source implementation, it takes our model
// extractor around 5 minutes to analyze the log and generate the semantic
// model." The absolute number is hardware- and log-size-specific; the shape
// under test is *linear scaling* of extraction time with log size, measured
// by replicating the conformance log 1×..32× (a 32× log approximates a
// commercial suite's volume relative to ours) and reporting throughput.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "extractor/extractor.h"
#include "testing/conformance.h"

namespace {

using namespace procheck;

const std::vector<instrument::LogRecord>& base_log() {
  static const std::vector<instrument::LogRecord> log = [] {
    instrument::TraceLogger trace;
    testing::run_conformance(ue::StackProfile::cls(), trace);
    return trace.records();
  }();
  return log;
}

std::vector<instrument::LogRecord> replicated_log(int factor) {
  std::vector<instrument::LogRecord> out;
  out.reserve(base_log().size() * static_cast<std::size_t>(factor));
  for (int i = 0; i < factor; ++i) {
    out.insert(out.end(), base_log().begin(), base_log().end());
  }
  return out;
}

void BM_ExtractOrdered(benchmark::State& state) {
  auto log = replicated_log(static_cast<int>(state.range(0)));
  extractor::Signatures sigs = extractor::ue_signatures(ue::StackProfile::cls());
  extractor::ExtractionOptions opts;
  opts.initial_state = "EMM_DEREGISTERED";
  for (auto _ : state) {
    fsm::Fsm m = extractor::extract(log, sigs, opts);
    benchmark::DoNotOptimize(m.stats().transitions);
  }
  state.counters["log_records"] = static_cast<double>(log.size());
  state.counters["records_per_s"] = benchmark::Counter(
      static_cast<double>(log.size()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExtractOrdered)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_ExtractAlgorithm1(benchmark::State& state) {
  auto log = replicated_log(static_cast<int>(state.range(0)));
  extractor::Signatures sigs = extractor::ue_signatures(ue::StackProfile::cls());
  extractor::ExtractionOptions opts;
  opts.chain_substates = false;
  opts.initial_state = "EMM_DEREGISTERED";
  for (auto _ : state) {
    fsm::Fsm m = extractor::extract_basic(log, sigs, opts);
    benchmark::DoNotOptimize(m.stats().transitions);
  }
  state.counters["records_per_s"] = benchmark::Counter(
      static_cast<double>(log.size()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExtractAlgorithm1)->Arg(1)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_LogParse(benchmark::State& state) {
  instrument::TraceLogger trace;
  testing::run_conformance(ue::StackProfile::cls(), trace);
  std::string text = trace.text();
  for (auto _ : state) {
    auto records = instrument::parse_log(text);
    benchmark::DoNotOptimize(records.size());
  }
  state.counters["bytes"] = static_cast<double>(text.size());
}
BENCHMARK(BM_LogParse)->Unit(benchmark::kMillisecond);

void BM_ConformanceExecution(benchmark::State& state) {
  // The instrumented-execution cost itself: the paper's claim is that
  // instrumentation adds negligible overhead to the existing testing
  // infrastructure; compare against the uninstrumented run below.
  for (auto _ : state) {
    instrument::TraceLogger trace;
    auto report = testing::run_conformance(ue::StackProfile::cls(), trace);
    benchmark::DoNotOptimize(report.passed());
  }
}
BENCHMARK(BM_ConformanceExecution)->Unit(benchmark::kMillisecond);

void BM_ConformanceExecutionUninstrumented(benchmark::State& state) {
  for (auto _ : state) {
    instrument::TraceLogger trace;
    trace.set_enabled(false);
    auto report = testing::run_conformance(ue::StackProfile::cls(), trace);
    benchmark::DoNotOptimize(report.passed());
  }
}
BENCHMARK(BM_ConformanceExecutionUninstrumented)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\nRQ3 (extraction scalability): extraction time should scale ~linearly in\n"
              "log size (compare the Arg(1)..Arg(32) rows), and the instrumented\n"
              "conformance run should cost little more than the uninstrumented one\n"
              "(the paper: 'negligible resource overhead').\n");
  return 0;
}
