// Regenerates the paper's **§VIII comparison** against black-box
// active-automata learning (de Ruiter & Poll-style protocol state fuzzing,
// the paper's [13]): "such approaches are prohibitively expensive as they
// require a significantly high time and number of queries... Moreover, the
// inferred FSM is not sufficiently large and semantically rich compared to
// that of the white-box settings."
//
// Runs a real L* Mealy learner against the UE black box and contrasts its
// cost and output with ProChecker's single instrumented conformance run.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/table.h"
#include "extractor/extractor.h"
#include "learner/lstar.h"
#include "testing/conformance.h"

namespace {

using namespace procheck;

learner::LearnResult& learned() {
  static learner::LearnResult result;
  return result;
}

struct WhiteBoxStats {
  std::size_t log_records = 0;
  long conformance_cases = 0;
  fsm::Fsm model;
};

WhiteBoxStats& whitebox() {
  static WhiteBoxStats stats;
  return stats;
}

void BM_BlackBoxLStar(benchmark::State& state) {
  for (auto _ : state) {
    learner::UeSul sul(ue::StackProfile::cls());
    learned() = learner::learn_mealy(sul);
    state.counters["mq"] = static_cast<double>(learned().membership_queries);
    state.counters["resets"] = static_cast<double>(learned().sul_resets);
    state.counters["steps"] = static_cast<double>(learned().sul_steps);
    state.counters["states"] = learned().machine.state_count;
  }
}
BENCHMARK(BM_BlackBoxLStar)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_WhiteBoxExtraction(benchmark::State& state) {
  for (auto _ : state) {
    instrument::TraceLogger trace;
    testing::ConformanceReport report =
        testing::run_conformance(ue::StackProfile::cls(), trace);
    extractor::ExtractionOptions opts;
    opts.initial_state = "EMM_DEREGISTERED";
    whitebox().model = extractor::extract(
        trace.records(), extractor::ue_signatures(ue::StackProfile::cls()), opts);
    whitebox().log_records = trace.records().size();
    whitebox().conformance_cases = report.total();
    state.counters["log_records"] = static_cast<double>(whitebox().log_records);
    state.counters["states"] = static_cast<double>(whitebox().model.stats().states);
  }
}
BENCHMARK(BM_WhiteBoxExtraction)->Unit(benchmark::kMillisecond)->Iterations(1);

void print_comparison() {
  const learner::LearnResult& bb = learned();
  const WhiteBoxStats& wb = whitebox();
  fsm::Fsm bb_fsm = bb.machine.to_fsm();

  TextTable t({"metric", "black-box L* (paper [13])", "ProChecker (white-box)"});
  t.add_row({"protocol executions",
             std::to_string(bb.sul_resets) + " resets / " + std::to_string(bb.sul_steps) +
                 " messages",
             std::to_string(wb.conformance_cases) + " conformance cases (one run)"});
  t.add_row({"membership queries", std::to_string(bb.membership_queries),
             "0 (reads the execution log)"});
  t.add_row({"equivalence rounds",
             std::to_string(bb.equivalence_queries) + " (" +
                 std::to_string(bb.counterexamples) + " counterexamples)",
             "-"});
  t.add_row({"states",
             std::to_string(bb.machine.state_count) + " (synthetic q0..qN)",
             std::to_string(wb.model.stats().states) + " (3GPP state names + substates)"});
  t.add_row({"condition atoms",
             std::to_string(bb_fsm.conditions().size()) + " (message names only)",
             std::to_string(wb.model.stats().conditions) +
                 " (messages + payload predicates)"});
  t.add_row({"predicates like mac_valid/sqn_ok", "none",
             "yes (the semantics the checker's properties need)"});
  std::printf("\nBLACK-BOX LEARNING vs WHITE-BOX EXTRACTION (paper §VIII)\n%s\n",
              t.render().c_str());
  std::printf("The learned machine is behaviorally correct but semantically poor: without\n"
              "state names and payload predicates, properties like \"the UE accepts a\n"
              "*stale-SQN* replayed challenge\" (P1) cannot even be stated against it.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_comparison();
  return 0;
}
