// Regenerates the paper's **RQ2** comparison (§VII-B, Fig. 7): is the
// automatically extracted model Pro^μ a refinement of LTEInspector's manual
// LTE^μ? Prints the per-clause verdicts, the transition-mapping breakdown,
// the model-size comparison, and the two Fig. 7 example transitions.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "checker/baseline.h"
#include "common/table.h"
#include "extractor/extractor.h"
#include "fsm/refinement.h"
#include "testing/conformance.h"

namespace {

using namespace procheck;

fsm::Fsm extract_rich(const ue::StackProfile& profile) {
  instrument::TraceLogger trace;
  testing::run_conformance(profile, trace);
  extractor::ExtractionOptions opts;
  opts.initial_state = "EMM_DEREGISTERED";
  return extractor::extract(trace.records(), extractor::ue_signatures(profile), opts);
}

void BM_RefinementCheck(benchmark::State& state) {
  fsm::Fsm pro = extract_rich(ue::StackProfile::cls());
  fsm::Fsm lte = checker::lteinspector_ue_model();
  for (auto _ : state) {
    fsm::RefinementReport r =
        fsm::check_refinement(lte, pro, checker::lteinspector_state_map());
    benchmark::DoNotOptimize(r.refines);
  }
}
BENCHMARK(BM_RefinementCheck)->Unit(benchmark::kMillisecond);

void BM_ModelExtraction(benchmark::State& state) {
  instrument::TraceLogger trace;
  testing::run_conformance(ue::StackProfile::cls(), trace);
  extractor::ExtractionOptions opts;
  opts.initial_state = "EMM_DEREGISTERED";
  for (auto _ : state) {
    fsm::Fsm m = extractor::extract(trace.records(),
                                    extractor::ue_signatures(ue::StackProfile::cls()), opts);
    benchmark::DoNotOptimize(m.stats().transitions);
  }
  state.counters["log_records"] = static_cast<double>(trace.records().size());
}
BENCHMARK(BM_ModelExtraction)->Unit(benchmark::kMillisecond);

void print_rq2() {
  fsm::Fsm lte = checker::lteinspector_ue_model();

  TextTable sizes({"Model", "states", "transitions", "conditions", "actions", "refines LTE^u"});
  for (const auto& profile :
       {ue::StackProfile::cls(), ue::StackProfile::srsue(), ue::StackProfile::oai()}) {
    fsm::Fsm pro = extract_rich(profile);
    fsm::RefinementReport r =
        fsm::check_refinement(lte, pro, checker::lteinspector_state_map());
    auto s = pro.stats();
    sizes.add_row({"Pro^u (" + profile.name + ")", std::to_string(s.states),
                   std::to_string(s.transitions), std::to_string(s.conditions),
                   std::to_string(s.actions), r.refines ? "yes" : "NO"});
  }
  auto ls = lte.stats();
  sizes.add_rule();
  sizes.add_row({"LTE^u (manual)", std::to_string(ls.states), std::to_string(ls.transitions),
                 std::to_string(ls.conditions), std::to_string(ls.actions), "-"});
  std::printf("\nRQ2: Model comparison, extracted Pro^u vs manual LTE^u (paper §VII-B)\n%s\n",
              sizes.render().c_str());

  fsm::Fsm pro = extract_rich(ue::StackProfile::cls());
  fsm::RefinementReport r = fsm::check_refinement(lte, pro, checker::lteinspector_state_map());
  std::printf("Refinement verdict for the closed-source profile:\n%s\n", r.summary().c_str());

  // Fig. 7's two worked examples.
  std::printf("FIGURE 7 examples (transition refinement):\n");
  for (const fsm::TransitionMapping& tm : r.transition_mappings) {
    bool is_smc = tm.abstract.conditions.count("security_mode_command") > 0;
    bool is_detach = tm.abstract.conditions.count("detach_request") > 0 &&
                     tm.abstract.actions.count("detach_accept") > 0;
    if (!is_smc && !is_detach) continue;
    std::printf("  (%s) LTEInspector: %s\n", is_smc ? "i" : "ii", tm.abstract.label().c_str());
    for (const fsm::Transition& t : tm.refined) {
      std::printf("        ProChecker:  %s\n", t.label().c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_rq2();
  return 0;
}
