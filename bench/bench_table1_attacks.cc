// Regenerates **Table I** of the paper: the attack-detection matrix of the
// full ProChecker pipeline (conformance execution → model extraction →
// threat instrumentation → MC ⇄ CPV CEGAR over 62 properties) across the
// three analyzed implementations.
//
// Expected shape (paper §VII-A): 3 new protocol attacks (P1–P3) on every
// implementation, implementation issues distributed as ● srs {I1,I3,I4},
// ● oai {I1,I2,I5}, ● both {I6}, and the applicable 12 of 14 prior attacks
// rediscovered everywhere ("-" rows: TMSI-reallocation linkability and the
// tracking_area_reject downgrade, procedures the stacks do not implement).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "checker/prochecker.h"
#include "common/table.h"

namespace {

using procheck::checker::ImplementationReport;
using procheck::checker::ProChecker;
using procheck::ue::StackProfile;

std::map<std::string, ImplementationReport>& reports() {
  static std::map<std::string, ImplementationReport> r;
  return r;
}

void BM_FullPipeline(benchmark::State& state, StackProfile profile) {
  for (auto _ : state) {
    ImplementationReport rep = ProChecker::analyze(profile);
    state.counters["properties"] = static_cast<double>(rep.results.size());
    state.counters["attacks"] = rep.attack_count();
    state.counters["fsm_states"] = static_cast<double>(rep.checking_model.stats().states);
    state.counters["fsm_transitions"] =
        static_cast<double>(rep.checking_model.stats().transitions);
    state.counters["log_records"] = static_cast<double>(rep.log_records);
    reports()[profile.name] = std::move(rep);
  }
}

BENCHMARK_CAPTURE(BM_FullPipeline, cls, StackProfile::cls())
    ->Unit(benchmark::kSecond)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_FullPipeline, srsue, StackProfile::srsue())
    ->Unit(benchmark::kSecond)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_FullPipeline, oai, StackProfile::oai())
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

struct Row {
  const char* attack_id;
  const char* name;
  const char* property_type;
  const char* implication;
  const char* vulnerability_type;
};

constexpr Row kNewAttacks[] = {
    {"P1", "(P1) Service disruption using authentication_request", "Security",
     "Service disruption", "Standards"},
    {"P2", "(P2) Linkability using authentication_response", "Privacy",
     "Location privacy leakage", "Standards"},
    {"P3", "(P3) Selective service dropping", "Security",
     "Surreptitious service disruption", "Standards"},
    {"I1", "(I1) Broken replay protection with all protected messages", "Security",
     "Broken replay protection", "Implementation"},
    {"I2", "(I2) Broken integrity, confidentiality (plain after context)",
     "Security-Privacy", "Integrity, encryption broken", "Implementation"},
    {"I3", "(I3) Counter-reset with replayed authentication_request", "Security",
     "Breaks replay protection", "Implementation"},
    {"I4", "(I4) Security bypass with reject messages", "Security", "Security bypass",
     "Implementation"},
    {"I5", "(I5) Privacy leakage with identity request", "Privacy", "IMSI leaking",
     "Implementation"},
    {"I6", "(I6) Linkability with security_mode_command", "Privacy", "Location tracking",
     "Implementation"},
};

constexpr Row kPriorAttacks[] = {
    {"PR01", "Authentication sync. failure [LTEInspector]", "Security", "Denial of Service",
     "Standards"},
    {"PR02", "Stealthy kicking-off [LTEInspector]", "Security",
     "Detaching victim surreptitiously", "Standards"},
    {"PR03", "Panic attack [LTEInspector]", "Security", "Creating artificial chaos",
     "Standards"},
    {"PR04", "Linkability using TMSI_reallocation [Arapinis et al.]", "Privacy",
     "Location privacy leak", "Standards"},
    {"PR05", "Linkability IMSI to GUTI using paging_request [Arapinis et al.]", "Privacy",
     "Location privacy leak", "Standards"},
    {"PR06", "Linkability using auth_sync_failure [Arapinis et al.]", "Privacy",
     "Location privacy leak", "Standards"},
    {"PR07", "Authentication relay [LTEInspector]", "Security-Privacy",
     "DoS, location history poisoning", "Standards"},
    {"PR08", "Numb attack [LTEInspector]", "Security", "Prolonged DoS, battery depletion",
     "Standards"},
    {"PR09", "Downgrade using tracking_area_reject [Shaik et al.]", "Security", "DoS",
     "Standards"},
    {"PR10", "Denial of all services [Shaik et al.]", "Security", "DoS", "Standards"},
    {"PR11", "Paging hijacking [LTEInspector]", "Security", "Stealthy DoS, panic",
     "Standards"},
    {"PR12", "Detach/Downgrade [LTEInspector]", "Security", "DoS, battery depletion",
     "Standards"},
    {"PR13", "Service Denial [LTEInspector]", "Security", "DoS", "Standards"},
    {"PR14", "Linkability (GUTI/TMSI) [LTEInspector]", "Privacy", "Location Tracking",
     "Standards"},
};

std::string mark(const ImplementationReport& rep, const std::string& attack_id) {
  // "●" detected, "○" not detected, "-" not applicable.
  for (const auto& r : rep.results) {
    if (r.attack_id == attack_id &&
        r.status == procheck::checker::PropertyResult::Status::kNotApplicable) {
      return "-";
    }
  }
  return rep.attacks_found.count(attack_id) > 0 ? "yes" : "no";
}

void print_table1() {
  const ImplementationReport& cls = reports().at("cls");
  const ImplementationReport& srs = reports().at("srsue");
  const ImplementationReport& oai = reports().at("oai");

  procheck::TextTable t(
      {"Attack", "Property Type", "Implication", "Vuln. Type", "closed-src", "srsLTE", "OAI"});
  t.add_section("New Attacks");
  for (const Row& row : kNewAttacks) {
    t.add_row({row.name, row.property_type, row.implication, row.vulnerability_type,
               mark(cls, row.attack_id), mark(srs, row.attack_id), mark(oai, row.attack_id)});
  }
  t.add_section("Previous Attacks");
  for (const Row& row : kPriorAttacks) {
    t.add_row({row.name, row.property_type, row.implication, row.vulnerability_type,
               mark(cls, row.attack_id), mark(srs, row.attack_id), mark(oai, row.attack_id)});
  }
  std::printf("\nTABLE I: Attacks detected by ProChecker (paper Table I)\n%s\n",
              t.render().c_str());

  std::printf("Summary (paper abstract: 3 new protocol attacks, 6 implementation issues,"
              " 14 prior attacks):\n");
  for (const auto& [name, rep] : reports()) {
    std::printf(
        "  %-6s: %2d/62 properties violated, %2d verified, %d n/a | conformance %d/%d,"
        " handler coverage %.0f%%\n",
        name.c_str(), rep.attack_count(), rep.verified_count(), rep.not_applicable_count(),
        rep.conformance.passed(), rep.conformance.total(),
        rep.conformance.handler_coverage * 100);
  }
  std::set<std::string> impl_issues;
  for (const auto& [name, rep] : reports()) {
    for (const std::string& id : rep.attacks_found) {
      if (id[0] == 'I') impl_issues.insert(id);
    }
  }
  std::printf("  distinct new protocol attacks: P1 P2 P3 | implementation issues found: ");
  for (const std::string& id : impl_issues) std::printf("%s ", id.c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table1();
  return 0;
}
