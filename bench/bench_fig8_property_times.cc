// Regenerates **Figure 8** of the paper: per-property verification time for
// the 14 common properties, on ProChecker's automatically extracted model
// (Pro^μ, closed-source profile) versus LTEInspector's manual model
// (LTE^μ). The paper's claim (RQ3): the richer extracted model verifies
// with time "only a fraction higher" than the hand-built one — i.e. the
// automatic extraction does not break COTS model-checker scalability.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

#include "checker/baseline.h"
#include "checker/cegar.h"
#include "checker/prochecker.h"
#include "checker/property.h"
#include "common/table.h"
#include "extractor/extractor.h"
#include "testing/conformance.h"

namespace {

using namespace procheck;
using checker::PropertyDef;

struct Models {
  fsm::Fsm pro;  // extracted from the closed-source profile's log
  fsm::Fsm lte;  // the manual LTEInspector machine
};

const Models& models() {
  static const Models m = [] {
    Models out;
    instrument::TraceLogger trace;
    testing::run_conformance(ue::StackProfile::cls(), trace);
    extractor::ExtractionOptions opts;
    opts.chain_substates = false;
    opts.initial_state = "EMM_DEREGISTERED";
    out.pro = extractor::extract_basic(trace.records(),
                                       extractor::ue_signatures(ue::StackProfile::cls()), opts);
    out.lte = checker::lteinspector_ue_model();
    return out;
  }();
  return m;
}

struct Timing {
  double pro_seconds = 0;
  double lte_seconds = 0;
  std::size_t pro_states = 0;
  std::size_t lte_states = 0;
};

std::map<std::string, Timing>& timings() {
  static std::map<std::string, Timing> t;
  return t;
}

double run_property(const fsm::Fsm& ue_model, const PropertyDef& prop, std::size_t* states) {
  threat::ThreatModel tm = threat::compose(ue_model, checker::lteinspector_mme_model());
  cpv::LteCryptoModel crypto;
  checker::PropertyResult r = checker::check_property(tm, ue_model, prop, crypto);
  if (states) *states = r.last_stats.states_explored;
  return r.total_seconds;
}

void BM_CommonProperty(benchmark::State& state, const PropertyDef* prop, bool on_pro) {
  const fsm::Fsm& model = on_pro ? models().pro : models().lte;
  for (auto _ : state) {
    std::size_t states_explored = 0;
    double seconds = run_property(model, *prop, &states_explored);
    Timing& t = timings()[prop->id];
    if (on_pro) {
      t.pro_seconds = seconds;
      t.pro_states = states_explored;
    } else {
      t.lte_seconds = seconds;
      t.lte_states = states_explored;
    }
    state.counters["mc_states"] = static_cast<double>(states_explored);
  }
}

void register_benchmarks() {
  for (const PropertyDef* prop : checker::common_properties()) {
    benchmark::RegisterBenchmark(("Fig8/ProChecker/" + prop->id).c_str(), BM_CommonProperty,
                                 prop, /*on_pro=*/true)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(("Fig8/LTEInspector/" + prop->id).c_str(), BM_CommonProperty,
                                 prop, /*on_pro=*/false)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

void print_fig8() {
  TextTable t({"Property", "LTEInspector (s)", "ProChecker (s)", "ratio", "Pro states",
               "LTE states"});
  double total_pro = 0;
  double total_lte = 0;
  int i = 0;
  for (const PropertyDef* prop : checker::common_properties()) {
    const Timing& tim = timings()[prop->id];
    total_pro += tim.pro_seconds;
    total_lte += tim.lte_seconds;
    char pro[32], lte[32], ratio[32];
    std::snprintf(pro, sizeof(pro), "%.4f", tim.pro_seconds);
    std::snprintf(lte, sizeof(lte), "%.4f", tim.lte_seconds);
    std::snprintf(ratio, sizeof(ratio), "%.2fx",
                  tim.lte_seconds > 0 ? tim.pro_seconds / tim.lte_seconds : 0.0);
    t.add_row({std::to_string(++i) + ". " + prop->id, lte, pro, ratio,
               std::to_string(tim.pro_states), std::to_string(tim.lte_states)});
  }
  std::printf("\nFIGURE 8: Execution time of the common properties (paper Fig. 8)\n%s\n",
              t.render().c_str());
  std::printf("Totals: ProChecker %.3fs vs LTEInspector %.3fs (overall ratio %.2fx).\n"
              "Expected shape per the paper: the automatically extracted model checks only a"
              " fraction slower than the manual one.\n",
              total_pro, total_lte, total_lte > 0 ? total_pro / total_lte : 0.0);
  std::printf("Model sizes: Pro^u %zu states / %zu transitions; LTE^u %zu states / %zu"
              " transitions.\n",
              models().pro.stats().states, models().pro.stats().transitions,
              models().lte.stats().states, models().lte.stats().transitions);
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_fig8();
  return 0;
}
