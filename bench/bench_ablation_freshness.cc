// Ablation bench (DESIGN.md §7): the TS 33.102 Annex C.2.2 freshness limit
// L is the optional, unimplemented mitigation whose absence the paper
// identifies as the P1/P2 root cause ("being optional and unspecified none
// of the major vendors are implementing such a check"). This bench runs the
// SQN-dependent properties with and without L and shows the attack rows
// flipping to verified, plus the CEGAR iteration cost of the refinement.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "checker/prochecker.h"
#include "common/table.h"

namespace {

using namespace procheck;
using checker::PropertyResult;

const std::set<std::string> kSqnProperties = {"S01", "P01", "P06"};

struct Outcome {
  std::string status;
  int iterations = 0;
  int refinements = 0;
  double seconds = 0;
};

std::map<std::string, std::map<std::string, Outcome>>& outcomes() {
  static std::map<std::string, std::map<std::string, Outcome>> o;
  return o;
}

std::string status_name(PropertyResult::Status s) {
  switch (s) {
    case PropertyResult::Status::kVerified:
      return "verified";
    case PropertyResult::Status::kAttack:
      return "ATTACK";
    case PropertyResult::Status::kNotApplicable:
      return "n/a";
  }
  return "?";
}

void BM_SqnProperties(benchmark::State& state, bool with_limit) {
  ue::StackProfile profile = ue::StackProfile::cls();
  if (with_limit) profile.sqn_freshness_limit = 1;
  checker::AnalysisOptions options;
  options.only_properties = kSqnProperties;
  for (auto _ : state) {
    checker::ImplementationReport rep = checker::ProChecker::analyze(profile, options);
    auto& slot = outcomes()[with_limit ? "with L" : "without L"];
    for (const PropertyResult& r : rep.results) {
      slot[r.property_id] = {status_name(r.status), r.iterations,
                             static_cast<int>(r.refinements.size()), r.total_seconds};
    }
    state.counters["attacks"] = rep.attack_count();
  }
}

BENCHMARK_CAPTURE(BM_SqnProperties, without_freshness_limit, false)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_SqnProperties, with_freshness_limit, true)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

void print_ablation() {
  TextTable t({"Property", "without L", "with L", "CEGAR iters (no L / L)",
               "refinements (no L / L)"});
  for (const std::string& id : kSqnProperties) {
    const Outcome& no_l = outcomes()["without L"][id];
    const Outcome& with_l = outcomes()["with L"][id];
    t.add_row({id, no_l.status, with_l.status,
               std::to_string(no_l.iterations) + " / " + std::to_string(with_l.iterations),
               std::to_string(no_l.refinements) + " / " + std::to_string(with_l.refinements)});
  }
  std::printf("\nABLATION: TS 33.102 Annex C.2.2 freshness limit L (P1/P2 mitigation)\n%s\n",
              t.render().c_str());
  std::printf("Expected: S01 (P1) and P01 (P2) are attacks without L and verified with L —\n"
              "the CPV adjudicates the stale-SQN replay infeasible and the CEGAR loop\n"
              "refines the counterexample away (extra iterations under L).\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_ablation();
  return 0;
}
