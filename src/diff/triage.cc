#include "diff/triage.h"

#include <algorithm>
#include <map>
#include <set>

#include "checker/prochecker.h"
#include "checker/property.h"
#include "checker/supervisor.h"
#include "threat/compose.h"

namespace procheck::diff {

namespace {

using checker::PropertyDef;

/// The CommandMetas the threat composer would emit for one UE transition:
/// one kInternal meta for trigger/tau transitions, one kDeliver meta per
/// admissible provenance for received-message transitions (mirroring
/// threat/compose.cc so static matching sees exactly the catalog's view).
std::vector<mc::CommandMeta> metas_of(const fsm::Transition& t) {
  threat::ConditionSplit cond = threat::split_conditions(t.conditions);
  std::vector<mc::CommandMeta> out;
  mc::CommandMeta base;
  base.actor = mc::CommandMeta::Actor::kUe;
  base.message = cond.message;
  base.atoms = t.conditions;
  base.actions = t.actions;
  base.from_state = t.from;
  base.to_state = t.to;
  if (cond.is_trigger || cond.message.empty()) {
    base.kind = mc::CommandMeta::Kind::kInternal;
    out.push_back(std::move(base));
    return out;
  }
  base.kind = mc::CommandMeta::Kind::kDeliver;
  for (std::int32_t prov : threat::admissible_provenance(t)) {
    mc::CommandMeta m = base;
    m.provenance = prov;
    out.push_back(std::move(m));
  }
  return out;
}

bool property_matches(const PropertyDef& prop, const std::vector<mc::CommandMeta>& metas) {
  for (const mc::CommandMeta& m : metas) {
    if (prop.kind == PropertyDef::Kind::kEdgeNever) {
      if (prop.bad.matches_meta(m)) return true;
    } else if (prop.trigger.matches_meta(m) || prop.response.matches_meta(m)) {
      return true;
    }
  }
  return false;
}

/// Deviation-indicator atoms: predicates only a seeded implementation
/// deviation sets — the composer's replay-tolerance markers plus the
/// plain-after-context marker. A property anchored on one can violate
/// identically on both sides with no pairwise divergence at all (I6: every
/// profile carries the same smc_replay edge), so such properties enter the
/// candidate set whenever both sides statically match.
bool names_deviation_atom(const checker::MetaMatch& match) {
  for (const std::string& a : match.atoms_all) {
    if (threat::is_replay_tolerant_atom(a) || a == "plain_accepted_after_ctx=1") return true;
  }
  return false;
}

std::string_view status_token(checker::PropertyResult::Status s) {
  switch (s) {
    case checker::PropertyResult::Status::kVerified:
      return "verified";
    case checker::PropertyResult::Status::kAttack:
      return "attack";
    case checker::PropertyResult::Status::kNotApplicable:
      return "not_applicable";
    case checker::PropertyResult::Status::kInconclusive:
      return "inconclusive";
  }
  return "?";
}

}  // namespace

void triage(DiffReport& report, const Side& left, const Side& right,
            const TriageOptions& options) {
  if (report.inconclusive || report.divergences.empty()) return;

  const std::vector<PropertyDef>& catalog = checker::property_catalog();

  // Metas per transition, resolved lazily by label (labels are injective
  // over a deduplicated deterministic machine).
  std::map<std::string, std::vector<mc::CommandMeta>> meta_cache;
  auto metas_for_edge = [&meta_cache](const fsm::Fsm& machine,
                                      const std::string& label) -> const std::vector<mc::CommandMeta>* {
    if (label == "-") return nullptr;
    auto it = meta_cache.find(label);
    if (it != meta_cache.end()) return &it->second;
    for (const fsm::Transition& t : machine.transitions()) {
      if (t.label() == label) {
        return &meta_cache.emplace(label, metas_of(t)).first->second;
      }
    }
    return nullptr;
  };

  // (1) Candidates from diverging edges, remembering which divergences each
  // property's matcher actually hit (for per-divergence attribution).
  std::set<std::string> candidates;
  std::map<std::string, std::set<std::size_t>> hits;
  for (std::size_t i = 0; i < report.divergences.size(); ++i) {
    const Divergence& d = report.divergences[i];
    for (const std::vector<mc::CommandMeta>* metas :
         {metas_for_edge(left.machine, d.left_edge),
          metas_for_edge(right.machine, d.right_edge)}) {
      if (metas == nullptr) continue;
      for (const PropertyDef& prop : catalog) {
        if (property_matches(prop, *metas)) {
          candidates.insert(prop.id);
          hits[prop.id].insert(i);
        }
      }
    }
  }

  // (2) Shared-deviation tier: attack-mapped never-claims anchored on a
  // deviation-indicator atom that statically match BOTH sides.
  for (const PropertyDef& prop : catalog) {
    if (prop.attack_id.empty() || prop.kind != PropertyDef::Kind::kEdgeNever) continue;
    if (!names_deviation_atom(prop.bad)) continue;
    bool both = true;
    for (const Side* side : {&left, &right}) {
      bool matched = false;
      for (const fsm::Transition& t : side->machine.transitions()) {
        if (property_matches(prop, metas_of(t))) {
          matched = true;
          break;
        }
      }
      both = both && matched;
    }
    if (both) candidates.insert(prop.id);
  }

  report.findings.clear();
  if (candidates.empty()) return;

  // (3) Model-check every candidate on both sides under the analysis
  // supervisor: crash isolation, watchdog deadlines, degrade-to-inconclusive
  // — and run_supervised's byte-determinism across jobs levels.
  std::vector<const PropertyDef*> selected;
  for (const PropertyDef& prop : catalog) {
    if (candidates.count(prop.id) > 0) selected.push_back(&prop);
  }

  cpv::LteCryptoModel::Options crypto;  // no freshness-limit mitigation
  checker::CegarOptions cegar;
  cegar.max_states = options.max_states;
  cegar.max_iterations = options.max_cegar_iterations;
  checker::SupervisorOptions sup;
  sup.jobs = options.jobs > 0 ? options.jobs : 1;
  sup.deadline_per_property = options.deadline_per_property;
  sup.retries = options.retries;
  sup.cancel = options.cancel;

  auto verdicts = [&](const Side& side) {
    threat::ThreatModel tm = checker::ProChecker::build_threat_model(side.machine);
    return checker::run_supervised(tm, side.machine, selected, crypto, cegar, sup);
  };
  const checker::SupervisedRun lrun = verdicts(left);
  const checker::SupervisedRun rrun = verdicts(right);
  if (lrun.outcomes.size() != selected.size() || rrun.outcomes.size() != selected.size()) {
    report.inconclusive = true;
    report.note = "triage aborted: supervisor produced no verdicts";
    return;
  }

  // (4) Verdict matrix → findings; retained properties → attribution.
  std::set<std::string> retained;
  for (std::size_t k = 0; k < selected.size(); ++k) {
    using Status = checker::PropertyResult::Status;
    const checker::PropertyResult& lr = lrun.outcomes[k].result;
    const checker::PropertyResult& rr = rrun.outcomes[k].result;
    const bool lattack = lr.status == Status::kAttack;
    const bool rattack = rr.status == Status::kAttack;
    const bool linc = lr.status == Status::kInconclusive;
    const bool rinc = rr.status == Status::kInconclusive;

    Finding f;
    f.property_id = selected[k]->id;
    f.attack_id = selected[k]->attack_id;
    f.left_status = status_token(lr.status);
    f.right_status = status_token(rr.status);
    if (linc || rinc) {
      f.cls = Finding::Class::kInconclusive;
      f.note = linc ? lr.note : rr.note;
    } else if (lattack && rattack) {
      f.cls = Finding::Class::kCommon;
      f.violates = "both";
    } else if (lattack != rattack) {
      f.cls = Finding::Class::kDivergent;
      f.violates = lattack ? "left" : "right";
    } else {
      continue;  // verified/not-applicable on both sides: dismissed
    }
    retained.insert(f.property_id);
    report.findings.push_back(std::move(f));
  }

  for (std::size_t i = 0; i < report.divergences.size(); ++i) {
    Divergence& d = report.divergences[i];
    d.properties.clear();
    for (const PropertyDef* prop : selected) {
      if (retained.count(prop->id) == 0) continue;
      auto it = hits.find(prop->id);
      if (it != hits.end() && it->second.count(i) > 0) d.properties.push_back(prop->id);
    }
  }
}

}  // namespace procheck::diff
