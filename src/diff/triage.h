// Property-mapped divergence triage (DESIGN.md §16): labels every
// divergence from diff_machines as property-relevant (which catalog
// property, which side violates it) or behavioral-only.
//
// Candidate selection is static and cheap: each diverging edge is rebuilt as
// the CommandMeta(s) the threat composer would emit for it — one per
// admissible provenance — and matched against the 62-property catalog's
// declarative matchers. A second tier catches shared deviations that never
// pairwise-diverge (e.g. the I6 SMC-replay edge seeded in every profile):
// attack-mapped properties whose bad-edge matcher names a deviation-
// indicator atom and hits *both* sides become candidates too.
//
// Static matching alone over-approximates (a matcher with pre-state
// constraints matches many benign edges), so the verdict is always the model
// checker's: every candidate property is verified on BOTH sides under the
// analysis supervisor (crash isolation, watchdog deadlines, budget degrade —
// DESIGN.md §11), fanned across common/thread_pool. The verdict matrix then
// classifies:
//
//   attack on exactly one side  -> divergent finding (that side violates)
//   attack on both sides        -> common finding (shared deviation)
//   inconclusive on either side -> inconclusive finding (budget tripped)
//   otherwise                   -> candidate dismissed; a divergence whose
//                                  candidates all dismissed is behavioral-only
//
// Verdicts are deterministic, land in catalog order, and each side runs
// under run_supervised's byte-determinism contract — so the triaged report
// stays byte-identical across runs and --jobs levels.
#pragma once

#include <cstddef>

#include "common/thread_pool.h"
#include "diff/diff.h"

namespace procheck::diff {

struct TriageOptions {
  /// Worker threads for the per-property fan-out on each side.
  std::size_t jobs = 1;
  /// Per-property CEGAR budgets (mirroring checker::AnalysisOptions): a
  /// pathological side degrades to a structured inconclusive finding.
  std::size_t max_states = 1'000'000;
  int max_cegar_iterations = 16;
  /// Watchdog wall-clock deadline per property per side (seconds; 0 = none,
  /// matching checker::AnalysisOptions — wall-clock watchdogs trade the
  /// byte-identity-across-machines guarantee for boundedness, so they are
  /// opt-in here exactly as in `analyze`).
  double deadline_per_property = 0.0;
  /// Extra degraded attempts for properties that trip a budget.
  int retries = 0;
  /// Cooperative run-level cancellation.
  const CancelToken* cancel = nullptr;
};

/// Runs triage over `report` (in place): attaches property ids to each
/// divergence and fills report.findings. A report that is inconclusive or
/// has no divergences is returned unchanged.
void triage(DiffReport& report, const Side& left, const Side& right,
            const TriageOptions& options = {});

}  // namespace procheck::diff
