#include "diff/sources.h"

#include <fstream>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "extractor/extractor.h"
#include "instrument/trace_log.h"
#include "learner/lstar.h"
#include "learner/sul.h"
#include "net/remote_sul.h"
#include "testing/conformance.h"
#include "ue/profile.h"

namespace procheck::diff {

namespace {

std::optional<ue::StackProfile> profile_by_name(const std::string& name) {
  if (name == "cls") return ue::StackProfile::cls();
  if (name == "srsue") return ue::StackProfile::srsue();
  if (name == "oai") return ue::StackProfile::oai();
  return std::nullopt;
}

/// Splits "host:port"; nullopt on malformation (mirrors the CLI helper —
/// the library cannot depend on src/cli).
std::optional<std::pair<std::string, std::uint16_t>> parse_endpoint(const std::string& text) {
  std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) return std::nullopt;
  try {
    std::size_t pos = 0;
    unsigned long port = std::stoul(text.substr(colon + 1), &pos);
    if (pos != text.size() - colon - 1 || port == 0 || port > 65535) return std::nullopt;
    return std::make_pair(text.substr(0, colon), static_cast<std::uint16_t>(port));
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

SideResult spec_error(const std::string& spec, const std::string& why) {
  SideResult r;
  r.error = "bad side spec '" + spec + "': " + why;
  return r;
}

/// Flat checking-model extraction from a trace log — the same surface
/// `prochecker extract --basic` produces and the analyzer model-checks.
fsm::Fsm extract_flat(const std::vector<instrument::LogRecord>& records,
                      const ue::StackProfile& profile) {
  extractor::ExtractionOptions opts;
  opts.initial_state = "EMM_DEREGISTERED";
  opts.chain_substates = false;
  return extractor::extract_basic(records, extractor::ue_signatures(profile), opts);
}

SideResult resolve_profile(const std::string& spec, const std::string& name) {
  std::optional<ue::StackProfile> profile = profile_by_name(name);
  if (!profile) return spec_error(spec, "unknown profile '" + name + "'");
  instrument::TraceLogger trace;
  testing::run_conformance(*profile, trace);
  std::vector<instrument::LogRecord> records = instrument::parse_log(trace.text());
  SideResult r;
  r.ok = true;
  r.side.name = spec;
  r.side.machine = extract_flat(records, *profile);
  return r;
}

SideResult resolve_log(const std::string& spec, const std::string& arg) {
  // Optional leading "<profile>:" pins the handler-signature table.
  std::string path = arg;
  std::optional<ue::StackProfile> pinned;
  const std::size_t colon = arg.find(':');
  if (colon != std::string::npos) {
    if (std::optional<ue::StackProfile> p = profile_by_name(arg.substr(0, colon))) {
      pinned = std::move(p);
      path = arg.substr(colon + 1);
    }
  }
  std::ifstream in(path);
  if (!in) return spec_error(spec, "cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::vector<instrument::LogRecord> records = instrument::parse_log(ss.str());

  SideResult r;
  r.side.name = spec;
  if (pinned) {
    r.ok = true;
    r.side.machine = extract_flat(records, *pinned);
    return r;
  }
  // Signature-table auto-detection: the table that explains the most log
  // records wins (a wrong table drops its rival's deviation handlers on the
  // floor). Ties resolve in cls→srsue→oai order for determinism.
  fsm::Fsm best;
  std::size_t best_yield = 0;
  bool found = false;
  for (const char* name : {"cls", "srsue", "oai"}) {
    fsm::Fsm m = extract_flat(records, *profile_by_name(name));
    const std::size_t yield = m.stats().transitions;
    if (!found || yield > best_yield) {
      best = std::move(m);
      best_yield = yield;
      found = true;
    }
  }
  if (best_yield == 0) return spec_error(spec, "no extractable records in " + path);
  r.ok = true;
  r.side.machine = std::move(best);
  return r;
}

SideResult learned_side(const std::string& spec, learner::Sul& sul,
                        const SourceOptions& options, const std::string& degraded_hint) {
  learner::LearnOptions lopts;
  lopts.seed = options.learn_seed;
  learner::LearnResult result = learner::learn_mealy(sul, lopts);
  SideResult r;
  r.side.name = spec;
  if (result.inconclusive) {
    r.inconclusive = true;
    r.error = degraded_hint + result.note;
    return r;
  }
  r.ok = true;
  r.side.machine = result.machine.to_fsm();
  return r;
}

SideResult resolve_learn(const std::string& spec, const std::string& name,
                         const SourceOptions& options) {
  std::optional<ue::StackProfile> profile = profile_by_name(name);
  if (!profile) return spec_error(spec, "unknown profile '" + name + "'");
  learner::UeSul sul(*profile);
  return learned_side(spec, sul, options, "learning inconclusive: ");
}

SideResult resolve_remote(const std::string& spec, const std::string& endpoint,
                          const SourceOptions& options) {
  std::optional<std::pair<std::string, std::uint16_t>> ep = parse_endpoint(endpoint);
  if (!ep) return spec_error(spec, "expected remote:<host>:<port>");
  net::RemoteSulOptions ropts;
  ropts.host = ep->first;
  ropts.port = ep->second;
  ropts.psk = options.psk;
  if (options.batch_words >= 0) ropts.max_batch_words = options.batch_words;
  net::RemoteUeSul sul(ropts);
  SideResult r = learned_side(spec, sul, options, "remote learning degraded: ");
  if (r.inconclusive) {
    const std::string why = sul.unavailable_reason();
    if (!why.empty()) r.error += " (" + why + ")";
  }
  return r;
}

}  // namespace

SideResult resolve_side(const std::string& spec, const SourceOptions& options) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) {
    return spec_error(spec, "expected <profile|log|learn|remote>:<arg>");
  }
  const std::string scheme = spec.substr(0, colon);
  const std::string arg = spec.substr(colon + 1);
  if (scheme == "profile") return resolve_profile(spec, arg);
  if (scheme == "log") return resolve_log(spec, arg);
  if (scheme == "learn") return resolve_learn(spec, arg, options);
  if (scheme == "remote") return resolve_remote(spec, arg, options);
  return spec_error(spec, "unknown scheme '" + scheme + "'");
}

}  // namespace procheck::diff
