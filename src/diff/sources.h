// Side acquisition for `prochecker diff` (DESIGN.md §16): materializes one
// comparison side from a spec string. Supported forms:
//
//   profile:<cls|srsue|oai>  — fresh instrumented conformance run, flat
//                              checking-model extraction (the MC input: the
//                              surface where seeded deviations appear as
//                              predicate atoms);
//   log:[<profile>:]<path>   — extraction from an existing trace log. The
//                              optional profile names the handler-signature
//                              table; omitted, the table is auto-detected by
//                              extraction yield (ties resolve cls→srsue→oai);
//   learn:<cls|srsue|oai>    — in-process L* over the learning alphabet
//                              (the black-box view of the same stack);
//   remote:<host>:<port>     — L* against a live serve-sul endpoint over the
//                              fault-tolerant transport. Transport
//                              degradation yields a structured inconclusive
//                              side (CLI exit 3), never a hang.
//
// Learned sides (learn:/remote:) see only the behavior the valid-message
// harness can drive, so two stacks whose deviations are predicate-level may
// legitimately learn identical machines; extracted sides (profile:/log:)
// carry the predicate atoms and are where I1–I6 surface. Mixing an
// extracted side with a learned side is allowed but rarely meaningful — the
// condition alphabets barely overlap — and the report will say DIVERGENT
// loudly rather than pretend comparability.
#pragma once

#include <cstdint>
#include <string>

#include "diff/diff.h"

namespace procheck::diff {

struct SourceOptions {
  /// PSK and batch negotiation for remote: sides.
  std::string psk;
  int batch_words = -1;  // <0 = transport default
  std::uint64_t learn_seed = 0xC0FFEE;
};

struct SideResult {
  Side side;
  bool ok = false;
  /// When !ok: true means the side was reachable-in-principle but degraded
  /// (remote transport down, learning inconclusive) — CLI exit 3; false
  /// means the spec itself is unusable (unknown form, unreadable log) —
  /// usage error.
  bool inconclusive = false;
  std::string error;
};

SideResult resolve_side(const std::string& spec, const SourceOptions& options = {});

}  // namespace procheck::diff
