#include "diff/diff.h"

#include <algorithm>
#include <deque>
#include <map>

#include "common/strings.h"

namespace procheck::diff {

std::string_view to_string(DivergenceKind k) {
  switch (k) {
    case DivergenceKind::kOutputMismatch:
      return "output-mismatch";
    case DivergenceKind::kMissingLeft:
      return "missing-left";
    case DivergenceKind::kMissingRight:
      return "missing-right";
    case DivergenceKind::kExtraStateLeft:
      return "extra-state-left";
    case DivergenceKind::kExtraStateRight:
      return "extra-state-right";
  }
  return "?";
}

std::string_view to_string(Finding::Class c) {
  switch (c) {
    case Finding::Class::kDivergent:
      return "divergent";
    case Finding::Class::kCommon:
      return "common";
    case Finding::Class::kInconclusive:
      return "inconclusive";
  }
  return "?";
}

std::string input_key(const std::set<fsm::Atom>& conditions) {
  return join({conditions.begin(), conditions.end()}, " & ");
}

namespace {

/// Per-state transition index keyed by the canonical condition-set rendering
/// — the product walk's input symbol. std::map keeps iteration sorted, which
/// is what makes the BFS expansion (and thus every report) canonical.
using EdgeIndex = std::map<std::string, std::map<std::string, const fsm::Transition*>>;

EdgeIndex index_of(const fsm::Fsm& machine) {
  EdgeIndex index;
  for (const fsm::Transition& t : machine.transitions()) {
    index[t.from].emplace(input_key(t.conditions), &t);
  }
  return index;
}

std::string pair_name(const std::string& l, const std::string& r) { return l + " | " + r; }

/// Shortest (and lexicographically least among shortest) input sequence from
/// the machine's initial state to `target`, BFS over sorted inputs.
std::vector<std::string> shortest_path_to(const fsm::Fsm& machine, const EdgeIndex& index,
                                          const std::string& target) {
  struct Visit {
    int parent = -1;
    std::string input;
    std::string state;
  };
  std::vector<Visit> visits{{-1, "", machine.initial()}};
  std::map<std::string, int> seen{{machine.initial(), 0}};
  std::deque<int> work{0};
  while (!work.empty()) {
    int at = work.front();
    work.pop_front();
    if (visits[at].state == target) {
      std::vector<std::string> path;
      for (int v = at; v > 0; v = visits[v].parent) path.push_back(visits[v].input);
      std::reverse(path.begin(), path.end());
      return path;
    }
    auto it = index.find(visits[at].state);
    if (it == index.end()) continue;
    for (const auto& [input, t] : it->second) {
      if (seen.emplace(t->to, static_cast<int>(visits.size())).second) {
        visits.push_back({at, input, t->to});
        work.push_back(static_cast<int>(visits.size()) - 1);
      }
    }
  }
  return {};
}

}  // namespace

int DiffReport::exit_code() const {
  if (inconclusive) return 3;
  return divergences.empty() ? 0 : 1;
}

DiffReport diff_machines(const Side& left, const Side& right, const DiffOptions& options) {
  DiffReport report;
  report.left_name = left.name;
  report.right_name = right.name;

  // The product construction assumes deterministic inputs (§III-B); a
  // nondeterministic side has no well-defined lockstep successor.
  for (const Side* side : {&left, &right}) {
    if (!side->machine.deterministic()) {
      report.inconclusive = true;
      report.note = "side '" + side->name + "' is nondeterministic: no product walk possible";
      return report;
    }
    if (side->machine.initial().empty()) {
      report.inconclusive = true;
      report.note = "side '" + side->name + "' has no initial state";
      return report;
    }
  }

  const EdgeIndex left_index = index_of(left.machine);
  const EdgeIndex right_index = index_of(right.machine);

  struct Pair {
    std::string l;
    std::string r;
    int parent = -1;
    std::string input;  // edge from the parent pair
  };
  std::vector<Pair> pairs{{left.machine.initial(), right.machine.initial(), -1, ""}};
  std::map<std::pair<std::string, std::string>, int> seen{
      {{pairs[0].l, pairs[0].r}, 0}};
  std::deque<int> work{0};

  auto sequence_to = [&pairs](int at, const std::string& last) {
    std::vector<std::string> seq;
    for (int v = at; v > 0; v = pairs[v].parent) seq.push_back(pairs[v].input);
    std::reverse(seq.begin(), seq.end());
    seq.push_back(last);
    return seq;
  };

  bool walk_capped = false;
  bool divergences_capped = false;
  static const std::map<std::string, const fsm::Transition*> kNoEdges;

  while (!work.empty()) {
    const int at = work.front();
    work.pop_front();
    const std::string l = pairs[at].l;
    const std::string r = pairs[at].r;

    auto lit = left_index.find(l);
    auto rit = right_index.find(r);
    const auto& ledges = lit == left_index.end() ? kNoEdges : lit->second;
    const auto& redges = rit == right_index.end() ? kNoEdges : rit->second;

    // Merge the two sorted input alphabets so comparison order — and with it
    // every distinguishing sequence — is canonical.
    std::vector<std::string> inputs;
    inputs.reserve(ledges.size() + redges.size());
    for (const auto& [key, t] : ledges) inputs.push_back(key);
    for (const auto& [key, t] : redges) {
      if (ledges.count(key) == 0) inputs.push_back(key);
    }
    std::sort(inputs.begin(), inputs.end());

    for (const std::string& input : inputs) {
      auto le = ledges.find(input);
      auto re = redges.find(input);
      const fsm::Transition* lt = le == ledges.end() ? nullptr : le->second;
      const fsm::Transition* rt = re == redges.end() ? nullptr : re->second;

      if (lt != nullptr && rt != nullptr) {
        if (lt->actions != rt->actions &&
            report.divergences.size() < options.max_divergences) {
          Divergence d;
          d.kind = DivergenceKind::kOutputMismatch;
          d.input = input;
          d.sequence = sequence_to(at, input);
          d.left_state = l;
          d.right_state = r;
          d.left_edge = lt->label();
          d.right_edge = rt->label();
          report.divergences.push_back(std::move(d));
        } else if (lt->actions != rt->actions) {
          divergences_capped = true;
        }
        // Walk past the mismatch: deeper pairs may expose further
        // divergences, and BFS keeps each one's sequence minimal.
        auto [it, inserted] = seen.try_emplace({lt->to, rt->to}, static_cast<int>(pairs.size()));
        if (inserted) {
          if (pairs.size() >= options.max_product_pairs) {
            walk_capped = true;
            seen.erase(it);
          } else {
            pairs.push_back({lt->to, rt->to, at, input});
            work.push_back(static_cast<int>(pairs.size()) - 1);
            report.edges.push_back(
                {pair_name(l, r), pair_name(lt->to, rt->to), input});
          }
        } else {
          report.edges.push_back({pair_name(l, r), pair_name(lt->to, rt->to), input});
        }
        continue;
      }

      if (report.divergences.size() >= options.max_divergences) {
        divergences_capped = true;
        continue;
      }
      Divergence d;
      d.kind = lt != nullptr ? DivergenceKind::kMissingRight : DivergenceKind::kMissingLeft;
      d.input = input;
      d.sequence = sequence_to(at, input);
      d.left_state = l;
      d.right_state = r;
      d.left_edge = lt != nullptr ? lt->label() : "-";
      d.right_edge = rt != nullptr ? rt->label() : "-";
      report.divergences.push_back(std::move(d));
    }
  }
  report.product_pairs = pairs.size();

  if (walk_capped) {
    report.note = "product walk capped at " + std::to_string(options.max_product_pairs) +
                  " pairs; extra-state analysis skipped";
    // Without a complete walk an empty divergence list proves nothing.
    if (report.divergences.empty()) report.inconclusive = true;
  } else {
    // States a side can reach that no lockstep pair ever visits: reachable
    // only along already-diverged paths.
    std::set<std::string> covered_left;
    std::set<std::string> covered_right;
    for (const Pair& p : pairs) {
      covered_left.insert(p.l);
      covered_right.insert(p.r);
    }
    struct ExtraScan {
      const Side* side;
      const EdgeIndex* index;
      const std::set<std::string>* covered;
      DivergenceKind kind;
    };
    for (const ExtraScan& scan :
         {ExtraScan{&left, &left_index, &covered_left, DivergenceKind::kExtraStateLeft},
          ExtraScan{&right, &right_index, &covered_right, DivergenceKind::kExtraStateRight}}) {
      for (const std::string& state : scan.side->machine.reachable()) {  // sorted
        if (scan.covered->count(state) > 0) continue;
        if (report.divergences.size() >= options.max_divergences) {
          divergences_capped = true;
          break;
        }
        Divergence d;
        d.kind = scan.kind;
        d.input = state;
        d.sequence = shortest_path_to(scan.side->machine, *scan.index, state);
        d.left_state = scan.kind == DivergenceKind::kExtraStateLeft ? state : "-";
        d.right_state = scan.kind == DivergenceKind::kExtraStateRight ? state : "-";
        d.left_edge = "-";
        d.right_edge = "-";
        report.divergences.push_back(std::move(d));
      }
    }
  }
  if (divergences_capped) {
    if (!report.note.empty()) report.note += "; ";
    report.note += "divergence list truncated at " + std::to_string(options.max_divergences);
  }

  report.equivalent = report.divergences.empty() && !report.inconclusive;
  return report;
}

std::string DiffReport::render() const {
  std::string verdict = inconclusive ? "INCONCLUSIVE" : (equivalent ? "EQUIVALENT" : "DIVERGENT");
  std::string out = "diff " + left_name + " vs " + right_name + ": " + verdict + "\n";
  if (!note.empty()) out += "note: " + note + "\n";
  out += "product pairs visited: " + std::to_string(product_pairs) + "\n";
  out += "divergences: " + std::to_string(divergences.size()) + "\n";
  for (std::size_t i = 0; i < divergences.size(); ++i) {
    const Divergence& d = divergences[i];
    out += "  [" + std::to_string(i + 1) + "] " + std::string(to_string(d.kind)) + ": " +
           d.input + "\n";
    out += "      at " + pair_name(d.left_state, d.right_state) + "\n";
    out += "      sequence: " + (d.sequence.empty() ? "(initial)" : join(d.sequence, " -> ")) +
           "\n";
    out += "      left:  " + d.left_edge + "\n";
    out += "      right: " + d.right_edge + "\n";
    if (d.properties.empty()) {
      out += "      triage: behavioral-only\n";
    } else {
      out += "      triage: " + join(d.properties, " ") + "\n";
    }
  }
  out += "findings: " + std::to_string(findings.size()) + "\n";
  for (const Finding& f : findings) {
    out += "  " + f.property_id;
    if (!f.attack_id.empty()) out += " [" + f.attack_id + "]";
    out += " " + std::string(to_string(f.cls));
    if (f.cls == Finding::Class::kDivergent) {
      out += ": " + f.violates + " (" + (f.violates == "left" ? left_name : right_name) +
             ") violates";
    } else if (f.cls == Finding::Class::kCommon) {
      out += ": both sides violate";
    }
    out += " (left=" + f.left_status + ", right=" + f.right_status + ")";
    if (!f.note.empty()) out += " — " + f.note;
    out += "\n";
  }
  return out;
}

std::string DiffReport::to_dot(const std::string& name) const {
  // Lockstep pairs as nodes, shared transitions solid; divergence edges red
  // (missing sides dashed toward a stub node); extra states as red nodes.
  std::string out = "digraph " + name + " {\n  rankdir=LR;\n  node [shape=box];\n";

  // Output-mismatch divergences keyed by (pair, input) so the corresponding
  // product edge renders red instead of black.
  std::set<std::pair<std::string, std::string>> mismatched;
  for (const Divergence& d : divergences) {
    if (d.kind == DivergenceKind::kOutputMismatch) {
      mismatched.insert({pair_name(d.left_state, d.right_state), d.input});
    }
  }

  std::set<std::string> nodes;
  for (const ProductEdge& e : edges) {
    nodes.insert(e.from);
    nodes.insert(e.to);
  }
  for (const Divergence& d : divergences) {
    if (d.kind == DivergenceKind::kMissingLeft || d.kind == DivergenceKind::kMissingRight) {
      nodes.insert(pair_name(d.left_state, d.right_state));
    }
  }
  for (const std::string& node : nodes) {
    out += "  \"" + node + "\";\n";
  }
  for (const ProductEdge& e : edges) {
    const bool red = mismatched.count({e.from, e.input}) > 0;
    out += "  \"" + e.from + "\" -> \"" + e.to + "\" [label=\"" + e.input + "\"" +
           (red ? ", color=red, fontcolor=red" : "") + "];\n";
  }
  std::size_t stub = 0;
  for (const Divergence& d : divergences) {
    if (d.kind == DivergenceKind::kMissingLeft || d.kind == DivergenceKind::kMissingRight) {
      const std::string stub_name = "__missing_" + std::to_string(++stub);
      const char* which = d.kind == DivergenceKind::kMissingLeft ? "left" : "right";
      out += "  \"" + stub_name + "\" [label=\"no " + which +
             " transition\", color=red, fontcolor=red, style=dashed];\n";
      out += "  \"" + pair_name(d.left_state, d.right_state) + "\" -> \"" + stub_name +
             "\" [label=\"" + d.input + "\", color=red, fontcolor=red, style=dashed];\n";
    } else if (d.kind == DivergenceKind::kExtraStateLeft ||
               d.kind == DivergenceKind::kExtraStateRight) {
      const char* which = d.kind == DivergenceKind::kExtraStateLeft ? "left" : "right";
      out += "  \"" + std::string(which) + " extra: " + d.input +
             "\" [color=red, fontcolor=red];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace procheck::diff
