// Differential cross-implementation analysis (DESIGN.md §16): given two
// deterministic Mealy FSMs — extracted checking models, in-process learned
// machines, or machines learned from live remote SULs — enumerate their
// behavioral divergences with a minimal distinguishing input sequence each.
//
// The engine walks the product automaton breadth-first from the pair of
// initial states. An input symbol is the canonical rendering of a full
// transition condition set ("attach_accept & mac_valid=1 & ..."), so the two
// machines are compared over the union of their condition alphabets. At each
// reachable pair, the enabled condition sets are compared in sorted order:
//
//   * both enabled, different actions  -> kOutputMismatch
//   * enabled on the left only         -> kMissingRight (right can't follow)
//   * enabled on the right only        -> kMissingLeft
//   * a state never visited by any
//     product pair                     -> kExtraState{Left,Right}
//
// BFS layer order plus sorted expansion makes every distinguishing sequence
// minimal and lexicographically least among minimal ones, so the report is
// canonical: byte-identical across runs and --jobs levels. Divergence triage
// against the property catalog lives in diff/triage.h; report JSON codec in
// diff/report_json.h; side acquisition (profile/log/learn/remote) in
// diff/sources.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fsm/fsm.h"

namespace procheck::diff {

/// One side of a differential comparison: a deterministic FSM plus the
/// display name used in reports ("cls", "log:trace.log", "remote:host:p").
struct Side {
  std::string name;
  fsm::Fsm machine;
};

enum class DivergenceKind : std::uint8_t {
  kOutputMismatch,  // input enabled on both sides with different actions
  kMissingLeft,     // input enabled on the right side only
  kMissingRight,    // input enabled on the left side only
  kExtraStateLeft,  // left state unreachable in lockstep (diverging paths only)
  kExtraStateRight,
};

std::string_view to_string(DivergenceKind k);

struct Divergence {
  DivergenceKind kind = DivergenceKind::kOutputMismatch;
  /// Canonical "a & b & c" rendering of the diverging condition set; for
  /// extra-state divergences, the unpaired state's name.
  std::string input;
  /// Minimal distinguishing input sequence: condition sets driving both
  /// machines from their initial states to the diverging pair, ending with
  /// `input` (for extra states: the shortest path in the owning machine).
  std::vector<std::string> sequence;
  std::string left_state;  // product pair where the divergence fires
  std::string right_state;
  std::string left_edge;  // full transition label, or "-" when absent
  std::string right_edge;
  /// Catalog property ids attached by triage (empty = behavioral-only).
  std::vector<std::string> properties;

  bool operator==(const Divergence&) const = default;
};

/// Triage classification of one candidate catalog property (diff/triage.h).
struct Finding {
  enum class Class : std::uint8_t {
    kDivergent,     // MC verdicts differ: one side violates the property
    kCommon,        // both sides violate (shared deviation, e.g. I6/P1)
    kInconclusive,  // a side's verification tripped a watchdog/budget
  };

  std::string property_id;
  std::string attack_id;  // Table I row ("" when the property carries none)
  Class cls = Class::kDivergent;
  /// "left" / "right" (the violating side) for divergent findings, "both"
  /// for common ones, "" for inconclusive.
  std::string violates;
  std::string left_status;  // verdict tokens: verified/attack/not_applicable/inconclusive
  std::string right_status;
  std::string note;

  bool operator==(const Finding&) const = default;
};

std::string_view to_string(Finding::Class c);

/// One lockstep transition of the product walk ("L | R" pair names): the
/// skeleton the --dot rendering draws, with divergences highlighted on top.
struct ProductEdge {
  std::string from;
  std::string to;
  std::string input;

  bool operator==(const ProductEdge&) const = default;
};

struct DiffReport {
  std::string left_name;
  std::string right_name;
  bool equivalent = false;
  /// The comparison itself could not complete (nondeterministic input
  /// machine, walk cap tripped, side unavailable): divergence/finding lists
  /// are partial at best and `note` names the cause.
  bool inconclusive = false;
  std::string note;
  std::size_t product_pairs = 0;  // product states visited by the walk
  std::vector<ProductEdge> edges;  // lockstep transitions, discovery order
  std::vector<Divergence> divergences;
  std::vector<Finding> findings;

  /// CLI contract: 0 equivalent, 1 divergent, 3 inconclusive.
  int exit_code() const;
  /// Deterministic text rendering (stable across runs and jobs levels).
  std::string render() const;
  /// Divergence-highlighted product graph: lockstep pairs as nodes, shared
  /// transitions as solid edges, divergences in red (missing sides dashed).
  std::string to_dot(const std::string& name = "diff") const;

  bool operator==(const DiffReport&) const = default;
};

struct DiffOptions {
  /// Walk caps: a pathological pair degrades to a structured inconclusive
  /// report instead of an unbounded product exploration.
  std::size_t max_product_pairs = 1 << 16;
  std::size_t max_divergences = 256;
};

/// Canonical " & "-joined rendering of a condition set — the product walk's
/// input-symbol alphabet (exposed for tests and the triage layer).
std::string input_key(const std::set<fsm::Atom>& conditions);

/// Product-automaton BFS over the two machines. Both sides must be
/// deterministic; a nondeterministic side yields an inconclusive report.
DiffReport diff_machines(const Side& left, const Side& right,
                         const DiffOptions& options = {});

}  // namespace procheck::diff
