// Diff-report JSON codec (DESIGN.md §16): the machine-readable `prochecker
// diff --json` output and its strict inverse. Encoding covers exactly the
// deterministic slice of a DiffReport — there are no timing fields — so
// encode(report) is byte-identical across runs and jobs levels, and
// decode(encode(r)) == r. The decoder is strict: unknown kinds, missing
// fields, or wrong value shapes fail the whole document (nullopt), never a
// partial or invented report. The fuzz smoke (tests/fuzz_smoke_test.cc)
// holds both codecs to the decode–encode–decode fixpoint under structure-
// aware mutation.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "diff/diff.h"

namespace procheck::diff {

std::string encode_report(const DiffReport& report);
std::optional<DiffReport> decode_report(std::string_view json);

}  // namespace procheck::diff
