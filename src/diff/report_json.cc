#include "diff/report_json.h"

#include "common/json.h"

namespace procheck::diff {

namespace {

constexpr int kReportVersion = 1;

std::optional<DivergenceKind> kind_from_token(std::string_view t) {
  for (DivergenceKind k :
       {DivergenceKind::kOutputMismatch, DivergenceKind::kMissingLeft,
        DivergenceKind::kMissingRight, DivergenceKind::kExtraStateLeft,
        DivergenceKind::kExtraStateRight}) {
    if (t == to_string(k)) return k;
  }
  return std::nullopt;
}

std::optional<Finding::Class> class_from_token(std::string_view t) {
  for (Finding::Class c : {Finding::Class::kDivergent, Finding::Class::kCommon,
                           Finding::Class::kInconclusive}) {
    if (t == to_string(c)) return c;
  }
  return std::nullopt;
}

/// Strict string-array read: nullopt unless `key` maps to an array whose
/// every element is a string.
std::optional<std::vector<std::string>> string_array(const Json& v, const std::string& key) {
  const Json* arr = v.find(key);
  if (arr == nullptr || !arr->is(Json::Type::kArray)) return std::nullopt;
  std::vector<std::string> out;
  out.reserve(arr->arr.size());
  for (const Json& e : arr->arr) {
    if (!e.is(Json::Type::kString)) return std::nullopt;
    out.push_back(e.s);
  }
  return out;
}

bool has_string(const Json& v, const std::string& key) {
  const Json* f = v.find(key);
  return f != nullptr && f->is(Json::Type::kString);
}

}  // namespace

std::string encode_report(const DiffReport& report) {
  std::string out = "{\"diff\":" + std::to_string(kReportVersion);
  out += ",\"left\":" + json_quote(report.left_name);
  out += ",\"right\":" + json_quote(report.right_name);
  out += std::string(",\"equivalent\":") + (report.equivalent ? "true" : "false");
  out += std::string(",\"inconclusive\":") + (report.inconclusive ? "true" : "false");
  out += ",\"note\":" + json_quote(report.note);
  out += ",\"pairs\":" + std::to_string(report.product_pairs);
  out += ",\"edges\":[";
  for (std::size_t i = 0; i < report.edges.size(); ++i) {
    const ProductEdge& e = report.edges[i];
    if (i > 0) out += ',';
    out += "{\"from\":" + json_quote(e.from) + ",\"to\":" + json_quote(e.to) +
           ",\"input\":" + json_quote(e.input) + "}";
  }
  out += "],\"divergences\":[";
  for (std::size_t i = 0; i < report.divergences.size(); ++i) {
    const Divergence& d = report.divergences[i];
    if (i > 0) out += ',';
    out += "{\"kind\":\"" + std::string(to_string(d.kind)) + "\"";
    out += ",\"input\":" + json_quote(d.input);
    out += ",\"sequence\":" + json_quote_array(d.sequence);
    out += ",\"left_state\":" + json_quote(d.left_state);
    out += ",\"right_state\":" + json_quote(d.right_state);
    out += ",\"left_edge\":" + json_quote(d.left_edge);
    out += ",\"right_edge\":" + json_quote(d.right_edge);
    out += ",\"properties\":" + json_quote_array(d.properties) + "}";
  }
  out += "],\"findings\":[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i > 0) out += ',';
    out += "{\"property\":" + json_quote(f.property_id);
    out += ",\"attack\":" + json_quote(f.attack_id);
    out += ",\"class\":\"" + std::string(to_string(f.cls)) + "\"";
    out += ",\"violates\":" + json_quote(f.violates);
    out += ",\"left_status\":" + json_quote(f.left_status);
    out += ",\"right_status\":" + json_quote(f.right_status);
    out += ",\"note\":" + json_quote(f.note) + "}";
  }
  out += "]}";
  return out;
}

std::optional<DiffReport> decode_report(std::string_view json) {
  std::optional<Json> v = json_parse(json);
  if (!v || !v->is(Json::Type::kObject)) return std::nullopt;
  if (v->get_int("diff") != kReportVersion) return std::nullopt;
  if (!has_string(*v, "left") || !has_string(*v, "right")) return std::nullopt;

  DiffReport report;
  report.left_name = v->get_str("left");
  report.right_name = v->get_str("right");
  report.equivalent = v->get_bool("equivalent");
  report.inconclusive = v->get_bool("inconclusive");
  report.note = v->get_str("note");
  const long long pairs = v->get_int("pairs", -1);
  if (pairs < 0) return std::nullopt;
  report.product_pairs = static_cast<std::size_t>(pairs);

  const Json* edges = v->find("edges");
  if (edges == nullptr || !edges->is(Json::Type::kArray)) return std::nullopt;
  for (const Json& e : edges->arr) {
    if (!e.is(Json::Type::kObject)) return std::nullopt;
    if (!has_string(e, "from") || !has_string(e, "to") || !has_string(e, "input")) {
      return std::nullopt;
    }
    report.edges.push_back({e.get_str("from"), e.get_str("to"), e.get_str("input")});
  }

  const Json* divergences = v->find("divergences");
  if (divergences == nullptr || !divergences->is(Json::Type::kArray)) return std::nullopt;
  for (const Json& e : divergences->arr) {
    if (!e.is(Json::Type::kObject)) return std::nullopt;
    std::optional<DivergenceKind> kind = kind_from_token(e.get_str("kind"));
    if (!kind) return std::nullopt;
    std::optional<std::vector<std::string>> sequence = string_array(e, "sequence");
    std::optional<std::vector<std::string>> properties = string_array(e, "properties");
    if (!sequence || !properties) return std::nullopt;
    if (!has_string(e, "input") || !has_string(e, "left_state") ||
        !has_string(e, "right_state") || !has_string(e, "left_edge") ||
        !has_string(e, "right_edge")) {
      return std::nullopt;
    }
    Divergence d;
    d.kind = *kind;
    d.input = e.get_str("input");
    d.sequence = std::move(*sequence);
    d.left_state = e.get_str("left_state");
    d.right_state = e.get_str("right_state");
    d.left_edge = e.get_str("left_edge");
    d.right_edge = e.get_str("right_edge");
    d.properties = std::move(*properties);
    report.divergences.push_back(std::move(d));
  }

  const Json* findings = v->find("findings");
  if (findings == nullptr || !findings->is(Json::Type::kArray)) return std::nullopt;
  for (const Json& e : findings->arr) {
    if (!e.is(Json::Type::kObject)) return std::nullopt;
    std::optional<Finding::Class> cls = class_from_token(e.get_str("class"));
    if (!cls) return std::nullopt;
    if (!has_string(e, "property") || !has_string(e, "attack") || !has_string(e, "violates") ||
        !has_string(e, "left_status") || !has_string(e, "right_status") ||
        !has_string(e, "note")) {
      return std::nullopt;
    }
    Finding f;
    f.property_id = e.get_str("property");
    f.attack_id = e.get_str("attack");
    f.cls = *cls;
    f.violates = e.get_str("violates");
    f.left_status = e.get_str("left_status");
    f.right_status = e.get_str("right_status");
    f.note = e.get_str("note");
    report.findings.push_back(std::move(f));
  }
  return report;
}

}  // namespace procheck::diff
