#include "nr/nr_stack.h"

#include "common/bytes.h"
#include "common/rng.h"
#include "nas/crypto.h"

namespace procheck::nr {

using nas::Direction;
using nas::MsgType;
using nas::NasMessage;
using nas::NasPdu;
using nas::SecHdr;

std::string_view to_string(FgmmState s) {
  switch (s) {
    case FgmmState::kDeregistered:
      return "FIVEGMM_DEREGISTERED";
    case FgmmState::kRegisteredInitiated:
      return "FIVEGMM_REGISTERED_INITIATED";
    case FgmmState::kRegistered:
      return "FIVEGMM_REGISTERED";
    case FgmmState::kDeregisteredInitiated:
      return "FIVEGMM_DEREGISTERED_INITIATED";
    case FgmmState::kServiceRequestInitiated:
      return "FIVEGMM_SERVICE_REQUEST_INITIATED";
  }
  return "FIVEGMM_DEREGISTERED";
}

std::string conceal_supi(const std::string& supi, std::uint64_t hn_key) {
  Bytes data(supi.begin(), supi.end());
  ByteWriter w;
  w.u64(prf64(hn_key, data));
  return "suci-" + to_hex(w.bytes());
}

// --- NrUe --------------------------------------------------------------------

NrUe::NrUe(std::uint64_t permanent_key, std::string supi, std::uint64_t hn_key,
           instrument::TraceLogger* trace, std::optional<std::uint64_t> sqn_freshness_limit)
    : trace_(trace),
      supi_(std::move(supi)),
      hn_key_(hn_key),
      usim_(permanent_key, nas::UsimConfig{sqn_freshness_limit, false}) {}

void NrUe::trace_enter_recv(std::string_view name) {
  if (trace_) trace_->enter("recv_" + std::string(name));
  trace_globals();
  if (trace_ && current_hdr_) trace_->local("sec_hdr", to_string(*current_hdr_));
}

void NrUe::trace_globals() {
  if (!trace_) return;
  trace_->global("fivegmm_state", to_string(state_));
  trace_->global("sec_ctx_valid", sec_.valid ? 1 : 0);
  trace_->global("guti", guti_);
}

void NrUe::set_state(FgmmState next) {
  state_ = next;
  if (trace_) trace_->global("fivegmm_state", to_string(state_));
}

nas::NasPdu NrUe::send_message(NasMessage msg, bool force_plain) {
  if (trace_) trace_->enter("send_" + std::string(standard_name(msg.type)));
  if (sec_.valid && !force_plain) {
    return protect(msg, sec_, Direction::kUplink, SecHdr::kIntegrityCiphered);
  }
  return encode_plain(msg);
}

std::vector<NasPdu> NrUe::power_on_register() {
  trace_enter_recv("power_on_trigger");
  sec_.clear();
  last_dl_.reset();
  set_state(FgmmState::kRegisteredInitiated);
  NasMessage req(MsgType::kRegistrationRequest);
  // 5G privacy improvement: the permanent identity is concealed (SUCI) or
  // replaced by the 5G-GUTI — never the SUPI in clear.
  req.set_s("identity", guti_ != "none" ? guti_ : conceal_supi(supi_, hn_key_));
  std::vector<NasPdu> out{send_message(req, /*force_plain=*/true)};
  trace_globals();
  return out;
}

std::vector<NasPdu> NrUe::trigger_deregister() {
  trace_enter_recv("deregister_trigger");
  set_state(FgmmState::kDeregisteredInitiated);
  std::vector<NasPdu> out{send_message(NasMessage(MsgType::kDeregistrationRequest))};
  trace_globals();
  return out;
}

std::vector<NasPdu> NrUe::handle_downlink(const NasPdu& pdu) {
  if (trace_) trace_->enter("n1_msg_handler");
  current_hdr_ = pdu.sec_hdr;
  std::vector<NasPdu> out;

  if (pdu.sec_hdr == SecHdr::kPlain) {
    auto msg = nas::decode_payload(pdu.payload);
    if (!msg) {
      current_hdr_.reset();
      return {};
    }
    switch (msg->type) {
      case MsgType::kAuthenticationRequest:
        out = recv_authentication_request(*msg);
        break;
      case MsgType::kIdentityRequest:
        out = recv_identity_request(*msg);
        break;
      case MsgType::kRegistrationReject:
        out = recv_registration_reject(*msg);
        break;
      case MsgType::kDeregistrationAccept:
        out = recv_deregistration_accept(*msg);
        break;
      default:
        // 5G mandates integrity for everything else: plain is discarded.
        break;
    }
    current_hdr_.reset();
    return out;
  }

  if (pdu.sec_hdr == SecHdr::kIntegrity) {
    auto msg = nas::decode_payload(pdu.payload);
    if (msg && msg->type == MsgType::kSecurityModeCommand) {
      out = recv_security_mode_command(pdu);
      current_hdr_.reset();
      return out;
    }
  }

  if (!sec_.valid) {
    ++protected_discards_;
    trace_enter_recv("undecodable_pdu");
    current_hdr_.reset();
    return {};
  }
  nas::UnprotectResult res = unprotect(pdu, sec_, Direction::kDownlink);
  if (res.status != nas::UnprotectResult::Status::kOk) {
    ++protected_discards_;
    trace_enter_recv("undecodable_pdu");
    current_hdr_.reset();
    return {};
  }
  if (last_dl_ && pdu.count <= *last_dl_) {
    trace_enter_recv(standard_name(res.msg.type));
    if (trace_) trace_->local("count_ok", std::uint64_t{0});
    current_hdr_.reset();
    return {};
  }
  last_dl_ = pdu.count;
  switch (res.msg.type) {
    case MsgType::kRegistrationAccept:
      out = recv_registration_accept(res.msg);
      break;
    case MsgType::kConfigurationUpdateCommand:
      out = recv_configuration_update_command(res.msg);
      break;
    case MsgType::kIdentityRequest:
      out = recv_identity_request(res.msg);
      break;
    case MsgType::kDeregistrationAccept:
      out = recv_deregistration_accept(res.msg);
      break;
    default:
      break;
  }
  current_hdr_.reset();
  return out;
}

std::vector<NasPdu> NrUe::recv_authentication_request(const NasMessage& msg) {
  trace_enter_recv("authentication_request");
  nas::Usim::Outcome outcome = usim_.authenticate(msg.get_b("rand"), msg.get_b("autn"));
  if (trace_) {
    trace_->local("mac_valid", outcome.result == nas::Usim::Result::kMacFailure ? 0 : 1);
    trace_->local("sqn_ok", outcome.result == nas::Usim::Result::kOk ? 1 : 0);
  }
  std::vector<NasPdu> out;
  switch (outcome.result) {
    case nas::Usim::Result::kOk: {
      ++auth_runs_;
      pending_kasme_ = outcome.kasme;
      if (sec_.valid) {
        // The 5G P1 effect: identical SQN scheme, identical desync.
        sec_.clear();
        last_dl_.reset();
        if (trace_) trace_->local("key_desync", std::uint64_t{1});
      }
      NasMessage resp(MsgType::kAuthenticationResponse);
      resp.set_u("res", outcome.res);
      out.push_back(send_message(resp, /*force_plain=*/true));
      break;
    }
    case nas::Usim::Result::kMacFailure: {
      if (trace_) trace_->local("failure_cause", "mac_failure");
      NasMessage fail(MsgType::kAuthenticationFailure);
      fail.set_s("cause", "mac_failure");
      out.push_back(send_message(fail, /*force_plain=*/true));
      break;
    }
    case nas::Usim::Result::kSyncFailure: {
      if (trace_) trace_->local("failure_cause", "synch_failure");
      NasMessage fail(MsgType::kAuthenticationFailure);
      fail.set_s("cause", "synch_failure");
      fail.set_b("auts", outcome.auts);
      out.push_back(send_message(fail, /*force_plain=*/true));
      break;
    }
  }
  trace_globals();
  return out;
}

std::vector<NasPdu> NrUe::recv_security_mode_command(const NasPdu& pdu) {
  trace_enter_recv("security_mode_command");
  auto msg = nas::decode_payload(pdu.payload);
  if (!msg || !pending_kasme_) return {};
  auto eia = static_cast<std::uint8_t>(msg->get_u("eia", 1));
  auto eea = static_cast<std::uint8_t>(msg->get_u("eea", 1));
  std::uint64_t k_int = nas::derive_k_nas_int(*pending_kasme_, eia);
  if (nas::nas_mac(k_int, pdu.count, Direction::kDownlink, pdu.payload) != pdu.mac) {
    if (trace_) trace_->local("mac_valid", std::uint64_t{0});
    return {send_message(NasMessage(MsgType::kSecurityModeReject), /*force_plain=*/true)};
  }
  if (trace_) trace_->local("mac_valid", std::uint64_t{1});
  sec_.establish(*pending_kasme_, eia, eea);
  pending_kasme_.reset();
  last_dl_ = pdu.count;
  std::vector<NasPdu> out{send_message(NasMessage(MsgType::kSecurityModeComplete))};
  trace_globals();
  return out;
}

std::vector<NasPdu> NrUe::recv_registration_accept(const NasMessage& msg) {
  trace_enter_recv("registration_accept");
  if (state_ != FgmmState::kRegisteredInitiated) return {};
  if (msg.has("guti")) guti_ = msg.get_s("guti");
  set_state(FgmmState::kRegistered);
  std::vector<NasPdu> out{send_message(NasMessage(MsgType::kRegistrationComplete))};
  trace_globals();
  return out;
}

std::vector<NasPdu> NrUe::recv_registration_reject(const NasMessage& msg) {
  trace_enter_recv("registration_reject");
  if (trace_) trace_->local("cause", msg.get_s("cause", "not_authorized"));
  sec_.clear();
  pending_kasme_.reset();
  last_dl_.reset();
  guti_ = "none";
  set_state(FgmmState::kDeregistered);
  trace_globals();
  return {};
}

std::vector<NasPdu> NrUe::recv_configuration_update_command(const NasMessage& msg) {
  trace_enter_recv("configuration_update_command");
  if (msg.has("guti")) guti_ = msg.get_s("guti");
  std::vector<NasPdu> out{send_message(NasMessage(MsgType::kConfigurationUpdateComplete))};
  trace_globals();
  return out;
}

std::vector<NasPdu> NrUe::recv_identity_request(const NasMessage&) {
  trace_enter_recv("identity_request");
  // 5G identification discloses at most the *concealed* SUCI, never the
  // SUPI — the fix for LTE-style IMSI catching.
  NasMessage resp(MsgType::kIdentityResponse);
  resp.set_s("identity", conceal_supi(supi_, hn_key_));
  if (trace_) trace_->local("identity_concealed", std::uint64_t{1});
  std::vector<NasPdu> out{send_message(resp, /*force_plain=*/!sec_.valid)};
  trace_globals();
  return out;
}

std::vector<NasPdu> NrUe::recv_deregistration_accept(const NasMessage&) {
  trace_enter_recv("deregistration_accept");
  if (state_ != FgmmState::kDeregisteredInitiated) return {};
  sec_.clear();
  pending_kasme_.reset();
  last_dl_.reset();
  set_state(FgmmState::kDeregistered);
  trace_globals();
  return {};
}

// --- Amf ---------------------------------------------------------------------

Amf::Amf(std::uint64_t hn_key, std::uint64_t seed, instrument::TraceLogger* trace)
    : hn_key_(hn_key), trace_(trace), rng_state_(seed) {}

void Amf::provision_subscriber(const std::string& supi, std::uint64_t permanent_key) {
  udm_[supi] = permanent_key;
}

void Amf::debug_set_sqn(const std::string& supi, std::uint64_t seq, std::uint32_t ind) {
  udm_sqn_[supi] = nas::SqnGenerator(seq, ind);
}

void Amf::trace_enter(std::string_view fn) {
  if (trace_) trace_->enter(std::string(fn));
}

nas::NasPdu Amf::send_plain(NasMessage msg) {
  trace_enter("send_" + std::string(standard_name(msg.type)));
  return encode_plain(msg);
}

nas::NasPdu Amf::send_protected(NasMessage msg, SecHdr hdr) {
  trace_enter("send_" + std::string(standard_name(msg.type)));
  return protect(msg, sec_, Direction::kDownlink, hdr);
}

nas::NasPdu Amf::make_authentication_request() {
  const std::uint64_t k = udm_.at(supi_);
  nas::Sqn sqn = udm_sqn_[supi_].next();
  Rng rng(rng_state_++);
  rand_ = rng.next_bytes(16);
  xres_ = nas::f2_res(k, rand_);
  kasme_ = nas::derive_kasme(k, rand_, sqn.value());
  nas::Autn autn;
  autn.sqn_xor_ak = (sqn.value() ^ nas::f5_ak(k, rand_)) & nas::kSqnMask;
  autn.amf = 0x8000;
  autn.mac = nas::f1_mac(k, sqn.value(), rand_, autn.amf);
  NasMessage req(MsgType::kAuthenticationRequest);
  req.set_b("rand", rand_);
  req.set_b("autn", autn.encode());
  return send_plain(std::move(req));
}

std::vector<NasPdu> Amf::handle_uplink(const NasPdu& pdu) {
  NasMessage msg;
  if (pdu.sec_hdr == SecHdr::kPlain) {
    auto decoded = nas::decode_payload(pdu.payload);
    if (!decoded) return {};
    msg = std::move(*decoded);
  } else {
    nas::UnprotectResult res = unprotect(pdu, sec_, Direction::kUplink);
    if (res.status != nas::UnprotectResult::Status::kOk) return {};
    if (last_ul_ && pdu.count <= *last_ul_) return {};
    last_ul_ = pdu.count;
    msg = std::move(res.msg);
  }

  switch (msg.type) {
    case MsgType::kRegistrationRequest: {
      trace_enter("recv_registration_request");
      // Deconceal the SUCI (the home network holds the private key).
      const std::string identity = msg.get_s("identity");
      supi_.clear();
      for (const auto& [supi, key] : udm_) {
        if (conceal_supi(supi, hn_key_) == identity || guti_ == identity) supi_ = supi;
      }
      if (supi_.empty()) {
        NasMessage reject(MsgType::kRegistrationReject);
        reject.set_s("cause", "supi_unknown");
        return {send_plain(std::move(reject))};
      }
      return {make_authentication_request()};
    }
    case MsgType::kAuthenticationResponse: {
      trace_enter("recv_authentication_response");
      if (msg.get_u("res") != xres_) return {};
      sec_.establish(kasme_, 1, 1);
      last_ul_.reset();
      NasMessage smc(MsgType::kSecurityModeCommand);
      smc.set_u("eia", 1);
      smc.set_u("eea", 1);
      return {send_protected(std::move(smc), SecHdr::kIntegrity)};
    }
    case MsgType::kAuthenticationFailure: {
      trace_enter("recv_authentication_failure");
      if (msg.get_s("cause") == "synch_failure") {
        auto auts = nas::Auts::decode(msg.get_b("auts"));
        if (!auts || supi_.empty()) return {};
        const std::uint64_t k = udm_.at(supi_);
        const std::uint64_t sqn_ms =
            (auts->sqn_ms_xor_ak ^ nas::f5star_ak(k, rand_)) & nas::kSqnMask;
        if (nas::f1star_mac(k, sqn_ms, rand_) != auts->mac_s) return {};
        udm_sqn_[supi_] = nas::SqnGenerator(nas::Sqn::from_value(sqn_ms).seq,
                                            nas::Sqn::from_value(sqn_ms).ind);
      }
      return {make_authentication_request()};
    }
    case MsgType::kSecurityModeComplete: {
      trace_enter("recv_security_mode_complete");
      guti_ = "5g-guti-" + std::to_string(++guti_serial_);
      NasMessage accept(MsgType::kRegistrationAccept);
      accept.set_s("guti", guti_);
      return {send_protected(std::move(accept))};
    }
    case MsgType::kRegistrationComplete:
      trace_enter("recv_registration_complete");
      registered_ = true;
      return {};
    case MsgType::kConfigurationUpdateComplete:
      trace_enter("recv_configuration_update_complete");
      if (pending_ && pending_->awaiting == MsgType::kConfigurationUpdateComplete) {
        pending_.reset();
      }
      return {};
    case MsgType::kDeregistrationRequest: {
      trace_enter("recv_deregistration_request");
      registered_ = false;
      nas::NasPdu accept = send_protected(NasMessage(MsgType::kDeregistrationAccept));
      sec_.clear();
      last_ul_.reset();
      return {accept};
    }
    default:
      return {};
  }
}

std::vector<NasPdu> Amf::start_configuration_update() {
  if (!registered_ || !sec_.valid) return {};
  NasMessage cmd(MsgType::kConfigurationUpdateCommand);
  cmd.set_s("guti", "5g-guti-" + std::to_string(guti_serial_ + 100));
  pending_ = Pending{cmd, MsgType::kConfigurationUpdateComplete, kTimerPeriod, 0};
  return {send_protected(std::move(cmd))};
}

std::vector<NasPdu> Amf::tick() {
  if (!pending_) return {};
  if (--pending_->ticks_left > 0) return {};
  if (pending_->retransmissions < kMaxRetransmissions) {
    ++pending_->retransmissions;
    pending_->ticks_left = kTimerPeriod;
    // "The network shall, on the first expiry of the timer T3555,
    // retransmit the configuration_update_command" (TS 24.501).
    return {send_protected(pending_->msg)};
  }
  // "...on the fifth expiry of timer T3555, the procedure shall be aborted".
  pending_.reset();
  ++procedures_aborted_;
  return {};
}

void exchange(NrUe& ue, Amf& amf, std::vector<NasPdu> initial_uplink, int max_steps) {
  std::vector<NasPdu> uplink = std::move(initial_uplink);
  std::vector<NasPdu> downlink;
  for (int step = 0; step < max_steps && (!uplink.empty() || !downlink.empty()); ++step) {
    if (!downlink.empty()) {
      NasPdu pdu = downlink.front();
      downlink.erase(downlink.begin());
      for (NasPdu& out : ue.handle_downlink(pdu)) uplink.push_back(std::move(out));
      continue;
    }
    NasPdu pdu = uplink.front();
    uplink.erase(uplink.begin());
    for (NasPdu& out : amf.handle_uplink(pdu)) downlink.push_back(std::move(out));
  }
}

bool complete_registration(NrUe& ue, Amf& amf) {
  exchange(ue, amf, ue.power_on_register());
  return ue.state() == FgmmState::kRegistered && ue.security().valid;
}

}  // namespace procheck::nr
