// 5G NR NAS (5GMM) stack — the paper's §IX adaptation ("ProChecker for 5G
// implementations... this framework can easily be adapted to evaluate any
// 5G implementations") plus its two "Impact on 5G" claims:
//
//   * The SQN generation/verification scheme of authentication_request "is
//     exactly the same in the 5G specifications, making the 5G rollout
//     directly vulnerable to P1 and P2" — this stack reuses the TS 33.102
//     Annex C USIM verbatim (nas::Usim).
//   * The 5G Configuration Update procedure retransmits on T3555 expiry and
//     aborts on the fifth (TS 24.501), "making it possible to drop five
//     messages [and] deny the procedure entirely" — the AMF implements the
//     same bounded-retry discipline as the LTE MME.
//
// What 5G *fixes* is also modeled: the UE never sends its permanent
// identity (SUPI) in clear — registration and identification use the
// concealed SUCI — so the LTE-style pre-authentication IMSI catching and
// I5-style leaks have no 5G counterpart.
//
// The stack follows the same event-driven, pre-instrumented shape as ue/ and
// mme/: recv_*/send_* handlers, 5GMM state names logged as globals, and
// condition locals — so the unchanged extractor, composer, and checker run
// on its logs (the paper's central portability claim).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "instrument/trace_log.h"
#include "nas/messages.h"
#include "nas/security_context.h"
#include "nas/sqn.h"

namespace procheck::nr {

/// 5GMM registration-management states (TS 24.501 §5.1.3).
enum class FgmmState : std::uint8_t {
  kDeregistered,
  kRegisteredInitiated,
  kRegistered,
  kDeregisteredInitiated,
  kServiceRequestInitiated,
};

std::string_view to_string(FgmmState s);

inline constexpr std::string_view kNrStateNames[] = {
    "FIVEGMM_DEREGISTERED",          "FIVEGMM_REGISTERED_INITIATED",
    "FIVEGMM_REGISTERED",            "FIVEGMM_DEREGISTERED_INITIATED",
    "FIVEGMM_SERVICE_REQUEST_INITIATED",
};

/// SUCI concealment (ECIES in real 5G; a keyed PRF at simulation fidelity —
/// what matters is that the SUPI itself never appears on the air and that
/// only the home network can invert the concealment).
std::string conceal_supi(const std::string& supi, std::uint64_t hn_key);

/// 5G UE (the analyzed subject). Reuses the TS 33.102 Annex C USIM — the
/// SQN handling the paper shows carries P1/P2 into 5G.
class NrUe {
 public:
  NrUe(std::uint64_t permanent_key, std::string supi, std::uint64_t hn_key,
       instrument::TraceLogger* trace = nullptr,
       std::optional<std::uint64_t> sqn_freshness_limit = std::nullopt);

  std::vector<nas::NasPdu> power_on_register();
  std::vector<nas::NasPdu> trigger_deregister();
  std::vector<nas::NasPdu> handle_downlink(const nas::NasPdu& pdu);

  FgmmState state() const { return state_; }
  const nas::SecurityContext& security() const { return sec_; }
  const std::string& guti() const { return guti_; }
  const std::string& supi() const { return supi_; }
  int authentications_completed() const { return auth_runs_; }
  int protected_discards() const { return protected_discards_; }

 private:
  std::vector<nas::NasPdu> recv_authentication_request(const nas::NasMessage& msg);
  std::vector<nas::NasPdu> recv_security_mode_command(const nas::NasPdu& pdu);
  std::vector<nas::NasPdu> recv_registration_accept(const nas::NasMessage& msg);
  std::vector<nas::NasPdu> recv_registration_reject(const nas::NasMessage& msg);
  std::vector<nas::NasPdu> recv_configuration_update_command(const nas::NasMessage& msg);
  std::vector<nas::NasPdu> recv_identity_request(const nas::NasMessage& msg);
  std::vector<nas::NasPdu> recv_deregistration_accept(const nas::NasMessage& msg);

  nas::NasPdu send_message(nas::NasMessage msg, bool force_plain = false);
  void trace_enter_recv(std::string_view name);
  void trace_globals();
  void set_state(FgmmState next);

  instrument::TraceLogger* trace_;
  std::string supi_;
  std::uint64_t hn_key_;
  std::string guti_ = "none";
  nas::Usim usim_;
  nas::SecurityContext sec_;
  std::optional<std::uint64_t> pending_kasme_;
  std::optional<std::uint32_t> last_dl_;
  FgmmState state_ = FgmmState::kDeregistered;
  std::optional<nas::SecHdr> current_hdr_;
  int auth_runs_ = 0;
  int protected_discards_ = 0;
};

/// 5G core (AMF + UDM/AUSF in one): SUCI deconcealment, 5G AKA with the
/// same HSS-side SQN generator, SMC, registration, and the T3555-supervised
/// configuration update with the ×4 retransmission bound.
class Amf {
 public:
  explicit Amf(std::uint64_t hn_key, std::uint64_t seed = 0xA3FULL,
               instrument::TraceLogger* trace = nullptr);

  void provision_subscriber(const std::string& supi, std::uint64_t permanent_key);

  std::vector<nas::NasPdu> handle_uplink(const nas::NasPdu& pdu);
  std::vector<nas::NasPdu> start_configuration_update();
  /// T3555 tick; retransmits, aborts on the 5th expiry.
  std::vector<nas::NasPdu> tick();

  const std::string& assigned_guti() const { return guti_; }
  bool has_pending_procedure() const { return pending_.has_value(); }
  int procedures_aborted() const { return procedures_aborted_; }
  /// HSS hook mirroring mme::MmeNas::debug_set_sqn.
  void debug_set_sqn(const std::string& supi, std::uint64_t seq, std::uint32_t ind = 0);

  static constexpr int kTimerPeriod = 3;       // T3555, in ticks
  static constexpr int kMaxRetransmissions = 4;

 private:
  nas::NasPdu make_authentication_request();
  nas::NasPdu send_plain(nas::NasMessage msg);
  nas::NasPdu send_protected(nas::NasMessage msg,
                             nas::SecHdr hdr = nas::SecHdr::kIntegrityCiphered);
  void trace_enter(std::string_view fn);

  std::uint64_t hn_key_;
  instrument::TraceLogger* trace_;
  std::map<std::string, std::uint64_t> udm_;          // SUPI -> permanent key
  std::map<std::string, nas::SqnGenerator> udm_sqn_;  // SUPI -> SQN state

  std::string supi_;  // bound after deconcealment
  std::string guti_ = "none";
  nas::SecurityContext sec_;
  std::optional<std::uint32_t> last_ul_;
  Bytes rand_;
  std::uint64_t xres_ = 0;
  std::uint64_t kasme_ = 0;
  bool registered_ = false;

  struct Pending {
    nas::NasMessage msg;
    nas::MsgType awaiting;
    int ticks_left = kTimerPeriod;
    int retransmissions = 0;
  };
  std::optional<Pending> pending_;
  int procedures_aborted_ = 0;
  std::uint64_t rng_state_;
  int guti_serial_ = 0;
};

/// Single-UE harness: forwards messages between the two stacks until both
/// directions are quiescent (tests/benches/examples driver).
void exchange(NrUe& ue, Amf& amf, std::vector<nas::NasPdu> initial_uplink,
              int max_steps = 200);

/// Drives a complete 5G registration; true when the UE reaches
/// FIVEGMM_REGISTERED with a valid context.
bool complete_registration(NrUe& ue, Amf& amf);

}  // namespace procheck::nr
