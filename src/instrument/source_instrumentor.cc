#include "instrument/source_instrumentor.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"

namespace procheck::instrument {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_keyword(std::string_view tok) {
  static constexpr std::string_view kKeywords[] = {
      "if", "else", "while", "for", "switch", "return", "do", "case", "default",
      "break", "continue", "goto", "sizeof", "typedef", "struct", "class", "enum",
      "union", "namespace", "using", "template", "new", "delete", "throw"};
  return std::find(std::begin(kKeywords), std::end(kKeywords), tok) != std::end(kKeywords);
}

/// Marks positions inside comments, string literals, char literals, and
/// preprocessor lines so the structural scan skips them.
std::vector<bool> build_skip_mask(std::string_view src) {
  std::vector<bool> skip(src.size(), false);
  enum class Mode { kCode, kLineComment, kBlockComment, kString, kChar, kPreproc };
  Mode mode = Mode::kCode;
  bool at_line_start = true;
  for (std::size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (mode) {
      case Mode::kCode:
        if (c == '/' && next == '/') {
          mode = Mode::kLineComment;
          skip[i] = true;
        } else if (c == '/' && next == '*') {
          mode = Mode::kBlockComment;
          skip[i] = true;
        } else if (c == '"') {
          mode = Mode::kString;
          skip[i] = true;
        } else if (c == '\'') {
          mode = Mode::kChar;
          skip[i] = true;
        } else if (c == '#' && at_line_start) {
          mode = Mode::kPreproc;
          skip[i] = true;
        }
        break;
      case Mode::kLineComment:
      case Mode::kPreproc:
        skip[i] = true;
        if (c == '\n' && (i == 0 || src[i - 1] != '\\')) mode = Mode::kCode;
        break;
      case Mode::kBlockComment:
        skip[i] = true;
        if (c == '/' && i > 0 && src[i - 1] == '*') mode = Mode::kCode;
        break;
      case Mode::kString:
        skip[i] = true;
        if (c == '"' && src[i - 1] != '\\') mode = Mode::kCode;
        break;
      case Mode::kChar:
        skip[i] = true;
        if (c == '\'' && src[i - 1] != '\\') mode = Mode::kCode;
        break;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) {
      at_line_start = c == '\n';
    }
    if (c == '\n') at_line_start = true;
  }
  return skip;
}

/// Last identifier token ending at or before `end` (exclusive). Returns
/// empty view if the preceding token is not an identifier.
std::string_view prev_ident(std::string_view src, std::size_t end) {
  std::size_t i = end;
  while (i > 0 && std::isspace(static_cast<unsigned char>(src[i - 1]))) --i;
  std::size_t stop = i;
  while (i > 0 && is_ident_char(src[i - 1])) --i;
  if (i == stop) return {};
  return src.substr(i, stop - i);
}

struct FunctionDef {
  std::string name;
  std::size_t body_open;   // index of '{'
  std::size_t body_close;  // index of matching '}'
};

/// Finds top-level function definitions by locating depth-0 '{' preceded by
/// a ')' whose matching '(' is preceded by a non-keyword identifier.
std::vector<FunctionDef> find_functions(std::string_view src, const std::vector<bool>& skip) {
  std::vector<FunctionDef> out;
  int depth = 0;
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (skip[i]) continue;
    char c = src[i];
    if (c == '}') {
      --depth;
      continue;
    }
    if (c != '{') continue;
    if (depth++ != 0) continue;

    // Walk back over whitespace to the ')'.
    std::size_t j = i;
    while (j > 0 && std::isspace(static_cast<unsigned char>(src[j - 1]))) --j;
    if (j == 0 || src[j - 1] != ')') continue;
    // Match the '(' backwards.
    int paren = 0;
    std::size_t k = j;
    while (k > 0) {
      --k;
      if (skip[k]) continue;
      if (src[k] == ')') ++paren;
      if (src[k] == '(') {
        if (--paren == 0) break;
      }
    }
    if (paren != 0) continue;
    std::string_view name = prev_ident(src, k);
    if (name.empty() || is_keyword(name)) continue;

    // Find the matching close brace.
    int body_depth = 1;
    std::size_t close = i;
    for (std::size_t m = i + 1; m < src.size(); ++m) {
      if (skip[m]) continue;
      if (src[m] == '{') ++body_depth;
      if (src[m] == '}' && --body_depth == 0) {
        close = m;
        break;
      }
    }
    if (close == i) continue;
    out.push_back({std::string(name), i, close});
    depth = 0;  // we will skip the body below
    i = close;  // resume scanning after this function
  }
  return out;
}

/// Local-variable names declared in the function's first basic block: the
/// statements at body depth 1 before the first control-flow keyword.
std::vector<std::string> first_block_locals(std::string_view body, const std::vector<bool>& skip,
                                            std::size_t begin, std::size_t end) {
  std::vector<std::string> locals;
  std::size_t stmt_start = begin;
  int depth = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (skip[i]) continue;
    char c = body[i];
    if (c == '{' || c == '(') ++depth;
    if (c == '}' || c == ')') --depth;
    if (c != ';' || depth != 0) continue;

    std::string_view stmt = trim(body.substr(stmt_start, i - stmt_start));
    stmt_start = i + 1;
    if (stmt.empty()) continue;

    // Stop harvesting at the first control-flow construct.
    std::size_t tok_end = 0;
    while (tok_end < stmt.size() && is_ident_char(stmt[tok_end])) ++tok_end;
    std::string_view first_tok = stmt.substr(0, tok_end);
    if (is_keyword(first_tok) && first_tok != "struct" && first_tok != "enum") break;
    if (contains(stmt, "if") && starts_with(stmt, "if")) break;

    // Declaration heuristic: "<type tokens> <name> [= init]" with no '(' on
    // the declarator side.
    std::string_view decl = stmt;
    std::size_t eq = std::string_view::npos;
    int par = 0;
    for (std::size_t p = 0; p < stmt.size(); ++p) {
      if (stmt[p] == '(') ++par;
      if (stmt[p] == ')') --par;
      if (stmt[p] == '=' && par == 0 && (p + 1 >= stmt.size() || stmt[p + 1] != '=') &&
          (p == 0 || (stmt[p - 1] != '!' && stmt[p - 1] != '<' && stmt[p - 1] != '>'))) {
        eq = p;
        break;
      }
    }
    if (eq != std::string_view::npos) decl = trim(stmt.substr(0, eq));
    if (contains(decl, "(") || contains(decl, ")")) break;  // call/assignment-expr: not a decl

    std::string_view name = prev_ident(decl, decl.size());
    if (name.empty() || is_keyword(name)) break;
    // Must have at least one type token before the name.
    std::string_view before = trim(decl.substr(0, decl.size() - name.size()));
    while (!before.empty() && (before.back() == '*' || before.back() == '&')) {
      before = trim(before.substr(0, before.size() - 1));
    }
    if (before.empty()) break;  // plain assignment "x = ..": first block over
    locals.emplace_back(name);
  }
  return locals;
}

std::string probe_enter(const std::string& fn) { return "log_enter(\"" + fn + "\"); "; }
std::string probe_global(const std::string& g) {
  return "log_global(\"" + g + "\", " + g + "); ";
}
std::string probe_local(const std::string& l) { return "log_local(\"" + l + "\", " + l + "); "; }

}  // namespace

std::vector<std::string> harvest_globals(std::string_view header_text) {
  std::vector<std::string> out;
  std::vector<bool> skip = build_skip_mask(header_text);
  int depth = 0;
  std::size_t stmt_start = 0;
  for (std::size_t i = 0; i < header_text.size(); ++i) {
    if (skip[i]) {
      if (header_text[i] == '\n') stmt_start = i + 1;
      continue;
    }
    char c = header_text[i];
    if (c == '{' || c == '(') ++depth;
    if (c == '}' || c == ')') --depth;
    if (c == '}' && depth == 0) stmt_start = i + 1;  // end of type definition
    if (c != ';' || depth != 0) continue;

    std::string_view stmt = trim(header_text.substr(stmt_start, i - stmt_start));
    stmt_start = i + 1;
    if (stmt.empty() || contains(stmt, "(")) continue;  // function decls
    std::size_t eq = stmt.find('=');
    std::string_view decl = eq == std::string_view::npos ? stmt : trim(stmt.substr(0, eq));
    if (starts_with(decl, "typedef") || starts_with(decl, "using") ||
        starts_with(decl, "struct") || starts_with(decl, "class") ||
        starts_with(decl, "enum") || starts_with(decl, "}")) {
      continue;
    }
    std::string_view name = prev_ident(decl, decl.size());
    if (name.empty() || is_keyword(name)) continue;
    std::string_view before = trim(decl.substr(0, decl.size() - name.size()));
    while (!before.empty() && (before.back() == '*' || before.back() == '&')) {
      before = trim(before.substr(0, before.size() - 1));
    }
    if (before.empty()) continue;  // no type tokens: not a declaration
    out.emplace_back(name);
  }
  return out;
}

InstrumentedSource instrument_source(std::string_view source,
                                     const std::vector<std::string>& globals) {
  InstrumentedSource result;
  std::vector<bool> skip = build_skip_mask(source);
  std::vector<FunctionDef> functions = find_functions(source, skip);

  struct Insertion {
    std::size_t pos;
    std::string text;
  };
  std::vector<Insertion> insertions;

  for (const FunctionDef& fn : functions) {
    ++result.stats.functions_instrumented;
    std::vector<std::string> locals =
        first_block_locals(source, skip, fn.body_open + 1, fn.body_close);

    // Entry probe: function entrance + global values.
    std::string entry = "\n  " + probe_enter(fn.name);
    ++result.stats.enter_probes;
    for (const std::string& g : globals) {
      entry += probe_global(g);
      ++result.stats.global_probes;
    }
    insertions.push_back({fn.body_open + 1, entry});

    // Exit probes: locals then globals, before each `return` and before the
    // closing brace.
    auto exit_probe = [&] {
      std::string text;
      for (const std::string& l : locals) {
        text += probe_local(l);
        ++result.stats.local_probes;
      }
      for (const std::string& g : globals) {
        text += probe_global(g);
        ++result.stats.global_probes;
      }
      return text;
    };

    for (std::size_t i = fn.body_open + 1; i < fn.body_close; ++i) {
      if (skip[i]) continue;
      if (source.compare(i, 6, "return") == 0 && (i == 0 || !is_ident_char(source[i - 1])) &&
          (i + 6 >= source.size() || !is_ident_char(source[i + 6]))) {
        insertions.push_back({i, exit_probe()});
      }
    }
    insertions.push_back({fn.body_close, exit_probe() + "\n"});
  }

  std::sort(insertions.begin(), insertions.end(),
            [](const Insertion& a, const Insertion& b) { return a.pos > b.pos; });
  result.text = std::string(source);
  for (const Insertion& ins : insertions) {
    result.text.insert(ins.pos, ins.text);
  }
  return result;
}

}  // namespace procheck::instrument
