// Source-to-source instrumentor (§IV-A step 2 of the paper).
//
// Takes the source text of a protocol layer plus the set of global state
// variables harvested from its headers, and inserts the paper's print
// statements with no knowledge of control flow, call graphs, or program
// dependencies:
//   * at every function entrance: log_enter("<fn>") and the value of every
//     global state variable,
//   * right before every function exit (each `return` and the closing
//     brace): the value of every local declared in the function's first
//     basic block, then every global again.
//
// This mirrors Fig. 3 exactly: instrumenting the example handler sources
// and executing them yields the Fig. 3(d) log. It deliberately uses the two
// C/C++ coding-practice insights the paper leans on: globals are declared in
// header files, and condition locals are declared in the first basic block.
//
// The in-repo LTE stacks (ue/, mme/) are "pre-instrumented" — they call
// TraceLogger directly — because they execute in-process. The source
// instrumentor is the standalone tool a user would run on an external
// codebase; tests validate it on Fig. 3-style sources.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace procheck::instrument {

/// Extracts global variable names from header text. Recognizes namespace- or
/// file-scope object declarations (`int emm_state;`, `extern State s = ..;`)
/// and ignores comments, preprocessor lines, functions, and type definitions.
std::vector<std::string> harvest_globals(std::string_view header_text);

struct InstrumentStats {
  int functions_instrumented = 0;
  int enter_probes = 0;
  int global_probes = 0;
  int local_probes = 0;
};

struct InstrumentedSource {
  std::string text;
  InstrumentStats stats;
};

/// Instruments one translation unit. `globals` is the harvest_globals()
/// output over the layer's headers. Inserted probes call the free functions
/// log_enter/log_global/log_local, which the build wires to a TraceLogger.
InstrumentedSource instrument_source(std::string_view source,
                                     const std::vector<std::string>& globals);

}  // namespace procheck::instrument
