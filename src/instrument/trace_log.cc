#include "instrument/trace_log.h"

#include "common/strings.h"

namespace procheck::instrument {

namespace {
constexpr std::string_view kEnterTag = "[ENTER]";
constexpr std::string_view kGlobalTag = "[GLOBAL]";
constexpr std::string_view kLocalTag = "[LOCAL]";
constexpr std::string_view kTestTag = "[TEST]";
}  // namespace

std::string render(const LogRecord& rec) {
  switch (rec.kind) {
    case LogRecord::Kind::kEnter:
      return std::string(kEnterTag) + " " + rec.name;
    case LogRecord::Kind::kGlobal:
      return std::string(kGlobalTag) + " " + rec.name + " = " + rec.value;
    case LogRecord::Kind::kLocal:
      return std::string(kLocalTag) + " " + rec.name + " = " + rec.value;
    case LogRecord::Kind::kTestCase:
      return std::string(kTestTag) + " " + rec.name;
  }
  return {};
}

std::vector<LogRecord> parse_log(std::string_view text, ParseStats* stats) {
  ParseStats accounting;
  std::vector<LogRecord> out;
  for (const std::string& raw : split_lines(text)) {
    ++accounting.lines;
    std::string_view line = trim(raw);
    LogRecord rec;
    std::string_view rest;
    if (starts_with(line, kEnterTag) || starts_with(line, kTestTag)) {
      const bool is_enter = starts_with(line, kEnterTag);
      rec.kind = is_enter ? LogRecord::Kind::kEnter : LogRecord::Kind::kTestCase;
      rest = trim(line.substr(is_enter ? kEnterTag.size() : kTestTag.size()));
      if (rest.empty()) {
        // The tag survived but the name was cut off mid-line.
        ++accounting.truncated;
        continue;
      }
      rec.name = std::string(rest);
      out.push_back(std::move(rec));
      ++accounting.records;
      continue;
    }
    bool global = starts_with(line, kGlobalTag);
    bool local = starts_with(line, kLocalTag);
    if (!global && !local) {
      ++accounting.skipped;  // tolerate interleaved output
      continue;
    }
    rec.kind = global ? LogRecord::Kind::kGlobal : LogRecord::Kind::kLocal;
    rest = trim(line.substr(global ? kGlobalTag.size() : kLocalTag.size()));
    std::size_t eq = rest.find('=');
    if (eq == std::string_view::npos) {
      ++accounting.truncated;
      continue;
    }
    rec.name = std::string(trim(rest.substr(0, eq)));
    rec.value = std::string(trim(rest.substr(eq + 1)));
    out.push_back(std::move(rec));
    ++accounting.records;
  }
  if (stats) *stats = accounting;
  return out;
}

void TraceLogger::push(LogRecord rec) {
  if (enabled_) records_.push_back(std::move(rec));
}

void TraceLogger::enter(std::string_view function) {
  push({LogRecord::Kind::kEnter, std::string(function), {}});
}

void TraceLogger::global(std::string_view name, std::string_view value) {
  push({LogRecord::Kind::kGlobal, std::string(name), std::string(value)});
}

void TraceLogger::global(std::string_view name, std::uint64_t value) {
  push({LogRecord::Kind::kGlobal, std::string(name), std::to_string(value)});
}

void TraceLogger::local(std::string_view name, std::string_view value) {
  push({LogRecord::Kind::kLocal, std::string(name), std::string(value)});
}

void TraceLogger::local(std::string_view name, std::uint64_t value) {
  push({LogRecord::Kind::kLocal, std::string(name), std::to_string(value)});
}

void TraceLogger::test_case(std::string_view name) {
  push({LogRecord::Kind::kTestCase, std::string(name), {}});
}

std::string TraceLogger::text() const {
  std::string out;
  for (const LogRecord& rec : records_) {
    out += render(rec);
    out += '\n';
  }
  return out;
}

}  // namespace procheck::instrument
