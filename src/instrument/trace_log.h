// The information-rich execution log of the paper (§IV-A, Fig. 3(d)).
//
// Instrumented implementations emit three record kinds:
//   [ENTER]  <function>          — function entrance (handler signatures)
//   [GLOBAL] <name> = <value>    — global state variable value (entry/exit)
//   [LOCAL]  <name> = <value>    — local variable value before function exit
// plus a [TEST] marker the conformance runner emits between test cases
// (used for coverage accounting; the extractor ignores it).
//
// The log has both a structured form (`LogRecord`) and a canonical text
// form. The model extractor consumes the *text* form to demonstrate that
// the pipeline needs nothing beyond the log the paper describes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace procheck::instrument {

struct LogRecord {
  enum class Kind : std::uint8_t { kEnter, kGlobal, kLocal, kTestCase };
  Kind kind = Kind::kEnter;
  std::string name;   // function / variable / test-case name
  std::string value;  // variable value (kGlobal/kLocal only)

  bool operator==(const LogRecord&) const = default;
};

/// Renders one record in the canonical text dialect.
std::string render(const LogRecord& rec);

/// Per-parse accounting: how much of the input survived as records and how
/// much was shed — the raw material of the extractor's recovery diagnostics.
struct ParseStats {
  std::size_t lines = 0;      // input lines seen (including blank ones)
  std::size_t records = 0;    // records successfully parsed
  std::size_t skipped = 0;    // untagged lines (interleaved foreign output)
  std::size_t truncated = 0;  // tagged lines cut mid-record (no '='/no name)

  bool operator==(const ParseStats&) const = default;
};

/// Parses a full log text back into records. Unrecognized lines are skipped
/// (real conformance logs interleave unrelated output; the extractor must
/// tolerate that), and tagged-but-truncated lines — a [GLOBAL]/[LOCAL]
/// missing its '=', an [ENTER]/[TEST] missing its name — are dropped rather
/// than turned into corrupt records. `stats`, when non-null, receives the
/// accounting.
std::vector<LogRecord> parse_log(std::string_view text, ParseStats* stats = nullptr);

/// Runtime sink the instrumented stacks write to while the conformance
/// suite executes.
class TraceLogger {
 public:
  void enter(std::string_view function);
  void global(std::string_view name, std::string_view value);
  void global(std::string_view name, std::uint64_t value);
  void local(std::string_view name, std::string_view value);
  void local(std::string_view name, std::uint64_t value);
  void test_case(std::string_view name);

  /// When disabled, all emission is a no-op — this models running the
  /// *uninstrumented* build (the paper's "default execution log" that only
  /// has coverage-level content).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  const std::vector<LogRecord>& records() const { return records_; }
  /// Canonical text form of the whole log.
  std::string text() const;
  void clear() { records_.clear(); }

 private:
  void push(LogRecord rec);

  std::vector<LogRecord> records_;
  bool enabled_ = true;
};

}  // namespace procheck::instrument
