#include "common/table.h"

#include <algorithm>

namespace procheck {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back({Row::Kind::kCells, std::move(row)});
}

void TextTable::add_rule() { rows_.push_back({Row::Kind::kRule, {}}); }

void TextTable::add_section(std::string title) {
  rows_.push_back({Row::Kind::kSection, {std::move(title)}});
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& r : rows_) {
    if (r.kind != Row::Kind::kCells) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }

  std::size_t total = header_.size() > 0 ? (header_.size() - 1) * 3 : 0;
  for (std::size_t w : widths) total += w;

  auto render_cells = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < header_.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      cell.resize(widths[c], ' ');
      if (c > 0) line += " | ";
      line += cell;
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = render_cells(header_);
  out += std::string(total, '-') + "\n";
  for (const Row& r : rows_) {
    switch (r.kind) {
      case Row::Kind::kCells:
        out += render_cells(r.cells);
        break;
      case Row::Kind::kRule:
        out += std::string(total, '-') + "\n";
        break;
      case Row::Kind::kSection: {
        const std::string& title = r.cells[0];
        std::size_t pad = total > title.size() + 2 ? (total - title.size() - 2) / 2 : 0;
        out += std::string(pad, '=') + " " + title + " " +
               std::string(total > pad + title.size() + 2 ? total - pad - title.size() - 2 : 0, '=') +
               "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace procheck
