// Byte-buffer utilities shared by the NAS codec, the crypto simulation, and
// the testbed channels. A `Bytes` value is an owned, contiguous octet string;
// `ByteReader`/`ByteWriter` provide bounds-checked big-endian primitive
// access used by the NAS message codec.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace procheck {

using Bytes = std::vector<std::uint8_t>;

/// Renders `data` as lowercase hex (two digits per octet, no separators).
std::string to_hex(const Bytes& data);

/// Parses lowercase/uppercase hex into octets. Returns std::nullopt on odd
/// length or non-hex characters.
std::optional<Bytes> from_hex(std::string_view hex);

/// Serializes primitives into a growing byte buffer (big-endian network
/// order, as NAS PDUs use).
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Length-prefixed (u16) octet string.
  void blob(const Bytes& b);
  /// Length-prefixed (u16) UTF-8 string.
  void str(std::string_view s);
  void raw(const Bytes& b);

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Bounds-checked reader over an octet string. All accessors return
/// std::nullopt past the end instead of reading out of bounds; `ok()`
/// reports whether any read has failed.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& buf) : buf_(buf) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint16_t> u16();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<Bytes> blob();
  std::optional<std::string> str();

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool at_end() const { return pos_ == buf_.size(); }
  bool ok() const { return ok_; }

 private:
  bool need(std::size_t n);

  const Bytes& buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace procheck
