#include "common/rng.h"

namespace procheck {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t Rng::next_u64() {
  state_ += 0x9E3779B97F4A7C15ULL;
  return splitmix64(state_);
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Modulo bias is irrelevant at simulation fidelity.
  return next_u64() % bound;
}

Bytes Rng::next_bytes(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(next_u64() & 0xFF);
  }
  return out;
}

std::uint64_t prf64(std::uint64_t key, const Bytes& data) {
  std::uint64_t h = splitmix64(key ^ 0xA5A5A5A55A5A5A5AULL);
  for (std::uint8_t b : data) {
    h = splitmix64(h ^ b);
  }
  return splitmix64(h ^ data.size());
}

Bytes prf_stream(std::uint64_t key, std::uint64_t iv, std::size_t n) {
  Bytes out;
  out.reserve(n);
  std::uint64_t block = 0;
  while (out.size() < n) {
    Bytes ctr;
    ByteWriter w;
    w.u64(iv);
    w.u64(block++);
    std::uint64_t ks = prf64(key, w.bytes());
    for (int i = 0; i < 8 && out.size() < n; ++i) {
      out.push_back(static_cast<std::uint8_t>(ks >> (8 * i)));
    }
  }
  return out;
}

}  // namespace procheck
