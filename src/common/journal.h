// Crash-safe JSONL run journal (DESIGN.md §11).
//
// The analysis supervisor appends one record per completed property so an
// interrupted `analyze` run can resume without re-verifying finished work.
// Durability contract:
//   - every commit writes the full journal to `<path>.tmp`, fsyncs it, and
//     atomically renames it over `<path>` — a crash leaves either the old or
//     the new journal, never a mix;
//   - every line is CRC32-tagged (`%08x <payload>`), so a torn tail (the
//     file truncated at an arbitrary byte by a crash or an interrupted
//     copy) is detected on reload: the valid prefix is kept, everything
//     from the first damaged line on is dropped.
//
// The journal is a line transport: payloads are opaque single-line strings
// (the supervisor stores JSON objects; see checker/supervisor.h).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace procheck {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`.
std::uint32_t crc32(std::string_view data);

struct JournalLoad {
  /// Valid record payloads, in file order (CRC prefix stripped).
  std::vector<std::string> payloads;
  std::size_t lines = 0;    // physical lines seen
  std::size_t dropped = 0;  // lines discarded (torn tail / CRC mismatch)
  bool existed = false;     // the file was present and readable
};

/// Reloads a journal, tolerating a torn tail: reading stops at the first
/// line whose CRC tag is missing, malformed, or wrong; that line and
/// everything after it count as `dropped`. A missing file is an empty load.
JournalLoad load_journal(const std::string& path);

/// Advisory single-writer lock for a journal path. Two concurrent
/// `analyze --journal` runs against the same file would interleave commits
/// and corrupt the resume state; the lock makes the second run fail fast
/// with a structured diagnostic instead.
///
/// Implementation: `<path>.lock` created with O_CREAT|O_EXCL holding the
/// owner's pid. A crash leaves the lock file behind, so acquisition steals
/// locks whose recorded pid no longer exists (stale-lock recovery) — only a
/// *live* holder blocks.
class JournalLock {
 public:
  JournalLock() = default;
  ~JournalLock() { release(); }
  JournalLock(JournalLock&& other) noexcept;
  JournalLock& operator=(JournalLock&& other) noexcept;
  JournalLock(const JournalLock&) = delete;
  JournalLock& operator=(const JournalLock&) = delete;

  /// Tries to take the lock for `journal_path`. False when another live
  /// process holds it; `error()` then names the holder.
  bool acquire(const std::string& journal_path);
  /// Removes the lock file (idempotent; the destructor calls it too).
  void release();

  bool held() const { return held_; }
  const std::string& error() const { return error_; }
  /// The lock file path (`<journal>.lock`).
  const std::string& lock_path() const { return lock_path_; }

 private:
  std::string lock_path_;
  std::string error_;
  bool held_ = false;
};

class JournalWriter {
 public:
  /// Binds the writer to `path`. If the file exists, its valid prefix is
  /// adopted (resume case) so subsequent commits extend rather than clobber
  /// the surviving records. Nothing is written until commit().
  explicit JournalWriter(std::string path);

  /// Queues one record payload (must not contain '\n'). Not yet durable.
  void append(std::string_view payload);

  /// Flushes every queued record: writes the complete journal (adopted
  /// prefix + queued records) to `<path>.tmp`, fsyncs, renames over
  /// `<path>`. Returns false on any I/O failure — the caller decides
  /// whether to continue without durability; queued records are retained
  /// for a later retry either way.
  bool commit();

  const std::string& path() const { return path_; }
  /// Records adopted from disk plus records committed by this writer.
  std::size_t records() const { return records_; }
  std::size_t pending() const { return pending_.size(); }

 private:
  std::string path_;
  std::string committed_;  // full text of the durable journal
  std::vector<std::string> pending_;
  std::size_t records_ = 0;
};

}  // namespace procheck
