// Fixed-size thread pool (no work stealing): a mutex-protected FIFO of
// tasks drained by `threads` workers. The catalog analysis fans per-property
// CEGAR runs across it (checker/prochecker.cc) and the chaos matrix fans
// fault regimes (testing/chaos.cc); both write results into pre-sized
// vectors by index, so parallel output is byte-identical to sequential.
//
// `parallel_for` is the dynamic-scheduling convenience built on top: one
// shared atomic index, each worker pulls the next unclaimed item. Long and
// short items interleave without static partitioning imbalance.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace procheck {

/// Cooperative cancellation: one sticky flag set by a supervisor/watchdog
/// and polled in hot loops (the MC search polls it per dequeued state, the
/// supervisor's claim loops poll it per property). Cancellation is a
/// request, not preemption — holders finish their current poll interval.
class CancelToken {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }
  void reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(std::size_t threads);
  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (the pool has no result channel;
  /// callers report through captured state).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait();

  /// Drain-on-cancel: discards every task that has not started yet and
  /// returns how many were dropped. Tasks already running are unaffected —
  /// wait() then returns as soon as they finish. Used by the analysis
  /// supervisor to shed queued per-property work once a run is cancelled.
  std::size_t cancel_pending();

  std::size_t thread_count() const { return workers_.size(); }

  /// max(1, std::thread::hardware_concurrency()) — the CLI's --jobs default.
  static std::size_t default_parallelism();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> tasks_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(0) .. fn(count - 1) across `jobs` workers with dynamic
/// scheduling (one shared index; each worker claims the next item). With
/// jobs <= 1 the calls happen inline on the calling thread — no pool, no
/// synchronization — so sequential callers pay nothing.
void parallel_for(std::size_t jobs, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace procheck
