// Small string helpers used across the log parser, the model extractor, and
// the report renderers. Kept dependency-free; all functions are pure.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace procheck {

/// Splits on a single character. Empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits on newline, dropping a trailing empty line (so "a\nb\n" -> {a,b}).
std::vector<std::string> split_lines(std::string_view s);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
bool contains(std::string_view s, std::string_view needle);

/// Lowercases ASCII.
std::string to_lower(std::string_view s);

/// Replaces every occurrence of `from` with `to`.
std::string replace_all(std::string_view s, std::string_view from, std::string_view to);

}  // namespace procheck
