// Minimal JSON value/parser plus the matching encoder helpers, shared by the
// analysis-journal codec (checker/supervisor.cc) and the diff-report codec
// (diff/report_json.cc). Only the shapes our encoders emit are supported:
// objects, arrays, strings, integers, booleans, null. The parser is strict —
// any malformation fails the whole document — which is exactly what both
// consumers want: a corrupt journal record is treated as absent and
// re-verified, a corrupt diff report is refused.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace procheck {

struct Json {
  enum class Type : std::uint8_t { kNull, kBool, kInt, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  long long i = 0;
  std::string s;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  bool is(Type t) const { return type == t; }
  const Json* find(const std::string& key) const {
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
  long long get_int(const std::string& key, long long dflt = 0) const {
    const Json* v = find(key);
    return v && v->is(Type::kInt) ? v->i : dflt;
  }
  std::string get_str(const std::string& key) const {
    const Json* v = find(key);
    return v && v->is(Type::kString) ? v->s : std::string();
  }
  bool get_bool(const std::string& key, bool dflt = false) const {
    const Json* v = find(key);
    return v && v->is(Type::kBool) ? v->b : dflt;
  }
};

/// Strict whole-document parse; nullopt on any malformation or trailing
/// garbage. Newlines inside the document are accepted as whitespace.
std::optional<Json> json_parse(std::string_view text);

/// JSON string literal (quoted, control bytes escaped as \u00XX).
std::string json_quote(std::string_view s);

/// ["a","b",...] with every element quoted.
std::string json_quote_array(const std::vector<std::string>& items);

}  // namespace procheck
