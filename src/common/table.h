// Plain-text table renderer used by the benchmark harnesses to print the
// paper's tables (Table I, Table II, the RQ2 comparison) in aligned columns.
#pragma once

#include <string>
#include <vector>

namespace procheck {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Inserts a horizontal rule before the next row (section separators).
  void add_rule();
  /// A full-width section banner row (e.g. "New Attacks" in Table I).
  void add_section(std::string title);

  /// Renders with a header rule and column padding.
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    enum class Kind { kCells, kRule, kSection };
    Kind kind;
    std::vector<std::string> cells;  // kCells: one per column; kSection: [0] = title
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace procheck
