#include "common/journal.h"

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <unistd.h>

namespace procheck {

namespace {

std::array<std::uint32_t, 256> build_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

/// Renders one journal line: 8 lowercase hex CRC digits, a space, the
/// payload, a newline.
std::string render_line(std::string_view payload) {
  char tag[10];
  std::snprintf(tag, sizeof(tag), "%08x ", crc32(payload));
  std::string line(tag);
  line += payload;
  line += '\n';
  return line;
}

/// Validates one line (without trailing '\n'); returns the payload or
/// nullopt when the CRC tag is absent, malformed, or wrong.
bool check_line(std::string_view line, std::string* payload) {
  if (line.size() < 9 || line[8] != ' ') return false;
  std::uint32_t tagged = 0;
  for (int i = 0; i < 8; ++i) {
    char c = line[i];
    std::uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      return false;
    }
    tagged = tagged << 4 | digit;
  }
  std::string_view body = line.substr(9);
  if (crc32(body) != tagged) return false;
  payload->assign(body);
  return true;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = build_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

JournalLoad load_journal(const std::string& path) {
  JournalLoad load;
  std::ifstream in(path, std::ios::binary);
  if (!in) return load;
  load.existed = true;
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();

  std::size_t pos = 0;
  bool tail = false;  // first bad line poisons everything after it
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    // A final line with no newline is by definition torn (commit always
    // terminates lines), so it never validates even if its CRC happens to.
    bool terminated = nl != std::string::npos;
    std::string_view line(text.data() + pos, (terminated ? nl : text.size()) - pos);
    pos = terminated ? nl + 1 : text.size();
    ++load.lines;
    std::string payload;
    if (tail || !terminated || !check_line(line, &payload)) {
      tail = true;
      ++load.dropped;
      continue;
    }
    load.payloads.push_back(std::move(payload));
  }
  return load;
}

JournalWriter::JournalWriter(std::string path) : path_(std::move(path)) {
  JournalLoad load = load_journal(path_);
  for (const std::string& payload : load.payloads) {
    committed_ += render_line(payload);
  }
  records_ = load.payloads.size();
}

void JournalWriter::append(std::string_view payload) {
  pending_.emplace_back(payload);
}

bool JournalWriter::commit() {
  if (pending_.empty()) return true;
  std::string next = committed_;
  for (const std::string& payload : pending_) {
    next += render_line(payload);
  }
  const std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  bool ok = std::fwrite(next.data(), 1, next.size(), f) == next.size();
  ok = std::fflush(f) == 0 && ok;
  ok = ::fsync(fileno(f)) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  committed_ = std::move(next);
  records_ += pending_.size();
  pending_.clear();
  return true;
}

}  // namespace procheck
