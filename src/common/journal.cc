#include "common/journal.h"

#include <array>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

namespace procheck {

namespace {

std::array<std::uint32_t, 256> build_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

/// Renders one journal line: 8 lowercase hex CRC digits, a space, the
/// payload, a newline.
std::string render_line(std::string_view payload) {
  char tag[10];
  std::snprintf(tag, sizeof(tag), "%08x ", crc32(payload));
  std::string line(tag);
  line += payload;
  line += '\n';
  return line;
}

/// Validates one line (without trailing '\n'); returns the payload or
/// nullopt when the CRC tag is absent, malformed, or wrong.
bool check_line(std::string_view line, std::string* payload) {
  if (line.size() < 9 || line[8] != ' ') return false;
  std::uint32_t tagged = 0;
  for (int i = 0; i < 8; ++i) {
    char c = line[i];
    std::uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      return false;
    }
    tagged = tagged << 4 | digit;
  }
  std::string_view body = line.substr(9);
  if (crc32(body) != tagged) return false;
  payload->assign(body);
  return true;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = build_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

JournalLoad load_journal(const std::string& path) {
  JournalLoad load;
  std::ifstream in(path, std::ios::binary);
  if (!in) return load;
  load.existed = true;
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();

  std::size_t pos = 0;
  bool tail = false;  // first bad line poisons everything after it
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    // A final line with no newline is by definition torn (commit always
    // terminates lines), so it never validates even if its CRC happens to.
    bool terminated = nl != std::string::npos;
    std::string_view line(text.data() + pos, (terminated ? nl : text.size()) - pos);
    pos = terminated ? nl + 1 : text.size();
    ++load.lines;
    std::string payload;
    if (tail || !terminated || !check_line(line, &payload)) {
      tail = true;
      ++load.dropped;
      continue;
    }
    load.payloads.push_back(std::move(payload));
  }
  return load;
}

JournalLock::JournalLock(JournalLock&& other) noexcept
    : lock_path_(std::move(other.lock_path_)),
      error_(std::move(other.error_)),
      held_(other.held_) {
  other.held_ = false;
}

JournalLock& JournalLock::operator=(JournalLock&& other) noexcept {
  if (this != &other) {
    release();
    lock_path_ = std::move(other.lock_path_);
    error_ = std::move(other.error_);
    held_ = other.held_;
    other.held_ = false;
  }
  return *this;
}

namespace {

/// Reads the pid recorded in a lock file; 0 when unreadable/garbled.
long lock_holder_pid(const std::string& lock_path) {
  std::ifstream in(lock_path);
  long pid = 0;
  if (!(in >> pid) || pid <= 0) return 0;
  return pid;
}

bool try_create_lock(const std::string& lock_path) {
  int fd = ::open(lock_path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return false;
  std::string body = std::to_string(static_cast<long>(::getpid())) + "\n";
  (void)!::write(fd, body.data(), body.size());
  ::close(fd);
  return true;
}

}  // namespace

bool JournalLock::acquire(const std::string& journal_path) {
  release();
  lock_path_ = journal_path + ".lock";
  error_.clear();

  for (int attempt = 0; attempt < 2; ++attempt) {
    if (try_create_lock(lock_path_)) {
      held_ = true;
      return true;
    }
    if (errno != EEXIST) {
      error_ = "cannot create lock file " + lock_path_;
      return false;
    }
    long pid = lock_holder_pid(lock_path_);
    bool holder_alive = pid > 0 && (::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH);
    if (holder_alive) {
      error_ = "journal " + journal_path + " is locked by pid " + std::to_string(pid) +
               " (" + lock_path_ + ")";
      return false;
    }
    // Stale lock from a crashed run: steal it and retry the exclusive
    // create once (racing stealers — at most one create succeeds).
    std::remove(lock_path_.c_str());
  }
  error_ = "journal " + journal_path + " lock contended (" + lock_path_ + ")";
  return false;
}

void JournalLock::release() {
  if (held_) {
    std::remove(lock_path_.c_str());
    held_ = false;
  }
}

JournalWriter::JournalWriter(std::string path) : path_(std::move(path)) {
  JournalLoad load = load_journal(path_);
  for (const std::string& payload : load.payloads) {
    committed_ += render_line(payload);
  }
  records_ = load.payloads.size();
}

void JournalWriter::append(std::string_view payload) {
  pending_.emplace_back(payload);
}

bool JournalWriter::commit() {
  if (pending_.empty()) return true;
  std::string next = committed_;
  for (const std::string& payload : pending_) {
    next += render_line(payload);
  }
  const std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  bool ok = std::fwrite(next.data(), 1, next.size(), f) == next.size();
  ok = std::fflush(f) == 0 && ok;
  ok = ::fsync(fileno(f)) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  committed_ = std::move(next);
  records_ += pending_.size();
  pending_.clear();
  return true;
}

}  // namespace procheck
