#include "common/thread_pool.h"

#include <atomic>

namespace procheck {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

std::size_t ThreadPool::cancel_pending() {
  std::deque<std::function<void()>> dropped;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    dropped.swap(tasks_);
    if (active_ == 0) all_done_.notify_all();
  }
  // Destroy outside the lock: task closures may own arbitrary state.
  return dropped.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

std::size_t ThreadPool::default_parallelism() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void parallel_for(std::size_t jobs, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  if (jobs > count) jobs = count;
  ThreadPool pool(jobs);
  std::atomic<std::size_t> next{0};
  for (std::size_t w = 0; w < jobs; ++w) {
    pool.submit([&] {
      for (std::size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  pool.wait();
}

}  // namespace procheck
