// Deterministic randomness and keyed pseudo-random functions.
//
// The whole framework must be reproducible run-to-run (logs feed the model
// extractor; benches compare against recorded expectations), so all
// randomness flows through an explicitly seeded SplitMix64 generator, and
// the simulated cryptographic primitives (see nas/crypto.h) are built on the
// keyed PRF defined here. DESIGN.md §1 documents why a simulation-grade PRF
// is a faithful substitution for EIA/EEA/MILENAGE in this reproduction.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace procheck {

/// SplitMix64 mixing step: a bijective avalanche permutation on 64-bit words.
std::uint64_t splitmix64(std::uint64_t x);

/// Deterministic pseudo-random generator (SplitMix64 stream).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64();
  /// Uniform in [0, bound) for bound >= 1.
  std::uint64_t next_below(std::uint64_t bound);
  /// Random octet string of length n.
  Bytes next_bytes(std::size_t n);

 private:
  std::uint64_t state_;
};

/// Keyed PRF over an octet string: prf(key, data) -> 64-bit tag. Collision
/// behavior is irrelevant for the logical analysis; only the dependence on
/// (key, data) identity matters.
std::uint64_t prf64(std::uint64_t key, const Bytes& data);

/// Keyed PRF producing `n` output octets (counter mode over prf64); used as
/// the simulated cipher keystream.
Bytes prf_stream(std::uint64_t key, std::uint64_t iv, std::size_t n);

}  // namespace procheck
