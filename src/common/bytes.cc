#include "common/bytes.h"

namespace procheck {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(const Bytes& data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

std::optional<Bytes> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_value(hex[i]);
    int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v >> 8));
  u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v >> 16));
  u16(static_cast<std::uint16_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::blob(const Bytes& b) {
  u16(static_cast<std::uint16_t>(b.size()));
  raw(b);
}

void ByteWriter::str(std::string_view s) {
  u16(static_cast<std::uint16_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::raw(const Bytes& b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

bool ByteReader::need(std::size_t n) {
  if (!ok_ || buf_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::optional<std::uint8_t> ByteReader::u8() {
  if (!need(1)) return std::nullopt;
  return buf_[pos_++];
}

std::optional<std::uint16_t> ByteReader::u16() {
  if (!need(2)) return std::nullopt;
  std::uint16_t v = static_cast<std::uint16_t>(buf_[pos_] << 8 | buf_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::optional<std::uint32_t> ByteReader::u32() {
  auto hi = u16();
  auto lo = u16();
  if (!hi || !lo) return std::nullopt;
  return (static_cast<std::uint32_t>(*hi) << 16) | *lo;
}

std::optional<std::uint64_t> ByteReader::u64() {
  auto hi = u32();
  auto lo = u32();
  if (!hi || !lo) return std::nullopt;
  return (static_cast<std::uint64_t>(*hi) << 32) | *lo;
}

std::optional<Bytes> ByteReader::blob() {
  auto len = u16();
  if (!len || !need(*len)) return std::nullopt;
  Bytes out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
            buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
  pos_ += *len;
  return out;
}

std::optional<std::string> ByteReader::str() {
  auto b = blob();
  if (!b) return std::nullopt;
  return std::string(b->begin(), b->end());
}

}  // namespace procheck
