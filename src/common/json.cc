#include "common/json.h"

#include <cstdio>

namespace procheck {

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<Json> parse() {
    std::optional<Json> v = value();
    skip_ws();
    if (!v || pos_ != text_.size()) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r' ||
            text_[pos_] == '\n')) {
      ++pos_;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == '-' || (c >= '0' && c <= '9')) return number();
    Json v;
    if (literal("true")) {
      v.type = Json::Type::kBool;
      v.b = true;
      return v;
    }
    if (literal("false")) {
      v.type = Json::Type::kBool;
      v.b = false;
      return v;
    }
    if (literal("null")) return v;
    return std::nullopt;
  }

  std::optional<Json> object() {
    if (!eat('{')) return std::nullopt;
    Json v;
    v.type = Json::Type::kObject;
    skip_ws();
    if (eat('}')) return v;
    for (;;) {
      skip_ws();
      std::optional<Json> key = string_value();
      if (!key || !eat(':')) return std::nullopt;
      std::optional<Json> val = value();
      if (!val) return std::nullopt;
      v.obj.emplace(std::move(key->s), std::move(*val));
      if (eat(',')) continue;
      if (eat('}')) return v;
      return std::nullopt;
    }
  }

  std::optional<Json> array() {
    if (!eat('[')) return std::nullopt;
    Json v;
    v.type = Json::Type::kArray;
    skip_ws();
    if (eat(']')) return v;
    for (;;) {
      std::optional<Json> val = value();
      if (!val) return std::nullopt;
      v.arr.push_back(std::move(*val));
      if (eat(',')) continue;
      if (eat(']')) return v;
      return std::nullopt;
    }
  }

  std::optional<Json> string_value() {
    if (!eat('"')) return std::nullopt;
    Json v;
    v.type = Json::Type::kString;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.s += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          v.s += esc;
          break;
        case 'n':
          v.s += '\n';
          break;
        case 't':
          v.s += '\t';
          break;
        case 'r':
          v.s += '\r';
          break;
        case 'b':
          v.s += '\b';
          break;
        case 'f':
          v.s += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            char h = text_[pos_++];
            unsigned d;
            if (h >= '0' && h <= '9') {
              d = static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              d = static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              d = static_cast<unsigned>(h - 'A' + 10);
            } else {
              return std::nullopt;
            }
            code = code << 4 | d;
          }
          // The encoder only emits \u00XX (control bytes); anything wider
          // is foreign input — substitute rather than mis-decode.
          v.s += code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    std::size_t digits = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      ++digits;
    }
    if (digits == 0 || digits > 18) return std::nullopt;
    Json v;
    v.type = Json::Type::kInt;
    v.i = 0;
    bool neg = text_[start] == '-';
    for (std::size_t k = start + (neg ? 1 : 0); k < pos_; ++k) {
      v.i = v.i * 10 + (text_[k] - '0');
    }
    if (neg) v.i = -v.i;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> json_parse(std::string_view text) { return JsonParser(text).parse(); }

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_quote_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ',';
    out += json_quote(items[i]);
  }
  out += ']';
  return out;
}

}  // namespace procheck
