// ProChecker model extractor — Algorithm 1 of the paper plus the ordered
// (substate-aware) variant the evaluation actually relies on.
//
// Input: the information-rich execution log produced by running the
// instrumented stack through the conformance suite, plus the three
// signature tables:
//   * state_signatures     — the standard's state names (implementations use
//                            them verbatim, paper §IV-A step 4 insight 1);
//   * incoming_prefixes    — handler-name prefixes for received messages
//                            (recv_ / parse_ / emm_recv_, insight 2);
//   * outgoing_prefixes    — handler-name prefixes for sent messages.
//
// The log is divided into blocks at incoming-message handler entrances
// (the event-driven-architecture insight). Two extraction modes:
//   * extract_basic() — the literal Algorithm 1: one transition per block,
//     s_in = first state signature in the block, s_out = the last, σ = the
//     incoming message, γ = the outgoing messages (or null_action);
//   * extract() — the ordered variant: consecutive state observations
//     within a block yield *chained* transitions through intermediate
//     (sub)states, condition locals become predicate atoms on the
//     transition they guard, and each outgoing message attaches to the
//     segment in which it was sent. This is the mode that produces the
//     substates and payload-predicate conditions RQ2 highlights.
#pragma once

#include <string>
#include <vector>

#include "fsm/fsm.h"
#include "instrument/trace_log.h"
#include "ue/profile.h"

namespace procheck::extractor {

struct Signatures {
  std::vector<std::string> state_signatures;
  std::vector<std::string> incoming_prefixes;
  std::vector<std::string> outgoing_prefixes;
  /// Names of the globals that hold the machine state (e.g. "emm_state").
  /// A [GLOBAL] record for one of these whose value is *not* a state
  /// signature marks its block as corrupt — the recovery mode's detector
  /// for bit-flipped or truncated log content. Empty disables the check.
  std::vector<std::string> state_variables;
};

/// Signature table for a UE stack profile: the TS 24.301 state names plus
/// the profile's handler-name conventions.
Signatures ue_signatures(const ue::StackProfile& profile);

/// Signature table for the MME layer (recv_/send_ and MME state names).
Signatures mme_signatures();

/// Where malformed log blocks end up instead of the model: the extractor's
/// answer to noisy observations (a mis-extracted transition would silently
/// poison every downstream verdict; a quarantined block is visible).
struct ExtractionDiagnostics {
  struct Quarantined {
    std::size_t block_index = 0;  // position in division order
    std::string incoming;         // the block's incoming message name
    std::string reason;
  };
  std::vector<Quarantined> quarantined;
  std::size_t blocks_total = 0;
  std::size_t blocks_extracted = 0;
};

struct ExtractionOptions {
  /// false reproduces the literal Algorithm 1 (no substate chaining, no
  /// predicate conditions).
  bool chain_substates = true;
  /// Harvest [LOCAL] records into "name=value" condition atoms.
  bool include_condition_locals = true;
  /// Initial FSM state s0; empty = the first state observed in the log.
  std::string initial_state;
  /// Recovery mode: quarantine blocks whose state variable carries an
  /// unrecognized value (see Signatures::state_variables) instead of
  /// extracting transitions from them. Off by default — pristine logs
  /// extract identically either way.
  bool recovery = false;
  /// When non-null, receives the quarantine list and block accounting
  /// (reset at the start of every extraction). Not owned.
  ExtractionDiagnostics* diagnostics = nullptr;
};

fsm::Fsm extract(const std::vector<instrument::LogRecord>& records, const Signatures& sigs,
                 const ExtractionOptions& options = {});
fsm::Fsm extract(const std::string& log_text, const Signatures& sigs,
                 const ExtractionOptions& options = {});

/// The literal Algorithm 1 of the paper.
fsm::Fsm extract_basic(const std::vector<instrument::LogRecord>& records,
                       const Signatures& sigs, const ExtractionOptions& options = {});

}  // namespace procheck::extractor
