#include "extractor/extractor.h"

#include <algorithm>
#include <optional>

#include "common/strings.h"
#include "mme/mme_nas.h"
#include "ue/emm_state.h"

namespace procheck::extractor {

namespace {

/// If `name` starts with one of the prefixes, returns the message name with
/// the prefix stripped.
std::optional<std::string> match_prefix(const std::string& name,
                                        const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (starts_with(name, p)) return name.substr(p.size());
  }
  return std::nullopt;
}

bool is_state_value(const std::string& value, const Signatures& sigs) {
  return std::find(sigs.state_signatures.begin(), sigs.state_signatures.end(), value) !=
         sigs.state_signatures.end();
}

/// One block: everything from an incoming-message handler entrance to the
/// next one (the event-driven-architecture dissection of §IV-A step 3).
struct Block {
  std::string incoming;  // condition message name

  struct Event {
    enum class Kind { kState, kAction, kLocal };
    Kind kind;
    std::string value;  // state name / action name / "name=value" atom
  };
  std::vector<Event> events;
  // Values a state variable held that are not state signatures (corrupt or
  // truncated log content); non-empty quarantines the block in recovery mode.
  std::vector<std::string> corrupt_values;
};

bool is_state_variable(const std::string& name, const Signatures& sigs) {
  return std::find(sigs.state_variables.begin(), sigs.state_variables.end(), name) !=
         sigs.state_variables.end();
}

std::vector<Block> divide_blocks(const std::vector<instrument::LogRecord>& records,
                                 const Signatures& sigs) {
  std::vector<Block> blocks;
  Block* current = nullptr;
  std::string last_state;  // dedup consecutive identical state observations

  for (const instrument::LogRecord& rec : records) {
    switch (rec.kind) {
      case instrument::LogRecord::Kind::kEnter: {
        if (auto incoming = match_prefix(rec.name, sigs.incoming_prefixes)) {
          blocks.emplace_back();
          current = &blocks.back();
          current->incoming = *incoming;
          last_state.clear();
          break;
        }
        if (!current) break;
        if (auto outgoing = match_prefix(rec.name, sigs.outgoing_prefixes)) {
          current->events.push_back({Block::Event::Kind::kAction, *outgoing});
        }
        break;
      }
      case instrument::LogRecord::Kind::kGlobal:
        if (current && is_state_value(rec.value, sigs) && rec.value != last_state) {
          current->events.push_back({Block::Event::Kind::kState, rec.value});
          last_state = rec.value;
        } else if (current && !is_state_value(rec.value, sigs) &&
                   is_state_variable(rec.name, sigs)) {
          current->corrupt_values.push_back(rec.value);
        }
        break;
      case instrument::LogRecord::Kind::kLocal:
        if (current) {
          current->events.push_back({Block::Event::Kind::kLocal, rec.name + "=" + rec.value});
        }
        break;
      case instrument::LogRecord::Kind::kTestCase:
        // Test boundary: the stack is re-created; close the current block.
        current = nullptr;
        last_state.clear();
        break;
    }
  }
  return blocks;
}

void set_initial(fsm::Fsm& out, const ExtractionOptions& options,
                 const std::string& first_observed) {
  if (!options.initial_state.empty()) {
    out.set_initial(options.initial_state);
  } else if (!first_observed.empty()) {
    out.set_initial(first_observed);
  }
}

/// Per-extraction quarantine bookkeeping around the block loop.
class BlockTriage {
 public:
  explicit BlockTriage(const ExtractionOptions& options) : diag_(options.diagnostics) {
    if (diag_) *diag_ = {};
  }

  /// Called once per divided block; returns true when recovery mode
  /// quarantines it (corrupt state-variable content).
  bool quarantines(const Block& block, bool recovery) {
    if (diag_) ++diag_->blocks_total;
    if (recovery && !block.corrupt_values.empty()) {
      note(block, "unrecognized state value '" + block.corrupt_values.front() + "'");
      return true;
    }
    return false;
  }

  void note_no_state(const Block& block) { note(block, "no state observation (truncated log?)"); }
  void note_extracted() {
    if (diag_) ++diag_->blocks_extracted;
  }

 private:
  void note(const Block& block, std::string reason) {
    if (!diag_) return;
    diag_->quarantined.push_back({diag_->blocks_total - 1, block.incoming, std::move(reason)});
  }

  ExtractionDiagnostics* diag_;
};

}  // namespace

Signatures ue_signatures(const ue::StackProfile& profile) {
  Signatures sigs;
  for (std::string_view s : ue::kUeStateNames) sigs.state_signatures.emplace_back(s);
  sigs.incoming_prefixes = {profile.recv_prefix};
  sigs.outgoing_prefixes = {profile.send_prefix};
  sigs.state_variables = {"emm_state"};
  return sigs;
}

Signatures mme_signatures() {
  Signatures sigs;
  for (std::string_view s : mme::kMmeStateNames) sigs.state_signatures.emplace_back(s);
  sigs.incoming_prefixes = {"recv_"};
  sigs.outgoing_prefixes = {"send_"};
  sigs.state_variables = {"mme_state"};
  return sigs;
}

fsm::Fsm extract(const std::vector<instrument::LogRecord>& records, const Signatures& sigs,
                 const ExtractionOptions& options) {
  if (!options.chain_substates) return extract_basic(records, sigs, options);

  fsm::Fsm out;
  std::string first_observed;
  BlockTriage triage(options);

  for (const Block& block : divide_blocks(records, sigs)) {
    if (triage.quarantines(block, options.recovery)) continue;
    // Segment the block's ordered events at state observations. Each
    // segment i (from state s_i to state s_{i+1}) yields one transition;
    // locals and actions attach to the segment they occurred in.
    std::vector<std::string> states;
    for (const Block::Event& e : block.events) {
      if (e.kind == Block::Event::Kind::kState) states.push_back(e.value);
    }
    if (states.empty()) {
      triage.note_no_state(block);
      continue;
    }
    triage.note_extracted();
    if (first_observed.empty()) first_observed = states.front();

    if (states.size() == 1) {
      // No state change: a self-loop carrying every condition and action.
      fsm::Transition t;
      t.from = t.to = states.front();
      t.conditions.insert(block.incoming);
      for (const Block::Event& e : block.events) {
        if (e.kind == Block::Event::Kind::kLocal && options.include_condition_locals) {
          t.conditions.insert(e.value);
        }
        if (e.kind == Block::Event::Kind::kAction) t.actions.insert(e.value);
      }
      if (t.actions.empty()) t.actions.insert(fsm::kNullAction);
      out.add_transition(std::move(t));
      continue;
    }

    // Build one transition per consecutive state pair.
    std::vector<fsm::Transition> chain(states.size() - 1);
    for (std::size_t i = 0; i + 1 < states.size(); ++i) {
      chain[i].from = states[i];
      chain[i].to = states[i + 1];
      chain[i].conditions.insert(block.incoming);
    }
    // Walk events again, attaching locals/actions to the segment that is
    // active when they occur (locals guard the *next* state change; actions
    // belong to the segment they were emitted in; trailing events attach to
    // the final transition).
    std::size_t seg = 0;  // index of the upcoming transition
    bool seen_first_state = false;
    for (const Block::Event& e : block.events) {
      switch (e.kind) {
        case Block::Event::Kind::kState:
          if (!seen_first_state) {
            seen_first_state = true;
          } else if (seg + 1 < chain.size()) {
            ++seg;
          } else {
            seg = chain.size();  // past the last state: trailing events
          }
          break;
        case Block::Event::Kind::kLocal:
          if (options.include_condition_locals) {
            chain[std::min(seg, chain.size() - 1)].conditions.insert(e.value);
          }
          break;
        case Block::Event::Kind::kAction:
          chain[std::min(seg, chain.size() - 1)].actions.insert(e.value);
          break;
      }
    }
    for (fsm::Transition& t : chain) {
      if (t.actions.empty()) t.actions.insert(fsm::kNullAction);
      out.add_transition(std::move(t));
    }
  }

  set_initial(out, options, first_observed);
  return out;
}

fsm::Fsm extract(const std::string& log_text, const Signatures& sigs,
                 const ExtractionOptions& options) {
  return extract(instrument::parse_log(log_text), sigs, options);
}

fsm::Fsm extract_basic(const std::vector<instrument::LogRecord>& records,
                       const Signatures& sigs, const ExtractionOptions& options) {
  fsm::Fsm out;
  std::string first_observed;
  BlockTriage triage(options);

  for (const Block& block : divide_blocks(records, sigs)) {
    if (triage.quarantines(block, options.recovery)) continue;
    fsm::Transition t;
    bool have_state = false;
    for (const Block::Event& e : block.events) {
      switch (e.kind) {
        case Block::Event::Kind::kState:
          if (!have_state) {
            t.from = e.value;  // first state signature in B -> s_in
            have_state = true;
          }
          t.to = e.value;  // last state signature -> s_out
          break;
        case Block::Event::Kind::kAction:
          t.actions.insert(e.value);
          break;
        case Block::Event::Kind::kLocal:
          // The literal Algorithm 1 harvests message signatures only; with
          // include_condition_locals the block's condition locals join σ
          // (this flat-with-predicates form is what the checker consumes).
          if (options.include_condition_locals) t.conditions.insert(e.value);
          break;
      }
    }
    if (!have_state) {
      triage.note_no_state(block);
      continue;
    }
    triage.note_extracted();
    if (first_observed.empty()) first_observed = t.from;
    t.conditions.insert(block.incoming);
    if (t.actions.empty()) t.actions.insert(fsm::kNullAction);  // lines 20-21
    out.add_transition(std::move(t));
  }

  set_initial(out, options, first_observed);
  return out;
}

}  // namespace procheck::extractor
