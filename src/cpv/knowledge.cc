#include "cpv/knowledge.h"

namespace procheck::cpv {

void Knowledge::learn(Term t) {
  base_.insert(std::move(t));
  dirty_ = true;
}

const std::set<Term>& Knowledge::saturated() const {
  saturate();
  return analyzed_;
}

void Knowledge::saturate() const {
  if (!dirty_) return;
  analyzed_ = base_;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Term> to_add;
    for (const Term& t : analyzed_) {
      if (t.is_name()) continue;
      if (t.symbol() == "pair") {
        for (const Term& a : t.args()) {
          if (analyzed_.count(a) == 0) to_add.push_back(a);
        }
      } else if (t.symbol() == "senc" && t.args().size() == 2) {
        // senc(m, k): m recoverable iff k derivable from the current set.
        // (Key derivability uses the in-progress analyzed set; iterating to
        // fixpoint makes this sound.)
        const Term& m = t.args()[0];
        const Term& k = t.args()[1];
        // Synthesis check against the current analyzed snapshot.
        if (analyzed_.count(m) == 0) {
          // Defer the derivability test to a local lambda to avoid
          // recursion into saturate().
          struct Synth {
            const std::set<Term>& set;
            bool can(const Term& t) const {
              if (set.count(t) > 0) return true;
              if (t.is_name()) return false;
              if (t.symbol() == "mac" || t.symbol() == "kdf" || t.symbol() == "senc" ||
                  t.symbol() == "pair") {
                for (const Term& a : t.args()) {
                  if (!can(a)) return false;
                }
                return true;
              }
              return false;
            }
          };
          if (Synth{analyzed_}.can(k)) to_add.push_back(m);
        }
      }
      // mac/kdf: one-way, nothing to decompose.
    }
    for (Term& t : to_add) {
      changed = analyzed_.insert(std::move(t)).second || changed;
    }
  }
  dirty_ = false;
}

bool Knowledge::derivable(const Term& t) const {
  saturate();
  // Synthesis: t is derivable if it is in the analyzed set, or it is a
  // constructor application whose arguments are all derivable.
  if (analyzed_.count(t) > 0) return true;
  if (t.is_name()) return false;
  for (const Term& a : t.args()) {
    if (!derivable(a)) return false;
  }
  return true;
}

}  // namespace procheck::cpv
