#include "cpv/lte_crypto.h"

#include "common/strings.h"
#include "nas/sqn.h"

namespace procheck::cpv {

namespace {

bool has_atom(const mc::CommandMeta& m, const std::string& a) { return m.atoms.count(a) > 0; }

/// Atoms asserting that a cryptographic check *passed* on the consumed
/// message. A fabricated message can only satisfy them if the attacker can
/// derive the corresponding term.
bool claims_integrity(const mc::CommandMeta& m) {
  if (has_atom(m, "mac_valid=1") || has_atom(m, "integrity_ok=1") ||
      has_atom(m, "res_valid=1") || has_atom(m, "sqn_ok=1")) {
    return true;
  }
  // Messages consumed through a protected security header passed NAS-MAC
  // verification even when the handler logged no explicit mac_valid local.
  for (const std::string& a : m.atoms) {
    if (starts_with(a, "sec_hdr=") && a != "sec_hdr=plain_nas") return true;
  }
  return false;
}

}  // namespace

LteCryptoModel::LteCryptoModel(Options options) : options_(options) {
  // Attacker's initial knowledge: the public message vocabulary (PDU
  // skeletons, identities observable in clear, algorithm ids) — but none of
  // the key hierarchy.
  knowledge_.learn_public("nas_pdu_skeleton");
  knowledge_.learn_public("imsi_broadcast_format");
  knowledge_.learn_public("guti_observed");
  knowledge_.learn_public("algorithm_ids");
}

bool LteCryptoModel::stale_sqn_accepted() const {
  // Decide by running the real Annex C implementation: issue a window of
  // fresh vectors, capture an early one, let later ones be consumed, then
  // replay the captured (now stale) SQN. Without the freshness limit L the
  // stale SQN lands in an SQN-array slot whose SEQ is older — accepted.
  nas::UsimConfig cfg;
  if (options_.usim_freshness_limit) cfg.freshness_limit = 1;
  nas::Usim usim(/*permanent_key=*/0x5EC2E7, cfg);
  nas::SqnGenerator gen;

  auto make_challenge = [&](nas::Sqn sqn) {
    Bytes rand{0x01, 0x02, 0x03, 0x04};
    rand.push_back(static_cast<std::uint8_t>(sqn.seq & 0xFF));
    nas::Autn autn;
    autn.sqn_xor_ak = (sqn.value() ^ nas::f5_ak(usim.permanent_key(), rand)) & nas::kSqnMask;
    autn.amf = 0x8000;
    autn.mac = nas::f1_mac(usim.permanent_key(), sqn.value(), rand, autn.amf);
    return std::make_pair(rand, autn.encode());
  };

  // The adversary captures-and-drops challenge #1; challenges #2..#4 are
  // consumed normally (advancing other SQN-array slots); #1 is replayed.
  nas::Sqn captured = gen.next();
  auto captured_challenge = make_challenge(captured);
  for (int i = 0; i < 3; ++i) {
    auto [rand, autn] = make_challenge(gen.next());
    if (usim.authenticate(rand, autn).result != nas::Usim::Result::kOk) return false;
  }
  auto replay = usim.authenticate(captured_challenge.first, captured_challenge.second);
  return replay.result == nas::Usim::Result::kOk;
}

bool LteCryptoModel::equal_sqn_accepted(bool accept_equal_deviation) {
  nas::Usim usim(0x5EC2E7, nas::UsimConfig{std::nullopt, accept_equal_deviation});
  nas::SqnGenerator gen;
  nas::Sqn sqn = gen.next();
  Bytes rand{0xAA, 0xBB};
  nas::Autn autn;
  autn.sqn_xor_ak = (sqn.value() ^ nas::f5_ak(usim.permanent_key(), rand)) & nas::kSqnMask;
  autn.amf = 0x8000;
  autn.mac = nas::f1_mac(usim.permanent_key(), sqn.value(), rand, autn.amf);
  Bytes autn_raw = autn.encode();
  if (usim.authenticate(rand, autn_raw).result != nas::Usim::Result::kOk) return false;
  return usim.authenticate(rand, autn_raw).result == nas::Usim::Result::kOk;
}

StepVerdict LteCryptoModel::judge_delivery(const mc::CommandMeta& step) const {
  if (step.kind != mc::CommandMeta::Kind::kDeliver &&
      step.kind != mc::CommandMeta::Kind::kInternal) {
    // Channel placements and drops are always within Dolev–Yao power.
    return {true, "adversary channel action"};
  }
  if (step.provenance == mc::kProvGenuine || step.kind == mc::CommandMeta::Kind::kInternal) {
    return {true, "genuine message"};
  }

  if (step.provenance == mc::kProvFabricated) {
    if (claims_integrity(step)) {
      // The consuming transition requires a term the attacker cannot build:
      // mac(payload, k) for a key outside the saturated knowledge.
      Term payload = Term::name("payload_" + step.message);
      Term required = Term::mac(payload, Term::name("k_nas_int"));
      if (step.message == "authentication_request") {
        required = Term::mac(payload, Term::name("k_permanent"));
      }
      if (!knowledge_.derivable(required)) {
        return {false,
                "fabricated " + step.message + " requires underivable " + required.to_string()};
      }
    }
    return {true, "fabricated plaintext message is derivable"};
  }

  // Replayed: the recorded message carries a valid MAC by construction.
  if (step.provenance == mc::kProvReplayed) {
    if (has_atom(step, "res_valid=1")) {
      // RES is bound to the fresh RAND of the outstanding challenge; a
      // response recorded under an earlier challenge cannot verify.
      return {false, "replayed RES is bound to a stale RAND challenge"};
    }
    if (step.message == "authentication_request" && has_atom(step, "sqn_ok=1")) {
      if (has_atom(step, "counter_reset=1")) {
        // Equal-SQN acceptance is the implementation's own (logged)
        // behavior; the replayed MAC is valid, so the step is realizable.
        return {true, "implementation accepts equal SQN (I3 deviation)"};
      }
      if (stale_sqn_accepted()) {
        return {true, "stale SQN accepted by TS 33.102 Annex C array (no freshness limit)"};
      }
      return {false, "USIM freshness limit rejects the stale SQN"};
    }
    return {true, "replayed message carries a valid MAC"};
  }

  return {false, "unknown provenance"};
}

EquivalenceVerdict LteCryptoModel::distinguishability(const fsm::Fsm& ue_fsm,
                                                      const std::string& message,
                                                      const std::set<fsm::Atom>& victim_atoms) const {
  EquivalenceVerdict v;
  // A response can only link the victim if the branch it takes depends on
  // victim-specific secret state (its key, its SQN window, its identity,
  // its session). A plain message every UE handles identically (e.g. a
  // fabricated detach_request) makes every UE a "victim" — responses are
  // uniform across devices and nothing is linkable.
  static const std::set<std::string> kVictimSpecific = {
      "sqn_ok=1",  "sqn_ok=0",        "smc_replay=1", "counter_reset=1",
      "mac_valid=1", "identity_match=1", "replay_accepted=1"};
  bool victim_specific = false;
  for (const fsm::Atom& a : victim_atoms) {
    victim_specific = victim_specific || kVictimSpecific.count(a) > 0;
  }
  if (!victim_specific) {
    v.reason = "response does not depend on victim-specific state; all UEs behave alike";
    return v;
  }

  // Observable response of a transition: its actions plus any logged
  // failure-cause discriminator (cause values are visible on the wire).
  auto observable = [](const fsm::Transition& t) {
    std::set<std::string> obs(t.actions.begin(), t.actions.end());
    for (const fsm::Atom& a : t.conditions) {
      if (starts_with(a, "failure_cause=")) obs.insert(a);
    }
    return obs;
  };

  // Victim branch: transitions carrying all victim atoms. Other UEs fail
  // the cryptographic check on the same message (wrong key): mac_valid=0.
  std::set<std::string> victim_obs;
  std::set<std::string> other_obs;
  for (const fsm::Transition& t : ue_fsm.transitions()) {
    if (t.conditions.count(message) == 0) continue;
    bool is_victim = true;
    for (const fsm::Atom& a : victim_atoms) {
      is_victim = is_victim && t.conditions.count(a) > 0;
    }
    if (is_victim) {
      auto obs = observable(t);
      victim_obs.insert(obs.begin(), obs.end());
    }
    if (t.conditions.count("mac_valid=0") > 0) {
      auto obs = observable(t);
      other_obs.insert(obs.begin(), obs.end());
    }
  }
  if (victim_obs.empty()) {
    v.reason = "no victim-branch transition for " + message;
    return v;
  }
  if (other_obs.empty()) other_obs.insert(fsm::kNullAction);
  victim_obs.erase(fsm::kNullAction);
  if (victim_obs.empty()) victim_obs.insert(fsm::kNullAction);

  v.victim_response =
      join(std::vector<std::string>(victim_obs.begin(), victim_obs.end()), ",");
  v.other_response = join(std::vector<std::string>(other_obs.begin(), other_obs.end()), ",");
  v.distinguishable = victim_obs != other_obs;
  v.reason = v.distinguishable ? "victim responds {" + v.victim_response + "} vs others {" +
                                     v.other_response + "}"
                               : "responses are observationally equivalent";
  return v;
}

}  // namespace procheck::cpv
