#include "cpv/term.h"

namespace procheck::cpv {

namespace {
const std::vector<Term> kNoArgs;
}

Term Term::name(std::string n) {
  Term t;
  t.symbol_ = std::move(n);
  return t;
}

Term Term::func(std::string fn, std::vector<Term> args) {
  Term t;
  t.symbol_ = std::move(fn);
  t.args_ = std::make_shared<std::vector<Term>>(std::move(args));
  return t;
}

Term Term::pair(Term a, Term b) { return func("pair", {std::move(a), std::move(b)}); }
Term Term::senc(Term m, Term k) { return func("senc", {std::move(m), std::move(k)}); }
Term Term::mac(Term m, Term k) { return func("mac", {std::move(m), std::move(k)}); }
Term Term::kdf(Term k, Term x) { return func("kdf", {std::move(k), std::move(x)}); }

const std::vector<Term>& Term::args() const { return args_ ? *args_ : kNoArgs; }

std::string Term::to_string() const {
  if (is_name()) return symbol_;
  std::string out = symbol_ + "(";
  for (std::size_t i = 0; i < args().size(); ++i) {
    if (i > 0) out += ", ";
    out += args()[i].to_string();
  }
  return out + ")";
}

bool Term::operator==(const Term& other) const {
  if (symbol_ != other.symbol_) return false;
  if (is_name() != other.is_name()) return false;
  if (is_name()) return true;
  return args() == other.args();
}

bool Term::operator<(const Term& other) const {
  if (symbol_ != other.symbol_) return symbol_ < other.symbol_;
  if (is_name() != other.is_name()) return is_name() < other.is_name();
  return args() < other.args();
}

}  // namespace procheck::cpv
