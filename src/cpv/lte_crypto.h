// LTE-instantiated cryptographic judgments — what the paper queries ProVerif
// for inside the CEGAR loop (§IV-B): given one step of a model-checker
// counterexample, does it conform to the cryptographic assumptions?
//
// Judgments are made at the *consumption* point: a counterexample step where
// a protocol entity consumes a message with non-genuine provenance. The
// fabricated case reduces to Dolev–Yao derivability of the message term the
// consuming transition requires (a fabricated integrity-protected message
// needs mac(payload, k_nas_int), and k_nas_int is not derivable). The
// replayed case reduces to (a) MAC validity — true by construction for
// replays — and (b) for authentication_request, whether a stale SQN passes
// the USIM's TS 33.102 Annex C check, which is decided by *running the real
// USIM implementation* (nas::Usim) on a replay scenario.
#pragma once

#include <optional>
#include <set>
#include <string>

#include "cpv/knowledge.h"
#include "fsm/fsm.h"
#include "mc/model.h"

namespace procheck::cpv {

struct StepVerdict {
  bool feasible = false;
  std::string reason;
};

struct EquivalenceVerdict {
  bool distinguishable = false;
  /// Response of the targeted (victim) UE vs. any other UE, when they differ.
  std::string victim_response;
  std::string other_response;
  std::string reason;
};

class LteCryptoModel {
 public:
  struct Options {
    /// TS 33.102 Annex C.2.2 freshness limit L implemented in the USIM
    /// (the optional mitigation; COTS default is false — the P1/P2 root
    /// cause).
    bool usim_freshness_limit;
    Options() : usim_freshness_limit(false) {}
  };

  explicit LteCryptoModel(Options options = Options());

  /// Judges a counterexample step that consumes a message of non-genuine
  /// provenance (mc::CommandMeta::Kind::kDeliver with provenance replayed or
  /// fabricated). Genuine deliveries and pure adversary channel actions
  /// (drop/inject/replay placements) are trivially feasible.
  StepVerdict judge_delivery(const mc::CommandMeta& step) const;

  /// Whole-trace validation: returns the first infeasible step's label, or
  /// nullopt when every step conforms to the cryptographic assumptions.
  struct TraceVerdict {
    bool feasible = true;
    std::string offending_label;
    std::string reason;
  };

  /// Observational equivalence: can an observer distinguish the victim UE
  /// from other UEs by their responses to a replayed/fabricated `message`?
  /// Decided over the extracted FSM: collect the response action sets of
  /// all transitions conditioned on `message`; the victim follows the
  /// success branch (the counterexample's transition), any other UE follows
  /// a failure branch. Distinguishable iff the action sets differ.
  EquivalenceVerdict distinguishability(const fsm::Fsm& ue_fsm, const std::string& message,
                                        const std::set<fsm::Atom>& victim_atoms) const;

  /// Exposes the Annex C decision (used directly and by tests): does a
  /// USIM accept a *stale, previously-issued* SQN (an out-of-order replay)?
  bool stale_sqn_accepted() const;
  /// Does a USIM accept the *same* SQN twice (equal SEQ)? Only under the
  /// I3 deviation; parameterized because it is implementation behavior.
  static bool equal_sqn_accepted(bool accept_equal_deviation);

  const Knowledge& attacker_knowledge() const { return knowledge_; }

 private:
  Options options_;
  Knowledge knowledge_;  // public vocabulary only — no session keys
};

}  // namespace procheck::cpv
