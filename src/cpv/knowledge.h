// Attacker-knowledge engine: saturation + derivability (the core inference
// ProVerif performs for reachability/secrecy queries).
//
// Analysis rules (decomposition, to fixpoint):
//   pair(a, b) ∈ K            ⇒ a ∈ K, b ∈ K
//   senc(m, k) ∈ K, k ⊢ K     ⇒ m ∈ K
// Synthesis rules (composition, on demand):
//   t ∈ K                                     ⇒ K ⊢ t
//   K ⊢ a1..an for constructor f              ⇒ K ⊢ f(a1..an)
// mac/kdf are one-way: they decompose to nothing, and synthesizing them
// requires deriving every argument (including the key).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "cpv/term.h"

namespace procheck::cpv {

class Knowledge {
 public:
  /// Adds a term to the attacker's knowledge (and re-saturates lazily).
  void learn(Term t);
  /// Public constants (message skeletons, identities broadcast in clear)
  /// are names every attacker can produce.
  void learn_public(const std::string& name) { learn(Term::name(name)); }

  /// K ⊢ t — can the attacker derive `t`?
  bool derivable(const Term& t) const;

  std::size_t size() const { return base_.size(); }
  /// The saturated (analyzed) knowledge set, for diagnostics.
  const std::set<Term>& saturated() const;

 private:
  void saturate() const;

  std::set<Term> base_;
  mutable std::set<Term> analyzed_;
  mutable bool dirty_ = true;
};

}  // namespace procheck::cpv
