// Dolev–Yao term algebra for the cryptographic protocol verifier.
//
// Terms are names (atomic secrets/nonces/constants) or function
// applications (pair, senc, mac, kdf, ...). The Knowledge engine saturates
// an attacker's knowledge set under the standard Dolev–Yao rules and
// answers derivability queries — the judgment ProVerif provides in the
// paper's CEGAR loop ("is this adversary step feasible?").
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace procheck::cpv {

class Term {
 public:
  /// Atomic name ("k_nas_int", "rand_1", "guti").
  static Term name(std::string n);
  /// Function application: pair(a,b), senc(m,k), mac(m,k), kdf(k,x), ...
  static Term func(std::string fn, std::vector<Term> args);

  // Convenience constructors for the vocabulary used by the LTE model.
  static Term pair(Term a, Term b);
  static Term senc(Term m, Term k);  // symmetric encryption
  static Term mac(Term m, Term k);   // message authentication code
  static Term kdf(Term k, Term x);   // key derivation

  bool is_name() const { return args_ == nullptr; }
  const std::string& symbol() const { return symbol_; }  // name or function symbol
  const std::vector<Term>& args() const;

  std::string to_string() const;
  bool operator==(const Term& other) const;
  bool operator<(const Term& other) const;  // structural order (for sets)

 private:
  std::string symbol_;
  std::shared_ptr<std::vector<Term>> args_;  // null for names
};

}  // namespace procheck::cpv
