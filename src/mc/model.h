// Symbolic-model kernel: finite-domain variables + guarded commands.
//
// This is the nuXmv stand-in (DESIGN.md §1): the threat instrumentor
// compiles the composed (UE ⊗ MME ⊗ channels ⊗ Dolev–Yao adversary) system
// into a `Model` — an SMV-like description with enumerated variables and
// guarded commands — and the checker (checker.h) explores it explicitly.
// Commands carry rich metadata (`CommandMeta`) identifying the protocol
// transition or adversary action they encode; properties and the
// cryptographic-feasibility validation are phrased over that metadata.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace procheck::mc {

/// A model state: one value per declared variable, in declaration order.
using State = std::vector<std::int32_t>;

class Model;

/// Boolean expression over a state (guards and state-invariant properties).
class Expr {
 public:
  static Expr constant(bool v);
  /// var == value / var != value (value by index into the domain).
  static Expr eq(int var, std::int32_t value);
  static Expr ne(int var, std::int32_t value);
  static Expr lt(int var, std::int32_t value);
  static Expr gt(int var, std::int32_t value);
  /// var == value where value is named (resolved against the model on eval).
  static Expr land(Expr a, Expr b);
  static Expr lor(Expr a, Expr b);
  static Expr lnot(Expr a);

  bool eval(const State& s) const;
  /// Conjunction of a list (empty list = true).
  static Expr all(std::vector<Expr> exprs);
  static Expr any(std::vector<Expr> exprs);

  /// Appends every variable index this expression reads (with repeats).
  void collect_vars(std::vector<int>& out) const;

 private:
  enum class Kind : std::uint8_t { kConst, kEq, kNe, kLt, kGt, kAnd, kOr, kNot };
  Kind kind_ = Kind::kConst;
  bool const_value_ = true;
  int var_ = -1;
  std::int32_t value_ = 0;
  std::shared_ptr<Expr> lhs_, rhs_;
};

/// One state update: dst := constant, or dst := pre-state[src] when src >= 0
/// (all copies read the pre-state; writes apply in order, later wins).
struct Assign {
  int var = -1;
  std::int32_t value = 0;
  int src = -1;
};

/// Metadata identifying what a command models; the property layer and the
/// CPV feasibility checks dispatch on this, so it is the "semantic label"
/// of each step in a counterexample.
struct CommandMeta {
  enum class Actor : std::uint8_t { kUe, kMme, kAdversary };
  enum class Kind : std::uint8_t {
    kDeliver,   // protocol entity consumes an in-flight message (FSM transition)
    kInternal,  // internal-event FSM transition (trigger, timer)
    kDrop,      // adversary removes the in-flight message
    kInject,    // adversary fabricates a message onto an empty channel
    kReplay,    // adversary re-plays a previously transmitted message
  };
  Actor actor = Actor::kUe;
  Kind kind = Kind::kDeliver;
  std::string message;             // message consumed/injected/dropped
  std::set<std::string> atoms;     // FSM-transition condition atoms
  std::set<std::string> actions;   // FSM-transition action atoms
  std::string from_state;
  std::string to_state;
  int provenance = 0;              // Provenance of the consumed message

  bool has_atom(const std::string& a) const { return atoms.count(a) > 0; }
  bool has_action(const std::string& a) const { return actions.count(a) > 0; }
};

struct Command {
  std::string label;
  Expr guard;
  std::vector<Assign> updates;
  CommandMeta meta;
  /// Position within Model::commands(), assigned by Model::add_command.
  /// Lets per-edge predicates be precompiled into per-command lookup tables
  /// (checker/cegar.cc) instead of re-matching metadata on every edge.
  std::int32_t index = -1;
};

/// Static dependency summary of one command, precomputed by the model:
/// which variables its guard reads and which its updates may write, as
/// bitmasks over variable indices (variables >= 64 conservatively alias the
/// top bit, keeping masks sound for arbitrarily wide models). The checker
/// uses these to skip re-evaluating guards whose read-set is disjoint from
/// the variables an incoming transition actually changed.
struct CommandDeps {
  std::uint64_t guard_reads = 0;
  std::uint64_t writes = 0;
};

/// Bit for variable `var` in a CommandDeps mask.
inline std::uint64_t var_bit(int var) {
  return 1ull << (var < 64 ? var : 63);
}

/// Message provenance tags on channels (who put the in-flight message there).
enum Provenance : std::int32_t {
  kProvNone = 0,       // channel empty
  kProvGenuine = 1,    // sent by the legitimate entity
  kProvReplayed = 2,   // adversary replayed a previously observed message
  kProvFabricated = 3  // adversary fabricated the message
};

class Model {
 public:
  /// Declares a variable with `domain` values; value names (for traces and
  /// message alphabets) are optional but recommended.
  int add_var(const std::string& name, std::int32_t domain, std::int32_t init,
              std::vector<std::string> value_names = {});
  void add_command(Command cmd);

  int var(const std::string& name) const;  // -1 if absent
  std::int32_t domain(int var) const { return domains_[var]; }
  const std::string& var_name(int var) const { return names_[var]; }
  std::string value_name(int var, std::int32_t value) const;
  /// Index of `value_name` within var's domain; -1 if absent.
  std::int32_t value_index(int var, const std::string& value_name) const;

  State initial() const { return init_; }
  const std::vector<Command>& commands() const { return commands_; }
  /// Per-command dependency masks, parallel to commands().
  const std::vector<CommandDeps>& deps() const { return deps_; }
  std::size_t var_count() const { return names_.size(); }

  /// Calls `fn(post_state, command)` for every enabled command in `s`.
  void successors(const State& s,
                  const std::function<void(const State&, const Command&)>& fn) const;

  /// Human-readable diff-style rendering of a state (for counterexamples).
  std::string render_state(const State& s) const;
  /// SMV-like textual dump of the whole model (the paper's "model generator
  /// outputs an SMV description"); useful for debugging and docs.
  std::string to_smv() const;

 private:
  std::vector<std::string> names_;
  std::vector<std::int32_t> domains_;
  std::vector<std::vector<std::string>> value_names_;
  State init_;
  std::vector<Command> commands_;
  std::vector<CommandDeps> deps_;
};

}  // namespace procheck::mc
