// Explicit-state checker over mc::Model: invariants (G p), never-claims on
// edges, and response liveness (G(trigger → F response)) with counterexample
// traces — the verification features of nuXmv the paper's pipeline uses.
//
// The CEGAR loop's "property refinement" is realized by the `allowed` edge
// filter in CheckOptions: adversary actions the cryptographic verifier
// adjudicated infeasible are excluded from the next verification iteration.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "mc/model.h"

namespace procheck::mc {

struct TraceStep {
  std::string label;
  CommandMeta meta;
  State post;
};

struct CounterExample {
  std::vector<TraceStep> steps;  // from the initial state
  /// For liveness violations, index into `steps` where the lasso loop
  /// begins; -1 for finite safety traces.
  int loop_start = -1;

  std::string render(const Model& model) const;
  /// Graphviz rendering of the trace as a message-sequence-like chain
  /// (adversary steps highlighted; the lasso loop marked).
  std::string to_dot(const Model& model) const;
  /// The adversary steps of the trace (what the CPV must validate).
  std::vector<const TraceStep*> adversary_steps() const;
};

struct CheckStats {
  std::size_t states_explored = 0;
  std::size_t edges_explored = 0;
  /// Bytes held by the visited-state structures at the end of the search
  /// (interned-state arena + hash table + guard cache + search bookkeeping).
  /// Growth is monotonic, so this is also the peak.
  std::size_t visited_bytes = 0;
  double seconds = 0.0;
  bool bound_hit = false;     // exploration stopped at max_states
  bool deadline_hit = false;  // exploration stopped at max_seconds
  bool mem_hit = false;       // exploration stopped at max_visited_bytes
  bool cancelled = false;     // exploration stopped by a CancelToken

  /// True when the search stopped early: absence of a counterexample then
  /// means "not found within budget", not "verified".
  bool truncated() const { return bound_hit || deadline_hit || mem_hit || cancelled; }
};

/// Edge predicate over (pre-state, command, post-state).
using EdgePred = std::function<bool(const State&, const Command&, const State&)>;

struct CheckOptions {
  std::size_t max_states = 2'000'000;
  /// Wall-clock budget in seconds; 0 = unbounded. Exploration stops (with
  /// stats->deadline_hit) once exceeded — a guardrail, not a fairness bound.
  double max_seconds = 0.0;
  /// Approximate memory ceiling over the visited-state structures (the
  /// quantity reported as CheckStats::visited_bytes); 0 = unbounded.
  /// Polled cooperatively in the search loop, so the real footprint can
  /// overshoot by one poll interval — a supervisor guardrail against OOM,
  /// not an allocator limit.
  std::size_t max_visited_bytes = 0;
  /// Cooperative cancellation (the supervisor's watchdog): polled once per
  /// dequeued state; a cancelled search stops with stats->cancelled set.
  const CancelToken* cancel = nullptr;
  /// When set, edges for which this returns false are pruned (CEGAR
  /// refinement of the threat model).
  EdgePred allowed;
};

class Checker {
 public:
  explicit Checker(const Model& model) : model_(model) {}

  /// G good — returns a finite trace to a state violating `good`.
  std::optional<CounterExample> check_invariant(const Expr& good, CheckStats* stats,
                                                const CheckOptions& options = {}) const;

  /// "bad edge never fires" — returns a finite trace ending with the edge.
  std::optional<CounterExample> check_edge_never(const EdgePred& bad, CheckStats* stats,
                                                 const CheckOptions& options = {}) const;

  /// G(trigger → F response) over edges — returns a lasso trace on which a
  /// trigger fires and the loop never answers it. Deadlocked states stutter.
  std::optional<CounterExample> check_response(const EdgePred& trigger,
                                               const EdgePred& response, CheckStats* stats,
                                               const CheckOptions& options = {}) const;

 private:
  const Model& model_;
};

}  // namespace procheck::mc
