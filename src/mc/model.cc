#include "mc/model.h"

namespace procheck::mc {

Expr Expr::constant(bool v) {
  Expr e;
  e.kind_ = Kind::kConst;
  e.const_value_ = v;
  return e;
}

Expr Expr::eq(int var, std::int32_t value) {
  Expr e;
  e.kind_ = Kind::kEq;
  e.var_ = var;
  e.value_ = value;
  return e;
}

Expr Expr::ne(int var, std::int32_t value) {
  Expr e;
  e.kind_ = Kind::kNe;
  e.var_ = var;
  e.value_ = value;
  return e;
}

Expr Expr::lt(int var, std::int32_t value) {
  Expr e;
  e.kind_ = Kind::kLt;
  e.var_ = var;
  e.value_ = value;
  return e;
}

Expr Expr::gt(int var, std::int32_t value) {
  Expr e;
  e.kind_ = Kind::kGt;
  e.var_ = var;
  e.value_ = value;
  return e;
}

Expr Expr::land(Expr a, Expr b) {
  Expr e;
  e.kind_ = Kind::kAnd;
  e.lhs_ = std::make_shared<Expr>(std::move(a));
  e.rhs_ = std::make_shared<Expr>(std::move(b));
  return e;
}

Expr Expr::lor(Expr a, Expr b) {
  Expr e;
  e.kind_ = Kind::kOr;
  e.lhs_ = std::make_shared<Expr>(std::move(a));
  e.rhs_ = std::make_shared<Expr>(std::move(b));
  return e;
}

Expr Expr::lnot(Expr a) {
  Expr e;
  e.kind_ = Kind::kNot;
  e.lhs_ = std::make_shared<Expr>(std::move(a));
  return e;
}

Expr Expr::all(std::vector<Expr> exprs) {
  Expr acc = constant(true);
  for (Expr& e : exprs) acc = land(std::move(acc), std::move(e));
  return acc;
}

Expr Expr::any(std::vector<Expr> exprs) {
  Expr acc = constant(false);
  for (Expr& e : exprs) acc = lor(std::move(acc), std::move(e));
  return acc;
}

void Expr::collect_vars(std::vector<int>& out) const {
  switch (kind_) {
    case Kind::kConst:
      return;
    case Kind::kEq:
    case Kind::kNe:
    case Kind::kLt:
    case Kind::kGt:
      out.push_back(var_);
      return;
    case Kind::kAnd:
    case Kind::kOr:
      lhs_->collect_vars(out);
      rhs_->collect_vars(out);
      return;
    case Kind::kNot:
      lhs_->collect_vars(out);
      return;
  }
}

bool Expr::eval(const State& s) const {
  switch (kind_) {
    case Kind::kConst:
      return const_value_;
    case Kind::kEq:
      return s[var_] == value_;
    case Kind::kNe:
      return s[var_] != value_;
    case Kind::kLt:
      return s[var_] < value_;
    case Kind::kGt:
      return s[var_] > value_;
    case Kind::kAnd:
      return lhs_->eval(s) && rhs_->eval(s);
    case Kind::kOr:
      return lhs_->eval(s) || rhs_->eval(s);
    case Kind::kNot:
      return !lhs_->eval(s);
  }
  return false;
}

int Model::add_var(const std::string& name, std::int32_t domain, std::int32_t init,
                   std::vector<std::string> value_names) {
  names_.push_back(name);
  domains_.push_back(domain);
  value_names_.push_back(std::move(value_names));
  init_.push_back(init);
  return static_cast<int>(names_.size()) - 1;
}

void Model::add_command(Command cmd) {
  cmd.index = static_cast<std::int32_t>(commands_.size());
  CommandDeps deps;
  std::vector<int> read;
  cmd.guard.collect_vars(read);
  for (int v : read) deps.guard_reads |= var_bit(v);
  for (const Assign& a : cmd.updates) deps.writes |= var_bit(a.var);
  deps_.push_back(deps);
  commands_.push_back(std::move(cmd));
}

int Model::var(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Model::value_name(int var, std::int32_t value) const {
  const auto& names = value_names_[var];
  if (value >= 0 && static_cast<std::size_t>(value) < names.size()) return names[value];
  return std::to_string(value);
}

std::int32_t Model::value_index(int var, const std::string& value_name) const {
  const auto& names = value_names_[var];
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == value_name) return static_cast<std::int32_t>(i);
  }
  return -1;
}

void Model::successors(const State& s,
                       const std::function<void(const State&, const Command&)>& fn) const {
  for (const Command& cmd : commands_) {
    if (!cmd.guard.eval(s)) continue;
    State next = s;
    for (const Assign& a : cmd.updates) {
      next[a.var] = a.src >= 0 ? s[a.src] : a.value;
    }
    fn(next, cmd);
  }
}

std::string Model::render_state(const State& s) const {
  std::string out;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (i > 0) out += ", ";
    out += names_[i] + "=" + value_name(static_cast<int>(i), s[i]);
  }
  return out;
}

std::string Model::to_smv() const {
  std::string out = "MODULE main\nVAR\n";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    out += "  " + names_[i] + " : {";
    for (std::int32_t v = 0; v < domains_[i]; ++v) {
      if (v > 0) out += ", ";
      out += value_name(static_cast<int>(i), v);
    }
    out += "};\n";
  }
  out += "INIT\n ";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (i > 0) out += " &";
    out += " " + names_[i] + " = " + value_name(static_cast<int>(i), init_[i]);
  }
  out += "\n-- " + std::to_string(commands_.size()) + " guarded commands:\n";
  for (const Command& cmd : commands_) {
    out += "--   " + cmd.label + "\n";
  }
  return out;
}

}  // namespace procheck::mc
