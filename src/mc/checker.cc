#include "mc/checker.h"

#include <chrono>
#include <deque>
#include <unordered_map>

namespace procheck::mc {

namespace {

struct StateHash {
  std::size_t operator()(const State& s) const {
    std::size_t h = 0x9E3779B97F4A7C15ULL;
    for (std::int32_t v : s) {
      h ^= static_cast<std::size_t>(v) + 0x9E3779B9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

std::string CounterExample::render(const Model& model) const {
  std::string out;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (loop_start >= 0 && static_cast<int>(i) == loop_start) {
      out += "  -- loop starts here --\n";
    }
    out += "  " + std::to_string(i + 1) + ". " + steps[i].label + "\n";
    out += "       " + model.render_state(steps[i].post) + "\n";
  }
  if (loop_start >= 0) out += "  -- loop repeats forever --\n";
  return out;
}

std::string CounterExample::to_dot(const Model& model) const {
  std::string out = "digraph counterexample {\n  rankdir=TB;\n  node [shape=box];\n";
  out += "  s0 [label=\"" + model.render_state(model.initial()) + "\", fontsize=9];\n";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    std::string id = "s" + std::to_string(i + 1);
    out += "  " + id + " [label=\"" + model.render_state(steps[i].post) +
           "\", fontsize=9];\n";
    bool adversarial = steps[i].meta.actor == CommandMeta::Actor::kAdversary;
    out += "  s" + std::to_string(i) + " -> " + id + " [label=\"" + steps[i].label +
           "\"" + (adversarial ? ", color=red, fontcolor=red" : "") + "];\n";
  }
  if (loop_start >= 0 && !steps.empty()) {
    out += "  s" + std::to_string(steps.size()) + " -> s" + std::to_string(loop_start) +
           " [style=dashed, label=\"loop\"];\n";
  }
  out += "}\n";
  return out;
}

std::vector<const TraceStep*> CounterExample::adversary_steps() const {
  std::vector<const TraceStep*> out;
  for (const TraceStep& s : steps) {
    if (s.meta.actor == CommandMeta::Actor::kAdversary) out.push_back(&s);
  }
  return out;
}

// --- Safety --------------------------------------------------------------

namespace {

/// Shared BFS core: explores until `stop(pre, cmd, post)` says the offending
/// edge was found (post may equal pre for state-violations encoded as edge
/// checks on arrival).
std::optional<CounterExample> bfs_search(
    const Model& model, const CheckOptions& options, CheckStats* stats,
    const std::function<bool(const State&)>& bad_state,
    const EdgePred* bad_edge) {
  Timer timer;
  struct NodeInfo {
    std::int64_t parent = -1;
    std::string label;
    CommandMeta meta;
  };
  std::unordered_map<State, std::int64_t, StateHash> index;
  std::vector<State> states;
  std::vector<NodeInfo> info;
  std::deque<std::int64_t> queue;

  auto build_trace = [&](std::int64_t node, std::optional<TraceStep> extra) {
    std::vector<TraceStep> rev;
    for (std::int64_t at = node; at >= 0 && info[at].parent >= 0; at = info[at].parent) {
      rev.push_back({info[at].label, info[at].meta, states[at]});
    }
    CounterExample cex;
    cex.steps.assign(rev.rbegin(), rev.rend());
    if (extra) cex.steps.push_back(std::move(*extra));
    return cex;
  };

  State init = model.initial();
  states.push_back(init);
  info.push_back({});
  index.emplace(init, 0);
  queue.push_back(0);

  if (bad_state && bad_state(init)) {
    if (stats) stats->seconds = timer.seconds(), stats->states_explored = 1;
    return CounterExample{};
  }

  std::optional<CounterExample> result;
  while (!queue.empty() && !result) {
    if (options.max_seconds > 0 && timer.seconds() > options.max_seconds) {
      if (stats) stats->deadline_hit = true;
      break;
    }
    std::int64_t at = queue.front();
    queue.pop_front();
    State current = states[at];  // copy: `states` may reallocate in the callback
    model.successors(current, [&](const State& next, const Command& cmd) {
      if (result) return;
      if (options.allowed && !options.allowed(current, cmd, next)) return;
      if (stats) ++stats->edges_explored;
      if (bad_edge && (*bad_edge)(current, cmd, next)) {
        result = build_trace(at, TraceStep{cmd.label, cmd.meta, next});
        return;
      }
      auto [it, inserted] = index.emplace(next, static_cast<std::int64_t>(states.size()));
      if (!inserted) return;
      if (states.size() >= options.max_states) {
        if (stats) stats->bound_hit = true;
        index.erase(it);
        return;
      }
      states.push_back(next);
      info.push_back({at, cmd.label, cmd.meta});
      if (bad_state && bad_state(next)) {
        result = build_trace(static_cast<std::int64_t>(states.size()) - 1, std::nullopt);
        return;
      }
      queue.push_back(static_cast<std::int64_t>(states.size()) - 1);
    });
  }

  if (stats) {
    stats->states_explored = states.size();
    stats->seconds = timer.seconds();
  }
  return result;
}

}  // namespace

std::optional<CounterExample> Checker::check_invariant(const Expr& good, CheckStats* stats,
                                                       const CheckOptions& options) const {
  return bfs_search(
      model_, options, stats, [&](const State& s) { return !good.eval(s); }, nullptr);
}

std::optional<CounterExample> Checker::check_edge_never(const EdgePred& bad, CheckStats* stats,
                                                        const CheckOptions& options) const {
  return bfs_search(model_, options, stats, nullptr, &bad);
}

// --- Liveness --------------------------------------------------------------
//
// Product construction with a one-bit monitor: pending := (pending ∨
// trigger(edge)) ∧ ¬response(edge). A violation of G(trigger → F response)
// is a reachable cycle lying entirely inside pending=true nodes (any
// response inside the cycle would clear the bit). Deadlocked model states
// stutter, so a dead end with a pending obligation is also a violation.

std::optional<CounterExample> Checker::check_response(const EdgePred& trigger,
                                                      const EdgePred& response,
                                                      CheckStats* stats,
                                                      const CheckOptions& options) const {
  Timer timer;
  struct Node {
    State state;
    bool pending;
  };
  struct NodeInfo {
    std::int64_t parent = -1;
    std::string label;
    CommandMeta meta;
  };
  struct ProductHash {
    std::size_t operator()(const std::pair<State, bool>& n) const {
      return StateHash{}(n.first) * 2 + (n.second ? 1 : 0);
    }
  };

  std::unordered_map<std::pair<State, bool>, std::int64_t, ProductHash> index;
  std::vector<Node> nodes;
  std::vector<NodeInfo> info;
  // Edges among pending=true nodes (candidates for the violating cycle).
  std::vector<std::vector<std::pair<std::int64_t, std::size_t>>> pending_edges;
  struct EdgeLabel {
    std::string label;
    CommandMeta meta;
  };
  std::vector<EdgeLabel> edge_labels;

  std::deque<std::int64_t> queue;
  auto add_node = [&](State s, bool pending, std::int64_t parent, std::string label,
                      CommandMeta meta) -> std::int64_t {
    auto key = std::make_pair(s, pending);
    auto [it, inserted] = index.emplace(key, static_cast<std::int64_t>(nodes.size()));
    if (!inserted) return it->second;
    if (nodes.size() >= options.max_states) {
      if (stats) stats->bound_hit = true;
      index.erase(it);
      return -1;
    }
    nodes.push_back({std::move(s), pending});
    info.push_back({parent, std::move(label), std::move(meta)});
    pending_edges.emplace_back();
    queue.push_back(static_cast<std::int64_t>(nodes.size()) - 1);
    return static_cast<std::int64_t>(nodes.size()) - 1;
  };

  add_node(model_.initial(), false, -1, {}, {});

  while (!queue.empty()) {
    if (options.max_seconds > 0 && timer.seconds() > options.max_seconds) {
      if (stats) stats->deadline_hit = true;
      break;
    }
    std::int64_t at = queue.front();
    queue.pop_front();
    const State current = nodes[at].state;
    const bool pending = nodes[at].pending;

    bool any_successor = false;
    model_.successors(current, [&](const State& next, const Command& cmd) {
      if (options.allowed && !options.allowed(current, cmd, next)) return;
      any_successor = true;
      if (stats) ++stats->edges_explored;
      bool trig = trigger(current, cmd, next);
      bool resp = response(current, cmd, next);
      bool next_pending = (pending || trig) && !resp;
      std::int64_t to = add_node(next, next_pending, at, cmd.label, cmd.meta);
      if (to < 0) return;
      if (pending && next_pending) {
        edge_labels.push_back({cmd.label, cmd.meta});
        pending_edges[at].push_back({to, edge_labels.size() - 1});
      }
    });
    if (!any_successor && pending) {
      // Deadlock with an unanswered trigger: stutter self-loop.
      edge_labels.push_back({"(stutter)", {}});
      pending_edges[at].push_back({at, edge_labels.size() - 1});
    }
  }

  // Cycle detection restricted to pending=true nodes (iterative DFS).
  std::vector<std::uint8_t> color(nodes.size(), 0);  // 0 white, 1 grey, 2 black
  for (std::int64_t root = 0; root < static_cast<std::int64_t>(nodes.size()); ++root) {
    if (options.max_seconds > 0 && timer.seconds() > options.max_seconds) {
      if (stats) stats->deadline_hit = true;
      break;
    }
    if (!nodes[root].pending || color[root] != 0) continue;
    struct Frame {
      std::int64_t node;
      std::size_t next_edge = 0;
      std::size_t via_label = 0;  // edge label used to reach this node
    };
    std::vector<Frame> stack{{root, 0, 0}};
    color[root] = 1;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next_edge >= pending_edges[f.node].size()) {
        color[f.node] = 2;
        stack.pop_back();
        continue;
      }
      auto [to, label_idx] = pending_edges[f.node][f.next_edge++];
      if (color[to] == 1) {
        // Found a cycle: stack from `to` upward + the closing edge.
        CounterExample cex;
        // Prefix: initial -> `to` via BFS parents.
        std::vector<TraceStep> rev;
        for (std::int64_t n = to; n >= 0 && info[n].parent >= 0; n = info[n].parent) {
          rev.push_back({info[n].label, info[n].meta, nodes[n].state});
        }
        cex.steps.assign(rev.rbegin(), rev.rend());
        cex.loop_start = static_cast<int>(cex.steps.size());
        // Loop body: the DFS stack segment from `to` to the top, then back.
        std::size_t start = 0;
        for (std::size_t i = 0; i < stack.size(); ++i) {
          if (stack[i].node == to) start = i;
        }
        for (std::size_t i = start + 1; i < stack.size(); ++i) {
          cex.steps.push_back({edge_labels[stack[i].via_label].label,
                               edge_labels[stack[i].via_label].meta, nodes[stack[i].node].state});
        }
        cex.steps.push_back({edge_labels[label_idx].label, edge_labels[label_idx].meta,
                             nodes[to].state});
        if (stats) {
          stats->states_explored = nodes.size();
          stats->seconds = timer.seconds();
        }
        return cex;
      }
      if (color[to] == 0) {
        color[to] = 1;
        stack.push_back({to, 0, label_idx});
      }
    }
  }

  if (stats) {
    stats->states_explored = nodes.size();
    stats->seconds = timer.seconds();
  }
  return std::nullopt;
}

}  // namespace procheck::mc
