#include "mc/checker.h"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace procheck::mc {

namespace {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

constexpr std::uint32_t kNoId = 0xFFFFFFFFu;

std::uint64_t hash_state(const std::int32_t* s, std::size_t n) {
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint32_t>(s[i]);
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
  }
  return h;
}

/// Interned visited-state set: every distinct state lives exactly once in a
/// bump-allocated arena of `stride` int32 slots, identified by a dense
/// uint32 id; membership is an open-addressing table over those ids keyed
/// by a 64-bit hash. Replaces unordered_map<State, ...> buckets holding
/// full vector copies — no per-state heap allocation, no re-hash of whole
/// states on probe (hashes are memoized per id).
///
/// The set also carries the guard cache: for every interned state, one bit
/// per model command recording whether that command's guard holds. Bits for
/// a newly reached state are computed incrementally from its BFS parent —
/// only guards whose precomputed read-set (Model::deps) intersects the
/// variables the incoming transition actually changed are re-evaluated.
class StateSpace {
 public:
  explicit StateSpace(const Model& model)
      : model_(model),
        stride_(model.var_count()),
        blocks_((model.commands().size() + 63) / 64) {
    slots_.assign(256, kNoId);
    mask_ = slots_.size() - 1;
  }

  std::size_t blocks() const { return blocks_; }
  std::size_t size() const { return hashes_.size(); }

  /// Bytes retained by the arena, hash table and guard cache.
  std::size_t bytes() const {
    return arena_.capacity() * sizeof(std::int32_t) +
           hashes_.capacity() * sizeof(std::uint64_t) +
           slots_.capacity() * sizeof(std::uint32_t) +
           guard_bits_.capacity() * sizeof(std::uint64_t);
  }

  /// Interns `s`. Existing state: returns its id with *inserted = false.
  /// New state under `cap`: appends it (computing guard bits from
  /// `parent_bits` + `changed`, or from scratch when parent_bits is null)
  /// and returns the fresh id with *inserted = true. New state at the cap:
  /// returns kNoId without inserting.
  std::uint32_t intern(const State& s, std::size_t cap, bool* inserted,
                       const std::uint64_t* parent_bits, std::uint64_t changed) {
    std::uint64_t h = hash_state(s.data(), stride_);
    std::size_t slot = h & mask_;
    for (;;) {
      std::uint32_t id = slots_[slot];
      if (id == kNoId) break;
      if (hashes_[id] == h &&
          std::memcmp(arena_.data() + std::size_t(id) * stride_, s.data(),
                      stride_ * sizeof(std::int32_t)) == 0) {
        *inserted = false;
        return id;
      }
      slot = (slot + 1) & mask_;
    }
    if (hashes_.size() >= cap) {
      *inserted = false;
      return kNoId;
    }
    std::uint32_t id = static_cast<std::uint32_t>(hashes_.size());
    arena_.insert(arena_.end(), s.begin(), s.end());
    hashes_.push_back(h);
    slots_[slot] = id;
    append_guard_bits(s, parent_bits, changed);
    if (hashes_.size() * 10 >= slots_.size() * 7) grow();
    *inserted = true;
    return id;
  }

  const std::int32_t* state_data(std::uint32_t id) const {
    return arena_.data() + std::size_t(id) * stride_;
  }

  State state(std::uint32_t id) const {
    const std::int32_t* p = state_data(id);
    return State(p, p + stride_);
  }

  void copy_state(std::uint32_t id, State& out) const {
    const std::int32_t* p = state_data(id);
    out.assign(p, p + stride_);
  }

  void copy_guard_bits(std::uint32_t id, std::vector<std::uint64_t>& out) const {
    const std::uint64_t* p = guard_bits_.data() + std::size_t(id) * blocks_;
    out.assign(p, p + blocks_);
  }

 private:
  void append_guard_bits(const State& s, const std::uint64_t* parent_bits,
                         std::uint64_t changed) {
    const std::vector<Command>& commands = model_.commands();
    const std::vector<CommandDeps>& deps = model_.deps();
    std::size_t base = guard_bits_.size();
    guard_bits_.resize(base + blocks_, 0);
    for (std::size_t j = 0; j < commands.size(); ++j) {
      bool enabled;
      if (parent_bits && (deps[j].guard_reads & changed) == 0) {
        enabled = (parent_bits[j >> 6] >> (j & 63)) & 1;
      } else {
        enabled = commands[j].guard.eval(s);
      }
      if (enabled) guard_bits_[base + (j >> 6)] |= 1ull << (j & 63);
    }
  }

  void grow() {
    std::vector<std::uint32_t> fresh(slots_.size() * 2, kNoId);
    std::size_t mask = fresh.size() - 1;
    for (std::uint32_t id = 0; id < hashes_.size(); ++id) {
      std::size_t slot = hashes_[id] & mask;
      while (fresh[slot] != kNoId) slot = (slot + 1) & mask;
      fresh[slot] = id;
    }
    slots_ = std::move(fresh);
    mask_ = mask;
  }

  const Model& model_;
  std::size_t stride_;
  std::size_t blocks_;
  std::vector<std::int32_t> arena_;     // size() * stride_ values
  std::vector<std::uint64_t> hashes_;   // memoized hash per id
  std::vector<std::uint32_t> slots_;    // open addressing: id or kNoId
  std::size_t mask_ = 0;
  std::vector<std::uint64_t> guard_bits_;  // size() * blocks_ words
};

/// Applies `cmd` to `pre` (into `next`, which must already equal `pre`) and
/// returns the mask of variables whose value actually changed.
std::uint64_t apply_command(const Command& cmd, const State& pre, State& next) {
  std::uint64_t changed = 0;
  for (const Assign& a : cmd.updates) {
    next[a.var] = a.src >= 0 ? pre[a.src] : a.value;
  }
  for (const Assign& a : cmd.updates) {
    if (next[a.var] != pre[a.var]) changed |= var_bit(a.var);
  }
  return changed;
}

/// Iterates the set bits of a guard-bit vector: fn(command_index).
template <typename Fn>
void for_enabled(const std::vector<std::uint64_t>& bits, std::size_t n_commands, Fn&& fn) {
  for (std::size_t block = 0; block < bits.size(); ++block) {
    std::uint64_t word = bits[block];
    while (word != 0) {
      std::size_t j = block * 64 + static_cast<std::size_t>(__builtin_ctzll(word));
      word &= word - 1;
      if (j >= n_commands) return;
      fn(j);
    }
  }
}

}  // namespace

std::string CounterExample::render(const Model& model) const {
  std::string out;
  out.reserve(steps.size() * 128 + 64);
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (loop_start >= 0 && static_cast<int>(i) == loop_start) {
      out += "  -- loop starts here --\n";
    }
    out += "  ";
    out += std::to_string(i + 1);
    out += ". ";
    out += steps[i].label;
    out += "\n       ";
    out += model.render_state(steps[i].post);
    out += "\n";
  }
  if (loop_start >= 0) out += "  -- loop repeats forever --\n";
  return out;
}

std::string CounterExample::to_dot(const Model& model) const {
  std::string out;
  out.reserve(steps.size() * 192 + 128);
  out += "digraph counterexample {\n  rankdir=TB;\n  node [shape=box];\n";
  out += "  s0 [label=\"";
  out += model.render_state(model.initial());
  out += "\", fontsize=9];\n";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    out += "  s";
    out += std::to_string(i + 1);
    out += " [label=\"";
    out += model.render_state(steps[i].post);
    out += "\", fontsize=9];\n";
    bool adversarial = steps[i].meta.actor == CommandMeta::Actor::kAdversary;
    out += "  s";
    out += std::to_string(i);
    out += " -> s";
    out += std::to_string(i + 1);
    out += " [label=\"";
    out += steps[i].label;
    out += "\"";
    if (adversarial) out += ", color=red, fontcolor=red";
    out += "];\n";
  }
  if (loop_start >= 0 && !steps.empty()) {
    out += "  s";
    out += std::to_string(steps.size());
    out += " -> s";
    out += std::to_string(loop_start);
    out += " [style=dashed, label=\"loop\"];\n";
  }
  out += "}\n";
  return out;
}

std::vector<const TraceStep*> CounterExample::adversary_steps() const {
  std::vector<const TraceStep*> out;
  for (const TraceStep& s : steps) {
    if (s.meta.actor == CommandMeta::Actor::kAdversary) out.push_back(&s);
  }
  return out;
}

// --- Safety --------------------------------------------------------------

namespace {

/// Shared BFS core: explores until `stop(pre, cmd, post)` says the offending
/// edge was found (post may equal pre for state-violations encoded as edge
/// checks on arrival).
///
/// Per-node bookkeeping is two ints (BFS parent + incoming command index);
/// the trace's labels/metadata are copied out of the model's commands only
/// when a counterexample is actually reconstructed, never per visited state.
std::optional<CounterExample> bfs_search(
    const Model& model, const CheckOptions& options, CheckStats* stats,
    const std::function<bool(const State&)>& bad_state,
    const EdgePred* bad_edge) {
  Timer timer;
  struct NodeInfo {
    std::uint32_t parent = kNoId;
    std::int32_t cmd = -1;  // index into model.commands(); -1 for the root
  };
  const std::vector<Command>& commands = model.commands();
  StateSpace space(model);
  std::vector<NodeInfo> info;
  std::vector<std::uint32_t> frontier;  // FIFO: consumed from `head`
  std::size_t head = 0;

  auto build_trace = [&](std::uint32_t node, std::optional<TraceStep> extra) {
    std::vector<TraceStep> rev;
    for (std::uint32_t at = node; at != kNoId && info[at].cmd >= 0; at = info[at].parent) {
      const Command& cmd = commands[info[at].cmd];
      rev.push_back({cmd.label, cmd.meta, space.state(at)});
    }
    CounterExample cex;
    cex.steps.assign(std::make_move_iterator(rev.rbegin()),
                     std::make_move_iterator(rev.rend()));
    if (extra) cex.steps.push_back(std::move(*extra));
    return cex;
  };

  auto current_bytes = [&] {
    return space.bytes() + info.capacity() * sizeof(NodeInfo) +
           frontier.capacity() * sizeof(std::uint32_t);
  };
  auto finish_stats = [&] {
    if (stats) {
      stats->states_explored = space.size();
      stats->visited_bytes = current_bytes();
      stats->seconds = timer.seconds();
    }
  };

  State init = model.initial();
  bool inserted = false;
  space.intern(init, options.max_states, &inserted, nullptr, 0);
  info.push_back({});
  frontier.push_back(0);

  if (bad_state && bad_state(init)) {
    finish_stats();
    return CounterExample{};
  }

  State pre(model.var_count(), 0);
  State next(model.var_count(), 0);
  std::vector<std::uint64_t> pre_bits(space.blocks(), 0);

  std::optional<CounterExample> result;
  while (head < frontier.size() && !result) {
    if (options.cancel && options.cancel->cancelled()) {
      if (stats) stats->cancelled = true;
      break;
    }
    if (options.max_seconds > 0 && timer.seconds() > options.max_seconds) {
      if (stats) stats->deadline_hit = true;
      break;
    }
    if (options.max_visited_bytes > 0 && current_bytes() > options.max_visited_bytes) {
      if (stats) stats->mem_hit = true;
      break;
    }
    std::uint32_t at = frontier[head++];
    // Local copies: the arena and guard cache may reallocate on insert.
    space.copy_state(at, pre);
    space.copy_guard_bits(at, pre_bits);
    for_enabled(pre_bits, commands.size(), [&](std::size_t j) {
      if (result) return;
      const Command& cmd = commands[j];
      next = pre;
      std::uint64_t changed = apply_command(cmd, pre, next);
      if (options.allowed && !options.allowed(pre, cmd, next)) return;
      if (stats) ++stats->edges_explored;
      if (bad_edge && (*bad_edge)(pre, cmd, next)) {
        result = build_trace(at, TraceStep{cmd.label, cmd.meta, next});
        return;
      }
      bool fresh = false;
      std::uint32_t id =
          space.intern(next, options.max_states, &fresh, pre_bits.data(), changed);
      if (id == kNoId) {
        if (stats) stats->bound_hit = true;
        return;
      }
      if (!fresh) return;
      info.push_back({at, static_cast<std::int32_t>(j)});
      if (bad_state && bad_state(next)) {
        result = build_trace(id, std::nullopt);
        return;
      }
      frontier.push_back(id);
    });
  }

  finish_stats();
  return result;
}

}  // namespace

std::optional<CounterExample> Checker::check_invariant(const Expr& good, CheckStats* stats,
                                                       const CheckOptions& options) const {
  return bfs_search(
      model_, options, stats, [&](const State& s) { return !good.eval(s); }, nullptr);
}

std::optional<CounterExample> Checker::check_edge_never(const EdgePred& bad, CheckStats* stats,
                                                        const CheckOptions& options) const {
  return bfs_search(model_, options, stats, nullptr, &bad);
}

// --- Liveness --------------------------------------------------------------
//
// Product construction with a one-bit monitor: pending := (pending ∨
// trigger(edge)) ∧ ¬response(edge). A violation of G(trigger → F response)
// is a reachable cycle lying entirely inside pending=true nodes (any
// response inside the cycle would clear the bit). Deadlocked model states
// stutter, so a dead end with a pending obligation is also a violation.
//
// Model states are interned once in the StateSpace; product nodes reference
// them by id, and the product index is a dense per-state pair of node ids
// (pending=0/1) — no hashing of state vectors anywhere in the product.

std::optional<CounterExample> Checker::check_response(const EdgePred& trigger,
                                                      const EdgePred& response,
                                                      CheckStats* stats,
                                                      const CheckOptions& options) const {
  Timer timer;
  constexpr std::int32_t kStutter = -1;
  struct Node {
    std::uint32_t state;
    bool pending;
  };
  struct NodeInfo {
    std::uint32_t parent = kNoId;
    std::int32_t cmd = -1;
  };
  const std::vector<Command>& commands = model_.commands();
  StateSpace space(model_);

  std::vector<Node> nodes;
  std::vector<NodeInfo> info;
  /// node_of[state_id][pending] — product index without hashing.
  std::vector<std::array<std::uint32_t, 2>> node_of;
  // Edges among pending=true nodes (candidates for the violating cycle):
  // (target node, command index or kStutter).
  std::vector<std::vector<std::pair<std::uint32_t, std::int32_t>>> pending_edges;
  std::vector<std::uint32_t> frontier;
  std::size_t head = 0;

  auto edge_label = [&](std::int32_t cmd) -> std::string {
    return cmd == kStutter ? "(stutter)" : commands[cmd].label;
  };
  auto edge_meta = [&](std::int32_t cmd) -> CommandMeta {
    return cmd == kStutter ? CommandMeta{} : commands[cmd].meta;
  };

  auto current_bytes = [&] {
    return space.bytes() + nodes.capacity() * sizeof(Node) +
           info.capacity() * sizeof(NodeInfo) +
           node_of.capacity() * sizeof(std::array<std::uint32_t, 2>) +
           pending_edges.capacity() *
               sizeof(std::vector<std::pair<std::uint32_t, std::int32_t>>) +
           frontier.capacity() * sizeof(std::uint32_t);
  };
  auto finish_stats = [&] {
    if (stats) {
      stats->states_explored = nodes.size();
      stats->visited_bytes = current_bytes();
      stats->seconds = timer.seconds();
    }
  };

  // Interns the model state, then adds/returns the product node for
  // (state, pending). Returns kNoId when a budget rejects it.
  auto add_node = [&](const State& s, const std::uint64_t* parent_bits,
                      std::uint64_t changed, bool pending, std::uint32_t parent,
                      std::int32_t cmd) -> std::uint32_t {
    bool fresh = false;
    std::uint32_t sid = space.intern(s, options.max_states, &fresh, parent_bits, changed);
    if (sid == kNoId) {
      if (stats) stats->bound_hit = true;
      return kNoId;
    }
    if (fresh) node_of.push_back({kNoId, kNoId});
    std::uint32_t& slot = node_of[sid][pending ? 1 : 0];
    if (slot != kNoId) return slot;
    if (nodes.size() >= options.max_states) {
      if (stats) stats->bound_hit = true;
      return kNoId;
    }
    slot = static_cast<std::uint32_t>(nodes.size());
    nodes.push_back({sid, pending});
    info.push_back({parent, cmd});
    pending_edges.emplace_back();
    frontier.push_back(slot);
    return slot;
  };

  State init = model_.initial();
  add_node(init, nullptr, 0, false, kNoId, -1);

  State pre(model_.var_count(), 0);
  State next(model_.var_count(), 0);
  std::vector<std::uint64_t> pre_bits(space.blocks(), 0);

  while (head < frontier.size()) {
    if (options.cancel && options.cancel->cancelled()) {
      if (stats) stats->cancelled = true;
      break;
    }
    if (options.max_seconds > 0 && timer.seconds() > options.max_seconds) {
      if (stats) stats->deadline_hit = true;
      break;
    }
    if (options.max_visited_bytes > 0 && current_bytes() > options.max_visited_bytes) {
      if (stats) stats->mem_hit = true;
      break;
    }
    std::uint32_t at = frontier[head++];
    const bool pending = nodes[at].pending;
    space.copy_state(nodes[at].state, pre);
    space.copy_guard_bits(nodes[at].state, pre_bits);

    bool any_successor = false;
    for_enabled(pre_bits, commands.size(), [&](std::size_t j) {
      const Command& cmd = commands[j];
      next = pre;
      std::uint64_t changed = apply_command(cmd, pre, next);
      if (options.allowed && !options.allowed(pre, cmd, next)) return;
      any_successor = true;
      if (stats) ++stats->edges_explored;
      bool trig = trigger(pre, cmd, next);
      bool resp = response(pre, cmd, next);
      bool next_pending = (pending || trig) && !resp;
      std::uint32_t to = add_node(next, pre_bits.data(), changed, next_pending, at,
                                  static_cast<std::int32_t>(j));
      if (to == kNoId) return;
      if (pending && next_pending) {
        pending_edges[at].push_back({to, static_cast<std::int32_t>(j)});
      }
    });
    if (!any_successor && pending) {
      // Deadlock with an unanswered trigger: stutter self-loop.
      pending_edges[at].push_back({at, kStutter});
    }
  }

  // Cycle detection restricted to pending=true nodes (iterative DFS).
  std::vector<std::uint8_t> color(nodes.size(), 0);  // 0 white, 1 grey, 2 black
  for (std::uint32_t root = 0; root < nodes.size(); ++root) {
    if (options.cancel && options.cancel->cancelled()) {
      if (stats) stats->cancelled = true;
      break;
    }
    if (options.max_seconds > 0 && timer.seconds() > options.max_seconds) {
      if (stats) stats->deadline_hit = true;
      break;
    }
    if (!nodes[root].pending || color[root] != 0) continue;
    struct Frame {
      std::uint32_t node;
      std::size_t next_edge = 0;
      std::int32_t via_cmd = kStutter;  // edge used to reach this node
    };
    std::vector<Frame> stack{{root, 0, kStutter}};
    color[root] = 1;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next_edge >= pending_edges[f.node].size()) {
        color[f.node] = 2;
        stack.pop_back();
        continue;
      }
      auto [to, via] = pending_edges[f.node][f.next_edge++];
      if (color[to] == 1) {
        // Found a cycle: stack from `to` upward + the closing edge.
        CounterExample cex;
        // Prefix: initial -> `to` via BFS parents.
        std::vector<TraceStep> rev;
        for (std::uint32_t n = to; n != kNoId && info[n].cmd >= 0; n = info[n].parent) {
          const Command& cmd = commands[info[n].cmd];
          rev.push_back({cmd.label, cmd.meta, space.state(nodes[n].state)});
        }
        cex.steps.assign(std::make_move_iterator(rev.rbegin()),
                         std::make_move_iterator(rev.rend()));
        cex.loop_start = static_cast<int>(cex.steps.size());
        // Loop body: the DFS stack segment from `to` to the top, then back.
        std::size_t start = 0;
        for (std::size_t i = 0; i < stack.size(); ++i) {
          if (stack[i].node == to) start = i;
        }
        for (std::size_t i = start + 1; i < stack.size(); ++i) {
          cex.steps.push_back({edge_label(stack[i].via_cmd), edge_meta(stack[i].via_cmd),
                               space.state(nodes[stack[i].node].state)});
        }
        cex.steps.push_back({edge_label(via), edge_meta(via), space.state(nodes[to].state)});
        finish_stats();
        return cex;
      }
      if (color[to] == 0) {
        color[to] = 1;
        stack.push_back({to, 0, via});
      }
    }
  }

  finish_stats();
  return std::nullopt;
}

}  // namespace procheck::mc
