#include "rrc/rrc_stack.h"

namespace procheck::rrc {

std::string_view standard_name(RrcMsgType t) {
  switch (t) {
    case RrcMsgType::kConnectionRequest:
      return "rrc_connection_request";
    case RrcMsgType::kConnectionSetup:
      return "rrc_connection_setup";
    case RrcMsgType::kConnectionSetupComplete:
      return "rrc_connection_setup_complete";
    case RrcMsgType::kUlInformationTransfer:
      return "rrc_ul_information_transfer";
    case RrcMsgType::kDlInformationTransfer:
      return "rrc_dl_information_transfer";
    case RrcMsgType::kSecurityModeCommand:
      return "rrc_security_mode_command";
    case RrcMsgType::kSecurityModeComplete:
      return "rrc_security_mode_complete";
    case RrcMsgType::kConnectionReconfiguration:
      return "rrc_connection_reconfiguration";
    case RrcMsgType::kConnectionReconfigurationComplete:
      return "rrc_connection_reconfiguration_complete";
    case RrcMsgType::kConnectionRelease:
      return "rrc_connection_release";
  }
  return "rrc_unknown";
}

std::string_view to_string(RrcState s) {
  switch (s) {
    case RrcState::kIdle:
      return "RRC_IDLE";
    case RrcState::kConnecting:
      return "RRC_CONNECTING";
    case RrcState::kConnected:
      return "RRC_CONNECTED";
  }
  return "RRC_IDLE";
}

Bytes RrcPdu::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  if (nas) {
    w.u8(1);
    w.blob(nas->encode());
  } else {
    w.u8(0);
  }
  return w.take();
}

std::optional<RrcPdu> RrcPdu::decode(const Bytes& wire) {
  ByteReader r(wire);
  auto type = r.u8();
  auto has_nas = r.u8();
  if (!type || !has_nas ||
      *type > static_cast<std::uint8_t>(RrcMsgType::kConnectionRelease) || *has_nas > 1) {
    return std::nullopt;
  }
  RrcPdu pdu;
  pdu.type = static_cast<RrcMsgType>(*type);
  if (*has_nas == 1) {
    auto blob = r.blob();
    if (!blob) return std::nullopt;
    auto nas_pdu = nas::NasPdu::decode(*blob);
    if (!nas_pdu) return std::nullopt;
    pdu.nas = std::move(*nas_pdu);
  }
  if (!r.at_end()) return std::nullopt;
  return pdu;
}

// --- RrcUe -------------------------------------------------------------------

RrcUe::RrcUe(ue::StackProfile profile, std::uint64_t key, std::string imsi,
             instrument::TraceLogger* rrc_trace, instrument::TraceLogger* nas_trace)
    : trace_(rrc_trace), nas_(std::move(profile), key, std::move(imsi), nas_trace) {}

void RrcUe::trace_enter_recv(std::string_view name) {
  if (trace_) trace_->enter("recv_" + std::string(name));
  trace_globals();
}

void RrcUe::trace_globals() {
  if (!trace_) return;
  trace_->global("rrc_state", to_string(state_));
  trace_->global("as_security", as_security_ ? 1 : 0);
}

void RrcUe::set_state(RrcState next) {
  state_ = next;
  if (trace_) trace_->global("rrc_state", to_string(state_));
}

std::vector<RrcPdu> RrcUe::encapsulate(std::vector<nas::NasPdu> nas_pdus) {
  std::vector<RrcPdu> out;
  for (nas::NasPdu& pdu : nas_pdus) {
    if (state_ != RrcState::kConnected) {
      // NAS traffic before the connection completes is held and carried by
      // the setup-complete message.
      pending_initial_nas_ = std::move(pdu);
      continue;
    }
    if (trace_) trace_->enter("send_rrc_ul_information_transfer");
    RrcPdu rrc;
    rrc.type = RrcMsgType::kUlInformationTransfer;
    rrc.nas = std::move(pdu);
    out.push_back(std::move(rrc));
  }
  return out;
}

std::vector<RrcPdu> RrcUe::power_on() {
  trace_enter_recv("rrc_power_on_trigger");
  set_state(RrcState::kConnecting);
  // The NAS attach request is generated now and piggybacked on setup
  // completion (TS 36.331's dedicated NAS info in setup-complete).
  std::vector<nas::NasPdu> nas_up = nas_.power_on_attach();
  if (!nas_up.empty()) pending_initial_nas_ = std::move(nas_up.front());
  if (trace_) trace_->enter("send_rrc_connection_request");
  RrcPdu req;
  req.type = RrcMsgType::kConnectionRequest;
  trace_globals();
  return {req};
}

std::vector<RrcPdu> RrcUe::handle_downlink(const RrcPdu& pdu) {
  std::vector<RrcPdu> out;
  switch (pdu.type) {
    case RrcMsgType::kConnectionSetup: {
      trace_enter_recv("rrc_connection_setup");
      if (state_ != RrcState::kConnecting) {
        if (trace_) trace_->local("state_ok", std::uint64_t{0});
        return {};
      }
      set_state(RrcState::kConnected);
      if (trace_) trace_->enter("send_rrc_connection_setup_complete");
      RrcPdu complete;
      complete.type = RrcMsgType::kConnectionSetupComplete;
      if (pending_initial_nas_) {
        complete.nas = std::move(*pending_initial_nas_);
        pending_initial_nas_.reset();
      }
      trace_globals();
      return {complete};
    }
    case RrcMsgType::kSecurityModeCommand: {
      trace_enter_recv("rrc_security_mode_command");
      as_security_ = true;
      if (trace_) trace_->local("as_keys_derived", std::uint64_t{1});
      if (trace_) trace_->enter("send_rrc_security_mode_complete");
      RrcPdu complete;
      complete.type = RrcMsgType::kSecurityModeComplete;
      trace_globals();
      return {complete};
    }
    case RrcMsgType::kConnectionReconfiguration: {
      trace_enter_recv("rrc_connection_reconfiguration");
      if (trace_) trace_->enter("send_rrc_connection_reconfiguration_complete");
      RrcPdu complete;
      complete.type = RrcMsgType::kConnectionReconfigurationComplete;
      trace_globals();
      return {complete};
    }
    case RrcMsgType::kConnectionRelease: {
      trace_enter_recv("rrc_connection_release");
      set_state(RrcState::kIdle);
      as_security_ = false;
      trace_globals();
      return {};
    }
    case RrcMsgType::kDlInformationTransfer: {
      trace_enter_recv("rrc_dl_information_transfer");
      trace_globals();
      if (!pdu.nas) return {};
      // Hand the payload up: the NAS layer logs its own handlers into its
      // own trace — the per-layer separation of challenge C4.
      return encapsulate(nas_.handle_downlink(*pdu.nas));
    }
    default:
      trace_enter_recv("rrc_unexpected");
      return {};
  }
}

// --- RrcEnb ------------------------------------------------------------------

RrcEnb::RrcEnb(mme::MmeNas* mme, int conn_id, instrument::TraceLogger* trace)
    : mme_(mme), conn_id_(conn_id), trace_(trace) {}

RrcPdu RrcEnb::wrap_downlink(const nas::NasPdu& pdu) const {
  RrcPdu rrc;
  rrc.type = RrcMsgType::kDlInformationTransfer;
  rrc.nas = pdu;
  return rrc;
}

std::vector<RrcPdu> RrcEnb::handle_uplink(const RrcPdu& pdu) {
  std::vector<RrcPdu> out;
  auto forward_nas = [&](const nas::NasPdu& nas_pdu) {
    for (const mme::Outgoing& o : mme_->handle_uplink(conn_id_, nas_pdu)) {
      out.push_back(wrap_downlink(o.pdu));
    }
  };

  switch (pdu.type) {
    case RrcMsgType::kConnectionRequest: {
      if (trace_) trace_->enter("recv_rrc_connection_request");
      connected_ = false;
      RrcPdu setup;
      setup.type = RrcMsgType::kConnectionSetup;
      out.push_back(setup);
      return out;
    }
    case RrcMsgType::kConnectionSetupComplete: {
      if (trace_) trace_->enter("recv_rrc_connection_setup_complete");
      connected_ = true;
      if (pdu.nas) forward_nas(*pdu.nas);
      // AS security activates once the NAS attach carries keys; simplified:
      // the eNB issues its SMC right after the setup completes.
      if (!as_security_) {
        as_security_ = true;
        RrcPdu smc;
        smc.type = RrcMsgType::kSecurityModeCommand;
        out.push_back(smc);
      }
      return out;
    }
    case RrcMsgType::kSecurityModeComplete:
      if (trace_) trace_->enter("recv_rrc_security_mode_complete");
      return out;
    case RrcMsgType::kUlInformationTransfer:
      if (trace_) trace_->enter("recv_rrc_ul_information_transfer");
      if (connected_ && pdu.nas) forward_nas(*pdu.nas);
      return out;
    case RrcMsgType::kConnectionReconfigurationComplete:
      return out;
    default:
      return out;
  }
}

void exchange(RrcUe& ue, RrcEnb& enb, std::vector<RrcPdu> initial_uplink, int max_steps) {
  std::vector<RrcPdu> uplink = std::move(initial_uplink);
  std::vector<RrcPdu> downlink;
  for (int step = 0; step < max_steps && (!uplink.empty() || !downlink.empty()); ++step) {
    if (!downlink.empty()) {
      RrcPdu pdu = downlink.front();
      downlink.erase(downlink.begin());
      for (RrcPdu& out : ue.handle_downlink(pdu)) uplink.push_back(std::move(out));
      continue;
    }
    RrcPdu pdu = uplink.front();
    uplink.erase(uplink.begin());
    for (RrcPdu& out : enb.handle_uplink(pdu)) downlink.push_back(std::move(out));
  }
}

}  // namespace procheck::rrc
