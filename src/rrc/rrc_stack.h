// RRC layer substrate — the paper's challenge C4 ("Layered protocol"): 4G
// has a layered architecture, a single model of all layers would break
// model-checker scalability, so ProChecker instruments and extracts one
// layer at a time ("we only extract interactions of a particular layer from
// the execution logs").
//
// This module provides the layer *below* NAS: an RRC connection machine
// (TS 36.331 shape — connection establishment, security activation,
// reconfiguration, release) that encapsulates NAS PDUs in information-
// transfer messages. Each layer logs to its own TraceLogger, and the
// unchanged extractor produces two independent machines from one run:
//   * the RRC FSM over RRC_IDLE / RRC_CONNECTING / RRC_CONNECTED with
//     rrc_* conditions, and
//   * the NAS FSM, identical to the one extracted without the RRC layer —
//     the layering is transparent to the upper layer's model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "instrument/trace_log.h"
#include "mme/mme_nas.h"
#include "nas/messages.h"
#include "ue/ue_nas.h"

namespace procheck::rrc {

/// RRC message types (TS 36.331 subset).
enum class RrcMsgType : std::uint8_t {
  kConnectionRequest,
  kConnectionSetup,
  kConnectionSetupComplete,   // carries the initial NAS message
  kUlInformationTransfer,     // carries NAS uplink
  kDlInformationTransfer,     // carries NAS downlink
  kSecurityModeCommand,       // AS security activation
  kSecurityModeComplete,
  kConnectionReconfiguration,
  kConnectionReconfigurationComplete,
  kConnectionRelease,
};

std::string_view standard_name(RrcMsgType t);

/// RRC PDU: a typed header plus an optional encapsulated NAS PDU.
struct RrcPdu {
  RrcMsgType type = RrcMsgType::kConnectionRequest;
  std::optional<nas::NasPdu> nas;

  Bytes encode() const;
  static std::optional<RrcPdu> decode(const Bytes& wire);
  bool operator==(const RrcPdu&) const = default;
};

/// RRC connection states (TS 36.331 §4.2.1 plus an explicit connecting
/// intermediate, which the extractor surfaces as a substate).
enum class RrcState : std::uint8_t { kIdle, kConnecting, kConnected };

std::string_view to_string(RrcState s);

inline constexpr std::string_view kRrcStateNames[] = {
    "RRC_IDLE",
    "RRC_CONNECTING",
    "RRC_CONNECTED",
};

/// UE-side RRC machine wrapping the NAS stack: NAS uplink is encapsulated,
/// downlink information transfers are decapsulated and handed up.
class RrcUe {
 public:
  /// `rrc_trace` instruments this layer; the wrapped NAS stack keeps its
  /// own logger (per-layer instrumentation, the C4 fix).
  RrcUe(ue::StackProfile profile, std::uint64_t key, std::string imsi,
        instrument::TraceLogger* rrc_trace = nullptr,
        instrument::TraceLogger* nas_trace = nullptr);

  /// Power-on: establishes the RRC connection, then runs the NAS attach
  /// through it. Returns the uplink RRC PDUs.
  std::vector<RrcPdu> power_on();
  /// Downlink entry point; returns responsive uplink RRC PDUs.
  std::vector<RrcPdu> handle_downlink(const RrcPdu& pdu);

  RrcState state() const { return state_; }
  ue::UeNas& nas() { return nas_; }
  int as_security_activated() const { return as_security_ ? 1 : 0; }

 private:
  std::vector<RrcPdu> encapsulate(std::vector<nas::NasPdu> nas_pdus);
  void trace_enter_recv(std::string_view name);
  void trace_globals();
  void set_state(RrcState next);

  instrument::TraceLogger* trace_;
  ue::UeNas nas_;
  RrcState state_ = RrcState::kIdle;
  bool as_security_ = false;
  std::optional<nas::NasPdu> pending_initial_nas_;
};

/// eNodeB + S1 glue: terminates RRC, forwards NAS to/from the MME.
class RrcEnb {
 public:
  explicit RrcEnb(mme::MmeNas* mme, int conn_id,
                  instrument::TraceLogger* trace = nullptr);

  std::vector<RrcPdu> handle_uplink(const RrcPdu& pdu);
  /// Wraps MME-originated NAS downlink.
  RrcPdu wrap_downlink(const nas::NasPdu& pdu) const;

 private:
  mme::MmeNas* mme_;
  int conn_id_;
  instrument::TraceLogger* trace_;
  bool connected_ = false;
  bool as_security_ = false;
};

/// Drives a UE/eNB pair until quiescent (test/demo harness).
void exchange(RrcUe& ue, RrcEnb& enb, std::vector<RrcPdu> initial_uplink,
              int max_steps = 400);

}  // namespace procheck::rrc
