// prochecker — command-line driver for the full pipeline.
//
// Subcommands:
//   instrument <source-file> [--header <header-file>]
//       Source-to-source instrumentation of an external codebase (prints
//       the instrumented translation unit).
//   conformance --profile <cls|srsue|oai> [--log <file>]
//       Runs the conformance suite against the selected stack and writes
//       the information-rich execution log.
//   extract --profile <cls|srsue|oai> [--log <file>] [--dot] [--basic]
//       Extracts the FSM (from a log file, or from a fresh conformance run
//       when --log is omitted) and prints its statistics or DOT rendering.
//   analyze --profile <cls|srsue|oai> [--properties S01,P01,...]
//           [--freshness-limit <L>]
//       The end-to-end 62-property analysis; prints verdicts and attack
//       traces.
//   chaos --profile <cls|srsue|oai> [--intensity <p>]
//       Re-runs the conformance suite under each fault-injection regime and
//       reports degradation vs the fault-free baseline.
//   serve-sul --profile <cls|srsue|oai> [--port <N>] [--bind <addr>] [--psk <key>]
//       Exposes the profile's UE stack as a multi-session remote SUL over
//       the framed wire protocol (DESIGN.md §12–13) for `learn --remote` /
//       `conformance --remote` on the other end. Each connection gets its
//       own isolated SUL session; admission, quotas, PSK auth, and graceful
//       drain (first ctrl-c) are configurable.
//   learn --profile <cls|srsue|oai> [--remote <host:port>] [--seed <S>]
//         [--journal <file>] [--resume <file>] [--arbitrate <k/n>]
//         [--deadline <S>] [--retries <N>]
//       Active L* learning of the UE Mealy machine — in-process by default,
//       or against a serve-sul endpoint with --remote (fault-tolerant
//       transport; degraded runs end inconclusive, never hang). Runs under
//       the learning supervisor (DESIGN.md §15): a crash-safe observation
//       journal makes `--resume` continue byte-identically from any kill
//       point, contradictory answers are arbitrated k-of-n, and watchdogs
//       bound every attempt.
//   diff <left> <right> [--json] [--dot] [--jobs <N>]
//       Differential cross-implementation analysis (DESIGN.md §16): builds
//       one FSM per side (profile:<name>, log:[<profile>:]<path>,
//       learn:<name>, or remote:<host:port>), walks the synchronous product
//       to enumerate divergences with minimal distinguishing sequences, and
//       triages each against the 62-property catalog. Exit 0 when
//       behaviorally equivalent, 1 on divergence, 3 when a side or the walk
//       was inconclusive.
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "checker/prochecker.h"
#include "checker/report.h"
#include "common/strings.h"
#include "diff/report_json.h"
#include "diff/sources.h"
#include "diff/triage.h"
#include "common/thread_pool.h"
#include "extractor/extractor.h"
#include "instrument/source_instrumentor.h"
#include "learner/learn_supervisor.h"
#include "learner/lstar.h"
#include "net/remote_conformance.h"
#include "net/remote_sul.h"
#include "net/sul_server.h"
#include "testing/chaos.h"
#include "testing/conformance.h"

namespace {

using namespace procheck;

int usage() {
  std::fprintf(stderr,
               "usage: prochecker"
               " <instrument|conformance|extract|analyze|chaos|serve-sul|learn|diff>"
               " [options]\n"
               "  instrument <source-file> [--header <header-file>]\n"
               "  conformance --profile <cls|srsue|oai> [--log <file>] [--remote <host:port>]"
               " [--batch <N>]\n"
               "  extract --profile <cls|srsue|oai> [--log <file>] [--dot] [--basic]"
               " [--recovery]\n"
               "  analyze --profile <cls|srsue|oai> [--properties <ids>]"
               " [--freshness-limit <L>] [--max-states <N>] [--budget-seconds <S>]"
               " [--jobs <N>]\n"
               "          [--retries <N>] [--deadline-per-property <S>]"
               " [--mem-ceiling-mb <M>] [--journal <file>] [--resume <file>]\n"
               "  chaos --profile <cls|srsue|oai> [--intensity <p>] [--jobs <N>]\n"
               "  serve-sul --profile <cls|srsue|oai> [--port <N>] [--bind <addr>]"
               " [--psk <key>] [--max-sessions <N>]\n"
               "            [--quota-queries <N>] [--quota-bytes <N>] [--quota-seconds <S>]"
               " [--idle-timeout <S>]\n"
               "            [--drain-seconds <S>] [--stats]\n"
               "  learn --profile <cls|srsue|oai> [--remote <host:port>] [--psk <key>]"
               " [--seed <S>] [--dot] [--batch <N>]\n"
               "        [--journal <file>] [--resume <file>] [--arbitrate <k/n>]"
               " [--deadline <S>] [--retries <N>]\n"
               "        (--batch 0 forces the per-symbol v2 protocol; default offers"
               " a 16-word batch;\n"
               "         --resume continues a killed run from its journal;"
               " --arbitrate 0/0 disables k-of-n re-querying)\n"
               "  diff <left> <right> [--json] [--dot] [--jobs <N>] [--psk <key>]"
               " [--batch <N>]\n"
               "       [--max-pairs <N>] [--max-states <N>]"
               " [--deadline-per-property <S>] [--retries <N>]\n"
               "       (sides: profile:<cls|srsue|oai>, log:[<profile>:]<path>,"
               " learn:<name>, remote:<host:port>;\n"
               "        exit 0 equivalent, 1 divergent, 3 inconclusive)\n");
  return 2;
}

/// Splits "host:port"; nullopt on malformation.
std::optional<std::pair<std::string, std::uint16_t>> parse_endpoint(const std::string& text) {
  std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) return std::nullopt;
  try {
    std::size_t pos = 0;
    unsigned long port = std::stoul(text.substr(colon + 1), &pos);
    if (pos != text.size() - colon - 1 || port == 0 || port > 65535) return std::nullopt;
    return std::make_pair(text.substr(0, colon), static_cast<std::uint16_t>(port));
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::optional<ue::StackProfile> profile_by_name(const std::string& name) {
  if (name == "cls") return ue::StackProfile::cls();
  if (name == "srsue") return ue::StackProfile::srsue();
  if (name == "oai") return ue::StackProfile::oai();
  return std::nullopt;
}

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  static Args parse(int argc, char** argv, int from) {
    Args args;
    for (int i = from; i < argc; ++i) {
      std::string a = argv[i];
      if (starts_with(a, "--")) {
        std::string key = a.substr(2);
        if (key == "dot" || key == "basic" || key == "traces" || key == "dot-traces" ||
            key == "recovery" || key == "stats" || key == "json") {
          args.options[key] = "1";
        } else if (i + 1 < argc) {
          args.options[key] = argv[++i];
        }
      } else {
        args.positional.push_back(std::move(a));
      }
    }
    return args;
  }

  std::string get(const std::string& key, const std::string& dflt = "") const {
    auto it = options.find(key);
    return it == options.end() ? dflt : it->second;
  }
  bool has(const std::string& key) const { return options.count(key) > 0; }
};

// Numeric option parsing: a malformed value is a usage error, not a crash.
std::optional<std::uint64_t> parse_u64(const std::string& text) {
  try {
    std::size_t pos = 0;
    std::uint64_t v = std::stoull(text, &pos);
    if (pos != text.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<double> parse_double(const std::string& text) {
  try {
    std::size_t pos = 0;
    double v = std::stod(text, &pos);
    if (pos != text.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

int bad_option(const char* flag, const std::string& value) {
  std::fprintf(stderr, "invalid value for --%s: '%s'\n", flag, value.c_str());
  return 2;
}

// --jobs N: worker threads for property/regime fan-out. Defaults to one per
// hardware thread; 0 or garbage is a usage error like the other numerics.
std::optional<std::size_t> parse_jobs(const Args& args) {
  if (!args.has("jobs")) return ThreadPool::default_parallelism();
  auto v = parse_u64(args.get("jobs"));
  if (!v || *v == 0 || *v > 1024) return std::nullopt;
  return static_cast<std::size_t>(*v);
}

int cmd_instrument(const Args& args) {
  if (args.positional.empty()) return usage();
  auto source = read_file(args.positional[0]);
  if (!source) {
    std::fprintf(stderr, "cannot read %s\n", args.positional[0].c_str());
    return 1;
  }
  std::vector<std::string> globals;
  if (args.has("header")) {
    auto header = read_file(args.get("header"));
    if (!header) {
      std::fprintf(stderr, "cannot read %s\n", args.get("header").c_str());
      return 1;
    }
    globals = instrument::harvest_globals(*header);
  }
  auto out = instrument::instrument_source(*source, globals);
  std::fprintf(stderr, "instrumented %d functions (%d enter, %d global, %d local probes)\n",
               out.stats.functions_instrumented, out.stats.enter_probes,
               out.stats.global_probes, out.stats.local_probes);
  std::printf("%s", out.text.c_str());
  return 0;
}

// --batch N: words offered per kQueryBatch in the v3 hello (0 = force the
// per-symbol v2 protocol). nullopt on a malformed value.
std::optional<int> parse_batch(const Args& args, int dflt) {
  if (!args.has("batch")) return dflt;
  auto v = parse_u64(args.get("batch"));
  if (!v || *v > net::kMaxBatchWords) return std::nullopt;
  return static_cast<int>(*v);
}

// --remote host:port: differential conformance against a serve-sul endpoint
// (scripted flows; expectations from the local reference stack). Exit 0 when
// every scenario passes, 1 on behavioral divergence, 3 when the transport
// degraded and verdicts are inconclusive.
int cmd_remote_conformance(const ue::StackProfile& profile, const std::string& endpoint,
                           const std::string& psk, int batch_words) {
  auto ep = parse_endpoint(endpoint);
  if (!ep) return bad_option("remote", endpoint);
  net::RemoteSulOptions ropts;
  ropts.host = ep->first;
  ropts.port = ep->second;
  ropts.psk = psk;
  ropts.max_batch_words = batch_words;
  net::RemoteUeSul sul(ropts);
  net::RemoteConformanceReport report = net::run_remote_conformance(profile, sul);
  std::fputs(report.render().c_str(), stdout);
  if (!report.conclusive()) {
    const std::string why = sul.unavailable_reason();
    std::fprintf(stderr, "transport degraded (%ld unavailable answers%s%s): inconclusive\n",
                 sul.stats().unavailable_answers, why.empty() ? "" : "; ", why.c_str());
    return 3;
  }
  return report.failed() == 0 ? 0 : 1;
}

int cmd_conformance(ue::StackProfile profile, const Args& args) {
  if (args.has("remote")) {
    auto batch = parse_batch(args, net::kDefaultBatchWords);
    if (!batch) return bad_option("batch", args.get("batch"));
    return cmd_remote_conformance(profile, args.get("remote"), args.get("psk"), *batch);
  }
  instrument::TraceLogger trace;
  testing::ConformanceReport report = testing::run_conformance(profile, trace);
  for (const testing::TestResult& r : report.results) {
    std::printf("%-18s %s\n", r.id.c_str(), r.passed ? "PASS" : "FAIL");
  }
  std::printf("%d/%d passed, handler coverage %.0f%%, %zu log records\n", report.passed(),
              report.total(), report.handler_coverage * 100, trace.records().size());
  if (args.has("log")) {
    std::ofstream out(args.get("log"));
    out << trace.text();
    std::printf("log written to %s\n", args.get("log").c_str());
  }
  return 0;
}

int cmd_extract(ue::StackProfile profile, const Args& args) {
  std::string log_text;
  if (args.has("log")) {
    auto text = read_file(args.get("log"));
    if (!text) {
      std::fprintf(stderr, "cannot read %s\n", args.get("log").c_str());
      return 1;
    }
    log_text = std::move(*text);
  } else {
    instrument::TraceLogger trace;
    testing::run_conformance(profile, trace);
    log_text = trace.text();
  }

  extractor::ExtractionOptions opts;
  opts.initial_state = "EMM_DEREGISTERED";
  opts.chain_substates = !args.has("basic");
  extractor::ExtractionDiagnostics diag;
  if (args.has("recovery")) {
    opts.recovery = true;
    opts.diagnostics = &diag;
  }
  instrument::ParseStats parse_stats;
  std::vector<instrument::LogRecord> records = instrument::parse_log(log_text, &parse_stats);
  fsm::Fsm m = args.has("basic")
                   ? extractor::extract_basic(records, extractor::ue_signatures(profile), opts)
                   : extractor::extract(records, extractor::ue_signatures(profile), opts);
  if (args.has("recovery")) {
    std::fprintf(stderr,
                 "parse: %zu lines, %zu records, %zu skipped, %zu truncated\n"
                 "blocks: %zu total, %zu extracted, %zu quarantined\n",
                 parse_stats.lines, parse_stats.records, parse_stats.skipped,
                 parse_stats.truncated, diag.blocks_total, diag.blocks_extracted,
                 diag.quarantined.size());
    for (const auto& q : diag.quarantined) {
      std::fprintf(stderr, "  quarantined block %zu (%s): %s\n", q.block_index,
                   q.incoming.c_str(), q.reason.c_str());
    }
  }
  if (args.has("dot")) {
    std::printf("%s", m.to_dot("ue_" + profile.name).c_str());
    return 0;
  }
  auto s = m.stats();
  std::printf("FSM: %zu states, %zu transitions, %zu conditions, %zu actions\n", s.states,
              s.transitions, s.conditions, s.actions);
  for (const fsm::Transition& t : m.transitions()) {
    std::printf("  %s\n", t.label().c_str());
  }
  return 0;
}

int cmd_analyze(ue::StackProfile profile, const Args& args) {
  if (args.has("freshness-limit")) {
    auto v = parse_u64(args.get("freshness-limit"));
    if (!v) return bad_option("freshness-limit", args.get("freshness-limit"));
    profile.sqn_freshness_limit = *v;
  }
  checker::AnalysisOptions options;
  if (args.has("max-states")) {
    auto v = parse_u64(args.get("max-states"));
    if (!v) return bad_option("max-states", args.get("max-states"));
    options.max_states = *v;
  }
  if (args.has("budget-seconds")) {
    auto v = parse_double(args.get("budget-seconds"));
    if (!v || *v < 0) return bad_option("budget-seconds", args.get("budget-seconds"));
    options.max_seconds_per_property = *v;
  }
  if (args.has("properties")) {
    for (const std::string& id : split(args.get("properties"), ',')) {
      options.only_properties.insert(std::string(trim(id)));
    }
  }
  auto jobs = parse_jobs(args);
  if (!jobs) return bad_option("jobs", args.get("jobs"));
  options.jobs = static_cast<int>(*jobs);

  // Supervisor knobs (watchdogs, retries, journal/resume — DESIGN.md §11).
  if (args.has("retries")) {
    auto v = parse_u64(args.get("retries"));
    if (!v || *v > 16) return bad_option("retries", args.get("retries"));
    options.retries = static_cast<int>(*v);
  }
  if (args.has("deadline-per-property")) {
    auto v = parse_double(args.get("deadline-per-property"));
    if (!v || *v < 0) {
      return bad_option("deadline-per-property", args.get("deadline-per-property"));
    }
    options.deadline_per_property = *v;
  }
  if (args.has("mem-ceiling-mb")) {
    auto v = parse_u64(args.get("mem-ceiling-mb"));
    if (!v || *v == 0 || *v > (1u << 20)) {
      return bad_option("mem-ceiling-mb", args.get("mem-ceiling-mb"));
    }
    options.mem_ceiling_bytes = *v * 1024 * 1024;
  }
  if (args.has("journal")) options.journal_path = args.get("journal");
  if (args.has("resume")) {
    options.journal_path = args.get("resume");
    options.resume = true;
  }

  checker::ImplementationReport rep = checker::ProChecker::analyze(profile, options);
  if (rep.aborted) {
    // Structured refusal (journal locked by a live run, or --resume against
    // an options-incompatible journal): no verdicts were produced.
    std::fprintf(stderr, "error: analyze aborted: %s\n", rep.abort_reason.c_str());
    return 1;
  }

  // The verdict block is the canonical deterministic rendering: a resumed
  // run must reproduce it byte-for-byte (journal/resume status goes to
  // stderr so it never perturbs the comparison).
  std::fputs(checker::render_verdicts(rep).c_str(), stdout);
  if (args.has("traces") || args.has("dot-traces")) {
    threat::ThreatModel tm = checker::ProChecker::build_threat_model(rep.checking_model);
    for (const checker::PropertyResult& r : rep.results) {
      if (!r.counterexample) continue;
      if (args.has("traces")) {
        std::printf("-- trace %s --\n%s", r.property_id.c_str(),
                    r.counterexample->render(tm.model).c_str());
      }
      if (args.has("dot-traces")) {
        std::printf("%s", r.counterexample->to_dot(tm.model).c_str());
      }
    }
  }
  if (rep.resumed_count > 0) {
    std::fprintf(stderr, "resumed %zu of %zu properties from %s\n", rep.resumed_count,
                 rep.results.size(), options.journal_path.c_str());
  }
  if (rep.cancelled_count > 0) {
    std::fprintf(stderr, "%zu properties cancelled before completion\n", rep.cancelled_count);
  }
  if (!rep.journal_error.empty()) {
    std::fprintf(stderr, "journal warning: %s\n", rep.journal_error.c_str());
  }
  return 0;
}

std::sig_atomic_t volatile g_interrupted = 0;

int cmd_serve_sul(ue::StackProfile profile, const Args& args) {
  net::SulServerOptions options;
  if (args.has("port")) {
    auto v = parse_u64(args.get("port"));
    if (!v || *v > 65535) return bad_option("port", args.get("port"));
    options.port = static_cast<std::uint16_t>(*v);
  }
  if (args.has("bind")) options.bind_host = args.get("bind");
  if (args.has("psk")) options.psk = args.get("psk");
  if (args.has("max-sessions")) {
    auto v = parse_u64(args.get("max-sessions"));
    if (!v || *v == 0 || *v > 64) return bad_option("max-sessions", args.get("max-sessions"));
    options.max_sessions = static_cast<int>(*v);
  }
  if (args.has("quota-queries")) {
    auto v = parse_u64(args.get("quota-queries"));
    if (!v) return bad_option("quota-queries", args.get("quota-queries"));
    options.max_session_queries = static_cast<long>(*v);
  }
  if (args.has("quota-bytes")) {
    auto v = parse_u64(args.get("quota-bytes"));
    if (!v) return bad_option("quota-bytes", args.get("quota-bytes"));
    options.max_session_bytes = static_cast<long>(*v);
  }
  if (args.has("quota-seconds")) {
    auto v = parse_double(args.get("quota-seconds"));
    if (!v || *v < 0) return bad_option("quota-seconds", args.get("quota-seconds"));
    options.max_session_seconds = *v;
  }
  if (args.has("idle-timeout")) {
    auto v = parse_double(args.get("idle-timeout"));
    if (!v || *v < 0) return bad_option("idle-timeout", args.get("idle-timeout"));
    options.idle_timeout_seconds = *v;
  }
  if (args.has("drain-seconds")) {
    auto v = parse_double(args.get("drain-seconds"));
    if (!v || *v < 0) return bad_option("drain-seconds", args.get("drain-seconds"));
    options.drain_deadline_seconds = *v;
  }

  net::SulServer server(profile, options);
  if (!server.start()) {
    const std::string why = server.start_error();
    std::fprintf(stderr, "cannot serve on %s:%u%s%s\n", options.bind_host.c_str(),
                 options.port, why.empty() ? "" : ": ", why.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "serving %s SUL on %s:%u (%d sessions max%s; ctrl-c drains, twice stops)\n",
               profile.name.c_str(), options.bind_host.c_str(), server.port(),
               options.max_sessions, options.psk.empty() ? "" : ", PSK auth");
  std::signal(SIGINT, [](int) { g_interrupted = g_interrupted + 1; });
  std::signal(SIGTERM, [](int) { g_interrupted = 2; });

  // First interrupt drains (no new sessions; in-flight words finish, each
  // session gets a structured close); the second — or a drained-out server —
  // stops hard.
  bool draining = false;
  while (g_interrupted < 2) {
    if (g_interrupted == 1 && !draining) {
      draining = true;
      server.drain();
      std::fprintf(stderr, "draining %d active sessions (ctrl-c again to force stop)\n",
                   server.active_sessions());
    }
    if (draining && server.active_sessions() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.stop();
  net::SulServerStats stats = server.stats();
  std::fprintf(stderr, "served %ld connections, %ld resets, %ld steps\n", stats.connections,
               stats.resets, stats.steps);
  if (args.has("stats")) std::fputs(server.render_stats().c_str(), stderr);
  return 0;
}

int cmd_learn(ue::StackProfile profile, const Args& args) {
  learner::LearnSupervisorOptions sup;
  sup.run_tag = profile.name;
  if (args.has("seed")) {
    auto v = parse_u64(args.get("seed"));
    if (!v) return bad_option("seed", args.get("seed"));
    sup.learn.seed = *v;
  }

  // Supervisor knobs (crash-safe journal, arbitration, watchdogs —
  // DESIGN.md §15), mirroring analyze's journal/resume discipline.
  if (args.has("journal")) sup.journal_path = args.get("journal");
  if (args.has("resume")) {
    sup.journal_path = args.get("resume");
    sup.resume = true;
  }
  if (args.has("arbitrate")) {
    // "k/n": commit a cell only when k of n fresh re-queries agree ("0/0"
    // disables arbitration — first observation wins).
    const std::string text = args.get("arbitrate");
    const std::size_t slash = text.find('/');
    std::optional<std::uint64_t> k, n;
    if (slash != std::string::npos) {
      k = parse_u64(text.substr(0, slash));
      n = parse_u64(text.substr(slash + 1));
    }
    if (!k || !n || *n > 99 || (*n > 0 && (*k <= *n / 2 || *k > *n))) {
      return bad_option("arbitrate", text);
    }
    sup.arbitration_k = static_cast<int>(*k);
    sup.arbitration_n = static_cast<int>(*n);
  }
  if (args.has("deadline")) {
    auto v = parse_double(args.get("deadline"));
    if (!v || *v < 0) return bad_option("deadline", args.get("deadline"));
    sup.deadline_seconds = *v;
  }
  if (args.has("retries")) {
    auto v = parse_u64(args.get("retries"));
    if (!v || *v > 16) return bad_option("retries", args.get("retries"));
    sup.retries = static_cast<int>(*v);
  }

  learner::SupervisedLearn run;
  if (args.has("remote")) {
    auto ep = parse_endpoint(args.get("remote"));
    if (!ep) return bad_option("remote", args.get("remote"));
    net::RemoteSulOptions ropts;
    ropts.host = ep->first;
    ropts.port = ep->second;
    ropts.psk = args.get("psk");
    ropts.heartbeat_seconds = 0.5;
    auto batch = parse_batch(args, net::kDefaultBatchWords);
    if (!batch) return bad_option("batch", args.get("batch"));
    ropts.max_batch_words = *batch;
    net::RemoteUeSul sul(ropts);
    run = learner::learn_supervised(sul, sup);
    net::RemoteSulStats stats = sul.stats();
    std::fprintf(stderr,
                 "transport: %ld connects (%ld re), %ld framing errors, %ld timeouts,"
                 " %ld nondeterministic queries\n",
                 stats.connects, stats.reconnects, stats.framing_errors, stats.rpc_timeouts,
                 stats.nondeterministic_queries);
    std::fprintf(stderr,
                 "breaker: %s (%ld opens, %ld half-open probes, %ld cache fallbacks,"
                 " %ld unavailable answers)\n",
                 std::string(net::to_string(sul.breaker())).c_str(), stats.breaker_opens,
                 stats.breaker_probes, stats.cache_fallbacks, stats.unavailable_answers);
    std::fprintf(stderr,
                 "batching: negotiated %d words, %ld batches (%ld words), %ld word"
                 " queries, %ld word resyncs\n",
                 sul.negotiated_batch_words(), stats.batch_queries, stats.batched_words,
                 stats.word_queries, stats.word_resyncs);
    // Structured server refusals (busy, draining, auth_failed, quota trips,
    // upgrade_required) surface here so an inconclusive run names its cause.
    const std::string reason = sul.last_close_reason();
    if (!reason.empty()) {
      std::fprintf(stderr, "server close: %s\n", reason.c_str());
    }
  } else {
    learner::UeSul sul(profile);
    run = learner::learn_supervised(sul, sup);
  }

  if (run.aborted) {
    // Structured refusal (journal locked by a live run, or --resume against
    // an options-incompatible journal): no query was issued.
    std::fprintf(stderr, "error: learn aborted: %s\n", run.abort_reason.c_str());
    return 1;
  }
  const learner::LearnResult& result = run.result;
  // Journal/supervisor status goes to stderr so the deterministic stdout
  // rendering stays byte-comparable between interrupted and clean runs.
  if (!sup.journal_path.empty()) {
    std::fprintf(stderr, "journal: %zu records at %s (%zu adopted, %zu replayed)\n",
                 run.journal_records, sup.journal_path.c_str(), run.adopted, run.replayed);
    if (!run.journal_note.empty()) {
      std::fprintf(stderr, "journal note: %s\n", run.journal_note.c_str());
    }
    if (!run.journal_error.empty()) {
      std::fprintf(stderr, "journal warning: %s\n", run.journal_error.c_str());
    }
  }
  if (run.attempts > 1 || run.failure != learner::LearnFailure::kNone) {
    std::fprintf(stderr, "supervisor: %d attempt(s), last failure: %s%s%s\n", run.attempts,
                 std::string(learner::to_string(run.failure)).c_str(),
                 run.diagnostics.empty() ? "" : " — ", run.diagnostics.c_str());
  }
  if (result.arbitrations > 0 || !result.quarantined.empty()) {
    std::fprintf(stderr,
                 "arbitration: %ld conflicts, %ld re-queries, %ld overridden edges,"
                 " %zu quarantined cells\n",
                 result.arbitrations, result.arbitration_requeries,
                 result.arbitration_overrides, result.quarantined.size());
    for (const std::string& q : result.quarantined) {
      std::fprintf(stderr, "  quarantined: %s\n", q.c_str());
    }
  }

  if (result.inconclusive) {
    std::fprintf(stderr, "error: learning inconclusive: %s\n", result.note.c_str());
    return 3;
  }
  // Deterministic rendering (the FSM view): remote runs over lossless chaos
  // regimes must reproduce the in-process output byte-for-byte.
  fsm::Fsm m = result.machine.to_fsm();
  if (args.has("dot")) {
    std::printf("%s", m.to_dot("learned_" + profile.name).c_str());
  } else {
    auto s = m.stats();
    std::printf("learned Mealy machine: %d states, %zu transitions\n",
                result.machine.state_count, s.transitions);
    for (const fsm::Transition& t : m.transitions()) {
      std::printf("  %s\n", t.label().c_str());
    }
  }
  std::fprintf(stderr,
               "%ld membership queries, %ld equivalence rounds, %ld counterexamples,"
               " %ld resets, %ld steps, %s\n",
               result.membership_queries, result.equivalence_queries, result.counterexamples,
               result.sul_resets, result.sul_steps,
               result.converged ? "converged" : "round budget exhausted");
  const long lookups = result.cache_hits + result.cache_prefix_hits + result.cache_misses;
  std::fprintf(stderr,
               "query cache: %ld hits, %ld prefix hits, %ld misses (%.0f%% answered),"
               " %ld batches (%ld words)%s\n",
               result.cache_hits, result.cache_prefix_hits, result.cache_misses,
               lookups > 0 ? 100.0 * static_cast<double>(result.cache_hits) /
                                 static_cast<double>(lookups)
                           : 0.0,
               result.batch_queries, result.batched_words,
               result.nondeterministic_cached > 0 ? " [nondeterministic outputs!]" : "");
  return 0;
}

int cmd_chaos(ue::StackProfile profile, const Args& args) {
  double intensity = 0.1;
  if (args.has("intensity")) {
    auto v = parse_double(args.get("intensity"));
    if (!v || *v < 0 || *v > 1) return bad_option("intensity", args.get("intensity"));
    intensity = *v;
  }
  auto jobs = parse_jobs(args);
  if (!jobs) return bad_option("jobs", args.get("jobs"));

  std::vector<testing::ChaosReport> reports =
      testing::run_chaos_matrix(profile, intensity, *jobs);
  bool all_explained = true;
  for (const testing::ChaosReport& rep : reports) {
    std::printf("%-14s %2d/%2d passed (baseline %2d/%2d), %zu channel faults, FSM %s%s\n",
                rep.regime.c_str(), rep.chaos.passed(), rep.chaos.total(),
                rep.baseline.passed(), rep.baseline.total(), rep.channel.total_faults(),
                rep.fsm_identical ? "identical" : "DIVERGED",
                rep.degraded() ? (rep.explained() ? " [degraded, diagnosed]" : " [UNEXPLAINED]")
                               : "");
    for (const std::string& d : rep.diagnostics) std::printf("    %s\n", d.c_str());
    all_explained = all_explained && rep.explained();
  }
  std::printf("%zu regimes, %s\n", reports.size(),
              all_explained ? "all degradations diagnosed" : "UNEXPLAINED degradation");
  return all_explained ? 0 : 1;
}

// prochecker diff <left> <right> (or --left/--right): the differential
// cross-implementation pipeline (DESIGN.md §16). Exit 0 equivalent, 1
// divergent, 3 inconclusive (a side degraded, or the product walk tripped a
// budget); usage errors stay 2.
int cmd_diff(const Args& args) {
  std::string left_spec = args.get("left");
  std::string right_spec = args.get("right");
  if (left_spec.empty() && !args.positional.empty()) left_spec = args.positional[0];
  if (right_spec.empty() && args.positional.size() > 1) right_spec = args.positional[1];
  if (left_spec.empty() || right_spec.empty()) return usage();

  diff::SourceOptions src;
  src.psk = args.get("psk");
  if (args.has("batch")) {
    auto batch = parse_batch(args, -1);
    if (!batch) return bad_option("batch", args.get("batch"));
    src.batch_words = *batch;
  }
  if (args.has("seed")) {
    auto v = parse_u64(args.get("seed"));
    if (!v) return bad_option("seed", args.get("seed"));
    src.learn_seed = *v;
  }

  diff::SideResult left = diff::resolve_side(left_spec, src);
  diff::SideResult right = diff::resolve_side(right_spec, src);
  for (const diff::SideResult* side : {&left, &right}) {
    if (side->ok) continue;
    std::fprintf(stderr, "error: %s\n", side->error.c_str());
    // A degraded-but-well-formed side (remote down, learning inconclusive)
    // is an inconclusive comparison, not a usage error.
    return (left.inconclusive || right.inconclusive) ? 3 : usage();
  }

  diff::DiffOptions dopts;
  if (args.has("max-pairs")) {
    auto v = parse_u64(args.get("max-pairs"));
    if (!v || *v == 0) return bad_option("max-pairs", args.get("max-pairs"));
    dopts.max_product_pairs = static_cast<std::size_t>(*v);
  }

  diff::TriageOptions topts;
  auto jobs = parse_jobs(args);
  if (!jobs) return bad_option("jobs", args.get("jobs"));
  topts.jobs = *jobs;
  if (args.has("max-states")) {
    auto v = parse_u64(args.get("max-states"));
    if (!v || *v == 0) return bad_option("max-states", args.get("max-states"));
    topts.max_states = static_cast<std::size_t>(*v);
  }
  if (args.has("deadline-per-property")) {
    auto v = parse_double(args.get("deadline-per-property"));
    if (!v || *v < 0) {
      return bad_option("deadline-per-property", args.get("deadline-per-property"));
    }
    topts.deadline_per_property = *v;
  }
  if (args.has("retries")) {
    auto v = parse_u64(args.get("retries"));
    if (!v || *v > 16) return bad_option("retries", args.get("retries"));
    topts.retries = static_cast<int>(*v);
  }

  diff::DiffReport report = diff::diff_machines(left.side, right.side, dopts);
  diff::triage(report, left.side, right.side, topts);
  if (args.has("json")) {
    std::printf("%s\n", diff::encode_report(report).c_str());
  } else if (args.has("dot")) {
    std::printf("%s", report.to_dot().c_str());
  } else {
    std::fputs(report.render().c_str(), stdout);
  }
  return report.exit_code();
}

// Every profile-driven subcommand resolves --profile the same way; main()
// does it once and hands the handler a concrete StackProfile (by value —
// analyze patches mitigation knobs into its copy).
int with_profile(const Args& args, int (*handler)(ue::StackProfile, const Args&)) {
  auto profile = profile_by_name(args.get("profile"));
  if (!profile) return usage();
  return handler(std::move(*profile), args);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  Args args = Args::parse(argc, argv, 2);
  if (cmd == "instrument") return cmd_instrument(args);
  if (cmd == "conformance") return with_profile(args, cmd_conformance);
  if (cmd == "extract") return with_profile(args, cmd_extract);
  if (cmd == "analyze") return with_profile(args, cmd_analyze);
  if (cmd == "chaos") return with_profile(args, cmd_chaos);
  if (cmd == "serve-sul") return with_profile(args, cmd_serve_sul);
  if (cmd == "learn") return with_profile(args, cmd_learn);
  if (cmd == "diff") return cmd_diff(args);
  return usage();
}
