#include "testing/chaos.h"

#include <map>

#include "common/thread_pool.h"
#include "extractor/extractor.h"

namespace procheck::testing {

std::vector<ChaosRegime> chaos_regimes(double intensity, std::uint64_t seed) {
  auto make = [&](const std::string& name, FaultProfile profile,
                  std::uint64_t salt) {
    ChannelConfig config;
    config.downlink = profile;
    config.uplink = profile;
    config.seed = splitmix64(seed ^ salt);
    return ChaosRegime{name, config};
  };
  FaultProfile drop_only;
  drop_only.drop = intensity;
  FaultProfile duplicate_only;
  duplicate_only.duplicate = intensity;
  FaultProfile reorder_only;
  reorder_only.reorder = intensity;
  FaultProfile delay_only;
  delay_only.delay = intensity;
  FaultProfile corrupt_only;
  corrupt_only.corrupt = intensity;
  FaultProfile combined;
  combined.drop = intensity / 2;
  combined.duplicate = intensity / 2;
  combined.reorder = intensity / 2;
  combined.delay = intensity / 2;
  combined.corrupt = intensity / 2;
  return {
      make("drop-only", drop_only, 0xD801),
      make("duplicate-only", duplicate_only, 0xD0B2),
      make("reorder-only", reorder_only, 0x0EA3),
      make("delay-only", delay_only, 0xDE14),
      make("corrupt-only", corrupt_only, 0xC0A5),
      make("combined", combined, 0xA116),
  };
}

namespace {

fsm::Fsm extract_ue_model(const ue::StackProfile& profile,
                          const instrument::TraceLogger& trace) {
  extractor::Signatures sigs = extractor::ue_signatures(profile);
  extractor::ExtractionOptions opts;
  opts.initial_state = "EMM_DEREGISTERED";
  return extractor::extract(trace.records(), sigs, opts);
}

}  // namespace

ChaosReport run_conformance_chaos(const ue::StackProfile& profile, const ChaosRegime& regime) {
  ChaosReport report;
  report.regime = regime.name;
  report.profile = profile.name;

  instrument::TraceLogger baseline_trace;
  report.baseline = run_conformance(profile, baseline_trace);
  instrument::TraceLogger chaos_trace;
  report.chaos = run_conformance(profile, chaos_trace, &regime.config);
  report.channel = report.chaos.channel;

  report.baseline_model = extract_ue_model(profile, baseline_trace);
  report.chaos_model = extract_ue_model(profile, chaos_trace);
  report.fsm_identical = report.baseline_model == report.chaos_model;

  std::map<std::string, bool> baseline_passed;
  for (const TestResult& r : report.baseline.results) baseline_passed[r.id] = r.passed;
  for (const TestResult& r : report.chaos.results) {
    if (!r.quiesced) {
      report.non_quiescent.push_back(r.id);
      report.diagnostics.push_back(r.id + ": hit the step budget under " + regime.name +
                                   " (fault-induced livelock)");
    }
    if (baseline_passed[r.id] && !r.passed) {
      report.newly_failing.push_back(r.id);
      report.diagnostics.push_back(r.id + ": passes fault-free but fails under " + regime.name +
                                   " (channel faults: " +
                                   std::to_string(report.channel.total_faults()) +
                                   " across the suite)");
    }
  }
  if (!report.fsm_identical) {
    const fsm::Fsm::Stats base = report.baseline_model.stats();
    const fsm::Fsm::Stats chaotic = report.chaos_model.stats();
    report.diagnostics.push_back(
        "extracted FSM diverges from the fault-free baseline under " + regime.name +
        ": states " + std::to_string(base.states) + " -> " + std::to_string(chaotic.states) +
        ", transitions " + std::to_string(base.transitions) + " -> " +
        std::to_string(chaotic.transitions) +
        " (fault-perturbed log; quarantine with extractor recovery mode)");
  }
  return report;
}

ChaosReport run_regime_supervised(
    const ue::StackProfile& profile, const ChaosRegime& regime,
    const std::function<void(const std::string& regime_name)>& fault_hook) {
  auto crashed = [&](const std::string& what) {
    ChaosReport report;
    report.regime = regime.name;
    report.profile = profile.name;
    report.crashed = true;
    report.failure = what;
    report.diagnostics.push_back("regime worker crashed: " + what +
                                 " (contained; other regimes unaffected)");
    return report;
  };
  try {
    if (fault_hook) fault_hook(regime.name);
    return run_conformance_chaos(profile, regime);
  } catch (const std::exception& e) {
    return crashed(e.what());
  } catch (...) {
    return crashed("unknown exception type");
  }
}

std::vector<ChaosReport> run_chaos_matrix(const ue::StackProfile& profile, double intensity,
                                          std::size_t jobs) {
  std::vector<ChaosRegime> regimes = chaos_regimes(intensity);
  std::vector<ChaosReport> reports(regimes.size());
  parallel_for(jobs, regimes.size(), [&](std::size_t i) {
    reports[i] = run_regime_supervised(profile, regimes[i]);
  });
  return reports;
}

}  // namespace procheck::testing
