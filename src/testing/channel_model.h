// Seeded, deterministic fault-injection channel model.
//
// The paper's Dolev–Yao adversary and SDR testbed assume the air interface
// can lose, repeat, reorder, delay, and mangle messages; the in-process
// testbed originally delivered every PDU exactly once, in order. The
// ChannelModel closes that gap: every PDU crossing a Testbed channel is
// routed through it *before* the adversary interceptors, and its fate is
// decided by per-direction fault probabilities drawn from a dedicated
// SplitMix64 stream — fully reproducible for a fixed seed, and byte-for-byte
// inert when every probability is zero (the fault-free regression contract
// the chaos conformance runner relies on).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/rng.h"
#include "nas/messages.h"

namespace procheck::testing {

/// Per-direction fault probabilities, each in [0, 1].
struct FaultProfile {
  double drop = 0.0;       // PDU vanishes in transit
  double duplicate = 0.0;  // a second copy is queued behind the original
  double reorder = 0.0;    // PDU is pushed behind the rest of its queue
  double delay = 0.0;      // PDU is held back for a few delivery steps
  double corrupt = 0.0;    // one random payload/MAC bit is flipped

  bool active() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || delay > 0 || corrupt > 0;
  }
};

struct ChannelConfig {
  FaultProfile downlink;
  FaultProfile uplink;
  /// Seed of the channel's own Rng stream (independent of the MME's).
  std::uint64_t seed = 0xC4A05C4A05ULL;
  /// Upper bound, in delivery steps, a delayed PDU is held back.
  int max_delay_steps = 3;
};

/// The fate the channel decided for one PDU.
enum class ChannelFault : std::uint8_t {
  kNone,
  kDrop,
  kDuplicate,
  kReorder,
  kDelay,
  kCorrupt,
};

std::string_view to_string(ChannelFault fault);

struct ChannelStats {
  struct Direction {
    std::size_t offered = 0;  // PDUs that entered the channel
    std::size_t dropped = 0;
    std::size_t duplicated = 0;
    std::size_t reordered = 0;
    std::size_t delayed = 0;
    std::size_t corrupted = 0;

    std::size_t faults() const {
      return dropped + duplicated + reordered + delayed + corrupted;
    }
  };
  Direction downlink;
  Direction uplink;

  std::size_t total_faults() const { return downlink.faults() + uplink.faults(); }
  /// Accumulates another channel's counters (per-case testbeds → suite total).
  void merge(const ChannelStats& other);
};

class ChannelModel {
 public:
  explicit ChannelModel(ChannelConfig config = {})
      : config_(config), rng_(config.seed) {}

  /// Decides the fate of one PDU about to cross the channel. At most one
  /// fault fires per PDU (drawn in drop → corrupt → duplicate → reorder →
  /// delay order); kCorrupt flips one random bit of `pdu` in place. When the
  /// direction's profile is entirely zero this returns kNone without
  /// consuming any randomness.
  ChannelFault transfer(bool is_downlink, nas::NasPdu& pdu);

  /// Hold time, in delivery steps, for a PDU the channel decided to delay.
  int draw_delay();

  const ChannelConfig& config() const { return config_; }
  const ChannelStats& stats() const { return stats_; }

 private:
  bool roll(double probability);
  void flip_random_bit(nas::NasPdu& pdu);

  ChannelConfig config_;
  Rng rng_;
  ChannelStats stats_;
};

}  // namespace procheck::testing
