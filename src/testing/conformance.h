// Functional conformance test suite (the paper's §VI "Conformance test
// suite" substrate).
//
// Each test case scripts one protocol-level interaction against the live
// testbed, in the style of 3GPP TS 36.523 protocol conformance tests, and
// returns a spec-conformance verdict. Executing the suite against an
// instrumented stack produces the information-rich log the model extractor
// consumes — that is the suite's primary role in the ProChecker pipeline;
// the pass/fail verdicts additionally reproduce the paper's observation
// that deviant stacks (srsue/oai profiles) fail specific conformance cases
// while the closed-source profile passes all of them.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "instrument/trace_log.h"
#include "testing/testbed.h"
#include "ue/profile.h"

namespace procheck::testing {

struct TestCase {
  std::string id;     // e.g. "TC_NAS_ATT_01"
  std::string title;  // one-line behavioral statement
  /// Runs the scenario on a fresh testbed whose single UE is `conn`.
  /// Returns the spec-conformance verdict.
  std::function<bool(Testbed& tb, int conn)> run;
};

/// The full suite, in execution order.
const std::vector<TestCase>& conformance_suite();

struct TestResult {
  std::string id;
  bool passed = false;
  /// False when the testbed hit a step budget mid-case: a fault-induced
  /// livelock. A non-quiescent case is never counted as passed.
  bool quiesced = true;
};

struct ConformanceReport {
  std::vector<TestResult> results;
  double handler_coverage = 0.0;             // exercised / expected UE handlers
  std::vector<std::string> unexercised;      // handler names never entered
  ChannelStats channel;                      // aggregate channel-fault counters

  int total() const { return static_cast<int>(results.size()); }
  int passed() const;
};

/// Runs the whole suite for one stack profile, accumulating the execution
/// log into `trace` ([TEST] markers delimit cases). Every case gets a fresh
/// testbed + UE so cases are independent. When `channel` is non-null every
/// case's testbed gets a fault-injection channel derived from it (per-case
/// sub-seeds keep cases independent yet the whole run deterministic).
ConformanceReport run_conformance(const ue::StackProfile& profile,
                                  instrument::TraceLogger& trace,
                                  const ChannelConfig* channel = nullptr);

/// The UE handler names (with the profile's prefixes applied) the coverage
/// accounting expects to see — the denominator of `handler_coverage`.
std::vector<std::string> expected_ue_handlers(const ue::StackProfile& profile);

/// Drives a complete attach (power-on through attach_complete). Returns
/// true when the UE reached the registered state. Shared by test cases,
/// attack replays, and examples.
bool complete_attach(Testbed& tb, int conn);

/// Fig. 4, phase 1 of the P1/P2 attacks: the adversary elicits a fresh
/// authentication challenge for `conn`'s subscriber (attach_request with the
/// victim's identity from a malicious UE), captures it, and drops it in
/// transit so the victim never consumes its SQN. The victim is then
/// re-attached to restore a registered steady state. Returns the captured
/// challenge (stale but replayable) or nullopt on failure.
std::optional<nas::NasPdu> capture_dropped_challenge(Testbed& tb, int conn);

inline constexpr const char* kTestImsi = "001010123456789";
inline constexpr std::uint64_t kTestKey = 0x5EC2E7ULL;

}  // namespace procheck::testing
