// Chaos conformance: re-executes the conformance suite under a matrix of
// channel fault regimes and checks that the pipeline degrades *explicitly*.
//
// The contract mirrors "Learn, Check, Test"-style noisy-observation
// soundness: for each regime, either the model extracted from the chaotic
// run is identical to the fault-free one, or every divergence (newly
// failing case, livelocked case, FSM delta) is reported as a diagnostic —
// faults must never silently mutate the extracted model or the verdicts.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fsm/fsm.h"
#include "testing/conformance.h"

namespace procheck::testing {

struct ChaosRegime {
  std::string name;
  ChannelConfig config;
};

/// The standard fault matrix: one regime per fault class plus a combined
/// one, each fault firing with probability `intensity` in both directions.
std::vector<ChaosRegime> chaos_regimes(double intensity = 0.1,
                                       std::uint64_t seed = 0xC4A05C4A05ULL);

struct ChaosReport {
  std::string regime;
  std::string profile;

  ConformanceReport baseline;  // fault-free run
  ConformanceReport chaos;     // same suite under the regime
  ChannelStats channel;        // fault counters of the chaotic run

  fsm::Fsm baseline_model;
  fsm::Fsm chaos_model;
  bool fsm_identical = false;

  /// Case ids that passed fault-free but failed under the regime.
  std::vector<std::string> newly_failing;
  /// Case ids that hit the step budget under the regime (livelocks).
  std::vector<std::string> non_quiescent;
  /// Human-readable explanation of every divergence above.
  std::vector<std::string> diagnostics;

  /// True when the regime's worker threw instead of producing results: the
  /// crash was contained (other regimes unaffected) and `failure` carries
  /// the exception detail — the supervisor discipline of DESIGN.md §11
  /// applied to the chaos matrix.
  bool crashed = false;
  std::string failure;

  bool degraded() const {
    return crashed || !fsm_identical || !newly_failing.empty() || !non_quiescent.empty();
  }
  /// The chaos contract: clean, or every degradation is diagnosed.
  bool explained() const { return !degraded() || !diagnostics.empty(); }
};

/// Runs the suite fault-free and under `regime`, extracts the UE model from
/// both logs, and diagnoses every divergence.
ChaosReport run_conformance_chaos(const ue::StackProfile& profile, const ChaosRegime& regime);

/// Crash-isolated wrapper: any exception escaping the regime run (or the
/// optional `fault_hook`, a test seam invoked with the regime name before
/// the run) yields a crashed-but-diagnosed ChaosReport instead of
/// propagating. run_chaos_matrix routes every regime through this, so one
/// crashing regime can never abort the matrix (or std::terminate a pool
/// worker).
ChaosReport run_regime_supervised(
    const ue::StackProfile& profile, const ChaosRegime& regime,
    const std::function<void(const std::string& regime_name)>& fault_hook = {});

/// run_conformance_chaos over the whole chaos_regimes matrix. Regimes are
/// independent (each run owns its loggers and seeded channels), so they fan
/// across `jobs` worker threads; reports keep matrix order regardless of
/// completion order. jobs <= 1 runs inline on the calling thread.
std::vector<ChaosReport> run_chaos_matrix(const ue::StackProfile& profile,
                                          double intensity = 0.1, std::size_t jobs = 1);

}  // namespace procheck::testing
