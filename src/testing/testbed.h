// In-process testbed: live UE and MME stacks connected by two unidirectional
// channels with a programmable man-in-the-middle position.
//
// This substitutes for the paper's SDR testbed (§VI "Testbed"): it is where
// conformance test cases execute against the running stacks, and where
// verified counterexamples from the checker are *replayed against the live
// implementation* to confirm attacks end-to-end (drop / inject / modify /
// replay — the Dolev–Yao capabilities).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "instrument/trace_log.h"
#include "mme/mme_nas.h"
#include "nas/messages.h"
#include "testing/channel_model.h"
#include "ue/profile.h"
#include "ue/ue_nas.h"

namespace procheck::testing {

/// What the man-in-the-middle decides for one in-flight PDU.
struct AdversaryAction {
  enum class Kind : std::uint8_t { kPass, kDrop, kReplace };
  Kind kind = Kind::kPass;
  nas::NasPdu replacement;  // used when kReplace

  static AdversaryAction pass() { return {}; }
  static AdversaryAction drop() { return {Kind::kDrop, {}}; }
  static AdversaryAction replace(nas::NasPdu pdu) { return {Kind::kReplace, std::move(pdu)}; }
};

/// Per-direction interceptor: observes every PDU (after capture) and decides
/// its fate. conn_id identifies which UE's channel the PDU is on.
using Interceptor = std::function<AdversaryAction(int conn_id, const nas::NasPdu&)>;

/// A captured PDU crossing a channel (the adversary's recording capability).
struct Capture {
  int conn_id = 0;
  nas::NasPdu pdu;
  bool delivered = true;  // false if the adversary dropped it
  /// White-box cleartext view, decoded at capture time with the then-live
  /// session keys (verdict-side convenience; not adversary knowledge).
  std::optional<nas::NasMessage> clear;
};

class Testbed {
 public:
  /// `ue_trace` instruments the UE NAS layer; `mme_trace` the MME layer.
  /// Passing separate (or null) sinks mirrors the paper's per-layer
  /// instrumentation: the extractor must only see the target layer's log.
  explicit Testbed(instrument::TraceLogger* ue_trace = nullptr,
                   instrument::TraceLogger* mme_trace = nullptr,
                   std::uint64_t seed = 0x7E57BEDULL);

  /// Provisions a subscriber and creates its UE; returns its connection id.
  int add_ue(const ue::StackProfile& profile, const std::string& imsi, std::uint64_t key);

  /// Creates a UE whose IMSI is *not* provisioned in the HSS (exercises the
  /// identification/reject paths).
  int add_unprovisioned_ue(const ue::StackProfile& profile, const std::string& imsi,
                           std::uint64_t key);

  ue::UeNas& ue(int conn_id) { return ues_.at(conn_id); }
  mme::MmeNas& mme() { return mme_; }

  void set_downlink_interceptor(Interceptor fn) { downlink_icpt_ = std::move(fn); }
  void set_uplink_interceptor(Interceptor fn) { uplink_icpt_ = std::move(fn); }
  void clear_interceptors();

  /// Installs a fault-injection channel model; every PDU crossing either
  /// direction is routed through it *before* the adversary interceptors.
  /// Without a channel (or with all probabilities zero) delivery is
  /// byte-identical to the fault-free testbed.
  void set_channel(const ChannelConfig& config) { channel_.emplace(config); }
  const ChannelModel* channel() const { return channel_ ? &*channel_ : nullptr; }

  // --- Driving.
  /// UE-side internal events (enqueue the resulting uplink traffic).
  void power_on(int conn_id);
  void ue_detach(int conn_id);
  void ue_service_request(int conn_id);
  void ue_tau(int conn_id);
  /// MME-side procedure starts.
  void mme_guti_reallocation(int conn_id);
  void mme_identity_request(int conn_id);
  void mme_detach(int conn_id);
  void mme_configuration_update(int conn_id);
  void mme_paging(int conn_id);

  /// Adversary injections (placed on the wire as-is).
  void inject_downlink(int conn_id, const nas::NasPdu& pdu);
  void inject_uplink(int conn_id, const nas::NasPdu& pdu);

  /// Structured quiescence verdict: how run_until_quiet ended and how much
  /// work it did. kStepBudget is the testbed-level watchdog trip — traffic
  /// was still in flight when the delivery budget ran out (a fault-induced
  /// livelock), which callers surface instead of silently treating the
  /// scenario as settled.
  struct QuiesceReport {
    enum class Verdict : std::uint8_t { kQuiet, kStepBudget };
    Verdict verdict = Verdict::kQuiet;
    int deliveries = 0;     // steps that moved or aged traffic
    int horizon_skips = 0;  // logical-clock fast-forwards over idle delay ticks
    bool quiet() const { return verdict == Verdict::kQuiet; }
  };

  /// Delivers queued messages (through the interceptors) until both
  /// directions are quiescent or `max_steps` deliveries happened. When the
  /// only remaining traffic is parked in the delay line, the logical clock
  /// fast-forwards to the next release horizon, so the iteration count is
  /// bounded by actual deliveries — a long kDelay draw cannot eat the whole
  /// step budget one idle tick at a time.
  QuiesceReport run_until_quiet_report(int max_steps = 1000);

  /// Convenience wrapper: true iff the testbed quiesced (see QuiesceReport).
  bool run_until_quiet(int max_steps = 1000);

  /// Number of run_until_quiet calls that hit their step budget without
  /// quiescing. Callers diff this across a scenario to detect livelocks.
  std::size_t step_limit_hits() const { return step_limit_hits_; }

  /// Advances MME and UE logical time by `n` ticks, delivering any
  /// retransmissions after each tick.
  void tick(int n = 1);

  // --- Adversary's recordings.
  const std::vector<Capture>& downlink_captures() const { return dl_captures_; }
  const std::vector<Capture>& uplink_captures() const { return ul_captures_; }
  /// Convenience: most recent captured downlink PDU of the given type.
  const nas::NasPdu* last_downlink_of_type(int conn_id, nas::MsgType type) const;

  /// White-box decode of a captured PDU (plain or protected): the testbed
  /// owns both endpoints and may use the session keys for *verdicts* —
  /// adversary components must not rely on this for ciphered content.
  std::optional<nas::NasMessage> decode(int conn_id, const nas::NasPdu& pdu,
                                        bool downlink) const;

 private:
  struct QueueItem {
    int conn_id;
    nas::NasPdu pdu;
    // Set on PDUs the channel already faulted (duplicate copies, reordered or
    // delayed re-enqueues): at most one fault fires per PDU.
    bool channel_exempt = false;
  };
  struct DelayedItem {
    QueueItem item;
    bool is_downlink;
    int steps_left;
  };

  void enqueue_uplink(int conn_id, std::vector<nas::NasPdu> pdus);
  void enqueue_downlink(std::vector<mme::Outgoing> out);
  bool step();
  void age_delayed();
  /// Applies the channel to a just-dequeued PDU; returns true when the item
  /// was consumed (dropped, pushed back, or parked) and the step is over.
  bool channel_consumes(QueueItem& item, bool is_downlink, std::deque<QueueItem>& queue);

  instrument::TraceLogger* ue_trace_;
  mme::MmeNas mme_;
  std::map<int, ue::UeNas> ues_;
  int next_conn_ = 1;

  std::deque<QueueItem> uplink_queue_;
  std::deque<QueueItem> downlink_queue_;
  Interceptor downlink_icpt_;
  Interceptor uplink_icpt_;
  std::vector<Capture> dl_captures_;
  std::vector<Capture> ul_captures_;
  std::optional<ChannelModel> channel_;
  std::vector<DelayedItem> delayed_;
  std::size_t step_limit_hits_ = 0;
};

}  // namespace procheck::testing
