#include "testing/replay.h"

#include "testing/conformance.h"

namespace procheck::testing {

using mc::CommandMeta;
using nas::MsgType;
using nas::NasMessage;
using nas::NasPdu;

NasPdu CounterexampleReplayer::craft_plain(const std::string& message) const {
  auto type = nas::msg_type_from_name(message);
  NasMessage msg(type.value_or(MsgType::kEmmInformation));
  // Populate the fields the handlers read, with adversary-chosen values.
  switch (msg.type) {
    case MsgType::kAttachReject:
    case MsgType::kServiceReject:
    case MsgType::kTauReject:
      msg.set_s("cause", "not_authorized");
      break;
    case MsgType::kDetachRequest:
      msg.set_s("detach_type", "reattach_required");
      break;
    case MsgType::kIdentityRequest:
      msg.set_s("id_type", "imsi");
      break;
    case MsgType::kPaging:
      msg.set_s("identity", tb_.ue(conn_).guti());
      break;
    case MsgType::kGutiReallocationCommand:
      msg.set_s("guti", "guti-adversary");
      break;
    default:
      break;
  }
  return nas::encode_plain(msg);
}

bool CounterexampleReplayer::execute_adversary_step(const mc::TraceStep& step,
                                                    ReplayReport& report) {
  const std::string& message = step.meta.message;
  auto type = nas::msg_type_from_name(message);

  switch (step.meta.kind) {
    case CommandMeta::Kind::kDrop: {
      // Arm a one-shot drop for the next transmission of this type. If the
      // message is already in flight, it is dropped immediately; otherwise
      // a timer period is advanced to provoke (and drop) the next
      // retransmission — or, once the retry budget is spent, to let the
      // supervising procedure abort.
      auto dropped = std::make_shared<bool>(false);
      tb_.set_downlink_interceptor([this, type, dropped](int c, const NasPdu& pdu) {
        if (*dropped || c != conn_) return AdversaryAction::pass();
        auto msg = tb_.decode(c, pdu, /*downlink=*/true);
        if (!msg || !type || msg->type != *type) return AdversaryAction::pass();
        *dropped = true;
        return AdversaryAction::drop();
      });
      tb_.run_until_quiet();
      if (!*dropped) tb_.tick(mme::MmeNas::kTimerPeriod);
      tb_.clear_interceptors();
      report.actions.push_back("drop " + message + (*dropped ? " (dropped)" : " (timer advanced)"));
      return true;  // dropping is always within the adversary's power
    }

    case CommandMeta::Kind::kReplay: {
      if (message == "authentication_request") {
        // Fig. 4 phase 1: elicit and capture a challenge the victim never
        // consumed, then replay it.
        auto captured = capture_dropped_challenge(tb_, conn_);
        if (!captured) {
          report.failure = "could not capture an authentication_request";
          return false;
        }
        tb_.inject_downlink(conn_, *captured);
        report.actions.push_back("replay authentication_request (captured per Fig. 4)");
        return true;
      }
      const NasPdu* captured =
          type ? tb_.last_downlink_of_type(conn_, *type) : nullptr;
      if (!captured) {
        report.failure = "no captured " + message + " to replay";
        return false;
      }
      tb_.inject_downlink(conn_, *captured);
      report.actions.push_back("replay captured " + message);
      return true;
    }

    case CommandMeta::Kind::kInject: {
      // The CPV already pruned unforgeable injections; what remains is a
      // plaintext message the adversary can craft outright.
      tb_.inject_downlink(conn_, craft_plain(message));
      report.actions.push_back("inject plaintext " + message);
      return true;
    }

    default:
      return true;
  }
}

ReplayReport CounterexampleReplayer::replay(const mc::CounterExample& cex,
                                            int loop_unrollings) {
  ReplayReport report;

  auto run_step = [&](const mc::TraceStep& step) -> bool {
    switch (step.meta.actor) {
      case CommandMeta::Actor::kAdversary:
        ++report.adversary_steps;
        if (!execute_adversary_step(step, report)) return false;
        ++report.realized_steps;
        return true;
      case CommandMeta::Actor::kUe:
      case CommandMeta::Actor::kMme:
        if (step.meta.kind == CommandMeta::Kind::kInternal) {
          // Internal triggers only *enqueue* traffic — no delivery yet, so
          // a subsequent adversary drop step can act on the in-flight PDU.
          if (step.meta.message == "power_on_trigger") tb_.power_on(conn_);
          if (step.meta.message == "detach_trigger") tb_.ue_detach(conn_);
          if (step.meta.message == "tau_trigger") tb_.ue_tau(conn_);
          if (step.meta.message == "service_request_trigger") tb_.ue_service_request(conn_);
          if (step.meta.message == "guti_realloc_trigger") tb_.mme_guti_reallocation(conn_);
          if (step.meta.message == "config_update_trigger") tb_.mme_configuration_update(conn_);
          if (step.meta.message == "paging_trigger") tb_.mme_paging(conn_);
          if (step.meta.message == "detach_trigger_mme") tb_.mme_detach(conn_);
          report.actions.push_back("internal " + step.meta.message);
          return true;
        }
        // A genuine delivery: advance the testbed.
        tb_.run_until_quiet();
        return true;
    }
    return true;
  };

  bool ok = true;
  const int prefix_end = cex.loop_start >= 0 ? cex.loop_start : static_cast<int>(cex.steps.size());
  for (int i = 0; ok && i < prefix_end; ++i) {
    ok = run_step(cex.steps[static_cast<std::size_t>(i)]);
  }
  if (ok && cex.loop_start >= 0) {
    for (int round = 0; ok && round < loop_unrollings; ++round) {
      for (std::size_t i = static_cast<std::size_t>(cex.loop_start);
           ok && i < cex.steps.size(); ++i) {
        ok = run_step(cex.steps[i]);
      }
    }
    // A lasso means the adversary sustains its dropping forever. Emulate
    // "forever": arm persistent drops for every message type the trace
    // dropped and drive time through the whole retransmission budget, so
    // timer-supervised procedures reach their abort (the P3 outcome).
    std::set<MsgType> dropped_types;
    for (const mc::TraceStep& step : cex.steps) {
      if (step.meta.kind == CommandMeta::Kind::kDrop) {
        if (auto type = nas::msg_type_from_name(step.meta.message)) {
          dropped_types.insert(*type);
        }
      }
    }
    if (ok && !dropped_types.empty()) {
      tb_.set_downlink_interceptor([this, dropped_types](int c, const NasPdu& pdu) {
        auto msg = tb_.decode(c, pdu, /*downlink=*/true);
        if (c == conn_ && msg && dropped_types.count(msg->type) > 0) {
          return AdversaryAction::drop();
        }
        return AdversaryAction::pass();
      });
      tb_.tick(mme::MmeNas::kTimerPeriod * (mme::MmeNas::kMaxRetransmissions + 2));
      tb_.clear_interceptors();
      report.actions.push_back("sustained drops through the retransmission budget");
    }
  }

  tb_.run_until_quiet();  // flush any remaining traffic
  report.completed = ok && report.realized_steps == report.adversary_steps;
  report.final_ue_state = tb_.ue(conn_).state();
  report.ue_context_valid = tb_.ue(conn_).security().valid;
  report.ue_replays_accepted = tb_.ue(conn_).replays_accepted();
  report.ue_plain_accepted = tb_.ue(conn_).plain_accepted_after_ctx();
  report.ue_authentications = tb_.ue(conn_).authentications_completed();
  report.mme_aborted_procedures = tb_.mme().procedures_aborted();
  return report;
}

}  // namespace procheck::testing
