#include "testing/conformance.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "nas/crypto.h"
#include "ue/emm_state.h"

namespace procheck::testing {

using nas::MsgType;
using nas::NasMessage;
using nas::NasPdu;
using nas::SecHdr;

namespace {

/// Message types of uplink captures appended after index `from`, using the
/// testbed's white-box decode for ciphered payloads (verdict-side only).
std::vector<MsgType> uplink_types_since(const Testbed& tb, std::size_t from) {
  std::vector<MsgType> out;
  for (std::size_t i = from; i < tb.uplink_captures().size(); ++i) {
    const Capture& c = tb.uplink_captures()[i];
    if (c.clear) out.push_back(c.clear->type);
  }
  return out;
}

bool sent_uplink_since(const Testbed& tb, std::size_t from, MsgType type) {
  auto types = uplink_types_since(tb, from);
  return std::find(types.begin(), types.end(), type) != types.end();
}

/// One-shot downlink tamperer: mutates the first PDU matching `type`.
/// Identifies ciphered messages via the testbed's white-box decode (the
/// tamper itself — MAC/AUTN corruption — needs no plaintext access).
Interceptor corrupt_first_downlink(const Testbed& tb, MsgType type, bool* done) {
  return [&tb, type, done](int conn, const NasPdu& pdu) {
    if (*done) return AdversaryAction::pass();
    auto msg = tb.decode(conn, pdu, /*downlink=*/true);
    if (!msg || msg->type != type) return AdversaryAction::pass();
    *done = true;
    NasPdu bad = pdu;
    if (type == MsgType::kAuthenticationRequest) {
      // Corrupt the AUTN's MAC octets so the USIM's f1 check fails.
      NasMessage m = *msg;
      Bytes autn = m.get_b("autn");
      if (!autn.empty()) autn.back() ^= 0xFF;
      m.set_b("autn", autn);
      bad.payload = nas::encode_payload(m);
    } else {
      // Corrupt the NAS-MAC of a protected message.
      bad.mac ^= 0xDEADBEEFULL;
    }
    return AdversaryAction::replace(bad);
  };
}

Interceptor drop_first_downlink(const Testbed& tb, MsgType type, bool* done) {
  return [&tb, type, done](int conn, const NasPdu& pdu) {
    if (*done) return AdversaryAction::pass();
    auto msg = tb.decode(conn, pdu, /*downlink=*/true);
    if (!msg || msg->type != type) return AdversaryAction::pass();
    *done = true;
    return AdversaryAction::drop();
  };
}

std::vector<TestCase> build_suite() {
  std::vector<TestCase> suite;

  suite.push_back({"TC_NAS_ATT_01", "Initial attach with AKA and SMC completes",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     return tb.ue(conn).guti() != "none" &&
                            tb.ue(conn).security().valid &&
                            tb.mme().state(conn) == mme::MmeState::kRegistered;
                   }});

  suite.push_back({"TC_NAS_ATT_02", "Attach with unknown subscriber is rejected",
                   [](Testbed& tb, int) {
                     int rogue = tb.add_unprovisioned_ue(ue::StackProfile::cls(),
                                                         "999990000000001", 0xBAD);
                     tb.power_on(rogue);
                     tb.run_until_quiet();
                     return ue::is_deregistered(tb.ue(rogue).state()) &&
                            !tb.ue(rogue).security().valid;
                   }});

  suite.push_back({"TC_NAS_ATT_03", "Re-attach with stale GUTI runs identification",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     tb.ue_detach(conn);
                     tb.run_until_quiet();
                     std::size_t mark = tb.uplink_captures().size();
                     tb.power_on(conn);
                     tb.run_until_quiet();
                     return ue::is_registered(tb.ue(conn).state()) &&
                            sent_uplink_since(tb, mark, MsgType::kIdentityResponse);
                   }});

  suite.push_back({"TC_NAS_ATT_04", "attach_accept is retransmitted on T3450 expiry",
                   [](Testbed& tb, int conn) {
                     bool dropped = false;
                     tb.set_downlink_interceptor(
                         drop_first_downlink(tb, MsgType::kAttachAccept, &dropped));
                     tb.power_on(conn);
                     tb.run_until_quiet();
                     if (ue::is_registered(tb.ue(conn).state())) return false;  // drop failed
                     tb.tick(mme::MmeNas::kTimerPeriod);
                     return ue::is_registered(tb.ue(conn).state());
                   }});

  suite.push_back({"TC_NAS_AKA_01", "Corrupted AUTN yields MAC-failure then recovery",
                   [](Testbed& tb, int conn) {
                     bool corrupted = false;
                     tb.set_downlink_interceptor(
                         corrupt_first_downlink(tb, MsgType::kAuthenticationRequest, &corrupted));
                     std::size_t mark = tb.uplink_captures().size();
                     tb.power_on(conn);
                     tb.run_until_quiet();
                     return ue::is_registered(tb.ue(conn).state()) &&
                            sent_uplink_since(tb, mark, MsgType::kAuthenticationFailure);
                   }});

  suite.push_back({"TC_NAS_AKA_02", "Stale HSS SQN triggers resynchronization then recovery",
                   [](Testbed& tb, int conn) {
                     // Two attach/detach rounds advance the USIM's SQN array
                     // to SEQ=2; regressing the HSS counter then yields a
                     // vector whose SEQ is *strictly smaller* than the
                     // stored one — a synchronization failure on every
                     // profile (even the equal-SEQ-tolerant one).
                     for (int round = 0; round < 2; ++round) {
                       if (!complete_attach(tb, conn)) return false;
                       tb.ue_detach(conn);
                       tb.run_until_quiet();
                     }
                     tb.mme().debug_set_sqn(kTestImsi, 0, 0);
                     std::size_t mark = tb.uplink_captures().size();
                     tb.power_on(conn);
                     tb.run_until_quiet();
                     return ue::is_registered(tb.ue(conn).state()) &&
                            sent_uplink_since(tb, mark, MsgType::kAuthenticationFailure);
                   }});

  suite.push_back({"TC_NAS_AKA_03", "Tampered RES yields authentication_reject",
                   [](Testbed& tb, int conn) {
                     bool tampered = false;
                     tb.set_uplink_interceptor([&tampered](int, const NasPdu& pdu) {
                       if (tampered) return AdversaryAction::pass();
                       auto msg = nas::decode_payload(pdu.payload);
                       if (!msg || msg->type != MsgType::kAuthenticationResponse) {
                         return AdversaryAction::pass();
                       }
                       tampered = true;
                       NasMessage m = *msg;
                       m.set_u("res", m.get_u("res") ^ 1);
                       NasPdu bad = pdu;
                       bad.payload = nas::encode_payload(m);
                       return AdversaryAction::replace(bad);
                     });
                     tb.power_on(conn);
                     tb.run_until_quiet();
                     return ue::is_deregistered(tb.ue(conn).state()) &&
                            !tb.ue(conn).security().valid;
                   }});

  suite.push_back({"TC_NAS_SMC_01", "SMC with invalid MAC is rejected",
                   [](Testbed& tb, int conn) {
                     bool corrupted = false;
                     tb.set_downlink_interceptor(
                         corrupt_first_downlink(tb, MsgType::kSecurityModeCommand, &corrupted));
                     std::size_t mark = tb.uplink_captures().size();
                     tb.power_on(conn);
                     tb.run_until_quiet();
                     return !tb.ue(conn).security().valid &&
                            sent_uplink_since(tb, mark, MsgType::kSecurityModeReject);
                   }});

  suite.push_back({"TC_NAS_GUTI_01", "GUTI reallocation completes and rotates the GUTI",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     std::string before = tb.ue(conn).guti();
                     tb.mme_guti_reallocation(conn);
                     tb.run_until_quiet();
                     return tb.ue(conn).guti() != before &&
                            tb.ue(conn).guti() == tb.mme().guti(conn) &&
                            !tb.mme().has_pending_procedure(conn);
                   }});

  suite.push_back({"TC_NAS_GUTI_02", "GUTI reallocation retransmits on T3450 expiry",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     std::string before = tb.ue(conn).guti();
                     bool dropped = false;
                     tb.set_downlink_interceptor(
                         drop_first_downlink(tb, MsgType::kGutiReallocationCommand, &dropped));
                     tb.mme_guti_reallocation(conn);
                     tb.run_until_quiet();
                     tb.tick(mme::MmeNas::kTimerPeriod);
                     return tb.ue(conn).guti() != before &&
                            !tb.mme().has_pending_procedure(conn);
                   }});

  suite.push_back({"TC_NAS_TAU_01", "Tracking area update completes when registered",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     tb.ue_tau(conn);
                     tb.run_until_quiet();
                     return ue::is_registered(tb.ue(conn).state());
                   }});

  suite.push_back({"TC_NAS_TAU_02", "TAU without security context is rejected",
                   [](Testbed& tb, int conn) {
                     tb.ue_tau(conn);
                     tb.run_until_quiet();
                     return tb.ue(conn).state() == ue::EmmState::kRegisteredAttemptingToUpdate;
                   }});

  suite.push_back({"TC_NAS_DET_01", "UE-initiated detach completes",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     tb.ue_detach(conn);
                     tb.run_until_quiet();
                     return ue::is_deregistered(tb.ue(conn).state()) &&
                            tb.mme().state(conn) == mme::MmeState::kDeregistered;
                   }});

  suite.push_back({"TC_NAS_DET_02", "Network-initiated detach (re-attach required) completes",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     std::size_t mark = tb.uplink_captures().size();
                     tb.mme_detach(conn);
                     tb.run_until_quiet();
                     return ue::is_deregistered(tb.ue(conn).state()) &&
                            sent_uplink_since(tb, mark, MsgType::kDetachAccept);
                   }});

  suite.push_back({"TC_NAS_DET_03", "Network-initiated detach without re-attach completes",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     // Craft the non-reattach variant (exercises the
                     // EMM_DEREGISTERED_LIMITED_SERVICE substate).
                     NasMessage req(MsgType::kDetachRequest);
                     req.set_s("detach_type", "plain_detach");
                     tb.inject_downlink(conn, nas::encode_plain(req));
                     tb.run_until_quiet();
                     return ue::is_deregistered(tb.ue(conn).state());
                   }});

  suite.push_back({"TC_NAS_SRV_01", "Paging triggers service request and grant",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     std::size_t mark = tb.uplink_captures().size();
                     tb.mme_paging(conn);
                     tb.run_until_quiet();
                     return ue::is_registered(tb.ue(conn).state()) &&
                            sent_uplink_since(tb, mark, MsgType::kServiceRequest);
                   }});

  suite.push_back({"TC_NAS_SRV_02", "Unauthenticated service request is rejected",
                   [](Testbed& tb, int conn) {
                     NasMessage req(MsgType::kServiceRequest);
                     req.set_s("identity", "guti-unknown");
                     tb.inject_uplink(conn, nas::encode_plain(req));
                     tb.run_until_quiet();
                     return ue::is_deregistered(tb.ue(conn).state());
                   }});

  suite.push_back({"TC_NAS_SRV_03", "UE-triggered service request succeeds when registered",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     tb.ue_service_request(conn);
                     tb.run_until_quiet();
                     return ue::is_registered(tb.ue(conn).state());
                   }});

  suite.push_back({"TC_NAS_PAG_01", "Paging with foreign identity is ignored",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     std::size_t mark = tb.uplink_captures().size();
                     NasMessage page(MsgType::kPaging);
                     page.set_s("identity", "guti-99999");
                     tb.inject_downlink(conn, nas::encode_plain(page));
                     tb.run_until_quiet();
                     return uplink_types_since(tb, mark).empty();
                   }});

  suite.push_back({"TC_NAS_CFG_01", "Configuration update completes",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     tb.mme_configuration_update(conn);
                     tb.run_until_quiet();
                     return !tb.mme().has_pending_procedure(conn);
                   }});

  suite.push_back({"TC_NAS_ID_01", "Protected identity request is answered",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     tb.mme_identity_request(conn);
                     tb.run_until_quiet();
                     return !tb.mme().has_pending_procedure(conn);
                   }});

  suite.push_back({"TC_NAS_ESM_01", "Default EPS bearer activated via attach piggyback",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     return tb.ue(conn).esm_bearer_id() == 5;
                   }});

  suite.push_back({"TC_NAS_ATT_05", "Re-attach after UE detach completes with a fresh AKA",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     tb.ue_detach(conn);
                     tb.run_until_quiet();
                     if (!ue::is_deregistered(tb.ue(conn).state())) return false;
                     tb.power_on(conn);
                     tb.run_until_quiet();
                     return ue::is_registered(tb.ue(conn).state()) &&
                            tb.ue(conn).authentications_completed() == 2;
                   }});

  suite.push_back({"TC_NAS_ATT_06", "Three consecutive attach/detach cycles stay stable",
                   [](Testbed& tb, int conn) {
                     for (int round = 0; round < 3; ++round) {
                       if (!complete_attach(tb, conn)) return false;
                       tb.ue_detach(conn);
                       tb.run_until_quiet();
                       if (!ue::is_deregistered(tb.ue(conn).state())) return false;
                     }
                     // The USIM consumed three strictly increasing SQNs.
                     return tb.ue(conn).usim().highest_accepted_seq() == 3;
                   }});

  suite.push_back({"TC_NAS_GUTI_03", "Repeated GUTI reallocations rotate the identifier",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     std::set<std::string> seen{tb.ue(conn).guti()};
                     for (int round = 0; round < 3; ++round) {
                       tb.mme_guti_reallocation(conn);
                       tb.run_until_quiet();
                       if (!seen.insert(tb.ue(conn).guti()).second) return false;
                     }
                     return seen.size() == 4;
                   }});

  suite.push_back({"TC_NAS_SRV_04", "Paging after TAU still reaches the UE",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     tb.ue_tau(conn);
                     tb.run_until_quiet();
                     std::size_t mark = tb.uplink_captures().size();
                     tb.mme_paging(conn);
                     tb.run_until_quiet();
                     return ue::is_registered(tb.ue(conn).state()) &&
                            sent_uplink_since(tb, mark, MsgType::kServiceRequest);
                   }});

  // --- Security-conformance cases (the deviant profiles fail these) ----------

  suite.push_back({"TC_NAS_SEC_01", "Replayed protected downlink message is discarded",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     // Replay the captured attach_accept (stale NAS COUNT).
                     const Capture* accept = nullptr;
                     for (const Capture& c : tb.downlink_captures()) {
                       if (c.pdu.sec_hdr == SecHdr::kIntegrityCiphered) accept = &c;
                     }
                     if (!accept) return false;
                     tb.inject_downlink(conn, accept->pdu);
                     tb.run_until_quiet();
                     return tb.ue(conn).replays_accepted() == 0;
                   }});

  suite.push_back({"TC_NAS_SEC_02", "Plain message after security context is discarded",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     NasMessage cmd(MsgType::kGutiReallocationCommand);
                     cmd.set_s("guti", "guti-attacker");
                     tb.inject_downlink(conn, nas::encode_plain(cmd));
                     tb.run_until_quiet();
                     return tb.ue(conn).plain_accepted_after_ctx() == 0 &&
                            tb.ue(conn).guti() != "guti-attacker";
                   }});

  suite.push_back({"TC_NAS_SEC_03", "Replayed authentication_request (same SQN) is refused",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     const NasPdu* auth =
                         tb.last_downlink_of_type(conn, MsgType::kAuthenticationRequest);
                     if (!auth) return false;
                     std::size_t mark = tb.uplink_captures().size();
                     tb.inject_downlink(conn, *auth);
                     tb.run_until_quiet();
                     auto types = uplink_types_since(tb, mark);
                     return !types.empty() && types.front() == MsgType::kAuthenticationFailure;
                   }});

  suite.push_back({"TC_NAS_SEC_04", "attach_reject deletes the security context",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     NasMessage reject(MsgType::kAttachReject);
                     reject.set_s("cause", "illegal_ue");
                     tb.inject_downlink(conn, nas::encode_plain(reject));
                     tb.run_until_quiet();
                     if (!ue::is_deregistered(tb.ue(conn).state())) return false;
                     int runs_before = tb.ue(conn).authentications_completed();
                     tb.power_on(conn);
                     tb.run_until_quiet();
                     // Conformant: re-registration requires a fresh AKA run.
                     return ue::is_registered(tb.ue(conn).state()) &&
                            tb.ue(conn).authentications_completed() == runs_before + 1;
                   }});

  suite.push_back({"TC_NAS_SEC_07", "Replayed security_mode_command is discarded",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     const NasPdu* smc =
                         tb.last_downlink_of_type(conn, MsgType::kSecurityModeCommand);
                     if (!smc) return false;
                     tb.inject_downlink(conn, *smc);
                     tb.run_until_quiet();
                     // Spec behavior: the stale SMC must be ignored. Every
                     // analyzed stack answers it (I6's linkability surface).
                     return tb.ue(conn).replays_accepted() == 0;
                   }});

  suite.push_back({"TC_NAS_SEC_08", "Plain service_reject detaches a registered UE (standards gap)",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     NasMessage reject(MsgType::kServiceReject);
                     reject.set_s("cause", "not_authorized");
                     tb.inject_downlink(conn, nas::encode_plain(reject));
                     tb.run_until_quiet();
                     // Deployed behavior (the numb/service-denial attack
                     // surface): the unauthenticated reject is processed.
                     return ue::is_deregistered(tb.ue(conn).state());
                   }});

  suite.push_back({"TC_NAS_SEC_06", "Plain detach_request is processed (deployed standards gap)",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     NasMessage req(MsgType::kDetachRequest);
                     req.set_s("detach_type", "reattach_required");
                     tb.inject_downlink(conn, nas::encode_plain(req));
                     tb.run_until_quiet();
                     // Deployed behavior (and the attack surface): the UE
                     // detaches on the unauthenticated request.
                     return ue::is_deregistered(tb.ue(conn).state());
                   }});

  suite.push_back({"TC_NAS_SEC_05", "Plain identity_request after context is ignored",
                   [](Testbed& tb, int conn) {
                     if (!complete_attach(tb, conn)) return false;
                     std::size_t mark = tb.uplink_captures().size();
                     NasMessage req(MsgType::kIdentityRequest);
                     req.set_s("id_type", "imsi");
                     tb.inject_downlink(conn, nas::encode_plain(req));
                     tb.run_until_quiet();
                     return uplink_types_since(tb, mark).empty();
                   }});

  return suite;
}

}  // namespace

const std::vector<TestCase>& conformance_suite() {
  static const std::vector<TestCase> kSuite = build_suite();
  return kSuite;
}

bool complete_attach(Testbed& tb, int conn) {
  tb.power_on(conn);
  tb.run_until_quiet();
  auto attached = [&tb, conn] {
    return ue::is_registered(tb.ue(conn).state()) &&
           tb.mme().state(conn) == mme::MmeState::kRegistered;
  };
  // Under an actively faulty channel the first exchange may lose messages;
  // let the UE/MME retransmission timers recover. With no channel (or an
  // all-zero one) this loop never runs, keeping fault-free byte-identity.
  const ChannelModel* ch = tb.channel();
  const bool faulty = ch && (ch->config().downlink.active() || ch->config().uplink.active());
  for (int i = 0; faulty && !attached() && i < 120; ++i) tb.tick();
  return attached();
}

std::optional<NasPdu> capture_dropped_challenge(Testbed& tb, int conn) {
  bool done = false;
  std::optional<NasPdu> captured;
  tb.set_downlink_interceptor([&done, &captured, conn](int c, const NasPdu& pdu) {
    if (c != conn || done) return AdversaryAction::pass();
    auto msg = nas::decode_payload(pdu.payload);
    if (!msg || msg->type != MsgType::kAuthenticationRequest) {
      return AdversaryAction::pass();
    }
    done = true;
    captured = pdu;
    return AdversaryAction::drop();
  });
  // Malicious-UE attach with the victim's identity: the MME generates and
  // transmits a fresh challenge, which the adversary swallows.
  NasMessage req(MsgType::kAttachRequest);
  req.set_s("identity", tb.ue(conn).imsi());
  tb.inject_uplink(conn, nas::encode_plain(req));
  tb.run_until_quiet();
  tb.clear_interceptors();
  // Restore the victim's registration (the attacker's attach_request reset
  // the MME-side session).
  tb.power_on(conn);
  tb.run_until_quiet();
  if (!ue::is_registered(tb.ue(conn).state())) return std::nullopt;
  return captured;
}

int ConformanceReport::passed() const {
  int n = 0;
  for (const TestResult& r : results) {
    if (r.passed) ++n;
  }
  return n;
}

std::vector<std::string> expected_ue_handlers(const ue::StackProfile& profile) {
  static constexpr std::string_view kIncoming[] = {
      "power_on_trigger", "detach_trigger", "service_request_trigger", "tau_trigger",
      "authentication_request", "security_mode_command", "attach_accept", "attach_reject",
      "identity_request", "guti_reallocation_command", "detach_request", "detach_accept",
      "tracking_area_update_accept", "tracking_area_update_reject", "service_reject",
      "paging", "authentication_reject", "configuration_update_command", "emm_information",
  };
  static constexpr std::string_view kOutgoing[] = {
      "attach_request", "attach_complete", "authentication_response",
      "authentication_failure", "security_mode_complete", "security_mode_reject",
      "identity_response", "guti_reallocation_complete", "detach_request", "detach_accept",
      "tracking_area_update_request", "service_request", "configuration_update_complete",
  };
  std::vector<std::string> out;
  for (std::string_view h : kIncoming) out.push_back(profile.recv_prefix + std::string(h));
  for (std::string_view h : kOutgoing) out.push_back(profile.send_prefix + std::string(h));
  return out;
}

ConformanceReport run_conformance(const ue::StackProfile& profile,
                                  instrument::TraceLogger& trace,
                                  const ChannelConfig* channel) {
  ConformanceReport report;
  std::uint64_t case_index = 0;
  for (const TestCase& tc : conformance_suite()) {
    trace.test_case(tc.id);
    Testbed tb(&trace);
    if (channel) {
      // Per-case sub-seed: cases stay independent (removing one does not
      // shift the fault stream of the others) and the run is deterministic.
      ChannelConfig per_case = *channel;
      per_case.seed = splitmix64(channel->seed ^ (0x9E3779B97F4A7C15ULL * (case_index + 1)));
      tb.set_channel(per_case);
    }
    ++case_index;
    int conn = tb.add_ue(profile, kTestImsi, kTestKey);
    bool ok = tc.run(tb, conn);
    // A case that never quiesced livelocked on in-flight traffic; its
    // verdict is not trustworthy, so it cannot count as a pass.
    const bool quiesced = tb.step_limit_hits() == 0;
    report.results.push_back({tc.id, ok && quiesced, quiesced});
    if (tb.channel()) report.channel.merge(tb.channel()->stats());
  }

  // Handler coverage from the accumulated trace.
  std::set<std::string> entered;
  for (const instrument::LogRecord& rec : trace.records()) {
    if (rec.kind == instrument::LogRecord::Kind::kEnter) entered.insert(rec.name);
  }
  std::vector<std::string> expected = expected_ue_handlers(profile);
  int hit = 0;
  for (const std::string& h : expected) {
    if (entered.count(h) > 0) {
      ++hit;
    } else {
      report.unexercised.push_back(h);
    }
  }
  report.handler_coverage = expected.empty() ? 0.0 : static_cast<double>(hit) / expected.size();
  return report;
}

}  // namespace procheck::testing
