// Counterexample replay: executes a model-checker counterexample against the
// live stacks on the testbed — the paper's final validation step ("the
// counterexample is presented as a feasible attack and tested on the
// testbed", §VI), automated.
//
// The replayer walks the trace and interprets each step:
//   * UE/MME internal events  → the corresponding testbed trigger;
//   * adversary drop          → a one-shot interceptor for that message;
//   * adversary replay        → re-injection of the captured PDU of that
//                               type (for authentication_request, a
//                               dropped-challenge capture per Fig. 4);
//   * adversary inject        → a crafted plaintext PDU of that type;
//   * genuine deliveries      → advanced by running the testbed to quiet.
//
// The result reports which adversary actions could be realized and how the
// live UE's observable state evolved, so callers can assert the attack's
// impact (key desync, bypassed procedures, leaked identities, ...).
#pragma once

#include <string>
#include <vector>

#include "mc/checker.h"
#include "testing/testbed.h"

namespace procheck::testing {

struct ReplayReport {
  bool completed = false;       // every adversary step was realized
  int adversary_steps = 0;      // total adversary actions in the trace
  int realized_steps = 0;       // successfully executed on the testbed
  std::vector<std::string> actions;  // human-readable action log
  std::string failure;          // first unrealizable step, if any

  // Observable impact captured after the replay.
  ue::EmmState final_ue_state = ue::EmmState::kDeregistered;
  bool ue_context_valid = false;
  int ue_replays_accepted = 0;
  int ue_plain_accepted = 0;
  int ue_authentications = 0;
  int mme_aborted_procedures = 0;
};

class CounterexampleReplayer {
 public:
  /// `tb` must contain an attached UE on `conn` (the steady state the
  /// model's reachable attacks start from is re-established internally when
  /// the trace begins with an attach).
  CounterexampleReplayer(Testbed& tb, int conn) : tb_(tb), conn_(conn) {}

  /// Replays the trace. For lasso counterexamples the loop body is executed
  /// `loop_unrollings` times (e.g. P3's drop-forever loop is demonstrated
  /// by dropping through the whole retransmission budget).
  ReplayReport replay(const mc::CounterExample& cex, int loop_unrollings = 6);

 private:
  bool execute_adversary_step(const mc::TraceStep& step, ReplayReport& report);
  /// Builds an injectable plaintext PDU for a fabricated message.
  nas::NasPdu craft_plain(const std::string& message) const;

  Testbed& tb_;
  int conn_;
};

}  // namespace procheck::testing
