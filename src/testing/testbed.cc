#include "testing/testbed.h"

#include <algorithm>

namespace procheck::testing {

Testbed::Testbed(instrument::TraceLogger* ue_trace, instrument::TraceLogger* mme_trace,
                 std::uint64_t seed)
    : ue_trace_(ue_trace), mme_(seed, mme_trace) {}

int Testbed::add_ue(const ue::StackProfile& profile, const std::string& imsi,
                    std::uint64_t key) {
  mme_.provision_subscriber(imsi, key);
  return add_unprovisioned_ue(profile, imsi, key);
}

int Testbed::add_unprovisioned_ue(const ue::StackProfile& profile, const std::string& imsi,
                                  std::uint64_t key) {
  int conn_id = next_conn_++;
  ues_.emplace(conn_id, ue::UeNas(profile, key, imsi, ue_trace_));
  return conn_id;
}

void Testbed::clear_interceptors() {
  downlink_icpt_ = nullptr;
  uplink_icpt_ = nullptr;
}

void Testbed::power_on(int conn_id) { enqueue_uplink(conn_id, ue(conn_id).power_on_attach()); }
void Testbed::ue_detach(int conn_id) { enqueue_uplink(conn_id, ue(conn_id).trigger_detach()); }
void Testbed::ue_service_request(int conn_id) {
  enqueue_uplink(conn_id, ue(conn_id).trigger_service_request());
}
void Testbed::ue_tau(int conn_id) { enqueue_uplink(conn_id, ue(conn_id).trigger_tau()); }

void Testbed::mme_guti_reallocation(int conn_id) {
  enqueue_downlink(mme_.start_guti_reallocation(conn_id));
}
void Testbed::mme_identity_request(int conn_id) {
  enqueue_downlink(mme_.start_identity_request(conn_id));
}
void Testbed::mme_detach(int conn_id) { enqueue_downlink(mme_.start_detach(conn_id)); }
void Testbed::mme_configuration_update(int conn_id) {
  enqueue_downlink(mme_.start_configuration_update(conn_id));
}
void Testbed::mme_paging(int conn_id) { enqueue_downlink(mme_.start_paging(conn_id)); }

void Testbed::inject_downlink(int conn_id, const nas::NasPdu& pdu) {
  downlink_queue_.push_back({conn_id, pdu});
}

void Testbed::inject_uplink(int conn_id, const nas::NasPdu& pdu) {
  uplink_queue_.push_back({conn_id, pdu});
}

void Testbed::enqueue_uplink(int conn_id, std::vector<nas::NasPdu> pdus) {
  for (auto& pdu : pdus) uplink_queue_.push_back({conn_id, std::move(pdu)});
}

void Testbed::enqueue_downlink(std::vector<mme::Outgoing> out) {
  for (auto& o : out) downlink_queue_.push_back({o.conn_id, std::move(o.pdu)});
}

void Testbed::age_delayed() {
  for (std::size_t i = 0; i < delayed_.size();) {
    if (--delayed_[i].steps_left > 0) {
      ++i;
      continue;
    }
    DelayedItem released = std::move(delayed_[i]);
    delayed_.erase(delayed_.begin() + static_cast<std::ptrdiff_t>(i));
    released.item.channel_exempt = true;
    (released.is_downlink ? downlink_queue_ : uplink_queue_).push_back(std::move(released.item));
  }
}

bool Testbed::channel_consumes(QueueItem& item, bool is_downlink, std::deque<QueueItem>& queue) {
  if (!channel_ || item.channel_exempt) return false;
  switch (channel_->transfer(is_downlink, item.pdu)) {
    case ChannelFault::kDrop:
      return true;  // physical loss: never reaches the adversary position
    case ChannelFault::kDuplicate: {
      QueueItem copy = item;
      copy.channel_exempt = true;
      queue.push_back(std::move(copy));
      return false;  // original delivered now, copy later
    }
    case ChannelFault::kReorder:
      if (!queue.empty()) {
        item.channel_exempt = true;
        queue.push_back(std::move(item));
        return true;
      }
      return false;  // nothing to slip behind — deliver as-is
    case ChannelFault::kDelay:
      delayed_.push_back({std::move(item), is_downlink, channel_->draw_delay()});
      return true;
    case ChannelFault::kCorrupt:  // bit already flipped in place
    case ChannelFault::kNone:
      return false;
  }
  return false;
}

bool Testbed::step() {
  if (channel_ && !delayed_.empty()) age_delayed();
  // Alternate fairness is unnecessary: drain downlink first so responses to
  // a UE arrive before its next uplink is processed.
  if (!downlink_queue_.empty()) {
    QueueItem item = std::move(downlink_queue_.front());
    downlink_queue_.pop_front();
    if (channel_consumes(item, /*is_downlink=*/true, downlink_queue_)) return true;
    AdversaryAction action =
        downlink_icpt_ ? downlink_icpt_(item.conn_id, item.pdu) : AdversaryAction::pass();
    dl_captures_.push_back({item.conn_id, item.pdu, action.kind != AdversaryAction::Kind::kDrop,
                            decode(item.conn_id, item.pdu, /*downlink=*/true)});
    switch (action.kind) {
      case AdversaryAction::Kind::kDrop:
        return true;
      case AdversaryAction::Kind::kReplace:
        item.pdu = std::move(action.replacement);
        break;
      case AdversaryAction::Kind::kPass:
        break;
    }
    enqueue_uplink(item.conn_id, ue(item.conn_id).handle_downlink(item.pdu));
    return true;
  }
  if (!uplink_queue_.empty()) {
    QueueItem item = std::move(uplink_queue_.front());
    uplink_queue_.pop_front();
    if (channel_consumes(item, /*is_downlink=*/false, uplink_queue_)) return true;
    AdversaryAction action =
        uplink_icpt_ ? uplink_icpt_(item.conn_id, item.pdu) : AdversaryAction::pass();
    ul_captures_.push_back({item.conn_id, item.pdu, action.kind != AdversaryAction::Kind::kDrop,
                            decode(item.conn_id, item.pdu, /*downlink=*/false)});
    switch (action.kind) {
      case AdversaryAction::Kind::kDrop:
        return true;
      case AdversaryAction::Kind::kReplace:
        item.pdu = std::move(action.replacement);
        break;
      case AdversaryAction::Kind::kPass:
        break;
    }
    enqueue_downlink(mme_.handle_uplink(item.conn_id, item.pdu));
    return true;
  }
  // Parked PDUs still count as in-flight traffic: aging them is progress.
  return channel_ && !delayed_.empty();
}

Testbed::QuiesceReport Testbed::run_until_quiet_report(int max_steps) {
  QuiesceReport report;
  for (int i = 0; i < max_steps; ++i) {
    if (channel_ && downlink_queue_.empty() && uplink_queue_.empty() && !delayed_.empty()) {
      // Only parked traffic remains: each step would age the delay line one
      // tick and do nothing else. Fast-forward the logical clock to one tick
      // before the next release so step budget is spent on deliveries.
      int horizon = delayed_.front().steps_left;
      for (const DelayedItem& d : delayed_) horizon = std::min(horizon, d.steps_left);
      if (horizon > 1) {
        for (DelayedItem& d : delayed_) d.steps_left -= horizon - 1;
        ++report.horizon_skips;
      }
    }
    if (!step()) return report;
    ++report.deliveries;
  }
  ++step_limit_hits_;
  report.verdict = QuiesceReport::Verdict::kStepBudget;
  return report;
}

bool Testbed::run_until_quiet(int max_steps) {
  return run_until_quiet_report(max_steps).quiet();
}

void Testbed::tick(int n) {
  for (int i = 0; i < n; ++i) {
    enqueue_downlink(mme_.tick());
    for (auto& [conn_id, u] : ues_) enqueue_uplink(conn_id, u.tick());
    run_until_quiet();
  }
}

std::optional<nas::NasMessage> Testbed::decode(int conn_id, const nas::NasPdu& pdu,
                                               bool downlink) const {
  if (pdu.sec_hdr == nas::SecHdr::kPlain || pdu.sec_hdr == nas::SecHdr::kIntegrity) {
    return nas::decode_payload(pdu.payload);
  }
  const nas::SecurityContext* ctx = mme_.security(conn_id);
  if (!ctx || !ctx->valid) return std::nullopt;
  Bytes plain = nas::nas_cipher(
      ctx->k_nas_enc, pdu.count,
      downlink ? nas::Direction::kDownlink : nas::Direction::kUplink, pdu.payload);
  return nas::decode_payload(plain);
}

const nas::NasPdu* Testbed::last_downlink_of_type(int conn_id, nas::MsgType type) const {
  for (auto it = dl_captures_.rbegin(); it != dl_captures_.rend(); ++it) {
    if (it->conn_id != conn_id) continue;
    if (it->clear && it->clear->type == type) return &it->pdu;
  }
  return nullptr;
}

}  // namespace procheck::testing
