#include "testing/channel_model.h"

#include <algorithm>
#include <cmath>

namespace procheck::testing {

std::string_view to_string(ChannelFault fault) {
  switch (fault) {
    case ChannelFault::kNone:
      return "none";
    case ChannelFault::kDrop:
      return "drop";
    case ChannelFault::kDuplicate:
      return "duplicate";
    case ChannelFault::kReorder:
      return "reorder";
    case ChannelFault::kDelay:
      return "delay";
    case ChannelFault::kCorrupt:
      return "corrupt";
  }
  return "none";
}

void ChannelStats::merge(const ChannelStats& other) {
  auto add = [](Direction& into, const Direction& from) {
    into.offered += from.offered;
    into.dropped += from.dropped;
    into.duplicated += from.duplicated;
    into.reordered += from.reordered;
    into.delayed += from.delayed;
    into.corrupted += from.corrupted;
  };
  add(downlink, other.downlink);
  add(uplink, other.uplink);
}

bool ChannelModel::roll(double probability) {
  // Fixed-point comparison keeps the draw platform-independent; zero-rate
  // faults consume no randomness, so single-fault regimes draw identical
  // streams regardless of which other knobs exist.
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  const auto threshold = static_cast<std::uint64_t>(std::llround(probability * 1'000'000.0));
  return rng_.next_below(1'000'000) < threshold;
}

void ChannelModel::flip_random_bit(nas::NasPdu& pdu) {
  if (!pdu.payload.empty()) {
    const std::size_t byte = static_cast<std::size_t>(rng_.next_below(pdu.payload.size()));
    pdu.payload[byte] ^= static_cast<std::uint8_t>(1u << rng_.next_below(8));
    return;
  }
  // Payload-less PDU: mangle the MAC instead.
  pdu.mac ^= std::uint64_t{1} << rng_.next_below(64);
}

ChannelFault ChannelModel::transfer(bool is_downlink, nas::NasPdu& pdu) {
  const FaultProfile& profile = is_downlink ? config_.downlink : config_.uplink;
  ChannelStats::Direction& dir = is_downlink ? stats_.downlink : stats_.uplink;
  ++dir.offered;
  if (!profile.active()) return ChannelFault::kNone;

  if (roll(profile.drop)) {
    ++dir.dropped;
    return ChannelFault::kDrop;
  }
  if (roll(profile.corrupt)) {
    flip_random_bit(pdu);
    ++dir.corrupted;
    return ChannelFault::kCorrupt;
  }
  if (roll(profile.duplicate)) {
    ++dir.duplicated;
    return ChannelFault::kDuplicate;
  }
  if (roll(profile.reorder)) {
    ++dir.reordered;
    return ChannelFault::kReorder;
  }
  if (roll(profile.delay)) {
    ++dir.delayed;
    return ChannelFault::kDelay;
  }
  return ChannelFault::kNone;
}

int ChannelModel::draw_delay() {
  const int bound = std::max(1, config_.max_delay_steps);
  return 1 + static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(bound)));
}

}  // namespace procheck::testing
