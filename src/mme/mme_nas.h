// MME-side NAS (EMM) protocol implementation.
//
// Serves as the core-network substrate for the testbed and conformance
// runs: subscriber database, authentication-vector generation (with the TS
// 33.102 Annex C SQN generator), security-mode control, attach/detach/TAU
// service handling, paging, and the network-initiated "common procedures"
// (GUTI reallocation, identity request, configuration update) with the
// bounded timer-retransmission discipline (T3450-style: retransmit on each
// expiry, abort after the fifth) whose abortability P3 exploits.
//
// The paper did not have core-network source access and used a manually
// built MME model for checking; this implementation exists so that the
// conformance suite and the testbed have a live peer, and so the extractor
// can also be demonstrated on the network side (DESIGN.md §7).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "instrument/trace_log.h"
#include "nas/messages.h"
#include "nas/security_context.h"
#include "nas/sqn.h"

namespace procheck::mme {

/// MME-side per-association EMM states (mirrors TS 24.301 §5.1.3.4).
enum class MmeState : std::uint8_t {
  kDeregistered,
  kCommonProcedureInitiated,  // authentication outstanding
  kWaitSmcComplete,
  kWaitAttachComplete,
  kRegistered,
  kDeregisteredInitiated,
};

std::string_view to_string(MmeState s);

/// state_signatures for extracting the MME-side FSM.
inline constexpr std::string_view kMmeStateNames[] = {
    "MME_DEREGISTERED",
    "MME_COMMON_PROCEDURE_INITIATED",
    "MME_WAIT_SMC_COMPLETE",
    "MME_WAIT_ATTACH_COMPLETE",
    "MME_REGISTERED",
    "MME_DEREGISTERED_INITIATED",
};

/// A downlink PDU addressed to one connection (the testbed routes it).
struct Outgoing {
  int conn_id = 0;
  nas::NasPdu pdu;
};

class MmeNas {
 public:
  explicit MmeNas(std::uint64_t seed = 0x4D4D45ULL,
                  instrument::TraceLogger* trace = nullptr);

  /// Registers a subscriber (IMSI + permanent key) in the HSS database.
  void provision_subscriber(const std::string& imsi, std::uint64_t permanent_key);

  /// Uplink entry point for one connection.
  std::vector<Outgoing> handle_uplink(int conn_id, const nas::NasPdu& pdu);

  // --- Network-initiated procedures (timer-supervised, ×4 retransmissions).
  std::vector<Outgoing> start_guti_reallocation(int conn_id);
  std::vector<Outgoing> start_identity_request(int conn_id);
  std::vector<Outgoing> start_detach(int conn_id);
  std::vector<Outgoing> start_configuration_update(int conn_id);
  std::vector<Outgoing> start_paging(int conn_id);

  /// Advances logical time by one tick; expiring timers retransmit their
  /// command, and on the fifth expiry the procedure is aborted (TS 24.301
  /// T3450 discipline — the P3 attack surface).
  std::vector<Outgoing> tick();

  // --- Observability.
  MmeState state(int conn_id) const;
  const std::string& guti(int conn_id) const;
  bool has_pending_procedure(int conn_id) const;
  /// Number of timer-supervised procedures abandoned after all retries (P3).
  int procedures_aborted() const { return procedures_aborted_; }
  const nas::SecurityContext* security(int conn_id) const;
  /// Uplink messages discarded for failed integrity (P1 desync marker).
  int protected_discards() const { return protected_discards_; }

  /// Timer period in ticks and the retransmission bound (4 retransmissions,
  /// abort on the 5th expiry), exposed for tests and the P3 bench.
  static constexpr int kTimerPeriod = 3;
  static constexpr int kMaxRetransmissions = 4;

  /// Test hook: forces the HSS SQN state for a subscriber (used by the
  /// conformance suite to provoke genuine resynchronization runs).
  void debug_set_sqn(const std::string& imsi, std::uint64_t seq, std::uint32_t ind = 0);

 private:
  struct PendingCommand {
    nas::NasPdu pdu;                 // retransmitted verbatim
    nas::MsgType awaiting_type;      // completion message that stops the timer
    int ticks_left = kTimerPeriod;
    int retransmissions = 0;
  };

  struct Session {
    MmeState state = MmeState::kDeregistered;
    std::string imsi;  // bound after identification/attach
    std::string guti = "none";
    nas::SecurityContext sec;
    std::optional<std::uint32_t> last_ul;  // last accepted uplink NAS COUNT
    // Outstanding AKA run.
    Bytes rand;
    std::uint64_t xres = 0;
    std::uint64_t kasme = 0;
    // Encoded authentication_request of the outstanding run — re-sent
    // verbatim when the *byte-identical* attach_request that started it
    // arrives again (a duplicating/retransmitting channel), instead of
    // restarting the AKA. A differing attach_request (new identity bytes,
    // new capabilities — e.g. a genuine re-attach) always restarts.
    std::optional<nas::NasPdu> challenge;
    Bytes attach_payload;  // payload of the attach_request that started it
    std::optional<PendingCommand> pending;
    int guti_serial = 0;
  };

  Session& session(int conn_id);
  const Session* find_session(int conn_id) const;

  // Incoming handlers.
  std::vector<Outgoing> recv_attach_request(int conn_id, const nas::NasMessage& msg,
                                            const nas::NasPdu& pdu, bool was_protected);
  std::vector<Outgoing> recv_authentication_response(int conn_id, const nas::NasMessage& msg);
  std::vector<Outgoing> recv_authentication_failure(int conn_id, const nas::NasMessage& msg);
  std::vector<Outgoing> recv_security_mode_complete(int conn_id);
  std::vector<Outgoing> recv_attach_complete(int conn_id);
  std::vector<Outgoing> recv_identity_response(int conn_id, const nas::NasMessage& msg);
  std::vector<Outgoing> recv_detach_request(int conn_id);
  std::vector<Outgoing> recv_tau_request(int conn_id, const nas::NasMessage& msg);
  std::vector<Outgoing> recv_service_request(int conn_id, const nas::NasMessage& msg);
  std::vector<Outgoing> recv_guti_reallocation_complete(int conn_id);
  std::vector<Outgoing> recv_configuration_update_complete(int conn_id);
  std::vector<Outgoing> recv_detach_accept(int conn_id);

  /// Builds a fresh authentication vector and the authentication_request.
  Outgoing make_authentication_request(int conn_id);
  Outgoing send_plain(int conn_id, nas::NasMessage msg);
  Outgoing send_protected(int conn_id, nas::NasMessage msg,
                          nas::SecHdr hdr = nas::SecHdr::kIntegrityCiphered);
  /// Registers a timer-supervised command for (re)transmission.
  void arm_timer(int conn_id, const nas::NasPdu& pdu, nas::MsgType awaiting);
  void complete_pending(int conn_id, nas::MsgType completion);
  std::string next_guti(Session& s);

  // Trace helpers.
  void trace_enter(std::string_view fn);
  void trace_state(int conn_id);
  void trace_local(std::string_view name, std::uint64_t value);

  std::map<std::string, std::uint64_t> hss_;  // IMSI -> permanent key
  // HSS-level SQN state: persists across attaches (TS 33.102 Annex C.1.2).
  // Being long-lived is what makes days-old captured authentication_requests
  // usable in the P1 attack.
  std::map<std::string, nas::SqnGenerator> hss_sqn_;
  std::map<int, Session> sessions_;
  Rng rng_;
  instrument::TraceLogger* trace_;
  int procedures_aborted_ = 0;
  int protected_discards_ = 0;
  int guti_counter_ = 0;
};

}  // namespace procheck::mme
