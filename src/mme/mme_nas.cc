#include "mme/mme_nas.h"

#include "nas/crypto.h"

namespace procheck::mme {

using nas::Direction;
using nas::EmmCause;
using nas::MsgType;
using nas::NasMessage;
using nas::NasPdu;
using nas::SecHdr;

std::string_view to_string(MmeState s) {
  switch (s) {
    case MmeState::kDeregistered:
      return "MME_DEREGISTERED";
    case MmeState::kCommonProcedureInitiated:
      return "MME_COMMON_PROCEDURE_INITIATED";
    case MmeState::kWaitSmcComplete:
      return "MME_WAIT_SMC_COMPLETE";
    case MmeState::kWaitAttachComplete:
      return "MME_WAIT_ATTACH_COMPLETE";
    case MmeState::kRegistered:
      return "MME_REGISTERED";
    case MmeState::kDeregisteredInitiated:
      return "MME_DEREGISTERED_INITIATED";
  }
  return "MME_DEREGISTERED";
}

MmeNas::MmeNas(std::uint64_t seed, instrument::TraceLogger* trace)
    : rng_(seed), trace_(trace) {}

void MmeNas::provision_subscriber(const std::string& imsi, std::uint64_t permanent_key) {
  hss_[imsi] = permanent_key;
}

void MmeNas::debug_set_sqn(const std::string& imsi, std::uint64_t seq, std::uint32_t ind) {
  hss_sqn_[imsi] = nas::SqnGenerator(seq, ind);
}

MmeNas::Session& MmeNas::session(int conn_id) { return sessions_[conn_id]; }

const MmeNas::Session* MmeNas::find_session(int conn_id) const {
  auto it = sessions_.find(conn_id);
  return it == sessions_.end() ? nullptr : &it->second;
}

MmeState MmeNas::state(int conn_id) const {
  const Session* s = find_session(conn_id);
  return s ? s->state : MmeState::kDeregistered;
}

const std::string& MmeNas::guti(int conn_id) const {
  static const std::string kNone = "none";
  const Session* s = find_session(conn_id);
  return s ? s->guti : kNone;
}

bool MmeNas::has_pending_procedure(int conn_id) const {
  const Session* s = find_session(conn_id);
  return s && s->pending.has_value();
}

const nas::SecurityContext* MmeNas::security(int conn_id) const {
  const Session* s = find_session(conn_id);
  return s ? &s->sec : nullptr;
}

// --- Trace helpers -----------------------------------------------------------

void MmeNas::trace_enter(std::string_view fn) {
  if (trace_) trace_->enter(fn);
}

void MmeNas::trace_state(int conn_id) {
  if (!trace_) return;
  trace_->global("mme_state", to_string(session(conn_id).state));
  trace_->global("assigned_guti", session(conn_id).guti);
}

void MmeNas::trace_local(std::string_view name, std::uint64_t value) {
  if (trace_) trace_->local(name, value);
}

// --- Send helpers ------------------------------------------------------------

Outgoing MmeNas::send_plain(int conn_id, NasMessage msg) {
  trace_enter(std::string("send_") + std::string(standard_name(msg.type)));
  return {conn_id, encode_plain(msg)};
}

Outgoing MmeNas::send_protected(int conn_id, NasMessage msg, SecHdr hdr) {
  trace_enter(std::string("send_") + std::string(standard_name(msg.type)));
  Session& s = session(conn_id);
  return {conn_id, protect(msg, s.sec, Direction::kDownlink, hdr)};
}

std::string MmeNas::next_guti(Session& s) {
  s.guti_serial = ++guti_counter_;
  return "guti-" + std::to_string(s.guti_serial);
}

void MmeNas::arm_timer(int conn_id, const NasPdu& pdu, MsgType awaiting) {
  Session& s = session(conn_id);
  s.pending = PendingCommand{pdu, awaiting, kTimerPeriod, 0};
}

void MmeNas::complete_pending(int conn_id, MsgType completion) {
  Session& s = session(conn_id);
  if (s.pending && s.pending->awaiting_type == completion) {
    s.pending.reset();
  }
}

Outgoing MmeNas::make_authentication_request(int conn_id) {
  Session& s = session(conn_id);
  const std::uint64_t k = hss_.at(s.imsi);
  nas::Sqn sqn = hss_sqn_[s.imsi].next();
  s.rand = rng_.next_bytes(16);
  s.xres = nas::f2_res(k, s.rand);
  s.kasme = nas::derive_kasme(k, s.rand, sqn.value());

  nas::Autn autn;
  autn.sqn_xor_ak = (sqn.value() ^ nas::f5_ak(k, s.rand)) & nas::kSqnMask;
  autn.amf = 0x8000;
  autn.mac = nas::f1_mac(k, sqn.value(), s.rand, autn.amf);

  NasMessage req(MsgType::kAuthenticationRequest);
  req.set_b("rand", s.rand);
  req.set_b("autn", autn.encode());
  s.state = MmeState::kCommonProcedureInitiated;
  trace_state(conn_id);
  Outgoing out = send_plain(conn_id, std::move(req));
  s.challenge = out.pdu;
  return out;
}

// --- Uplink routing ----------------------------------------------------------

std::vector<Outgoing> MmeNas::handle_uplink(int conn_id, const NasPdu& pdu) {
  trace_enter("s1ap_msg_handler");
  Session& s = session(conn_id);

  NasMessage msg;
  bool was_protected = pdu.sec_hdr != SecHdr::kPlain;
  if (was_protected) {
    nas::UnprotectResult res = unprotect(pdu, s.sec, Direction::kUplink);
    if (res.status != nas::UnprotectResult::Status::kOk) {
      ++protected_discards_;
      trace_local("mac_valid", 0);
      return {};
    }
    // Conformant replay protection: strictly increasing uplink COUNT.
    if (s.last_ul && pdu.count <= *s.last_ul) {
      trace_local("count_ok", 0);
      return {};
    }
    s.last_ul = pdu.count;
    msg = std::move(res.msg);
  } else {
    auto decoded = nas::decode_payload(pdu.payload);
    if (!decoded) {
      trace_local("well_formed", 0);
      return {};
    }
    msg = std::move(*decoded);
    // Only initial/identity/failure messages are acceptable unprotected.
    switch (msg.type) {
      case MsgType::kAttachRequest:
      case MsgType::kIdentityResponse:
      case MsgType::kAuthenticationResponse:
      case MsgType::kAuthenticationFailure:
      case MsgType::kDetachRequest:
      case MsgType::kTauRequest:
      case MsgType::kServiceRequest:
        break;
      default:
        trace_local("plain_allowed", 0);
        return {};
    }
  }

  switch (msg.type) {
    case MsgType::kAttachRequest:
      return recv_attach_request(conn_id, msg, pdu, was_protected);
    case MsgType::kAuthenticationResponse:
      return recv_authentication_response(conn_id, msg);
    case MsgType::kAuthenticationFailure:
      return recv_authentication_failure(conn_id, msg);
    case MsgType::kSecurityModeComplete:
      return recv_security_mode_complete(conn_id);
    case MsgType::kSecurityModeReject:
      trace_enter("recv_security_mode_reject");
      session(conn_id).state = MmeState::kDeregistered;
      trace_state(conn_id);
      return {};
    case MsgType::kAttachComplete:
      return recv_attach_complete(conn_id);
    case MsgType::kIdentityResponse:
      return recv_identity_response(conn_id, msg);
    case MsgType::kDetachRequest:
      return recv_detach_request(conn_id);
    case MsgType::kDetachAccept:
      return recv_detach_accept(conn_id);
    case MsgType::kTauRequest:
      return recv_tau_request(conn_id, msg);
    case MsgType::kServiceRequest:
      return recv_service_request(conn_id, msg);
    case MsgType::kGutiReallocationComplete:
      return recv_guti_reallocation_complete(conn_id);
    case MsgType::kConfigurationUpdateComplete:
      return recv_configuration_update_complete(conn_id);
    default:
      trace_local("unexpected_message", 1);
      return {};
  }
}

// --- Incoming handlers -------------------------------------------------------

std::vector<Outgoing> MmeNas::recv_attach_request(int conn_id, const NasMessage& msg,
                                                  const NasPdu& pdu, bool was_protected) {
  trace_enter("recv_attach_request");
  Session& s = session(conn_id);
  const std::string identity = msg.get_s("identity");

  if (was_protected && s.sec.valid && s.state != MmeState::kDeregisteredInitiated) {
    // Integrity-verified attach with an existing context: fast re-attach
    // without a fresh AKA run (the path srsUE's I4 exploits end-to-end).
    trace_local("ctx_reuse", 1);
    s.state = MmeState::kWaitAttachComplete;
    NasMessage accept(MsgType::kAttachAccept);
    accept.set_s("guti", s.guti != "none" ? s.guti : next_guti(s));
    s.guti = accept.get_s("guti");
    Outgoing out = send_protected(conn_id, accept);
    arm_timer(conn_id, out.pdu, MsgType::kAttachComplete);
    trace_state(conn_id);
    return {out};
  }

  if (!was_protected && s.state == MmeState::kCommonProcedureInitiated && s.challenge &&
      pdu.payload == s.attach_payload) {
    // A byte-identical copy of the attach_request whose AKA run is still
    // outstanding: a channel duplicate/retransmission, not a new attach.
    // Re-send the pending challenge verbatim rather than resetting the run
    // (which would livelock against a UE answering the superseded
    // challenge). Any differing attach_request falls through and restarts.
    trace_local("retransmission", 1);
    trace_state(conn_id);
    return {Outgoing{conn_id, *s.challenge}};
  }

  // Fresh attach: identify the subscriber, then authenticate.
  s = Session{};
  s.attach_payload = pdu.payload;
  if (hss_.count(identity) > 0) {
    s.imsi = identity;
  } else {
    // Unknown identity (e.g. a GUTI we no longer map): identification.
    trace_local("identity_known", 0);
    NasMessage idreq(MsgType::kIdentityRequest);
    idreq.set_s("id_type", "imsi");
    s.state = MmeState::kCommonProcedureInitiated;
    trace_state(conn_id);
    return {send_plain(conn_id, std::move(idreq))};
  }
  trace_local("identity_known", 1);
  return {make_authentication_request(conn_id)};
}

std::vector<Outgoing> MmeNas::recv_identity_response(int conn_id, const NasMessage& msg) {
  trace_enter("recv_identity_response");
  Session& s = session(conn_id);
  const std::string identity = msg.get_s("identity");
  if (s.state == MmeState::kCommonProcedureInitiated && s.imsi.empty()) {
    if (hss_.count(identity) == 0) {
      NasMessage reject(MsgType::kAttachReject);
      reject.set_s("cause", std::string(to_string(EmmCause::kImsiUnknown)));
      s.state = MmeState::kDeregistered;
      trace_state(conn_id);
      return {send_plain(conn_id, std::move(reject))};
    }
    s.imsi = identity;
    return {make_authentication_request(conn_id)};
  }
  complete_pending(conn_id, MsgType::kIdentityResponse);
  return {};
}

std::vector<Outgoing> MmeNas::recv_authentication_response(int conn_id, const NasMessage& msg) {
  trace_enter("recv_authentication_response");
  Session& s = session(conn_id);
  if (s.state != MmeState::kCommonProcedureInitiated) {
    // Unsolicited response (no outstanding challenge): ignored.
    trace_local("state_ok", 0);
    return {};
  }
  const std::uint64_t res = msg.get_u("res");
  const bool res_ok = res == s.xres;
  trace_local("res_valid", res_ok ? 1 : 0);
  if (!res_ok) {
    NasMessage reject(MsgType::kAuthenticationReject);
    s.state = MmeState::kDeregistered;
    trace_state(conn_id);
    return {send_plain(conn_id, std::move(reject))};
  }

  // Activate NAS security and run security-mode control.
  s.sec.establish(s.kasme, /*eia=*/1, /*eea=*/1);
  s.last_ul.reset();
  s.state = MmeState::kWaitSmcComplete;
  NasMessage smc(MsgType::kSecurityModeCommand);
  smc.set_u("eia", 1);
  smc.set_u("eea", 1);
  smc.set_u("replayed_ue_capability", 0x7);
  trace_state(conn_id);
  // SMC itself is integrity-protected but not ciphered (the UE cannot
  // decipher before learning the algorithms).
  return {send_protected(conn_id, std::move(smc), SecHdr::kIntegrity)};
}

std::vector<Outgoing> MmeNas::recv_authentication_failure(int conn_id, const NasMessage& msg) {
  trace_enter("recv_authentication_failure");
  Session& s = session(conn_id);
  const std::string cause = msg.get_s("cause");
  trace_local("cause", cause == "synch_failure" ? 21 : 20);

  if (cause == "synch_failure") {
    auto auts = nas::Auts::decode(msg.get_b("auts"));
    if (!auts || s.imsi.empty()) return {};
    const std::uint64_t k = hss_.at(s.imsi);
    const std::uint64_t sqn_ms = (auts->sqn_ms_xor_ak ^ nas::f5star_ak(k, s.rand)) & nas::kSqnMask;
    if (nas::f1star_mac(k, sqn_ms, s.rand) != auts->mac_s) {
      trace_local("auts_valid", 0);
      return {};
    }
    trace_local("auts_valid", 1);
    // Resynchronize the HSS sequence counter to the USIM's view.
    hss_sqn_[s.imsi] = nas::SqnGenerator(nas::Sqn::from_value(sqn_ms).seq,
                                         nas::Sqn::from_value(sqn_ms).ind);
    return {make_authentication_request(conn_id)};
  }

  // MAC failure: one fresh retry.
  return {make_authentication_request(conn_id)};
}

std::vector<Outgoing> MmeNas::recv_security_mode_complete(int conn_id) {
  trace_enter("recv_security_mode_complete");
  Session& s = session(conn_id);
  if (s.state != MmeState::kWaitSmcComplete) {
    trace_local("state_ok", 0);
    return {};
  }
  s.state = MmeState::kWaitAttachComplete;
  NasMessage accept(MsgType::kAttachAccept);
  s.guti = next_guti(s);
  accept.set_s("guti", s.guti);
  // ESM piggyback (TS 24.301 §6.4.1): the default EPS bearer context
  // activation rides on the attach accept.
  accept.set_u("esm_bearer_id", 5);
  Outgoing out = send_protected(conn_id, accept);
  arm_timer(conn_id, out.pdu, MsgType::kAttachComplete);
  trace_state(conn_id);
  return {out};
}

std::vector<Outgoing> MmeNas::recv_attach_complete(int conn_id) {
  trace_enter("recv_attach_complete");
  Session& s = session(conn_id);
  complete_pending(conn_id, MsgType::kAttachComplete);
  s.state = MmeState::kRegistered;
  if (trace_) trace_->local("esm_bearer_active", 1);
  trace_state(conn_id);
  return {};
}

std::vector<Outgoing> MmeNas::recv_detach_request(int conn_id) {
  trace_enter("recv_detach_request");
  Session& s = session(conn_id);
  s.state = MmeState::kDeregistered;
  s.sec.clear();
  s.last_ul.reset();
  trace_state(conn_id);
  return {send_plain(conn_id, NasMessage(MsgType::kDetachAccept))};
}

std::vector<Outgoing> MmeNas::recv_detach_accept(int conn_id) {
  trace_enter("recv_detach_accept");
  Session& s = session(conn_id);
  complete_pending(conn_id, MsgType::kDetachAccept);
  s.state = MmeState::kDeregistered;
  s.sec.clear();
  s.last_ul.reset();
  trace_state(conn_id);
  return {};
}

std::vector<Outgoing> MmeNas::recv_tau_request(int conn_id, const NasMessage&) {
  trace_enter("recv_tracking_area_update_request");
  Session& s = session(conn_id);
  if (!s.sec.valid || s.state != MmeState::kRegistered) {
    NasMessage reject(MsgType::kTauReject);
    reject.set_s("cause", std::string(to_string(EmmCause::kNotAuthorized)));
    trace_state(conn_id);
    return {send_plain(conn_id, std::move(reject))};
  }
  NasMessage accept(MsgType::kTauAccept);
  trace_state(conn_id);
  return {send_protected(conn_id, std::move(accept))};
}

std::vector<Outgoing> MmeNas::recv_service_request(int conn_id, const NasMessage&) {
  trace_enter("recv_service_request");
  Session& s = session(conn_id);
  if (!s.sec.valid || s.state != MmeState::kRegistered) {
    NasMessage reject(MsgType::kServiceReject);
    reject.set_s("cause", std::string(to_string(EmmCause::kNotAuthorized)));
    trace_state(conn_id);
    return {send_plain(conn_id, std::move(reject))};
  }
  // Service granted: confirmed to the UE with an EMM information message
  // (stands in for the user-plane bearer establishment).
  NasMessage info(MsgType::kEmmInformation);
  trace_state(conn_id);
  return {send_protected(conn_id, std::move(info))};
}

std::vector<Outgoing> MmeNas::recv_guti_reallocation_complete(int conn_id) {
  trace_enter("recv_guti_reallocation_complete");
  Session& s = session(conn_id);
  if (s.pending && s.pending->awaiting_type == MsgType::kGutiReallocationComplete) {
    // Adopt the reallocated GUTI only on completion.
    s.guti = "guti-" + std::to_string(s.guti_serial);
    s.pending.reset();
  }
  trace_state(conn_id);
  return {};
}

std::vector<Outgoing> MmeNas::recv_configuration_update_complete(int conn_id) {
  trace_enter("recv_configuration_update_complete");
  complete_pending(conn_id, MsgType::kConfigurationUpdateComplete);
  trace_state(conn_id);
  return {};
}

// --- Network-initiated procedures --------------------------------------------

std::vector<Outgoing> MmeNas::start_guti_reallocation(int conn_id) {
  Session& s = session(conn_id);
  if (s.state != MmeState::kRegistered || !s.sec.valid) return {};
  NasMessage cmd(MsgType::kGutiReallocationCommand);
  cmd.set_s("guti", next_guti(s));  // adopted only on completion
  Outgoing out = send_protected(conn_id, std::move(cmd));
  arm_timer(conn_id, out.pdu, MsgType::kGutiReallocationComplete);
  return {out};
}

std::vector<Outgoing> MmeNas::start_identity_request(int conn_id) {
  Session& s = session(conn_id);
  if (!s.sec.valid) return {};
  NasMessage req(MsgType::kIdentityRequest);
  req.set_s("id_type", "imsi");
  Outgoing out = send_protected(conn_id, std::move(req));
  arm_timer(conn_id, out.pdu, MsgType::kIdentityResponse);
  return {out};
}

std::vector<Outgoing> MmeNas::start_detach(int conn_id) {
  Session& s = session(conn_id);
  if (s.state != MmeState::kRegistered) return {};
  s.state = MmeState::kDeregisteredInitiated;
  NasMessage req(MsgType::kDetachRequest);
  req.set_s("detach_type", "reattach_required");
  Outgoing out = send_protected(conn_id, std::move(req));
  arm_timer(conn_id, out.pdu, MsgType::kDetachAccept);
  return {out};
}

std::vector<Outgoing> MmeNas::start_configuration_update(int conn_id) {
  Session& s = session(conn_id);
  if (s.state != MmeState::kRegistered || !s.sec.valid) return {};
  NasMessage cmd(MsgType::kConfigurationUpdateCommand);
  cmd.set_u("config_serial", static_cast<std::uint64_t>(guti_counter_ + 1000));
  Outgoing out = send_protected(conn_id, std::move(cmd));
  arm_timer(conn_id, out.pdu, MsgType::kConfigurationUpdateComplete);
  return {out};
}

std::vector<Outgoing> MmeNas::start_paging(int conn_id) {
  Session& s = session(conn_id);
  NasMessage page(MsgType::kPaging);
  page.set_s("identity", s.guti != "none" ? s.guti : s.imsi);
  return {send_plain(conn_id, std::move(page))};
}

// --- Timers ------------------------------------------------------------------

std::vector<Outgoing> MmeNas::tick() {
  std::vector<Outgoing> out;
  for (auto& [conn_id, s] : sessions_) {
    if (!s.pending) continue;
    if (--s.pending->ticks_left > 0) continue;
    if (s.pending->retransmissions < kMaxRetransmissions) {
      ++s.pending->retransmissions;
      s.pending->ticks_left = kTimerPeriod;
      // Retransmission is re-protected with a fresh downlink COUNT so a
      // conformant receiver does not treat it as a replay.
      if (s.pending->pdu.sec_hdr == SecHdr::kPlain) {
        out.push_back({conn_id, s.pending->pdu});
      } else {
        auto msg = unprotect(s.pending->pdu, s.sec, Direction::kDownlink);
        // The stored PDU was produced by this session's context; decode
        // cannot fail unless the context was re-established meanwhile.
        if (msg.status == nas::UnprotectResult::Status::kOk) {
          SecHdr hdr = s.pending->pdu.sec_hdr;
          s.pending->pdu = protect(msg.msg, s.sec, Direction::kDownlink, hdr);
          out.push_back({conn_id, s.pending->pdu});
        }
      }
    } else {
      // Fifth expiry: abort the procedure (TS 24.301 T3450 discipline). The
      // old GUTI / security context stays in use — P3's impact.
      s.pending.reset();
      ++procedures_aborted_;
      if (s.state == MmeState::kWaitAttachComplete) s.state = MmeState::kRegistered;
      if (s.state == MmeState::kDeregisteredInitiated) s.state = MmeState::kRegistered;
    }
  }
  return out;
}

}  // namespace procheck::mme
