#include "learner/lstar.h"

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "learner/output_trie.h"

namespace procheck::learner {

namespace {

using Word = std::vector<std::string>;

Word concat(const Word& a, const Word& b) {
  Word out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

/// Observation table backed by the prefix-closed OutputTrie cache. Instead
/// of querying lazily cell-by-cell, each closure/consistency round first
/// collects every unresolved cell word, dedupes it (exact duplicates *and*
/// words that are proper prefixes of another word in the same batch — the
/// trie answers those for free), and ships the remainder as one
/// Sul::query_batch() call. The answers are deterministic, so the built
/// hypothesis is byte-identical to the old one-query-per-cell path; only
/// the transport cost changes.
class ObservationTable {
 public:
  ObservationTable(Sul& sul, LearnResult& result) : sul_(sul), result_(result) {
    prefixes_.push_back({});  // ε
    for (const std::string& a : input_alphabet()) {
      suffixes_.push_back({a});
    }
  }

  /// Output suffix for prefix·suffix (the last |suffix| outputs).
  Word cell(const Word& prefix, const Word& suffix) {
    Word outputs = query(concat(prefix, suffix));
    return Word(outputs.end() - static_cast<std::ptrdiff_t>(suffix.size()), outputs.end());
  }

  /// Row signature of a prefix over all suffixes.
  std::string row(const Word& prefix) {
    std::string sig;
    for (const Word& e : suffixes_) {
      for (const std::string& o : cell(prefix, e)) {
        sig += o;
        sig += '|';
      }
      sig += ';';
    }
    return sig;
  }

  /// True once any membership query came back unanswerable: the SUL
  /// degraded to kSulUnavailable, so every row signature from here on is
  /// untrustworthy and learning must stop.
  bool unavailable() const { return unavailable_; }

  /// Makes the table closed and consistent; returns the hypothesis.
  MealyMachine close_and_build() {
    for (bool changed = true; changed && !unavailable_;) {
      changed = false;
      // Resolve every cell this round can touch in one deduplicated batch
      // before the row scans below read them back out of the trie.
      prefetch_round();
      if (unavailable_) break;
      // Closedness: every one-step extension's row must match some prefix row.
      std::set<std::string> prefix_rows;
      for (const Word& s : prefixes_) prefix_rows.insert(row(s));
      for (std::size_t i = 0; i < prefixes_.size() && !changed; ++i) {
        for (const std::string& a : input_alphabet()) {
          Word ext = concat(prefixes_[i], {a});
          if (is_prefix(ext)) continue;
          if (prefix_rows.count(row(ext)) == 0) {
            prefixes_.push_back(ext);
            changed = true;
            break;
          }
        }
      }
      if (changed) continue;
      // Consistency: equal rows must have equal successor rows.
      for (std::size_t i = 0; i < prefixes_.size() && !changed; ++i) {
        for (std::size_t j = i + 1; j < prefixes_.size() && !changed; ++j) {
          if (row(prefixes_[i]) != row(prefixes_[j])) continue;
          for (const std::string& a : input_alphabet()) {
            Word ei = concat(prefixes_[i], {a});
            Word ej = concat(prefixes_[j], {a});
            if (row(ei) != row(ej)) {
              // Find the distinguishing suffix and prepend `a`.
              for (const Word& e : std::vector<Word>(suffixes_)) {
                if (cell(ei, e) != cell(ej, e)) {
                  add_suffix(concat({a}, e));
                  changed = true;
                  break;
                }
              }
              break;
            }
          }
        }
      }
    }
    // An unanswerable table cannot support a hypothesis; hand back an empty
    // machine rather than building states out of kSulUnavailable rows.
    return unavailable_ ? MealyMachine() : build();
  }

  /// Counterexample processing: add every suffix of the word to E.
  void process_counterexample(const Word& cex) {
    for (std::size_t i = 0; i < cex.size(); ++i) {
      add_suffix(Word(cex.begin() + static_cast<std::ptrdiff_t>(i), cex.end()));
    }
  }

  Word query(const Word& word) {
    if (auto cached = trie_.lookup(word)) return *cached;
    ++result_.membership_queries;
    Word outputs = sul_.query_word(word);
    if (!record(word, outputs)) unavailable_ = true;
    return outputs;
  }

  const OutputTrie& trie() const { return trie_; }

 private:
  /// Caches a real observation; false when it contained kSulUnavailable
  /// (unanswerable words are never cached — a later retry, e.g. after the
  /// remote circuit closes again, must hit the SUL, not the poison).
  bool record(const Word& word, const Word& outputs) {
    for (const std::string& o : outputs) {
      if (o == kSulUnavailable) return false;
    }
    trie_.insert(word, outputs);
    return true;
  }

  /// Collects every word the current round's row scans will need, drops the
  /// ones the trie already answers, dedupes the rest (exact duplicates and
  /// proper prefixes of a longer batched word — a Mealy prefix is free once
  /// the longer word is cached), and ships them as one batch.
  void prefetch_round() {
    std::set<Word> need;
    auto want = [&](const Word& p) {
      for (const Word& e : suffixes_) {
        Word w = concat(p, e);
        if (!trie_.contains(w)) need.insert(std::move(w));
      }
    };
    for (const Word& s : prefixes_) {
      want(s);
      for (const std::string& a : input_alphabet()) want(concat(s, {a}));
    }
    if (need.empty()) return;

    // std::set iterates in lexicographic order, so a word that is a proper
    // prefix of another lands immediately before its first extension —
    // one adjacency check removes every subsumed word.
    std::vector<Word> batch;
    batch.reserve(need.size());
    for (auto it = need.begin(); it != need.end(); ++it) {
      auto next = std::next(it);
      const bool subsumed = next != need.end() && next->size() > it->size() &&
                            std::equal(it->begin(), it->end(), next->begin());
      if (!subsumed) batch.push_back(*it);
    }

    ++result_.batch_queries;
    result_.batched_words += static_cast<long>(batch.size());
    result_.membership_queries += static_cast<long>(batch.size());
    std::vector<Word> answers = sul_.query_batch(batch);
    for (std::size_t i = 0; i < batch.size() && i < answers.size(); ++i) {
      if (!record(batch[i], answers[i])) unavailable_ = true;
    }
  }
  bool is_prefix(const Word& w) const {
    return std::find(prefixes_.begin(), prefixes_.end(), w) != prefixes_.end();
  }

  void add_suffix(const Word& e) {
    if (std::find(suffixes_.begin(), suffixes_.end(), e) == suffixes_.end()) {
      suffixes_.push_back(e);
    }
  }

  MealyMachine build() {
    MealyMachine m;
    std::map<std::string, int> state_of_row;
    std::vector<Word> representative;
    for (const Word& s : prefixes_) {
      std::string r = row(s);
      if (state_of_row.emplace(r, static_cast<int>(representative.size())).second) {
        representative.push_back(s);
      }
    }
    m.state_count = static_cast<int>(representative.size());
    m.initial = state_of_row.at(row({}));
    for (std::size_t q = 0; q < representative.size(); ++q) {
      for (const std::string& a : input_alphabet()) {
        Word ext = concat(representative[q], {a});
        const Word out = cell(representative[q], {a});
        m.delta[{static_cast<int>(q), a}] = {state_of_row.at(row(ext)), out.front()};
      }
    }
    return m;
  }

  Sul& sul_;
  LearnResult& result_;
  bool unavailable_ = false;
  std::vector<Word> prefixes_;   // S
  std::vector<Word> suffixes_;   // E
  OutputTrie trie_;  // prefix-closed T: answers every cached word *and* its prefixes
};

}  // namespace

std::vector<std::string> MealyMachine::run(const std::vector<std::string>& word) const {
  std::vector<std::string> outputs;
  int state = initial;
  for (const std::string& a : word) {
    auto it = delta.find({state, a});
    if (it == delta.end()) {
      outputs.push_back("null");
      continue;
    }
    state = it->second.first;
    outputs.push_back(it->second.second);
  }
  return outputs;
}

fsm::Fsm MealyMachine::to_fsm() const {
  fsm::Fsm m;
  m.set_initial("q" + std::to_string(initial));
  for (const auto& [key, value] : delta) {
    fsm::Transition t;
    t.from = "q" + std::to_string(key.first);
    t.to = "q" + std::to_string(value.first);
    t.conditions = {key.second};
    t.actions = {value.second == "null" ? fsm::kNullAction : value.second};
    m.add_transition(std::move(t));
  }
  return m;
}

LearnResult learn_mealy(Sul& sul, const LearnOptions& options) {
  LearnResult result;
  ObservationTable table(sul, result);
  Rng rng(options.seed);
  const auto cancelled = [&options] {
    return options.cancel != nullptr && options.cancel->cancelled();
  };

  for (int round = 0; round < options.max_rounds && !cancelled(); ++round) {
    result.machine = table.close_and_build();
    if (table.unavailable()) break;
    ++result.equivalence_queries;

    // Random-testing equivalence oracle.
    bool found_cex = false;
    for (int t = 0; t < options.eq_test_words && !found_cex && !cancelled(); ++t) {
      std::size_t len = 1 + rng.next_below(static_cast<std::uint64_t>(options.eq_test_max_length));
      std::vector<std::string> word;
      for (std::size_t i = 0; i < len; ++i) {
        word.push_back(input_alphabet()[rng.next_below(input_alphabet().size())]);
      }
      if (table.query(word) != result.machine.run(word)) {
        if (table.unavailable()) break;
        ++result.counterexamples;
        table.process_counterexample(word);
        found_cex = true;
      }
    }
    if (table.unavailable()) break;
    if (!found_cex) {
      result.converged = true;
      break;
    }
  }
  if (table.unavailable()) {
    result.inconclusive = true;
    result.converged = false;
    result.note = "sul_unavailable during membership query; learning aborted";
    const std::string why = sul.unavailable_reason();
    if (!why.empty()) result.note += " (" + why + ")";
  } else if (!result.converged && cancelled()) {
    result.inconclusive = true;
    result.note = "learning cancelled";
  }
  result.sul_resets = sul.resets();
  result.sul_steps = sul.steps();
  const OutputTrie::Stats& cache = table.trie().stats();
  result.cache_hits = cache.hits;
  result.cache_prefix_hits = cache.prefix_hits;
  result.cache_misses = cache.misses;
  result.nondeterministic_cached = cache.nondeterministic;
  return result;
}

}  // namespace procheck::learner
