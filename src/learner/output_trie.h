// Mealy output trie — the learner's prefix-closed membership-query cache
// (DESIGN.md §14).
//
// A Mealy machine's output for a word determines its output for every prefix
// of that word, so caching whole (word → outputs) pairs in a flat map throws
// away information: the map can answer `abc` yet miss `ab`. The trie stores
// one output symbol per edge instead, which makes every proper prefix of any
// inserted word answerable for free — the "prefix hit" the stats below
// count, and the reason the batched observation-table rounds can drop words
// that are prefixes of other words in the same batch.
//
// Determinism contract: the first observation of an edge wins. A later
// insert that disagrees on an edge output does not overwrite it (the cached
// answer stays stable run-to-run) but is counted in stats().nondeterministic
// — the same flag-don't-flap policy as the transport's majority-vote cache.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace procheck::learner {

class OutputTrie {
 public:
  struct Stats {
    long hits = 0;           // lookup answered at an explicitly inserted word
    long prefix_hits = 0;    // lookup answered purely from a longer word's edges
    long misses = 0;         // lookup had an unknown edge
    long insertions = 0;     // insert() calls that added at least one edge
    long nondeterministic = 0;  // inserts that disagreed with a cached edge
  };

  /// Records outputs for word (sizes must match; mismatches are ignored).
  /// Existing edges keep their first-observed output; disagreement is
  /// flagged, never applied.
  void insert(const std::vector<std::string>& word, const std::vector<std::string>& outputs);

  /// Full output word when every edge along `word` is known; counts a hit,
  /// prefix hit, or miss in stats().
  std::optional<std::vector<std::string>> lookup(const std::vector<std::string>& word);

  /// lookup() without touching the stats (for planning passes that must not
  /// inflate the hit counters).
  bool contains(const std::vector<std::string>& word) const;

  /// Length of the longest prefix of `word` whose edges are all known — how
  /// far a replay could resume from cache.
  std::size_t known_prefix_length(const std::vector<std::string>& word) const;

  std::size_t node_count() const { return nodes_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Edge {
    int child = -1;
    std::string output;
  };
  struct Node {
    std::map<std::string, Edge> next;
    bool endpoint = false;  // an insert() ended exactly here
  };

  /// Walks `word`; returns the terminal node index or -1 on an unknown edge.
  int walk(const std::vector<std::string>& word) const;

  std::vector<Node> nodes_{1};  // [0] = root (ε)
  Stats stats_;
};

}  // namespace procheck::learner
