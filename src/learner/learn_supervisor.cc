#include "learner/learn_supervisor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "common/bytes.h"
#include "common/journal.h"
#include "common/rng.h"
#include "learner/output_trie.h"

namespace procheck::learner {

namespace {

using Word = std::vector<std::string>;
using Clock = std::chrono::steady_clock;

// Words the learner can produce are short (prefix + suffix, both bounded by
// the round count and eq_test_max_length); anything near this cap in a
// journal is damage, not data.
constexpr std::size_t kMaxObservationLength = 1024;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", s);
  return buf;
}

/// Strict single-space tokenizer: empty tokens (leading/trailing/double
/// separators) reject the whole payload — a journal line is either exactly
/// well-formed or not adopted.
std::vector<std::string> split_tokens(std::string_view payload) {
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  while (pos <= payload.size()) {
    std::size_t sp = payload.find(' ', pos);
    if (sp == std::string_view::npos) sp = payload.size();
    if (sp == pos) return {};
    tokens.emplace_back(payload.substr(pos, sp - pos));
    pos = sp + 1;
  }
  return tokens;
}

bool is_alphabet_symbol(const std::string& s) {
  const std::vector<std::string>& a = input_alphabet();
  return std::find(a.begin(), a.end(), s) != a.end();
}

Word unavailable_word(std::size_t n) { return Word(n, kSulUnavailable); }

std::string word_text(const Word& w) {
  std::string out;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (i != 0) out += '.';
    out += w[i];
  }
  return out;
}

/// The crash-safety decorator learn_mealy actually talks to. Every answered
/// membership query flows through exactly one of two paths:
///   replay — the (exact) word is in the adopted/committed record set, so it
///   is served without SUL contact but *counted* as if run (one reset +
///   |word| steps), keeping the learner's cost metrics byte-identical to an
///   uninterrupted run;
///   fresh — the word goes to the inner SUL, is validated, arbitrated
///   against the committed trie on conflict, and journaled before the
///   per-query watchdog may poison the attempt (journal-first, so a retry
///   resumes *past* the slow query instead of repeating it).
/// Poisoning is cooperative: the internal CancelToken is cancelled and every
/// later query answers kSulUnavailable instantly, so the learner unwinds to
/// a structured inconclusive without further SUL contact.
class JournaledSul final : public Sul {
 public:
  JournaledSul(Sul& inner, const LearnSupervisorOptions& options,
               std::unique_ptr<JournalWriter> writer, std::string header_line,
               std::vector<LearnObservation> adopted)
      : inner_(inner),
        options_(options),
        writer_(std::move(writer)),
        header_line_(std::move(header_line)) {
    for (LearnObservation& obs : adopted) {
      trie_.insert(obs.word, obs.outputs);
      replay_[obs.word] = obs.outputs;
      records_.push_back(std::move(obs));
    }
  }

  // --- supervisor-facing --------------------------------------------------
  const CancelToken* token() const { return &token_; }

  void begin_attempt() {
    resets_ = 0;
    steps_ = 0;
    fresh_queries_ = 0;
    fresh_bytes_ = 0;
    poisoned_ = false;
    restart_ = false;
    failure_ = LearnFailure::kNone;
    diag_.clear();
    pending_.clear();
    token_.reset();
    attempt_start_ = Clock::now();
  }

  void finish_attempt() { flush_journal(); }

  bool restart_requested() const { return restart_; }
  LearnFailure failure() const { return failure_; }
  const std::string& diagnostics() const { return diag_; }
  long arbitrations() const { return arbitrations_; }
  long arbitration_requeries() const { return arbitration_requeries_; }
  long arbitration_overrides() const { return arbitration_overrides_; }
  const std::vector<std::string>& quarantined() const { return quarantined_; }
  std::size_t replayed_total() const { return replayed_total_; }
  const std::string& journal_error() const { return journal_error_; }

  std::size_t journal_records() const {
    if (!writer_) return 0;
    const std::size_t r = writer_->records();
    return r > 0 ? r - 1 : 0;  // exclude the header line
  }

  // --- Sul ----------------------------------------------------------------
  void reset() override { pending_.clear(); }

  std::string step(const std::string& input) override {
    pending_.push_back(input);
    const Word outs = query_word(pending_);
    return outs.empty() ? std::string(kSulUnavailable) : outs.back();
  }

  long resets() const override { return resets_; }
  long steps() const override { return steps_; }

  std::string unavailable_reason() const override {
    if (!diag_.empty()) return diag_;
    return inner_.unavailable_reason();
  }

  Word query_word(const Word& word) override {
    poll_external_cancel();
    if (poisoned_) return unavailable_word(word.size());
    if (std::optional<Word> hit = replay_answer(word)) {
      count_served(word);
      ++replayed_total_;
      return *std::move(hit);
    }
    if (!admit_fresh(1, static_cast<long>(word.size()))) {
      return unavailable_word(word.size());
    }
    fire_hook();
    const Clock::time_point start = Clock::now();
    Word outs = inner_.query_word(word);
    ++fresh_queries_;
    fresh_bytes_ += static_cast<long>(word.size());
    fire_hook();
    count_served(word);
    if (!answer_ok(outs, word.size())) {
      poison(LearnFailure::kUnavailable, unavailable_diag(word));
      return unavailable_word(word.size());
    }
    Word committed = commit(word, outs);
    check_query_deadline(start, 1);
    return committed;
  }

  std::vector<Word> query_batch(const std::vector<Word>& words) override {
    poll_external_cancel();
    std::vector<Word> answers(words.size());
    std::vector<std::size_t> fresh_idx;
    long fresh_syms = 0;
    for (std::size_t i = 0; i < words.size(); ++i) {
      if (poisoned_) {
        answers[i] = unavailable_word(words[i].size());
      } else if (std::optional<Word> hit = replay_answer(words[i])) {
        count_served(words[i]);
        ++replayed_total_;
        answers[i] = *std::move(hit);
      } else {
        fresh_idx.push_back(i);
        fresh_syms += static_cast<long>(words[i].size());
      }
    }
    if (fresh_idx.empty()) return answers;
    // Budgets admit a *prefix* of the fresh set: a tripped attempt still
    // ships (and journals) every word that fit, so progress per attempt is
    // monotone even when one batch is larger than the whole budget.
    std::size_t admitted = 0;
    long planned_syms = 0;
    while (admitted < fresh_idx.size()) {
      const long len = static_cast<long>(words[fresh_idx[admitted]].size());
      if (!admit_fresh(static_cast<long>(admitted) + 1, planned_syms + len)) break;
      planned_syms += len;
      ++admitted;
    }
    for (std::size_t j = admitted; j < fresh_idx.size(); ++j) {
      answers[fresh_idx[j]] = unavailable_word(words[fresh_idx[j]].size());
    }
    fresh_idx.resize(admitted);
    if (fresh_idx.empty()) return answers;
    fresh_syms = planned_syms;
    std::vector<Word> fresh_words;
    fresh_words.reserve(fresh_idx.size());
    for (std::size_t i : fresh_idx) fresh_words.push_back(words[i]);
    fire_hook();
    const Clock::time_point start = Clock::now();
    const std::vector<Word> fresh_answers = inner_.query_batch(fresh_words);
    fresh_queries_ += static_cast<long>(fresh_idx.size());
    fresh_bytes_ += fresh_syms;
    fire_hook();
    // A budget poison during admission must not discard the answers the
    // batch already paid for — only a poison arising *here* (unavailable
    // answer, contested arbitration, override restart) halts the commits.
    bool halted = false;
    for (std::size_t j = 0; j < fresh_idx.size(); ++j) {
      const std::size_t i = fresh_idx[j];
      const Word& word = words[i];
      if (halted) {
        answers[i] = unavailable_word(word.size());
        continue;
      }
      count_served(word);
      if (j >= fresh_answers.size() || !answer_ok(fresh_answers[j], word.size())) {
        poison(LearnFailure::kUnavailable, unavailable_diag(word));
        halted = true;
        answers[i] = unavailable_word(word.size());
        continue;
      }
      const bool poisoned_before = poisoned_;
      answers[i] = commit(word, fresh_answers[j]);
      if (restart_ || (poisoned_ && !poisoned_before)) halted = true;
    }
    check_query_deadline(start, static_cast<long>(fresh_idx.size()));
    return answers;
  }

 private:
  void count_served(const Word& word) {
    ++resets_;
    steps_ += static_cast<long>(word.size());
  }

  std::optional<Word> replay_answer(const Word& word) {
    const auto it = replay_.find(word);
    if (it != replay_.end()) return it->second;
    // The journal holds exactly the words the learner asked, so the exact
    // map is normally complete; the trie path only fires when an adopted
    // longer word subsumes a shorter one (e.g. a journal from a further
    // progressed run) — the committed edges still answer it consistently.
    if (trie_.contains(word)) return trie_.lookup(word);
    return std::nullopt;
  }

  static bool answer_ok(const Word& outs, std::size_t expected) {
    if (outs.size() != expected) return false;
    for (const std::string& o : outs) {
      if (o == kSulUnavailable) return false;
    }
    return true;
  }

  std::string unavailable_diag(const Word& word) {
    std::string diag = "sul unavailable at word " + word_text(word);
    const std::string why = inner_.unavailable_reason();
    if (!why.empty()) diag += " (" + why + ")";
    return diag;
  }

  void poll_external_cancel() {
    if (!poisoned_ && options_.cancel != nullptr && options_.cancel->cancelled()) {
      poison(LearnFailure::kCancelled, "learning cancelled by caller");
    }
  }

  void fire_hook() {
    if (options_.fault_hook) options_.fault_hook(probe_counter_++);
  }

  void poison(LearnFailure f, std::string diag) {
    if (poisoned_) return;
    poisoned_ = true;
    failure_ = f;
    diag_ = std::move(diag);
    token_.cancel();
  }

  /// Watchdogs: only *fresh* SUL contact is gated, so a resumed attempt
  /// always replays its journal for free and makes incremental progress.
  bool admit_fresh(long queries, long symbols) {
    if (poisoned_) return false;
    if (options_.deadline_seconds > 0 &&
        seconds_since(attempt_start_) > options_.deadline_seconds) {
      poison(LearnFailure::kDeadline,
             "attempt deadline (" + fmt_seconds(options_.deadline_seconds) +
                 "s) exceeded");
      return false;
    }
    if (options_.query_budget > 0 &&
        fresh_queries_ + queries > options_.query_budget) {
      poison(LearnFailure::kQueryBudget,
             "fresh membership-query budget (" +
                 std::to_string(options_.query_budget) + ") exhausted");
      return false;
    }
    if (options_.byte_budget > 0 && fresh_bytes_ + symbols > options_.byte_budget) {
      poison(LearnFailure::kByteBudget,
             "fresh input-symbol budget (" + std::to_string(options_.byte_budget) +
                 ") exhausted");
      return false;
    }
    return true;
  }

  /// Post-hoc per-query watchdog: the slow answer was already journaled, so
  /// the poisoned attempt's successor resumes past it.
  void check_query_deadline(Clock::time_point start, long queries) {
    if (options_.query_deadline_seconds <= 0 || poisoned_) return;
    const double limit =
        options_.query_deadline_seconds * static_cast<double>(std::max<long>(1, queries));
    const double took = seconds_since(start);
    if (took > limit) {
      poison(LearnFailure::kDeadline,
             "membership query took " + fmt_seconds(took) + "s (deadline " +
                 fmt_seconds(options_.query_deadline_seconds) + "s/query)");
    }
  }

  /// Validates a fresh answer against the committed trie and journals it.
  /// Returns the canonical (committed) outputs the learner should see —
  /// identical to `outs` except when arbitration resolved a conflict.
  Word commit(const Word& word, const Word& outs) {
    const std::size_t known = trie_.known_prefix_length(word);
    Word committed_prefix;
    bool conflict = false;
    if (known > 0) {
      committed_prefix = *trie_.lookup(Word(word.begin(), word.begin() + static_cast<std::ptrdiff_t>(known)));
      for (std::size_t i = 0; i < known; ++i) {
        if (outs[i] != committed_prefix[i]) {
          conflict = true;
          break;
        }
      }
    }
    if (!conflict) {
      commit_record(word, outs);
      return outs;
    }
    if (options_.arbitration_n <= 0) {
      // Arbitration disabled: first observation wins (the pre-supervisor
      // trie policy), but the *journal* stays internally consistent — the
      // fresh answer is coerced onto the committed edges before recording.
      Word canonical = outs;
      for (std::size_t i = 0; i < known; ++i) canonical[i] = committed_prefix[i];
      commit_record(word, canonical);
      return canonical;
    }
    return arbitrate(word, committed_prefix, known);
  }

  /// k-of-n arbitration of a contradicted word. All n samples are fresh
  /// (Sul::query_word_fresh bypasses any transport vote cache — a cache
  /// would echo one answer n times and rig the vote). Outcomes:
  ///   majority agrees with the committed edges — the fresh answer was the
  ///   outlier; commit the majority word and continue;
  ///   majority overturns a committed edge — rewrite every committed record
  ///   crossing that edge, rebuild cache + journal, and request a restart
  ///   (the learner's table was built on the losing answer);
  ///   no position reaches k votes — quarantine the cell and poison the run
  ///   as contested: a structured inconclusive, never a wrong machine.
  Word arbitrate(const Word& word, const Word& committed_prefix, std::size_t known) {
    ++arbitrations_;
    const int n = options_.arbitration_n;
    const int k = options_.arbitration_k;
    std::vector<Word> samples;
    samples.reserve(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      if (!admit_fresh(1, static_cast<long>(word.size()))) {
        return unavailable_word(word.size());
      }
      fire_hook();
      Word sample = inner_.query_word_fresh(word);
      ++fresh_queries_;
      fresh_bytes_ += static_cast<long>(word.size());
      fire_hook();
      count_served(word);
      ++arbitration_requeries_;
      if (!answer_ok(sample, word.size())) {
        poison(LearnFailure::kUnavailable,
               "sul unavailable while arbitrating " + word_text(word));
        return unavailable_word(word.size());
      }
      samples.push_back(std::move(sample));
    }
    Word majority(word.size());
    for (std::size_t pos = 0; pos < word.size(); ++pos) {
      std::map<std::string, int> votes;  // lexicographic order: ties break smallest
      for (const Word& s : samples) ++votes[s[pos]];
      std::string winner;
      int best = 0;
      for (const auto& [sym, cnt] : votes) {
        if (cnt > best) {
          winner = sym;
          best = cnt;
        }
      }
      if (best < k) {
        std::string detail = "no " + std::to_string(k) + "-of-" + std::to_string(n) +
                             " majority for word " + word_text(word) + " at position " +
                             std::to_string(pos) + " (votes:";
        for (const auto& [sym, cnt] : votes) {
          detail += " " + sym + "=" + std::to_string(cnt);
        }
        detail += ")";
        quarantined_.push_back(detail);
        poison(LearnFailure::kContested, detail);
        return unavailable_word(word.size());
      }
      majority[pos] = winner;
    }
    std::vector<std::size_t> overturned;
    for (std::size_t i = 0; i < known; ++i) {
      if (majority[i] != committed_prefix[i]) overturned.push_back(i);
    }
    if (overturned.empty()) {
      commit_record(word, majority);
      return majority;
    }
    ++overrides_total_;
    if (overrides_total_ > options_.max_overrides) {
      std::string detail = "arbitration override bound (" +
                           std::to_string(options_.max_overrides) +
                           ") exceeded at word " + word_text(word) +
                           "; the SUL is too nondeterministic to learn";
      quarantined_.push_back(detail);
      poison(LearnFailure::kContested, detail);
      return unavailable_word(word.size());
    }
    arbitration_overrides_ += static_cast<long>(overturned.size());
    // Rewrite history: every committed record whose word crosses an
    // overturned edge (shares the word's path up to and including that
    // position) takes the majority output there. Records stay mutually
    // consistent — they all receive the same correction.
    for (std::size_t pos : overturned) {
      for (LearnObservation& r : records_) {
        if (r.word.size() > pos &&
            std::equal(word.begin(), word.begin() + static_cast<std::ptrdiff_t>(pos) + 1,
                       r.word.begin())) {
          r.outputs[pos] = majority[pos];
        }
      }
    }
    records_.push_back({word, majority});
    rebuild_cache();
    rewrite_journal();
    // The running attempt's observation table was built on the losing edge:
    // discard it and re-learn from the corrected journal. This is progress,
    // not failure — the supervisor restarts without consuming an attempt.
    restart_ = true;
    poisoned_ = true;
    diag_ = "restarting from corrected journal after arbitration override";
    token_.cancel();
    return majority;
  }

  void commit_record(const Word& word, const Word& outs) {
    trie_.insert(word, outs);
    replay_[word] = outs;
    records_.push_back({word, outs});
    if (!writer_) return;
    writer_->append(encode_observation(word, outs));
    if (++appended_since_flush_ >= std::max(1, options_.journal_commit_every)) {
      flush_journal();
    }
  }

  void flush_journal() {
    if (!writer_ || writer_->pending() == 0) return;
    appended_since_flush_ = 0;
    if (!writer_->commit()) note_journal_error();
  }

  void rebuild_cache() {
    trie_ = OutputTrie();
    replay_.clear();
    for (const LearnObservation& r : records_) {
      trie_.insert(r.word, r.outputs);
      replay_[r.word] = r.outputs;
    }
  }

  /// An override changed already-durable lines, so the journal is rebuilt
  /// from scratch: header + the corrected record set, atomically.
  void rewrite_journal() {
    if (!writer_) return;
    const std::string path = writer_->path();
    writer_.reset();
    std::remove(path.c_str());
    writer_ = std::make_unique<JournalWriter>(path);
    writer_->append(header_line_);
    for (const LearnObservation& r : records_) {
      writer_->append(encode_observation(r.word, r.outputs));
    }
    appended_since_flush_ = 0;
    if (!writer_->commit()) note_journal_error();
  }

  void note_journal_error() {
    if (journal_error_.empty() && writer_) {
      journal_error_ = "journal commit failed at " + writer_->path() +
                       "; learning continued without durability";
    }
  }

  Sul& inner_;
  const LearnSupervisorOptions& options_;
  std::unique_ptr<JournalWriter> writer_;
  std::string header_line_;
  std::string journal_error_;
  int appended_since_flush_ = 0;

  std::vector<LearnObservation> records_;  // journal order
  std::map<Word, Word> replay_;            // exact word -> outputs
  OutputTrie trie_;                        // committed edges (conflict oracle)

  CancelToken token_;
  Word pending_;  // reset()/step() compatibility path
  Clock::time_point attempt_start_{};

  long resets_ = 0;  // logical: replayed words count as if run
  long steps_ = 0;
  long fresh_queries_ = 0;
  long fresh_bytes_ = 0;
  std::size_t replayed_total_ = 0;
  long probe_counter_ = 0;

  long arbitrations_ = 0;
  long arbitration_requeries_ = 0;
  long arbitration_overrides_ = 0;
  int overrides_total_ = 0;
  std::vector<std::string> quarantined_;

  bool poisoned_ = false;
  bool restart_ = false;
  LearnFailure failure_ = LearnFailure::kNone;
  std::string diag_;
};

}  // namespace

std::string_view to_string(LearnFailure f) {
  switch (f) {
    case LearnFailure::kNone: return "none";
    case LearnFailure::kException: return "exception";
    case LearnFailure::kDeadline: return "deadline";
    case LearnFailure::kQueryBudget: return "query_budget";
    case LearnFailure::kByteBudget: return "byte_budget";
    case LearnFailure::kCancelled: return "cancelled";
    case LearnFailure::kContested: return "contested";
    case LearnFailure::kUnavailable: return "sul_unavailable";
  }
  return "unknown";
}

std::string learn_options_hash(const LearnOptions& learn, int arbitration_k,
                               int arbitration_n) {
  std::string canon = "alphabet=";
  const std::vector<std::string>& alphabet = input_alphabet();
  for (std::size_t i = 0; i < alphabet.size(); ++i) {
    if (i != 0) canon += ',';
    canon += alphabet[i];
  }
  canon += ";eq_words=" + std::to_string(learn.eq_test_words);
  canon += ";eq_len=" + std::to_string(learn.eq_test_max_length);
  canon += ";seed=" + std::to_string(learn.seed);
  canon += ";rounds=" + std::to_string(learn.max_rounds);
  canon += ";arbitrate=" + std::to_string(arbitration_k) + "/" +
           std::to_string(arbitration_n) + ";";
  const Bytes bytes(canon.begin(), canon.end());
  const std::uint64_t h = prf64(0x13AD0CA7, bytes);
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(h));
  return hex;
}

std::string encode_learn_header(const std::string& tag, const std::string& opts_hash) {
  return "learn-header v=1 tag=" + tag + " opts=" + opts_hash;
}

std::optional<LearnJournalHeader> decode_learn_header(std::string_view payload) {
  const std::vector<std::string> t = split_tokens(payload);
  if (t.size() != 4 || t[0] != "learn-header" || t[1] != "v=1") return std::nullopt;
  if (t[2].rfind("tag=", 0) != 0 || t[3].rfind("opts=", 0) != 0) return std::nullopt;
  LearnJournalHeader h;
  h.tag = t[2].substr(4);
  h.opts = t[3].substr(5);
  if (h.tag.empty() || h.opts.size() != 16) return std::nullopt;
  for (char c : h.opts) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return std::nullopt;
  }
  return h;
}

std::string encode_observation(const std::vector<std::string>& word,
                               const std::vector<std::string>& outputs) {
  std::string line = "obs " + std::to_string(word.size());
  for (const std::string& s : word) {
    line += ' ';
    line += s;
  }
  for (const std::string& s : outputs) {
    line += ' ';
    line += s;
  }
  return line;
}

std::optional<LearnObservation> decode_observation(std::string_view payload) {
  const std::vector<std::string> t = split_tokens(payload);
  if (t.size() < 2 || t[0] != "obs") return std::nullopt;
  std::size_t len = 0;
  if (t[1].empty()) return std::nullopt;
  for (char c : t[1]) {
    if (c < '0' || c > '9') return std::nullopt;
    len = len * 10 + static_cast<std::size_t>(c - '0');
    if (len > kMaxObservationLength) return std::nullopt;
  }
  if (len == 0 || t.size() != 2 + 2 * len) return std::nullopt;
  LearnObservation obs;
  obs.word.reserve(len);
  obs.outputs.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    const std::string& in = t[2 + i];
    if (!is_alphabet_symbol(in)) return std::nullopt;
    obs.word.push_back(in);
  }
  for (std::size_t i = 0; i < len; ++i) {
    const std::string& out = t[2 + len + i];
    if (out == kSulUnavailable) return std::nullopt;
    obs.outputs.push_back(out);
  }
  return obs;
}

SupervisedLearn learn_supervised(Sul& sul, const LearnSupervisorOptions& options) {
  SupervisedLearn run;
  const int k = options.arbitration_k;
  const int n = options.arbitration_n;
  if (n < 0 || (n > 0 && (k <= n / 2 || k > n))) {
    run.aborted = true;
    run.abort_reason = "invalid arbitration threshold " + std::to_string(k) +
                       "-of-" + std::to_string(n) + " (need n/2 < k <= n)";
    run.result.inconclusive = true;
    run.result.note = run.abort_reason;
    return run;
  }
  const std::string opts_hash = learn_options_hash(options.learn, k, n);
  const std::string tag = options.run_tag.empty() ? "learn" : options.run_tag;
  const std::string header_line = encode_learn_header(tag, opts_hash);

  JournalLock lock;
  std::unique_ptr<JournalWriter> writer;
  std::vector<LearnObservation> adopted;
  if (!options.journal_path.empty()) {
    if (!lock.acquire(options.journal_path)) {
      run.aborted = true;
      run.abort_reason = "concurrent learn run: " + lock.error();
      run.result.inconclusive = true;
      run.result.note = run.abort_reason;
      return run;
    }
    if (options.resume) {
      const JournalLoad load = load_journal(options.journal_path);
      if (!load.payloads.empty()) {
        const std::optional<LearnJournalHeader> header =
            decode_learn_header(load.payloads.front());
        if (!header) {
          run.journal_note = "journal header malformed; starting fresh";
        } else if (header->tag != tag) {
          run.journal_note = "journal header mismatch (tag '" + header->tag +
                             "' vs '" + tag + "'); starting fresh";
        } else if (header->opts != opts_hash) {
          run.aborted = true;
          run.abort_reason =
              "resume refused: journal " + options.journal_path +
              " was written with options hash " + header->opts +
              " but this run has " + opts_hash +
              "; re-run with matching options or delete the journal";
          run.result.inconclusive = true;
          run.result.note = run.abort_reason;
          return run;
        } else {
          // Adopt records through a validation trie: a malformed record or
          // one contradicting an earlier record ends adoption at the valid
          // prefix — resume never guesses at damage.
          OutputTrie vtrie;
          for (std::size_t i = 1; i < load.payloads.size(); ++i) {
            const std::optional<LearnObservation> obs =
                decode_observation(load.payloads[i]);
            bool ok = obs.has_value();
            if (ok) {
              const std::size_t known = vtrie.known_prefix_length(obs->word);
              if (known > 0) {
                const Word prefix(obs->word.begin(),
                                  obs->word.begin() + static_cast<std::ptrdiff_t>(known));
                const Word committed = *vtrie.lookup(prefix);
                for (std::size_t p = 0; p < known; ++p) {
                  if (obs->outputs[p] != committed[p]) {
                    ok = false;
                    break;
                  }
                }
              }
            }
            if (!ok) {
              run.journal_note =
                  "journal record " + std::to_string(i) +
                  (obs ? " contradicts an earlier record" : " is malformed") +
                  "; adopted the valid prefix (" + std::to_string(adopted.size()) +
                  " observations)";
              break;
            }
            vtrie.insert(obs->word, obs->outputs);
            adopted.push_back(*obs);
          }
        }
      }
    }
    // Rebuild the journal deterministically from exactly what was adopted,
    // so the writer and the replay cache agree byte-for-byte on the durable
    // state (JournalWriter's own adoption is CRC-level only — it would keep
    // lines the strict codec above rejected).
    std::remove(options.journal_path.c_str());
    writer = std::make_unique<JournalWriter>(options.journal_path);
    writer->append(header_line);
    for (const LearnObservation& obs : adopted) {
      writer->append(encode_observation(obs.word, obs.outputs));
    }
    if (!writer->commit()) {
      run.journal_error = "journal commit failed at " + options.journal_path +
                          "; learning continued without durability";
    }
  }
  run.adopted = adopted.size();

  JournaledSul wrapper(sul, options, std::move(writer), header_line,
                       std::move(adopted));
  LearnOptions eff = options.learn;
  eff.cancel = wrapper.token();

  const int max_attempts = 1 + std::max(0, options.retries);
  int attempts_used = 0;
  LearnResult result;
  LearnFailure cls = LearnFailure::kNone;
  std::string diag;
  for (;;) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      cls = LearnFailure::kCancelled;
      diag = "learning cancelled by caller";
      result.inconclusive = true;
      result.converged = false;
      break;
    }
    wrapper.begin_attempt();
    bool threw = false;
    std::string what;
    try {
      result = learn_mealy(wrapper, eff);
    } catch (const std::exception& e) {
      threw = true;
      what = e.what();
    } catch (...) {
      threw = true;
      what = "unknown exception";
    }
    wrapper.finish_attempt();
    if (wrapper.restart_requested()) continue;  // override: re-learn, no attempt spent
    ++attempts_used;
    if (threw) {
      cls = LearnFailure::kException;
      diag = "worker exception: " + what;
      result = LearnResult();
      result.inconclusive = true;
      result.note = diag;
    } else if (result.converged) {
      cls = LearnFailure::kNone;
      diag.clear();
    } else if (wrapper.failure() != LearnFailure::kNone) {
      cls = wrapper.failure();
      diag = wrapper.diagnostics();
    } else if (result.inconclusive) {
      cls = LearnFailure::kUnavailable;
      diag = result.note;
    } else {
      cls = LearnFailure::kNone;  // max_rounds exhausted: honest non-convergence
      diag.clear();
    }
    if (cls == LearnFailure::kNone || cls == LearnFailure::kContested ||
        cls == LearnFailure::kCancelled) {
      break;
    }
    if (attempts_used >= max_attempts) {
      result.inconclusive = true;
      result.converged = false;
      if (!result.note.empty()) result.note += " ";
      result.note += "[learn supervisor: " + std::string(to_string(cls)) +
                     " persisted through " + std::to_string(attempts_used) +
                     " attempts]";
      break;
    }
    if (cls == LearnFailure::kDeadline || cls == LearnFailure::kQueryBudget ||
        cls == LearnFailure::kByteBudget) {
      eff.eq_test_words = std::max(
          1, static_cast<int>(static_cast<double>(eff.eq_test_words) * options.degrade_factor));
      eff.eq_test_max_length = std::max(
          1, static_cast<int>(static_cast<double>(eff.eq_test_max_length) * options.degrade_factor));
    }
    if (options.backoff_seconds > 0) {
      const double delay = options.backoff_seconds * std::ldexp(1.0, attempts_used - 1);
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }
  if (cls == LearnFailure::kContested || cls == LearnFailure::kCancelled) {
    result.inconclusive = true;
    result.converged = false;
    if (!diag.empty()) result.note = diag;
  }
  result.arbitrations = wrapper.arbitrations();
  result.arbitration_requeries = wrapper.arbitration_requeries();
  result.arbitration_overrides = wrapper.arbitration_overrides();
  result.quarantined = wrapper.quarantined();
  run.result = std::move(result);
  run.attempts = std::max(1, attempts_used);
  run.failure = cls;
  run.diagnostics = diag;
  run.replayed = wrapper.replayed_total();
  run.journal_records = wrapper.journal_records();
  if (run.journal_error.empty()) run.journal_error = wrapper.journal_error();
  return run;
}

}  // namespace procheck::learner
