// Learning supervisor (DESIGN.md §15 "Crash-safe resumable learning").
//
// Wraps learn_mealy the way checker::run_supervised wraps analyze: the
// learner itself stays a pure, deterministic algorithm, and everything a
// live system-under-learning can do to it — crash the process mid-run,
// hang a query, answer nondeterministically — is absorbed by a decorator
// around the Sul plus a retry ladder around the whole learn:
//
//   * a crash-safe learn journal (common/journal.h) records the
//     alphabet/options fingerprint in its header and every resolved
//     (word → outputs) observation as a CRC-tagged line, so
//     `learn --journal X --resume` replays the surviving observations and
//     continues byte-identically from any kill point;
//   * nondeterminism arbitration: when a fresh answer contradicts an edge
//     the journal already committed, the word is re-queried k-of-n (default
//     3-of-5) through Sul::query_word_fresh (bypassing any transport vote
//     cache), the majority is committed — rewriting the contradicted journal
//     records and restarting the learn when the *committed* edge loses —
//     and cells with no k-majority are quarantined into a structured
//     inconclusive result instead of silently keeping the first observation;
//   * per-query and per-attempt watchdogs (wall-clock deadline, fresh-query
//     and input-symbol budgets) poison the SUL cooperatively (CancelToken +
//     the structured kSulUnavailable symbol), and a retry ladder degrades
//     the equivalence-oracle effort before giving up — learn_supervised can
//     never hang and never lets an exception escape.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.h"
#include "learner/lstar.h"
#include "learner/sul.h"

namespace procheck::learner {

/// How a supervised learn failed to converge cleanly. kContested (no
/// k-majority for a cell, or the override bound tripped) and kCancelled are
/// terminal; the resource classes retry on the degrade ladder; kException
/// and kUnavailable retry at full budget (the search size was not the
/// problem — the environment was).
enum class LearnFailure : std::uint8_t {
  kNone,
  kException,
  kDeadline,
  kQueryBudget,
  kByteBudget,
  kCancelled,
  kContested,
  kUnavailable,
};

std::string_view to_string(LearnFailure f);

struct LearnSupervisorOptions {
  LearnOptions learn;

  /// Path of the crash-safe learn journal; "" disables journaling.
  std::string journal_path;
  /// Replay observations from journal_path instead of re-querying them.
  /// Without resume, a pre-existing journal at the path is clobbered.
  bool resume = false;
  /// Journal header tag (the profile name): a resumed journal with a
  /// different tag is discarded, never mixed into this run.
  std::string run_tag;

  /// Nondeterminism arbitration: on contradiction, re-query the word
  /// arbitration_n times fresh and commit any symbol reaching
  /// arbitration_k votes per position (k must satisfy n/2 < k <= n so a
  /// majority is unique). arbitration_n = 0 disables arbitration
  /// (first-observation-wins, the pre-supervisor behavior).
  int arbitration_k = 3;
  int arbitration_n = 5;
  /// Committed-edge overrides allowed per run before the contradiction is
  /// declared contested (each override restarts the learn from the
  /// corrected journal, so this bounds the restart loop).
  int max_overrides = 8;

  /// Per-attempt wall-clock deadline (seconds); 0 = none. Replayed words
  /// are free — only fresh SUL contact is gated — so a resumed attempt
  /// always makes incremental progress.
  double deadline_seconds = 0.0;
  /// Per-membership-query deadline (seconds); 0 = none. Checked post-hoc:
  /// the slow answer is journaled first, then the attempt is poisoned, so
  /// the retry resumes past the slow query instead of repeating it.
  double query_deadline_seconds = 0.0;
  /// Fresh membership queries / fresh input symbols allowed per attempt;
  /// 0 = unbounded.
  long query_budget = 0;
  long byte_budget = 0;

  /// Extra attempts after the first for failed (non-terminal) runs.
  int retries = 0;
  /// Base of the exponential retry backoff (seconds); 0 disables the sleep.
  double backoff_seconds = 0.05;
  /// Degrade ladder: eq_test_words and eq_test_max_length shrink by this
  /// factor on every retry after a resource trip, so a learn that cannot
  /// afford its oracle converges to an explicit inconclusive.
  double degrade_factor = 0.5;

  /// Observations appended between durable journal commits (fsync+rename).
  /// A crash loses at most this many answered-but-uncommitted words, all of
  /// which are safely re-queried on resume.
  int journal_commit_every = 64;

  /// Cooperative run-level cancellation (polled on every query).
  const CancelToken* cancel = nullptr;
  /// Test hook: invoked with a monotonically increasing probe index before
  /// (even index) and after (odd index) every fresh SUL query or batch; a
  /// throw simulates a crash at exactly that point in the learn.
  std::function<void(long probe)> fault_hook;
};

struct SupervisedLearn {
  LearnResult result;
  int attempts = 1;
  LearnFailure failure = LearnFailure::kNone;
  /// Failure detail of the last attempt (exception message, tripped budget,
  /// quarantined cell).
  std::string diagnostics;
  /// Observations adopted from the journal at startup / served from it.
  std::size_t adopted = 0;
  std::size_t replayed = 0;
  /// Observation records durable in the journal (header excluded).
  std::size_t journal_records = 0;
  /// Non-empty when journaling degraded mid-run (the learn continued).
  std::string journal_error;
  /// Non-empty when --resume found a journal it could not fully adopt (bad
  /// header, wrong tag, malformed/contradicting record): says what was kept.
  std::string journal_note;
  /// True when the run refused to start (journal locked by a live process,
  /// --resume against an options-incompatible journal, malformed k/n). No
  /// query was issued; `abort_reason` carries the structured diagnostic.
  bool aborted = false;
  std::string abort_reason;
};

/// Runs learn_mealy over `sul` under supervision. Exceptions never escape;
/// the result is either a converged machine, or a structured inconclusive
/// naming its failure class — never a hang, a std::terminate, or a machine
/// built on contested observations.
SupervisedLearn learn_supervised(Sul& sul, const LearnSupervisorOptions& options);

/// Fingerprint of every knob that shapes which observations a learn makes
/// (the alphabet, the oracle budgets, the seed, the arbitration shape),
/// mirroring checker::analysis_options_hash: recorded in the journal header,
/// and --resume refuses a journal written under a different fingerprint.
std::string learn_options_hash(const LearnOptions& learn, int arbitration_k,
                               int arbitration_n);

// --- Journal record codec (exposed for tests and the fuzz corpus) -----------
//
// The learn journal is a line journal (common/journal.h adds the CRC tags):
//   line 0:  learn-header v=1 tag=<profile> opts=<16-hex fingerprint>
//   line k:  obs <len> <in_1> ... <in_len> <out_1> ... <out_len>
// Decoding is strict: inputs must be alphabet symbols, outputs non-empty
// space-free tokens other than kSulUnavailable, counts must match. A
// malformed record stops adoption at the valid prefix; it is never guessed
// at.

struct LearnJournalHeader {
  std::string tag;
  std::string opts;
};

struct LearnObservation {
  std::vector<std::string> word;
  std::vector<std::string> outputs;
};

std::string encode_learn_header(const std::string& tag, const std::string& opts_hash);
std::optional<LearnJournalHeader> decode_learn_header(std::string_view payload);

std::string encode_observation(const std::vector<std::string>& word,
                               const std::vector<std::string>& outputs);
std::optional<LearnObservation> decode_observation(std::string_view payload);

}  // namespace procheck::learner
