// System-under-learning harness for black-box active-automata learning —
// the approach the paper contrasts ProChecker against (§I "Plausible
// approaches", §VIII: active learning "is prohibitively expensive as [it
// requires] a significantly high time and number of queries", and the
// inferred FSM "is not sufficiently large and semantically rich").
//
// Following the protocol-state-fuzzing setup of de Ruiter & Poll (the
// paper's [13]), the harness plays the network side: it holds the
// subscriber credentials and enough session state to craft the *best
// possible valid* instance of each input symbol (a fresh authentication
// vector, a correctly MAC'd SMC, a properly ciphered attach_accept, ...),
// sends it to the black-box UE, and maps the response to an output symbol.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nas/crypto.h"
#include "nas/security_context.h"
#include "nas/sqn.h"
#include "ue/ue_nas.h"

namespace procheck::learner {

/// The learning alphabet: abstract input symbols the harness concretizes.
inline const std::vector<std::string>& input_alphabet() {
  static const std::vector<std::string> kAlphabet = {
      "power_on",          "authentication_request", "security_mode_command",
      "attach_accept",     "identity_request",       "guti_reallocation_command",
      "detach_request",    "attach_reject",          "paging",
  };
  return kAlphabet;
}

/// Black-box interface: reset to the initial state, then step through input
/// symbols observing output symbols (the response message name or "null").
class UeSul {
 public:
  explicit UeSul(ue::StackProfile profile);

  void reset();
  /// Executes one abstract input; returns the output symbol. Counts both
  /// resets and steps (the cost metrics the paper's comparison is about).
  std::string step(const std::string& input);

  /// Runs a whole word from the initial state.
  std::vector<std::string> run(const std::vector<std::string>& word);

  long resets() const { return resets_; }
  long steps() const { return steps_; }

 private:
  nas::NasPdu craft(const std::string& input, bool* ue_initiated);
  std::string observe(const std::vector<nas::NasPdu>& responses) const;

  ue::StackProfile profile_;
  std::unique_ptr<ue::UeNas> ue_;

  // Network-side crafting state (what a real network would hold).
  nas::SqnGenerator sqn_gen_;
  Bytes rand_;
  std::uint64_t xres_ = 0;
  std::uint64_t kasme_ = 0;
  bool kasme_known_ = false;
  nas::SecurityContext net_ctx_;
  int guti_serial_ = 0;

  long resets_ = 0;
  long steps_ = 0;
};

}  // namespace procheck::learner
