// System-under-learning harness for black-box active-automata learning —
// the approach the paper contrasts ProChecker against (§I "Plausible
// approaches", §VIII: active learning "is prohibitively expensive as [it
// requires] a significantly high time and number of queries", and the
// inferred FSM "is not sufficiently large and semantically rich").
//
// Following the protocol-state-fuzzing setup of de Ruiter & Poll (the
// paper's [13]), the harness plays the network side: it holds the
// subscriber credentials and enough session state to craft the *best
// possible valid* instance of each input symbol (a fresh authentication
// vector, a correctly MAC'd SMC, a properly ciphered attach_accept, ...),
// sends it to the black-box UE, and maps the response to an output symbol.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nas/crypto.h"
#include "nas/security_context.h"
#include "nas/sqn.h"
#include "ue/ue_nas.h"

namespace procheck::learner {

/// The learning alphabet: abstract input symbols the harness concretizes.
inline const std::vector<std::string>& input_alphabet() {
  static const std::vector<std::string> kAlphabet = {
      "power_on",          "authentication_request", "security_mode_command",
      "attach_accept",     "identity_request",       "guti_reallocation_command",
      "detach_request",    "attach_reject",          "paging",
  };
  return kAlphabet;
}

/// Distinguished output symbol a transport-backed SUL degrades to when the
/// system under learning cannot be reached (circuit open, retries exhausted).
/// Learners treat any word containing it as unanswerable and converge to a
/// structured inconclusive result instead of learning from garbage.
inline constexpr const char* kSulUnavailable = "sul_unavailable";

/// Black-box interface: reset to the initial state, then step through input
/// symbols observing output symbols (the response message name or "null").
/// Implementations: the in-process UeSul below and net::RemoteUeSul (the
/// same queries over a fault-tolerant socket transport).
class Sul {
 public:
  virtual ~Sul() = default;

  virtual void reset() = 0;
  /// Executes one abstract input; returns the output symbol. Counts both
  /// resets and steps (the cost metrics the paper's comparison is about).
  virtual std::string step(const std::string& input) = 0;

  virtual long resets() const = 0;
  virtual long steps() const = 0;

  /// Why the SUL last degraded to kSulUnavailable ("" when it never did, or
  /// when the implementation cannot say). Transport-backed SULs surface the
  /// server's structured close reason here (server_busy, auth_failed,
  /// quota_exceeded, ...), so an inconclusive LearnResult names its cause.
  virtual std::string unavailable_reason() const { return ""; }

  /// Answers one whole membership query (reset + the word's symbols). The
  /// base implementation is the sequential fallback — reset() then step()
  /// per symbol — so every Sul supports it; transport-backed SULs override
  /// it to ship the word in a single round trip (wire v3, DESIGN.md §14).
  virtual std::vector<std::string> query_word(const std::vector<std::string>& word);

  /// Answers many membership queries. Base fallback: query_word() per item,
  /// in order. Transport-backed SULs override it to pipeline batched frames.
  /// The result has exactly one output word per input word, index-aligned.
  virtual std::vector<std::vector<std::string>> query_batch(
      const std::vector<std::vector<std::string>>& words);

  /// Answers one membership query with a *fresh* execution, bypassing any
  /// answer cache the implementation keeps. The learning supervisor's
  /// nondeterminism arbitration samples contested words k-of-n through this
  /// path — a vote cache that echoed one cached answer n times would rig
  /// the vote. Base implementation: query_word() (the in-process harness
  /// has no cache, so every query is already fresh).
  virtual std::vector<std::string> query_word_fresh(
      const std::vector<std::string>& word);

  /// Runs a whole word from the initial state (one membership query).
  std::vector<std::string> run(const std::vector<std::string>& word) {
    return query_word(word);
  }
};

/// The in-process harness driving the simulated UE stack directly.
class UeSul final : public Sul {
 public:
  explicit UeSul(ue::StackProfile profile);

  void reset() override;
  std::string step(const std::string& input) override;

  long resets() const override { return resets_; }
  long steps() const override { return steps_; }

 private:
  nas::NasPdu craft(const std::string& input, bool* ue_initiated);
  std::string observe(const std::vector<nas::NasPdu>& responses) const;

  ue::StackProfile profile_;
  std::unique_ptr<ue::UeNas> ue_;

  // Network-side crafting state (what a real network would hold).
  nas::SqnGenerator sqn_gen_;
  Bytes rand_;
  std::uint64_t xres_ = 0;
  std::uint64_t kasme_ = 0;
  bool kasme_known_ = false;
  nas::SecurityContext net_ctx_;
  int guti_serial_ = 0;

  long resets_ = 0;
  long steps_ = 0;
};

}  // namespace procheck::learner
