// L* for Mealy machines (Angluin's algorithm in the Niese/Shahbaz Mealy
// formulation) — the black-box active-learning baseline the paper compares
// against (§VIII, citing de Ruiter & Poll and Fiterău-Broștean et al.).
//
// The learner maintains an observation table (S, E, T): rows are access
// prefixes, columns are distinguishing suffixes, entries are the output
// suffixes observed on the SUL. When the table is closed and consistent, a
// hypothesis Mealy machine is built and handed to a random-testing
// equivalence oracle; counterexamples are processed by adding all their
// suffixes to E.
//
// The deliverables here are the *cost metrics* (membership queries, resets,
// total input steps) and the learned machine — bench_blackbox_comparison
// contrasts them with ProChecker's single instrumented conformance run and
// predicate-rich extracted model.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "fsm/fsm.h"
#include "learner/sul.h"

namespace procheck::learner {

/// A learned Mealy machine: states are row indices; transitions carry
/// input/output labels.
struct MealyMachine {
  int initial = 0;
  int state_count = 0;
  /// (state, input) -> (next state, output).
  std::map<std::pair<int, std::string>, std::pair<int, std::string>> delta;

  /// Runs a word from the initial state, returning the output sequence.
  std::vector<std::string> run(const std::vector<std::string>& word) const;

  /// Renders as a (condition/action) FSM for comparison with the extracted
  /// white-box model: states get synthetic names q0..qN — the "no proper
  /// indication of states" limitation the paper points out.
  fsm::Fsm to_fsm() const;
};

struct LearnResult {
  MealyMachine machine;
  long membership_queries = 0;  // distinct words actually sent to the SUL
  long equivalence_queries = 0;
  long counterexamples = 0;
  long sul_resets = 0;
  long sul_steps = 0;
  // Output-trie cache effectiveness (DESIGN.md §14): a hit answered a word
  // that was queried before; a prefix hit answered a word purely from a
  // longer word's cached edges (no SUL contact at all); a miss went to the
  // SUL. Batch counters record how the misses were shipped.
  long cache_hits = 0;
  long cache_prefix_hits = 0;
  long cache_misses = 0;
  long nondeterministic_cached = 0;  // trie inserts that contradicted an edge
  long batch_queries = 0;  // query_batch() calls issued by the table
  long batched_words = 0;  // deduplicated words shipped in those batches
  bool converged = false;  // equivalence oracle found no counterexample
  /// The SUL degraded to kSulUnavailable mid-learning (remote transport
  /// down, circuit open): the run terminated with a structured inconclusive
  /// result instead of learning from unanswerable queries. `machine` is the
  /// last (possibly empty) hypothesis and must not be trusted.
  bool inconclusive = false;
  std::string note;  // diagnostic when inconclusive
  // Nondeterminism-arbitration counters, filled by the learning supervisor
  // (learn_supervisor.h) — plain learn_mealy leaves them zero: observation
  // conflicts arbitrated, fresh k-of-n re-queries those arbitrations issued,
  // and committed edges the majority overturned (each forcing a re-learn
  // from the corrected journal).
  long arbitrations = 0;
  long arbitration_requeries = 0;
  long arbitration_overrides = 0;
  /// Cells arbitration could not resolve (no k-of-n majority): structured
  /// "no k-of-n majority for word ... at position ... (votes: ...)" lines.
  /// Non-empty only alongside inconclusive — a contested cell never ends up
  /// in a machine.
  std::vector<std::string> quarantined;
};

struct LearnOptions {
  /// Random-testing equivalence oracle: words per round and maximum length.
  int eq_test_words = 300;
  int eq_test_max_length = 8;
  std::uint64_t seed = 0xC0FFEE;
  /// Safety bound on refinement rounds.
  int max_rounds = 25;
  /// Cooperative cancellation, polled at round boundaries and per
  /// equivalence-oracle word (the supervisor's watchdogs cancel through
  /// here). A cancelled, unconverged learn returns a structured
  /// inconclusive result — never a partial machine presented as final.
  const CancelToken* cancel = nullptr;
};

/// Learns a Mealy machine for the UE black box over input_alphabet(). Works
/// against any Sul — the in-process harness or net::RemoteUeSul; an
/// unavailable SUL yields result.inconclusive, never a hang or a throw.
LearnResult learn_mealy(Sul& sul, const LearnOptions& options = LearnOptions());

}  // namespace procheck::learner
