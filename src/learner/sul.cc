#include "learner/sul.h"

#include "testing/conformance.h"

namespace procheck::learner {

using nas::Direction;
using nas::MsgType;
using nas::NasMessage;
using nas::NasPdu;
using nas::SecHdr;

UeSul::UeSul(ue::StackProfile profile) : profile_(std::move(profile)) { reset(); }

void UeSul::reset() {
  ++resets_;
  ue_ = std::make_unique<ue::UeNas>(profile_, testing::kTestKey, testing::kTestImsi, nullptr);
  // Network-side session state starts fresh; the HSS SQN counter, like a
  // real network's, keeps advancing across resets (stale vectors from
  // earlier sessions stay "capturable", as in P1).
  rand_.clear();
  xres_ = 0;
  kasme_ = 0;
  kasme_known_ = false;
  net_ctx_.clear();
}

NasPdu UeSul::craft(const std::string& input, bool* ue_initiated) {
  *ue_initiated = false;
  if (input == "power_on") {
    *ue_initiated = true;
    return {};
  }
  if (input == "authentication_request") {
    nas::Sqn sqn = sqn_gen_.next();
    rand_ = Bytes{0x10, static_cast<std::uint8_t>(sqn.seq & 0xFF),
                  static_cast<std::uint8_t>(sqn.ind & 0xFF), 0x99};
    xres_ = nas::f2_res(testing::kTestKey, rand_);
    kasme_ = nas::derive_kasme(testing::kTestKey, rand_, sqn.value());
    kasme_known_ = true;
    net_ctx_.clear();  // new vector supersedes the session keys
    nas::Autn autn;
    autn.sqn_xor_ak = (sqn.value() ^ nas::f5_ak(testing::kTestKey, rand_)) & nas::kSqnMask;
    autn.amf = 0x8000;
    autn.mac = nas::f1_mac(testing::kTestKey, sqn.value(), rand_, autn.amf);
    NasMessage req(MsgType::kAuthenticationRequest);
    req.set_b("rand", rand_);
    req.set_b("autn", autn.encode());
    return nas::encode_plain(req);
  }
  if (input == "security_mode_command") {
    NasMessage smc(MsgType::kSecurityModeCommand);
    smc.set_u("eia", 1);
    smc.set_u("eea", 1);
    if (kasme_known_) {
      if (!net_ctx_.valid) net_ctx_.establish(kasme_, 1, 1);
      return protect(smc, net_ctx_, Direction::kDownlink, SecHdr::kIntegrity);
    }
    // No keys: the best the harness can do is an unverifiable SMC.
    NasPdu pdu;
    pdu.sec_hdr = SecHdr::kIntegrity;
    pdu.payload = nas::encode_payload(smc);
    pdu.mac = 0xBAD;
    return pdu;
  }
  if (input == "attach_accept") {
    NasMessage accept(MsgType::kAttachAccept);
    accept.set_s("guti", "guti-" + std::to_string(++guti_serial_));
    if (net_ctx_.valid) {
      return protect(accept, net_ctx_, Direction::kDownlink, SecHdr::kIntegrityCiphered);
    }
    return nas::encode_plain(accept);
  }
  if (input == "guti_reallocation_command") {
    NasMessage cmd(MsgType::kGutiReallocationCommand);
    cmd.set_s("guti", "guti-" + std::to_string(++guti_serial_));
    if (net_ctx_.valid) {
      return protect(cmd, net_ctx_, Direction::kDownlink, SecHdr::kIntegrityCiphered);
    }
    return nas::encode_plain(cmd);
  }
  if (input == "identity_request") {
    NasMessage req(MsgType::kIdentityRequest);
    req.set_s("id_type", "imsi");
    return nas::encode_plain(req);
  }
  if (input == "detach_request") {
    NasMessage req(MsgType::kDetachRequest);
    req.set_s("detach_type", "reattach_required");
    if (net_ctx_.valid) {
      return protect(req, net_ctx_, Direction::kDownlink, SecHdr::kIntegrityCiphered);
    }
    return nas::encode_plain(req);
  }
  if (input == "attach_reject") {
    NasMessage reject(MsgType::kAttachReject);
    reject.set_s("cause", "not_authorized");
    return nas::encode_plain(reject);
  }
  if (input == "paging") {
    NasMessage page(MsgType::kPaging);
    page.set_s("identity", ue_->guti() != "none" ? ue_->guti() : ue_->imsi());
    return nas::encode_plain(page);
  }
  return {};
}

std::string UeSul::observe(const std::vector<NasPdu>& responses) const {
  if (responses.empty()) return "null";
  const NasPdu& pdu = responses.front();
  Bytes payload = pdu.payload;
  if (pdu.sec_hdr == SecHdr::kIntegrityCiphered) {
    if (!net_ctx_.valid) return "ciphered";
    payload = nas::nas_cipher(net_ctx_.k_nas_enc, pdu.count, Direction::kUplink, payload);
  }
  auto msg = nas::decode_payload(payload);
  return msg ? std::string(standard_name(msg->type)) : "undecodable";
}

std::string UeSul::step(const std::string& input) {
  ++steps_;
  bool ue_initiated = false;
  NasPdu pdu = craft(input, &ue_initiated);
  std::vector<NasPdu> responses =
      ue_initiated ? ue_->power_on_attach() : ue_->handle_downlink(pdu);
  std::string out = observe(responses);
  // Keep the harness's shadow keys aligned with the UE's handshake: the UE
  // completing SMC activates the session context on both ends.
  if (input == "authentication_request" && out != "authentication_response") {
    kasme_known_ = false;  // the UE refused the vector
  }
  return out;
}

std::vector<std::string> Sul::query_word(const std::vector<std::string>& word) {
  reset();
  std::vector<std::string> outputs;
  outputs.reserve(word.size());
  for (const std::string& symbol : word) outputs.push_back(step(symbol));
  return outputs;
}

std::vector<std::vector<std::string>> Sul::query_batch(
    const std::vector<std::vector<std::string>>& words) {
  std::vector<std::vector<std::string>> outputs;
  outputs.reserve(words.size());
  for (const std::vector<std::string>& word : words) outputs.push_back(query_word(word));
  return outputs;
}

std::vector<std::string> Sul::query_word_fresh(const std::vector<std::string>& word) {
  return query_word(word);
}

}  // namespace procheck::learner
