#include "learner/output_trie.h"

namespace procheck::learner {

void OutputTrie::insert(const std::vector<std::string>& word,
                        const std::vector<std::string>& outputs) {
  if (word.size() != outputs.size()) return;  // malformed observation
  int node = 0;
  bool added = false;
  bool disagreed = false;
  for (std::size_t i = 0; i < word.size(); ++i) {
    auto [it, fresh] = nodes_[static_cast<std::size_t>(node)].next.try_emplace(word[i]);
    Edge& edge = it->second;
    if (fresh) {
      edge.child = static_cast<int>(nodes_.size());
      edge.output = outputs[i];
      nodes_.emplace_back();
      added = true;
    } else if (edge.output != outputs[i]) {
      disagreed = true;  // first observation wins; see the header contract
    }
    node = edge.child;
  }
  nodes_[static_cast<std::size_t>(node)].endpoint = true;
  if (added) ++stats_.insertions;
  if (disagreed) ++stats_.nondeterministic;
}

int OutputTrie::walk(const std::vector<std::string>& word) const {
  int node = 0;
  for (const std::string& symbol : word) {
    const auto& next = nodes_[static_cast<std::size_t>(node)].next;
    auto it = next.find(symbol);
    if (it == next.end()) return -1;
    node = it->second.child;
  }
  return node;
}

std::optional<std::vector<std::string>> OutputTrie::lookup(
    const std::vector<std::string>& word) {
  std::vector<std::string> outputs;
  outputs.reserve(word.size());
  int node = 0;
  for (const std::string& symbol : word) {
    const auto& next = nodes_[static_cast<std::size_t>(node)].next;
    auto it = next.find(symbol);
    if (it == next.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    outputs.push_back(it->second.output);
    node = it->second.child;
  }
  if (nodes_[static_cast<std::size_t>(node)].endpoint) {
    ++stats_.hits;
  } else {
    ++stats_.prefix_hits;
  }
  return outputs;
}

bool OutputTrie::contains(const std::vector<std::string>& word) const {
  return walk(word) >= 0;
}

std::size_t OutputTrie::known_prefix_length(const std::vector<std::string>& word) const {
  std::size_t length = 0;
  int node = 0;
  for (const std::string& symbol : word) {
    const auto& next = nodes_[static_cast<std::size_t>(node)].next;
    auto it = next.find(symbol);
    if (it == next.end()) break;
    node = it->second.child;
    ++length;
  }
  return length;
}

}  // namespace procheck::learner
