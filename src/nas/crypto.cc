#include "nas/crypto.h"

#include "common/rng.h"

namespace procheck::nas {

namespace {

/// Domain-separated PRF invocation: tag selects the primitive being
/// simulated so e.g. f1 and f2 under the same key are independent.
std::uint64_t tagged_prf(std::uint64_t key, std::uint64_t tag, const Bytes& data) {
  ByteWriter w;
  w.u64(tag);
  w.raw(data);
  return prf64(key, w.bytes());
}

std::uint64_t tagged_prf(std::uint64_t key, std::uint64_t tag, const Bytes& data,
                         std::uint64_t extra) {
  ByteWriter w;
  w.u64(tag);
  w.u64(extra);
  w.raw(data);
  return prf64(key, w.bytes());
}

enum : std::uint64_t {
  kTagF1 = 1,
  kTagF2 = 2,
  kTagF5 = 5,
  kTagF1Star = 11,
  kTagF5Star = 15,
  kTagKasme = 20,
  kTagKNasInt = 21,
  kTagKNasEnc = 22,
  kTagNasMac = 30,
  kTagNasEnc = 31,
};

}  // namespace

std::uint64_t f1_mac(std::uint64_t k, std::uint64_t sqn, const Bytes& rand, std::uint16_t amf) {
  ByteWriter w;
  w.u64(sqn & kSqnMask);
  w.u16(amf);
  w.raw(rand);
  return tagged_prf(k, kTagF1, w.bytes());
}

std::uint64_t f2_res(std::uint64_t k, const Bytes& rand) { return tagged_prf(k, kTagF2, rand); }

std::uint64_t f5_ak(std::uint64_t k, const Bytes& rand) {
  return tagged_prf(k, kTagF5, rand) & kSqnMask;
}

std::uint64_t f1star_mac(std::uint64_t k, std::uint64_t sqn_ms, const Bytes& rand) {
  return tagged_prf(k, kTagF1Star, rand, sqn_ms & kSqnMask);
}

std::uint64_t f5star_ak(std::uint64_t k, const Bytes& rand) {
  return tagged_prf(k, kTagF5Star, rand) & kSqnMask;
}

std::uint64_t derive_kasme(std::uint64_t k, const Bytes& rand, std::uint64_t sqn) {
  return tagged_prf(k, kTagKasme, rand, sqn & kSqnMask);
}

std::uint64_t derive_k_nas_int(std::uint64_t kasme, std::uint8_t eia) {
  return tagged_prf(kasme, kTagKNasInt, {}, eia);
}

std::uint64_t derive_k_nas_enc(std::uint64_t kasme, std::uint8_t eea) {
  return tagged_prf(kasme, kTagKNasEnc, {}, eea);
}

std::uint64_t nas_mac(std::uint64_t k_nas_int, std::uint32_t count, Direction dir,
                      const Bytes& payload) {
  ByteWriter w;
  w.u32(count);
  w.u8(static_cast<std::uint8_t>(dir));
  w.raw(payload);
  return tagged_prf(k_nas_int, kTagNasMac, w.bytes());
}

Bytes nas_cipher(std::uint64_t k_nas_enc, std::uint32_t count, Direction dir, const Bytes& data) {
  std::uint64_t iv =
      (static_cast<std::uint64_t>(count) << 8) | static_cast<std::uint64_t>(dir) | (kTagNasEnc << 32);
  Bytes ks = prf_stream(k_nas_enc, iv, data.size());
  Bytes out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) out[i] = data[i] ^ ks[i];
  return out;
}

Bytes Autn::encode() const {
  ByteWriter w;
  w.u64(sqn_xor_ak & kSqnMask);
  w.u16(amf);
  w.u64(mac);
  return w.take();
}

std::optional<Autn> Autn::decode(const Bytes& raw) {
  ByteReader r(raw);
  auto sqn_xor_ak = r.u64();
  auto amf = r.u16();
  auto mac = r.u64();
  if (!sqn_xor_ak || !amf || !mac || !r.at_end()) return std::nullopt;
  return Autn{*sqn_xor_ak & kSqnMask, *amf, *mac};
}

Bytes Auts::encode() const {
  ByteWriter w;
  w.u64(sqn_ms_xor_ak & kSqnMask);
  w.u64(mac_s);
  return w.take();
}

std::optional<Auts> Auts::decode(const Bytes& raw) {
  ByteReader r(raw);
  auto sqn = r.u64();
  auto mac_s = r.u64();
  if (!sqn || !mac_s || !r.at_end()) return std::nullopt;
  return Auts{*sqn & kSqnMask, *mac_s};
}

}  // namespace procheck::nas
