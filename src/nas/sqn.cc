#include "nas/sqn.h"

#include <algorithm>

namespace procheck::nas {

Sqn SqnGenerator::next() {
  ++seq_;
  ind_ = (ind_ + 1) & kIndMask;
  return Sqn{seq_, ind_};
}

Usim::Usim(std::uint64_t permanent_key, UsimConfig config)
    : k_(permanent_key), config_(config) {}

std::uint64_t Usim::highest_accepted_seq() const {
  return *std::max_element(seq_array_.begin(), seq_array_.end());
}

Usim::Outcome Usim::authenticate(const Bytes& rand, const Bytes& autn_raw) {
  Outcome out;
  auto autn = Autn::decode(autn_raw);
  if (!autn) {
    out.result = Result::kMacFailure;
    return out;
  }

  std::uint64_t ak = f5_ak(k_, rand);
  std::uint64_t sqn_value = (autn->sqn_xor_ak ^ ak) & kSqnMask;
  out.received_sqn = Sqn::from_value(sqn_value);

  if (f1_mac(k_, sqn_value, rand, autn->amf) != autn->mac) {
    out.result = Result::kMacFailure;
    return out;
  }

  const Sqn sqn = out.received_sqn;
  const std::uint64_t stored_seq = seq_array_[sqn.ind];
  const bool seq_fresh =
      config_.accept_equal_seq ? sqn.seq >= stored_seq && sqn.seq > 0 : sqn.seq > stored_seq;
  // Annex C.2.2 freshness limit L: reject SQNs more than L behind the
  // highest accepted SEQ. Optional in the spec; off by default (the paper's
  // P1/P2 root cause).
  const bool within_limit =
      !config_.freshness_limit ||
      highest_accepted_seq() <= sqn.seq + *config_.freshness_limit;

  if (seq_fresh && within_limit) {
    out.equal_seq_accepted = sqn.seq == stored_seq;
    seq_array_[sqn.ind] = sqn.seq;
    out.result = Result::kOk;
    out.res = f2_res(k_, rand);
    out.kasme = derive_kasme(k_, rand, sqn_value);
    return out;
  }

  // Synchronization failure: report SQN_MS built from the highest accepted
  // SEQ anywhere in the array (Annex C.3.4), concealed with AK*.
  out.result = Result::kSyncFailure;
  std::uint64_t sqn_ms = (highest_accepted_seq() << kIndBits) & kSqnMask;
  Auts auts;
  auts.sqn_ms_xor_ak = (sqn_ms ^ f5star_ak(k_, rand)) & kSqnMask;
  auts.mac_s = f1star_mac(k_, sqn_ms, rand);
  out.auts = auts.encode();
  return out;
}

}  // namespace procheck::nas
