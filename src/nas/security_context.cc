#include "nas/security_context.h"

namespace procheck::nas {

void SecurityContext::establish(std::uint64_t kasme_in, std::uint8_t eia_in,
                                std::uint8_t eea_in) {
  kasme = kasme_in;
  eia = eia_in;
  eea = eea_in;
  k_nas_int = derive_k_nas_int(kasme, eia);
  k_nas_enc = derive_k_nas_enc(kasme, eea);
  ul_count = 0;
  dl_count = 0;
  valid = true;
}

NasPdu protect(const NasMessage& msg, SecurityContext& ctx, Direction dir, SecHdr hdr) {
  NasPdu pdu;
  pdu.sec_hdr = hdr;
  std::uint32_t& count = dir == Direction::kUplink ? ctx.ul_count : ctx.dl_count;
  pdu.count = count++;

  Bytes payload = encode_payload(msg);
  if (hdr == SecHdr::kIntegrityCiphered) {
    payload = nas_cipher(ctx.k_nas_enc, pdu.count, dir, payload);
  }
  pdu.payload = std::move(payload);
  pdu.mac = nas_mac(ctx.k_nas_int, pdu.count, dir, pdu.payload);
  return pdu;
}

NasPdu encode_plain(const NasMessage& msg) {
  NasPdu pdu;
  pdu.sec_hdr = SecHdr::kPlain;
  pdu.payload = encode_payload(msg);
  return pdu;
}

UnprotectResult unprotect(const NasPdu& pdu, const SecurityContext& ctx, Direction dir) {
  UnprotectResult out;
  out.sec_hdr = pdu.sec_hdr;
  out.count = pdu.count;

  Bytes payload = pdu.payload;
  if (pdu.sec_hdr != SecHdr::kPlain) {
    out.mac_checked = true;
    if (!ctx.valid || nas_mac(ctx.k_nas_int, pdu.count, dir, pdu.payload) != pdu.mac) {
      out.status = UnprotectResult::Status::kMacFailure;
      return out;
    }
    if (pdu.sec_hdr == SecHdr::kIntegrityCiphered) {
      payload = nas_cipher(ctx.k_nas_enc, pdu.count, dir, payload);
    }
  }

  auto msg = decode_payload(payload);
  if (!msg) {
    out.status = UnprotectResult::Status::kMalformed;
    return out;
  }
  out.msg = std::move(*msg);
  out.status = UnprotectResult::Status::kOk;
  return out;
}

}  // namespace procheck::nas
