// NAS security context (TS 33.401): the per-association state established by
// a successful AKA run plus security-mode negotiation. Both the UE and the
// MME hold one; it owns the derived NAS keys and the uplink/downlink NAS
// COUNT values whose handling the paper's P3/I1/I3 findings revolve around.
//
// protect()/unprotect() implement the mechanical part of message protection
// (ciphering, MAC computation/verification). Replay/counter *policy* —
// whether a received COUNT is acceptable — is deliberately left to the
// stacks (ue/, mme/), because that policy is exactly where the analyzed
// implementations deviate from the standard.
#pragma once

#include <cstdint>

#include "nas/crypto.h"
#include "nas/messages.h"

namespace procheck::nas {

struct SecurityContext {
  bool valid = false;       // true once SMC completes
  std::uint64_t kasme = 0;  // session root key from AKA
  std::uint8_t eia = 0;     // negotiated integrity algorithm id
  std::uint8_t eea = 0;     // negotiated ciphering algorithm id
  std::uint64_t k_nas_int = 0;
  std::uint64_t k_nas_enc = 0;
  std::uint32_t ul_count = 0;  // next NAS COUNT to *send* uplink / last accepted, per side
  std::uint32_t dl_count = 0;

  /// Derives the NAS keys and activates the context.
  void establish(std::uint64_t kasme_in, std::uint8_t eia_in, std::uint8_t eea_in);
  void clear() { *this = SecurityContext{}; }
};

/// Wraps `msg` into a protected PDU using the sender-side count for `dir`
/// and advances that count. `hdr` selects integrity-only vs
/// integrity+ciphered (SMC itself goes integrity-only; post-SMC traffic is
/// ciphered).
NasPdu protect(const NasMessage& msg, SecurityContext& ctx, Direction dir, SecHdr hdr);

/// Serializes without protection (pre-security-context messages and the
/// plain messages OAI wrongly accepts post-SMC, finding I2).
NasPdu encode_plain(const NasMessage& msg);

struct UnprotectResult {
  enum class Status : std::uint8_t {
    kOk,          // decoded; MAC valid if the PDU was protected
    kMalformed,   // failed well-formedness checks
    kMacFailure,  // integrity verification failed
  };
  Status status = Status::kMalformed;
  NasMessage msg;               // valid when kOk
  SecHdr sec_hdr = SecHdr::kPlain;
  std::uint32_t count = 0;      // the received NAS COUNT
  bool mac_checked = false;     // true when the PDU claimed protection
};

/// Decodes and (when protected) integrity-verifies a PDU against `ctx`.
/// Performs no counter/replay policy — callers apply their own.
UnprotectResult unprotect(const NasPdu& pdu, const SecurityContext& ctx, Direction dir);

}  // namespace procheck::nas
