// Simulated LTE cryptographic primitives.
//
// Substitution note (DESIGN.md §1): the logical vulnerabilities the paper
// targets are independent of cryptographic strength — the analysis abstracts
// crypto away and a Dolev–Yao verifier reasons about it symbolically. What
// the running stacks need is only the *functional contract* of MILENAGE
// (f1–f5) and the EPS key hierarchy: same inputs give same outputs, and
// outputs are unforgeable without the key at simulation fidelity. All
// primitives are therefore keyed SplitMix-based PRFs (common/rng.h).
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"

namespace procheck::nas {

/// Direction bit of the NAS COUNT (TS 33.401): uplink = UE→MME.
enum class Direction : std::uint8_t { kUplink = 0, kDownlink = 1 };

// --- MILENAGE-style authentication functions (TS 33.102 §6.3) ----------------

/// f1: network authentication MAC over (SQN, RAND, AMF) under permanent key K.
std::uint64_t f1_mac(std::uint64_t k, std::uint64_t sqn, const Bytes& rand, std::uint16_t amf);

/// f2: expected/actual challenge response RES.
std::uint64_t f2_res(std::uint64_t k, const Bytes& rand);

/// f5: 48-bit anonymity key AK used to conceal SQN in the AUTN.
std::uint64_t f5_ak(std::uint64_t k, const Bytes& rand);

/// f1*: resynchronization MAC over (SQN_MS, RAND) used in AUTS.
std::uint64_t f1star_mac(std::uint64_t k, std::uint64_t sqn_ms, const Bytes& rand);

/// f5*: resynchronization anonymity key AK* used in AUTS.
std::uint64_t f5star_ak(std::uint64_t k, const Bytes& rand);

// --- EPS key hierarchy (TS 33.401 §6.1) --------------------------------------

/// KASME from (K, RAND, SQN); session root key after a successful AKA run.
std::uint64_t derive_kasme(std::uint64_t k, const Bytes& rand, std::uint64_t sqn);

/// NAS integrity key for the negotiated EIA algorithm id.
std::uint64_t derive_k_nas_int(std::uint64_t kasme, std::uint8_t eia);

/// NAS encryption key for the negotiated EEA algorithm id.
std::uint64_t derive_k_nas_enc(std::uint64_t kasme, std::uint8_t eea);

// --- NAS message protection (TS 33.401 §8) -----------------------------------

/// NAS-MAC over (COUNT, direction, message octets) under K_NASint.
std::uint64_t nas_mac(std::uint64_t k_nas_int, std::uint32_t count, Direction dir,
                      const Bytes& payload);

/// NAS ciphering keystream XOR (an involution: apply twice to decrypt).
Bytes nas_cipher(std::uint64_t k_nas_enc, std::uint32_t count, Direction dir, const Bytes& data);

// --- AUTN / AUTS tokens (TS 33.102 §6.3) -------------------------------------

/// 48-bit SQN arithmetic: values are stored in the low 48 bits of u64.
inline constexpr std::uint64_t kSqnMask = (1ULL << 48) - 1;

/// AUTN = (SQN xor AK)(48 bits) || AMF(16 bits) || MAC(64 bits).
struct Autn {
  std::uint64_t sqn_xor_ak = 0;  // low 48 bits
  std::uint16_t amf = 0;
  std::uint64_t mac = 0;

  Bytes encode() const;
  static std::optional<Autn> decode(const Bytes& raw);
  bool operator==(const Autn&) const = default;
};

/// AUTS = (SQN_MS xor AK*)(48 bits) || MAC-S(64 bits); carried in an
/// authentication_failure with cause synch_failure.
struct Auts {
  std::uint64_t sqn_ms_xor_ak = 0;  // low 48 bits
  std::uint64_t mac_s = 0;

  Bytes encode() const;
  static std::optional<Auts> decode(const Bytes& raw);
  bool operator==(const Auts&) const = default;
};

}  // namespace procheck::nas
