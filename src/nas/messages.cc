#include "nas/messages.h"

#include <array>

namespace procheck::nas {

namespace {

struct NameEntry {
  MsgType type;
  std::string_view name;
};

constexpr std::array<NameEntry, 32> kNames = {{
    {MsgType::kAttachRequest, "attach_request"},
    {MsgType::kAttachAccept, "attach_accept"},
    {MsgType::kAttachComplete, "attach_complete"},
    {MsgType::kAttachReject, "attach_reject"},
    {MsgType::kAuthenticationRequest, "authentication_request"},
    {MsgType::kAuthenticationResponse, "authentication_response"},
    {MsgType::kAuthenticationReject, "authentication_reject"},
    {MsgType::kAuthenticationFailure, "authentication_failure"},
    {MsgType::kSecurityModeCommand, "security_mode_command"},
    {MsgType::kSecurityModeComplete, "security_mode_complete"},
    {MsgType::kSecurityModeReject, "security_mode_reject"},
    {MsgType::kIdentityRequest, "identity_request"},
    {MsgType::kIdentityResponse, "identity_response"},
    {MsgType::kGutiReallocationCommand, "guti_reallocation_command"},
    {MsgType::kGutiReallocationComplete, "guti_reallocation_complete"},
    {MsgType::kTauRequest, "tracking_area_update_request"},
    {MsgType::kTauAccept, "tracking_area_update_accept"},
    {MsgType::kTauReject, "tracking_area_update_reject"},
    {MsgType::kDetachRequest, "detach_request"},
    {MsgType::kDetachAccept, "detach_accept"},
    {MsgType::kServiceRequest, "service_request"},
    {MsgType::kServiceReject, "service_reject"},
    {MsgType::kPaging, "paging"},
    {MsgType::kEmmInformation, "emm_information"},
    {MsgType::kConfigurationUpdateCommand, "configuration_update_command"},
    {MsgType::kConfigurationUpdateComplete, "configuration_update_complete"},
    {MsgType::kRegistrationRequest, "registration_request"},
    {MsgType::kRegistrationAccept, "registration_accept"},
    {MsgType::kRegistrationComplete, "registration_complete"},
    {MsgType::kRegistrationReject, "registration_reject"},
    {MsgType::kDeregistrationRequest, "deregistration_request"},
    {MsgType::kDeregistrationAccept, "deregistration_accept"},
}};

}  // namespace

std::string_view standard_name(MsgType t) {
  for (const auto& e : kNames) {
    if (e.type == t) return e.name;
  }
  return "unknown";
}

std::optional<MsgType> msg_type_from_name(std::string_view name) {
  for (const auto& e : kNames) {
    if (e.name == name) return e.type;
  }
  return std::nullopt;
}

std::string_view to_string(SecHdr h) {
  switch (h) {
    case SecHdr::kPlain:
      return "plain_nas";
    case SecHdr::kIntegrity:
      return "integrity_protected";
    case SecHdr::kIntegrityCiphered:
      return "integrity_protected_ciphered";
  }
  return "invalid";
}

std::string_view to_string(EmmCause c) {
  switch (c) {
    case EmmCause::kNone:
      return "none";
    case EmmCause::kImsiUnknown:
      return "imsi_unknown";
    case EmmCause::kIllegalUe:
      return "illegal_ue";
    case EmmCause::kMacFailure:
      return "mac_failure";
    case EmmCause::kSynchFailure:
      return "synch_failure";
    case EmmCause::kCongestion:
      return "congestion";
    case EmmCause::kSecurityModeRejected:
      return "security_mode_rejected";
    case EmmCause::kNotAuthorized:
      return "not_authorized";
  }
  return "invalid";
}

std::uint64_t NasMessage::get_u(const std::string& k, std::uint64_t dflt) const {
  auto it = u.find(k);
  return it == u.end() ? dflt : it->second;
}

std::string NasMessage::get_s(const std::string& k, const std::string& dflt) const {
  auto it = s.find(k);
  return it == s.end() ? dflt : it->second;
}

Bytes NasMessage::get_b(const std::string& k) const {
  auto it = b.find(k);
  return it == b.end() ? Bytes{} : it->second;
}

bool NasMessage::has(const std::string& k) const {
  return u.count(k) > 0 || s.count(k) > 0 || b.count(k) > 0;
}

NasMessage& NasMessage::set_u(const std::string& k, std::uint64_t v) {
  u[k] = v;
  return *this;
}

NasMessage& NasMessage::set_s(const std::string& k, std::string v) {
  s[k] = std::move(v);
  return *this;
}

NasMessage& NasMessage::set_b(const std::string& k, Bytes v) {
  b[k] = std::move(v);
  return *this;
}

Bytes encode_payload(const NasMessage& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(m.type));
  w.u16(static_cast<std::uint16_t>(m.u.size()));
  for (const auto& [k, v] : m.u) {
    w.str(k);
    w.u64(v);
  }
  w.u16(static_cast<std::uint16_t>(m.s.size()));
  for (const auto& [k, v] : m.s) {
    w.str(k);
    w.str(v);
  }
  w.u16(static_cast<std::uint16_t>(m.b.size()));
  for (const auto& [k, v] : m.b) {
    w.str(k);
    w.blob(v);
  }
  return w.take();
}

std::optional<NasMessage> decode_payload(const Bytes& payload) {
  ByteReader r(payload);
  auto type = r.u8();
  if (!type || *type > static_cast<std::uint8_t>(MsgType::kDeregistrationAccept)) {
    return std::nullopt;
  }
  NasMessage m(static_cast<MsgType>(*type));
  auto nu = r.u16();
  if (!nu) return std::nullopt;
  for (std::uint16_t i = 0; i < *nu; ++i) {
    auto k = r.str();
    auto v = r.u64();
    if (!k || !v) return std::nullopt;
    m.u[*k] = *v;
  }
  auto ns = r.u16();
  if (!ns) return std::nullopt;
  for (std::uint16_t i = 0; i < *ns; ++i) {
    auto k = r.str();
    auto v = r.str();
    if (!k || !v) return std::nullopt;
    m.s[*k] = *v;
  }
  auto nb = r.u16();
  if (!nb) return std::nullopt;
  for (std::uint16_t i = 0; i < *nb; ++i) {
    auto k = r.str();
    auto v = r.blob();
    if (!k || !v) return std::nullopt;
    m.b[*k] = *v;
  }
  if (!r.at_end()) return std::nullopt;
  return m;
}

Bytes NasPdu::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(sec_hdr));
  w.u32(count);
  w.u64(mac);
  w.raw(payload);
  return w.take();
}

std::optional<NasPdu> NasPdu::decode(const Bytes& wire) {
  ByteReader r(wire);
  auto hdr = r.u8();
  auto count = r.u32();
  auto mac = r.u64();
  if (!hdr || !count || !mac ||
      *hdr > static_cast<std::uint8_t>(SecHdr::kIntegrityCiphered)) {
    return std::nullopt;
  }
  NasPdu pdu;
  pdu.sec_hdr = static_cast<SecHdr>(*hdr);
  pdu.count = *count;
  pdu.mac = *mac;
  pdu.payload.assign(wire.begin() + 13, wire.end());
  return pdu;
}

}  // namespace procheck::nas
