// Sequence-number generation and verification per TS 33.102 Annex C — the
// scheme whose under-specification the paper's P1/P2 attacks exploit
// (§VII-A, Fig. 5).
//
// SQN = SEQ || IND: the network concatenates a monotonically increasing
// sequence part with a wrapping index part. The USIM keeps an SQN array of
// 2^IND_BITS entries (COTS UEs use IND = 5 bits, so 32 entries); a received
// SQN_j = SEQ_j||IND_j is accepted iff SEQ_j is greater than the SEQ stored
// at index IND_j — which accepts up to 31 *stale* out-of-order SQNs, the
// root cause of P1/P2. Annex C.2.2's freshness limit L would reject SQNs
// older than the highest accepted value by more than L, but the limit is
// optional, its value unspecified, and vendors do not implement it; it is
// modeled here as an optional config knob (the ablation bench enables it).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "nas/crypto.h"

namespace procheck::nas {

inline constexpr unsigned kIndBits = 5;
inline constexpr std::uint32_t kIndCount = 1u << kIndBits;  // 32-entry SQN array
inline constexpr std::uint64_t kIndMask = kIndCount - 1;

/// Structured view of a 48-bit SQN value.
struct Sqn {
  std::uint64_t seq = 0;  // upper 43 bits
  std::uint32_t ind = 0;  // lower 5 bits

  std::uint64_t value() const { return (seq << kIndBits) | (ind & kIndMask); }
  static Sqn from_value(std::uint64_t v) {
    return Sqn{(v & kSqnMask) >> kIndBits, static_cast<std::uint32_t>(v & kIndMask)};
  }
  bool operator==(const Sqn&) const = default;
};

/// Network-side SQN generator (Annex C.1.2 profile): each fresh
/// authentication vector increments SEQ and advances IND cyclically.
class SqnGenerator {
 public:
  SqnGenerator() = default;
  explicit SqnGenerator(std::uint64_t start_seq, std::uint32_t start_ind = 0)
      : seq_(start_seq), ind_(start_ind & kIndMask) {}

  Sqn next();

  std::uint64_t current_seq() const { return seq_; }

 private:
  std::uint64_t seq_ = 0;
  std::uint32_t ind_ = kIndCount - 1;  // first next() yields IND 0
};

/// USIM configuration. The defaults reproduce COTS behavior per the paper:
/// no freshness limit (the P1/P2 vulnerability) and strict greater-than SEQ
/// comparison. `accept_equal_seq` models srsUE's I3 deviation (accepting the
/// same SQN again and resetting the counter).
struct UsimConfig {
  std::optional<std::uint64_t> freshness_limit;  // Annex C.2.2 "L"; nullopt = not implemented
  bool accept_equal_seq = false;                 // I3 deviation when true
};

/// USIM authentication core: AUTN verification, SQN-array bookkeeping, RES
/// and KASME computation, and AUTS generation on synchronization failure.
class Usim {
 public:
  Usim(std::uint64_t permanent_key, UsimConfig config = {});

  enum class Result : std::uint8_t { kOk, kMacFailure, kSyncFailure };

  struct Outcome {
    Result result = Result::kMacFailure;
    std::uint64_t res = 0;    // valid when kOk
    std::uint64_t kasme = 0;  // valid when kOk
    Bytes auts;               // valid when kSyncFailure
    Sqn received_sqn;         // recovered SQN (valid unless MAC failed)
    /// kOk with a SEQ equal to the stored one — only possible under the
    /// accept_equal_seq deviation (srsUE's I3 counter reset).
    bool equal_seq_accepted = false;
  };

  /// Processes an authentication challenge (RAND, AUTN) as in Fig. 5.
  Outcome authenticate(const Bytes& rand, const Bytes& autn_raw);

  std::uint64_t seq_at(std::uint32_t ind) const { return seq_array_.at(ind & kIndMask); }
  /// SEQ_MS: highest SEQ accepted anywhere in the array (used in AUTS and
  /// for the freshness-limit check).
  std::uint64_t highest_accepted_seq() const;
  std::uint64_t permanent_key() const { return k_; }

 private:
  std::uint64_t k_;
  UsimConfig config_;
  std::array<std::uint64_t, kIndCount> seq_array_{};  // Fig. 5's SQN_array
};

}  // namespace procheck::nas
