// NAS (Non-Access Stratum) EMM message model.
//
// Messages carry the 3GPP TS 24.301 protocol discriminators the paper's
// extractor relies on: every message type has a *standard name*
// (`attach_request`, `authentication_request`, ...) which implementations
// embed in their handler function names (send_/recv_/parse_/emm_send_ +
// standard name). Payload fields are a small named-field map so the codec,
// MAC computation, and the testbed adversary can treat all messages
// uniformly while handlers use typed accessors.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace procheck::nas {

/// EMM message types used by the NAS layer procedures of Fig. 1.
enum class MsgType : std::uint8_t {
  kAttachRequest,
  kAttachAccept,
  kAttachComplete,
  kAttachReject,
  kAuthenticationRequest,
  kAuthenticationResponse,
  kAuthenticationReject,
  kAuthenticationFailure,  // carries cause: MAC failure or sync failure (+AUTS)
  kSecurityModeCommand,
  kSecurityModeComplete,
  kSecurityModeReject,
  kIdentityRequest,
  kIdentityResponse,
  kGutiReallocationCommand,
  kGutiReallocationComplete,
  kTauRequest,
  kTauAccept,
  kTauReject,
  kDetachRequest,
  kDetachAccept,
  kServiceRequest,
  kServiceReject,
  kPaging,
  kEmmInformation,
  kConfigurationUpdateCommand,   // 5G-style procedure (paper's P3 5G impact)
  kConfigurationUpdateComplete,
  // 5G NR registration-management messages (TS 24.501; used by the nr/
  // module implementing the paper's "ProChecker for 5G" adaptation).
  kRegistrationRequest,
  kRegistrationAccept,
  kRegistrationComplete,
  kRegistrationReject,
  kDeregistrationRequest,
  kDeregistrationAccept,
};

/// Security header type octet (TS 24.301 §9.3.1). kPlain is the 0x0 header
/// the paper's I2 finding is about (OAI accepting plain messages after the
/// security context is established).
enum class SecHdr : std::uint8_t {
  kPlain = 0x0,
  kIntegrity = 0x1,
  kIntegrityCiphered = 0x2,
};

/// EMM cause values (subset relevant to the modeled procedures).
enum class EmmCause : std::uint8_t {
  kNone = 0,
  kImsiUnknown = 2,
  kIllegalUe = 3,
  kMacFailure = 20,
  kSynchFailure = 21,
  kCongestion = 22,
  kSecurityModeRejected = 24,
  kNotAuthorized = 35,
};

/// Returns the 3GPP standard name (e.g. "attach_request"). These names are
/// what the model extractor matches in handler signatures.
std::string_view standard_name(MsgType t);

/// Inverse of standard_name(); nullopt for unknown names.
std::optional<MsgType> msg_type_from_name(std::string_view name);

std::string_view to_string(SecHdr h);
std::string_view to_string(EmmCause c);

/// A NAS message: protected header fields plus a named payload-field map.
/// Field maps (rather than one struct per message) keep the codec, the MAC
/// input, and the Dolev–Yao adversary's field-level tampering generic; the
/// per-procedure field vocabulary is documented on the handlers that use it.
struct NasMessage {
  MsgType type = MsgType::kAttachRequest;
  SecHdr sec_hdr = SecHdr::kPlain;
  std::uint32_t count = 0;  // NAS COUNT (sequence number) when protected
  std::uint64_t mac = 0;    // message authentication code when protected

  std::map<std::string, std::uint64_t> u;  // numeric fields
  std::map<std::string, std::string> s;    // string fields (identities, causes)
  std::map<std::string, Bytes> b;          // octet fields (RAND, AUTN, AUTS)

  NasMessage() = default;
  explicit NasMessage(MsgType t) : type(t) {}

  /// Typed accessors with defaults; keep handler code readable.
  std::uint64_t get_u(const std::string& k, std::uint64_t dflt = 0) const;
  std::string get_s(const std::string& k, const std::string& dflt = {}) const;
  Bytes get_b(const std::string& k) const;
  bool has(const std::string& k) const;

  NasMessage& set_u(const std::string& k, std::uint64_t v);
  NasMessage& set_s(const std::string& k, std::string v);
  NasMessage& set_b(const std::string& k, Bytes v);

  bool is_protected() const { return sec_hdr != SecHdr::kPlain; }
  bool operator==(const NasMessage&) const = default;
};

/// Serializes the payload portion (type + fields) deterministically. This is
/// the plaintext the cipher operates on and (together with the count) the
/// MAC input.
Bytes encode_payload(const NasMessage& m);

/// Decodes a payload produced by encode_payload(); nullopt on malformed
/// input (used by the stacks' well-formedness checks).
std::optional<NasMessage> decode_payload(const Bytes& payload);

/// Full PDU: [sec_hdr u8 | count u32 | mac u64 | payload]. The payload is
/// the (possibly ciphered) encode_payload() output.
struct NasPdu {
  SecHdr sec_hdr = SecHdr::kPlain;
  std::uint32_t count = 0;
  std::uint64_t mac = 0;
  Bytes payload;

  Bytes encode() const;
  static std::optional<NasPdu> decode(const Bytes& wire);
  bool operator==(const NasPdu&) const = default;
};

}  // namespace procheck::nas
