// Byte-level chaos TCP proxy (DESIGN.md §12).
//
// Sits between RemoteUeSul and SulServer and mangles the byte stream the
// same way PR-1's ChannelModel mangles PDUs — but one layer down, where the
// faults a real network inflicts on a socket actually live:
//
//   * delay       — hold a chunk a few milliseconds before forwarding;
//   * fragment    — split a chunk into single-byte writes (exercises the
//                   incremental FrameReader; semantically lossless);
//   * reorder     — hold a chunk and flush it *after* the next one in the
//                   same direction (breaks framing → detected, recovered by
//                   reconnect+replay; still lossless end-to-end);
//   * corrupt     — flip one random bit in flight. The wire CRC must turn
//                   this into a *detected framing error*, never bad data —
//                   the contract the corruption-regime tests pin;
//   * reset       — close both sides mid-stream (mid-message resets).
//
// Faults are drawn per chunk from a seeded SplitMix64 stream, so every run
// is reproducible; with an all-zero profile the proxy is byte-transparent
// (the inertness regression the net suite checks first).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "net/socket.h"

namespace procheck::net {

/// Per-chunk fault probabilities, each in [0, 1]. At most one fault fires
/// per chunk, drawn in reset → corrupt → reorder → fragment → delay order.
struct ProxyFaultProfile {
  double delay = 0.0;
  double fragment = 0.0;
  double reorder = 0.0;
  double corrupt = 0.0;
  double reset = 0.0;

  bool active() const {
    return delay > 0 || fragment > 0 || reorder > 0 || corrupt > 0 || reset > 0;
  }
};

struct ChaosProxyOptions {
  std::string upstream_host = "127.0.0.1";
  std::uint16_t upstream_port = 0;
  std::uint16_t listen_port = 0;  // 0 = ephemeral
  ProxyFaultProfile faults;
  std::uint64_t seed = 0xC4A05C4A05ULL;
  /// Hold time for a delayed chunk, in milliseconds (bounded).
  int max_delay_ms = 5;
  double poll_seconds = 0.01;
};

struct ChaosProxyStats {
  long connections = 0;
  long chunks = 0;      // chunks that entered the proxy
  long delayed = 0;
  long fragmented = 0;
  long reordered = 0;
  long corrupted = 0;
  long resets = 0;      // connections the proxy killed

  long faults() const { return delayed + fragmented + reordered + corrupted + resets; }
};

/// Thread-per-connection: every accepted client gets its own pump so N
/// concurrent learner sessions can share one chaotic link to the
/// multi-session server. Fault draws still come from the single seeded
/// stream (under the stats mutex), so a run is reproducible given the same
/// interleaving, and a single-client run is bit-for-bit the PR-4 behavior.
/// start() spawns the accept thread; stop() tears everything down.
class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosProxyOptions options);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  bool start();
  void stop();

  std::uint16_t port() const { return port_; }
  ChaosProxyStats stats() const;

 private:
  enum class Fault : std::uint8_t { kNone, kDelay, kFragment, kReorder, kCorrupt, kReset };

  void pump_loop();
  /// Forwards both directions for one client connection until either side
  /// dies or a reset fault fires.
  void pump_connection(TcpConn client);
  /// Applies the drawn fault and forwards `chunk` to `dst`; `held` is the
  /// per-direction reorder buffer. False when the connection must die.
  bool forward(TcpConn& dst, Bytes chunk, Bytes& held);
  Fault draw_fault();

  ChaosProxyOptions options_;
  TcpListener listener_;
  std::uint16_t port_ = 0;
  std::thread thread_;
  /// One pump thread per accepted connection; only the accept thread writes
  /// this, and stop() joins the accept thread before joining the pumps.
  std::vector<std::thread> pumps_;
  std::atomic<bool> stop_{false};

  mutable std::mutex mu_;
  Rng rng_;
  ChaosProxyStats stats_;
};

}  // namespace procheck::net
