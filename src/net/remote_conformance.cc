#include "net/remote_conformance.h"

#include <sstream>

namespace procheck::net {

const std::vector<RemoteScenario>& remote_scenarios() {
  static const std::vector<RemoteScenario> kScenarios = {
      {"RC-01-attach", {"power_on", "authentication_request", "security_mode_command",
                        "attach_accept"}},
      {"RC-02-auth-only", {"power_on", "authentication_request"}},
      {"RC-03-smc-before-auth", {"power_on", "security_mode_command"}},
      {"RC-04-plain-accept", {"power_on", "attach_accept"}},
      {"RC-05-identity-plain", {"power_on", "identity_request"}},
      {"RC-06-identity-secured", {"power_on", "authentication_request",
                                  "security_mode_command", "identity_request"}},
      {"RC-07-guti-realloc", {"power_on", "authentication_request", "security_mode_command",
                              "attach_accept", "guti_reallocation_command"}},
      {"RC-08-detach", {"power_on", "authentication_request", "security_mode_command",
                        "attach_accept", "detach_request"}},
      {"RC-09-reject", {"power_on", "attach_reject", "attach_accept"}},
      {"RC-10-paging", {"power_on", "authentication_request", "security_mode_command",
                        "attach_accept", "paging"}},
      {"RC-11-reauth", {"power_on", "authentication_request", "authentication_request",
                        "security_mode_command"}},
      {"RC-12-double-smc", {"power_on", "authentication_request", "security_mode_command",
                            "security_mode_command", "attach_accept"}},
  };
  return kScenarios;
}

std::string_view to_string(RemoteVerdict verdict) {
  switch (verdict) {
    case RemoteVerdict::kPass:
      return "PASS";
    case RemoteVerdict::kFail:
      return "FAIL";
    case RemoteVerdict::kInconclusive:
      return "INCONCLUSIVE";
  }
  return "?";
}

int RemoteConformanceReport::passed() const {
  int n = 0;
  for (const auto& r : results) n += r.verdict == RemoteVerdict::kPass;
  return n;
}

int RemoteConformanceReport::failed() const {
  int n = 0;
  for (const auto& r : results) n += r.verdict == RemoteVerdict::kFail;
  return n;
}

int RemoteConformanceReport::inconclusive() const {
  int n = 0;
  for (const auto& r : results) n += r.verdict == RemoteVerdict::kInconclusive;
  return n;
}

std::string RemoteConformanceReport::render() const {
  std::ostringstream out;
  out << "remote conformance: profile " << profile << "\n";
  for (const auto& r : results) {
    out << "  " << r.id << " " << to_string(r.verdict);
    if (r.verdict == RemoteVerdict::kFail) {
      out << " (expected";
      for (const auto& o : r.expected) out << " " << o;
      out << "; got";
      for (const auto& o : r.actual) out << " " << o;
      out << ")";
    }
    out << "\n";
  }
  out << passed() << "/" << total() << " passed, " << failed() << " failed, "
      << inconclusive() << " inconclusive\n";
  return out.str();
}

RemoteConformanceReport run_remote_conformance(const ue::StackProfile& profile,
                                               learner::Sul& sul) {
  RemoteConformanceReport report;
  report.profile = profile.name;
  learner::UeSul reference(profile);
  for (const RemoteScenario& scenario : remote_scenarios()) {
    RemoteCaseResult r;
    r.id = scenario.id;
    r.word = scenario.word;
    r.expected = reference.run(scenario.word);
    r.actual = sul.run(scenario.word);
    bool unavailable = false;
    for (const std::string& o : r.actual) unavailable |= (o == learner::kSulUnavailable);
    if (unavailable) {
      r.verdict = RemoteVerdict::kInconclusive;
    } else {
      r.verdict = r.actual == r.expected ? RemoteVerdict::kPass : RemoteVerdict::kFail;
    }
    report.results.push_back(std::move(r));
  }
  return report;
}

}  // namespace procheck::net
