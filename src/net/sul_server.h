// Multi-session remote-SUL server (DESIGN.md §13): exposes independent
// learner::UeSul instances over the framed wire protocol so N learners can
// share one stack host, with robustness as the design center.
//
// Session model: session-per-connection. Every admitted connection gets its
// own UeSul on a worker thread (common/thread_pool), hard-isolated — a
// session crash, quota trip, poisoned FrameReader, or deadline only tears
// down that session (with a structured kClose frame) and never the listener
// or sibling sessions. The SUL is deterministic and rebuilt from scratch on
// reset, so a reconnecting client reconstructs its exact state by replaying
// reset + its word prefix into a fresh session.
//
// Robustness layers:
//   * admission control — at most `max_sessions` concurrent sessions; beyond
//     the cap (or while draining) connections receive a structured
//     kServerBusy reject instead of hanging in the accept backlog, which the
//     client maps onto its circuit-breaker/vote-cache degradation path;
//   * PSK authentication with anti-replay — when a PSK is configured the
//     hello is answered with a fresh per-connection nonce challenge; the
//     client proves key possession with a MAC over (nonce, epoch), compared
//     in constant time. Failed or replayed handshakes close with
//     kClose(auth_failed) before any SUL state exists. A non-loopback
//     `bind_host` *requires* a PSK (start() refuses otherwise);
//   * version gating — a legacy v1 hello gets a structured
//     kClose(upgrade_required), not a silent half-open socket; v2 per-symbol
//     clients are served unchanged, and a v3 hello additionally negotiates
//     the word-batch capacity (DESIGN.md §14) echoed in the hello-ack;
//   * word-level execution (wire v3) — kQueryWord runs a whole membership
//     query per frame and kQueryBatch up to the negotiated number of words,
//     executed in prefix-sorted order so a word that extends the previous
//     one continues stepping instead of resetting (the prefix_hits counter);
//     malformed or oversized word/batch payloads get a structured kError
//     refusal and the session lives on — a refused request touched no SUL
//     state;
//   * per-session quotas — query count, received bytes, and wall clock;
//     tripping one closes that session with a structured reason;
//   * graceful drain — drain() admits no new sessions (kServerBusy
//     "draining") and lets in-flight words finish: each session closes with
//     kClose(drained) at its next word boundary (the next kReset) or at the
//     drain deadline, whichever comes first;
//   * idle reaping — sessions quiet longer than `idle_timeout_seconds`
//     (keepalive pings count as activity) are closed with
//     kClose(idle_timeout);
//   * observability — a per-session SessionStats registry plus aggregate
//     counters, rendered deterministically by render_stats() for
//     `serve-sul --stats` and asserted in the session suite.
//
// Test hooks: `kill_after_requests` drops a connection right after the Nth
// application request (reset/step); `kill_before_reply` additionally
// suppresses the ack. With `kill_session < 0` the count is cumulative across
// all sessions (the PR-4 kill-at-every-message sweep); with
// `kill_session = j` it counts within the j-th accepted session only, which
// the cross-session isolation sweep uses to kill one session at every
// message while siblings must stay byte-identical.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "learner/sul.h"
#include "net/socket.h"
#include "net/wire.h"
#include "ue/profile.h"

namespace procheck::net {

struct SulServerOptions {
  std::uint16_t port = 0;  // 0 = ephemeral; see SulServer::port()
  /// Bind address. Anything but loopback requires a non-empty `psk`.
  std::string bind_host = "127.0.0.1";
  /// Shared key for the challenge/response handshake; "" disables auth
  /// (loopback only).
  std::string psk;
  /// Concurrent-session cap; connections beyond it get kServerBusy.
  int max_sessions = 4;
  /// Read budget per poll while a session is live; bounds how long stop()
  /// and drain() wait on quiet sessions.
  double poll_seconds = 0.05;
  /// Budget for the whole hello/auth handshake of one connection.
  double handshake_timeout_seconds = 2.0;
  /// Per-session quotas; 0 disables the respective limit.
  long max_session_queries = 0;   // reset+step frames per session
  long max_session_bytes = 0;     // raw bytes received per session
  double max_session_seconds = 0; // wall clock per session (post-handshake)
  /// Reap sessions with no inbound traffic (pings count) for this long;
  /// 0 disables. Pair with a client heartbeat period well below it.
  double idle_timeout_seconds = 0;
  /// drain(): in-flight words may finish until this deadline, then sessions
  /// are closed regardless.
  double drain_deadline_seconds = 5.0;
  /// Auth nonce stream seed; 0 derives one from the clock. Tests pin it for
  /// reproducible challenges (uniqueness per connection is what anti-replay
  /// needs, and holds either way).
  std::uint64_t nonce_seed = 0;
  /// Drop a connection right after the Nth application request (reset/step);
  /// < 0 disables the hook. See `kill_session` for scope.
  long kill_after_requests = -1;
  /// With the kill hook: crash *before* sending the ack.
  bool kill_before_reply = false;
  /// < 0: `kill_after_requests` counts across the server's lifetime and
  /// fires once (PR-4 sweep semantics). >= 0: counts within the session with
  /// this accept index only — kill one session, spare its siblings.
  int kill_session = -1;
};

/// Aggregate counters (whole-server view).
struct SulServerStats {
  long connections = 0;      // accepted TCP connections, admitted or not
  long sessions_admitted = 0;
  long sessions_authenticated = 0;  // handshake completed (auth or open mode)
  long rejected_busy = 0;           // kServerBusy: cap reached
  long rejected_draining = 0;       // kServerBusy: drain in progress
  long auth_failures = 0;           // bad/replayed MAC, missing auth frame
  long upgrade_rejects = 0;         // v1 hello answered with upgrade_required
  long quota_trips = 0;
  long reaped_idle = 0;
  long drained_closes = 0;
  long session_errors = 0;   // sessions torn down by an exception (isolated)
  long requests = 0;         // application requests, in reset+step units
  long resets = 0;           // SUL resets actually executed
  long steps = 0;            // SUL steps actually executed
  long pings = 0;
  long word_queries = 0;     // v3 kQueryWord frames served
  long batch_queries = 0;    // v3 kQueryBatch frames served
  long batched_words = 0;    // words carried by those batches
  long prefix_hits = 0;      // words continued from the previous word's state
                             // (prefix-sorted execution amortized the reset)
  long framing_errors = 0;   // sessions dropped for mis-framed input
  long protocol_errors = 0;  // well-framed but unexpected frame types
  long batch_refusals = 0;   // malformed/oversized word or batch payloads
                             // answered with a structured kError (session lives)
  long kills = 0;            // connections dropped by the kill hook
};

/// One row of the per-session registry. `close_reason` is "" while the
/// session is live; terminal values are the wire reason tokens plus "eof"
/// (peer vanished) and "bye" (orderly client goodbye).
struct SessionStats {
  long id = 0;  // accept order among *admitted* sessions, 0-based
  bool authenticated = false;
  long requests = 0;  // reset+step units (a word counts 1 + its length)
  long resets = 0;
  long steps = 0;
  long word_queries = 0;
  long batch_queries = 0;
  long batched_words = 0;
  long prefix_hits = 0;
  long bytes_in = 0;
  long bytes_out = 0;
  std::string close_reason;
};

/// Serves per-connection UeSul sessions over TCP. start() spawns the
/// accept thread and the session pool; stop() (or the destructor) shuts
/// everything down promptly; drain() sheds load gracefully first.
class SulServer {
 public:
  SulServer(ue::StackProfile profile, SulServerOptions options = {});
  ~SulServer();

  SulServer(const SulServer&) = delete;
  SulServer& operator=(const SulServer&) = delete;

  /// Binds the listener and spawns the accept thread + session pool. False
  /// if the port cannot be bound or the options are unsafe (non-loopback
  /// bind without a PSK) — see start_error().
  bool start();
  /// Hard stop: sessions notice within one poll interval and exit.
  void stop();
  /// Graceful drain: no new sessions; in-flight words finish until the drain
  /// deadline, then sessions close with a structured reason. Non-blocking —
  /// poll active_sessions() (or call stop()) to finish shutdown.
  void drain();

  /// Serves on the calling thread until stop() (CLI `serve-sul` mode).
  void serve();

  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }
  int active_sessions() const { return active_.load(std::memory_order_acquire); }
  /// Why the last start() returned false ("" if it didn't).
  std::string start_error() const;

  /// Snapshot of the aggregate counters (safe to call while serving).
  SulServerStats stats() const;
  /// Snapshot of the per-session registry, in accept order.
  std::vector<SessionStats> session_stats() const;
  /// Deterministic table over both snapshots (`serve-sul --stats`).
  std::string render_stats() const;

 private:
  void serve_loop();
  /// One session, crash-isolated: handshake, then the request loop. Runs on
  /// a pool worker; never throws out.
  void run_session(std::shared_ptr<TcpConn> conn, long session_id);
  /// Handshake half of run_session. True when the session is admitted to
  /// the request loop (sets *close_reason on refusal). A v3 hello may carry
  /// a "batch=N" offer; the granted per-batch word capacity (0 for v2
  /// clients) is returned through *batch_words and echoed in the hello-ack.
  bool handshake(TcpConn& conn, long session_id, FrameReader& reader,
                 std::string* close_reason, int* batch_words);
  /// Request loop half; returns the close reason.
  std::string session_loop(TcpConn& conn, long session_id, FrameReader& reader,
                           int batch_words);

  /// Sends a structured frame (best-effort) and accounts bytes_out.
  void send_control(TcpConn& conn, long session_id, FrameType type,
                    const std::string& reason, std::uint32_t epoch, std::uint32_t seq);
  /// Reads one frame within `budget` seconds; accounts bytes_in and the
  /// byte quota. Status mirrors the frame reader plus timeout/eof.
  enum class ReadStatus : std::uint8_t { kFrame, kTimeout, kEof, kBadFrame, kStop };
  ReadStatus read_frame(TcpConn& conn, long session_id, FrameReader& reader,
                        double budget_seconds, Frame* out);

  std::string next_nonce();
  void set_close_reason(long session_id, const std::string& reason);

  ue::StackProfile profile_;
  SulServerOptions options_;

  TcpListener listener_;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int> active_{0};
  std::chrono::steady_clock::time_point drain_started_{};

  std::atomic<long> nonce_counter_{0};
  std::uint64_t nonce_seed_ = 0;

  mutable std::mutex stats_mu_;
  SulServerStats stats_;
  std::vector<SessionStats> sessions_;
  std::string start_error_;
};

}  // namespace procheck::net
