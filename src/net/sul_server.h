// Remote-SUL server: exposes an in-process learner::UeSul over the framed
// wire protocol (DESIGN.md §12) so a learner on the other side of a socket —
// possibly a chaotic one — can drive reset/step queries.
//
// Session model: one client at a time (active learning is sequential by
// nature). The server answers kHello/kReset/kStep/kPing, echoing the
// client's epoch/seq so the client can discard stale answers after a
// reconnect. Any framing error, unexpected frame type, or orderly kBye drops
// the connection and returns to accept(); the SUL itself survives across
// connections — the client resynchronizes by replaying reset + its word
// prefix, which reconstructs the exact server state (the SUL is
// deterministic).
//
// Test hook: `kill_after_requests` drops the connection right after the Nth
// application request (reset/step) is processed — `kill_before_reply`
// additionally suppresses the ack, modeling a crash mid-response. The
// kill-at-every-message sweep test uses this to pin byte-identical learning
// results across every possible interruption point.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "learner/sul.h"
#include "net/socket.h"
#include "net/wire.h"
#include "ue/profile.h"

namespace procheck::net {

struct SulServerOptions {
  std::uint16_t port = 0;  // 0 = ephemeral; see SulServer::port()
  /// Read budget while a client is connected; bounds how long stop() waits.
  double poll_seconds = 0.05;
  /// Drop the connection after this many application requests (reset/step)
  /// across the server's lifetime; < 0 disables the hook.
  long kill_after_requests = -1;
  /// With the kill hook: crash *before* sending the ack (the request took
  /// effect on the SUL but the client never hears back).
  bool kill_before_reply = false;
};

struct SulServerStats {
  long connections = 0;
  long requests = 0;        // reset + step frames processed
  long resets = 0;
  long steps = 0;
  long pings = 0;
  long framing_errors = 0;  // connections dropped for mis-framed input
  long protocol_errors = 0; // well-framed but unexpected frame types
  long kills = 0;           // connections dropped by the kill hook
};

/// Serves one UeSul over TCP on 127.0.0.1. start() spawns the accept/serve
/// thread; stop() (or the destructor) shuts it down promptly.
class SulServer {
 public:
  SulServer(ue::StackProfile profile, SulServerOptions options = {});
  ~SulServer();

  SulServer(const SulServer&) = delete;
  SulServer& operator=(const SulServer&) = delete;

  /// Binds the listener and spawns the server thread. False if the port
  /// cannot be bound.
  bool start();
  void stop();

  /// Serves on the calling thread until stop() (CLI `serve-sul` mode).
  void serve();

  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Snapshot of the counters (safe to call while serving).
  SulServerStats stats() const;

 private:
  void serve_loop();
  /// Handles one connection until it dies; returns when the client is gone.
  void serve_connection(TcpConn conn);

  ue::StackProfile profile_;
  SulServerOptions options_;
  learner::UeSul sul_;

  TcpListener listener_;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};

  mutable std::mutex stats_mu_;
  SulServerStats stats_;
};

}  // namespace procheck::net
