#include "net/sul_server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <random>
#include <sstream>

#include "common/rng.h"

namespace procheck::net {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t) {
  return std::chrono::duration<double>(Clock::now() - t).count();
}

bool is_loopback(const std::string& host) {
  return host.rfind("127.", 0) == 0 || host == "localhost";
}

}  // namespace

SulServer::SulServer(ue::StackProfile profile, SulServerOptions options)
    : profile_(std::move(profile)), options_(options) {
  if (options_.nonce_seed != 0) {
    nonce_seed_ = options_.nonce_seed;
  } else {
    std::random_device rd;
    nonce_seed_ = (static_cast<std::uint64_t>(rd()) << 32) ^ rd() ^
                  static_cast<std::uint64_t>(Clock::now().time_since_epoch().count());
  }
}

SulServer::~SulServer() { stop(); }

bool SulServer::start() {
  if (!is_loopback(options_.bind_host) && options_.psk.empty()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    start_error_ = "refusing non-loopback bind (" + options_.bind_host +
                   ") without a PSK: pass --psk to authenticate sessions";
    return false;
  }
  auto listener = TcpListener::listen(options_.bind_host, options_.port);
  if (!listener) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    start_error_ = "cannot bind " + options_.bind_host;
    return false;
  }
  listener_ = std::move(*listener);
  port_ = listener_.port();
  stop_.store(false, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  pool_ = std::make_unique<ThreadPool>(
      static_cast<std::size_t>(options_.max_sessions < 1 ? 1 : options_.max_sessions));
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void SulServer::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  pool_.reset();  // waits for in-flight sessions (they poll stop_)
  running_.store(false, std::memory_order_release);
}

void SulServer::drain() {
  drain_started_ = Clock::now();
  draining_.store(true, std::memory_order_release);
}

void SulServer::serve() {
  if (!listener_.valid()) {
    if (!is_loopback(options_.bind_host) && options_.psk.empty()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      start_error_ = "refusing non-loopback bind (" + options_.bind_host +
                     ") without a PSK: pass --psk to authenticate sessions";
      return;
    }
    auto listener = TcpListener::listen(options_.bind_host, options_.port);
    if (!listener) return;
    listener_ = std::move(*listener);
    port_ = listener_.port();
  }
  if (!pool_) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(options_.max_sessions < 1 ? 1 : options_.max_sessions));
  }
  running_.store(true, std::memory_order_release);
  serve_loop();
  pool_.reset();
  running_.store(false, std::memory_order_release);
}

std::string SulServer::start_error() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return start_error_;
}

SulServerStats SulServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::vector<SessionStats> SulServer::session_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return sessions_;
}

std::string SulServer::render_stats() const {
  SulServerStats agg;
  std::vector<SessionStats> sessions;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    agg = stats_;
    sessions = sessions_;
  }
  std::ostringstream out;
  out << "sessions: " << agg.sessions_admitted << " admitted, "
      << agg.sessions_authenticated << " authenticated, " << agg.rejected_busy
      << " rejected busy, " << agg.rejected_draining << " rejected draining, "
      << agg.auth_failures << " auth failures, " << agg.upgrade_rejects
      << " upgrade rejects\n";
  out << "quotas/reaping: " << agg.quota_trips << " quota trips, " << agg.reaped_idle
      << " idle reaped, " << agg.drained_closes << " drained, " << agg.session_errors
      << " session errors, " << agg.kills << " kills\n";
  out << "traffic: " << agg.requests << " requests (" << agg.resets << " resets, "
      << agg.steps << " steps), " << agg.pings << " pings, " << agg.framing_errors
      << " framing errors, " << agg.protocol_errors << " protocol errors\n";
  out << "words: " << agg.word_queries << " word queries, " << agg.batch_queries
      << " batches (" << agg.batched_words << " words), " << agg.prefix_hits
      << " prefix hits, " << agg.batch_refusals << " refusals\n";
  char line[200];
  std::snprintf(line, sizeof(line), "%4s %5s %9s %7s %7s %7s %7s %7s %10s %10s  %s\n", "id",
                "auth", "requests", "resets", "steps", "words", "batches", "pfx_hit",
                "bytes_in", "bytes_out", "close_reason");
  out << line;
  for (const SessionStats& s : sessions) {
    std::snprintf(line, sizeof(line),
                  "%4ld %5s %9ld %7ld %7ld %7ld %7ld %7ld %10ld %10ld  %s\n", s.id,
                  s.authenticated ? "yes" : "no", s.requests, s.resets, s.steps,
                  s.word_queries + s.batched_words, s.batch_queries, s.prefix_hits,
                  s.bytes_in, s.bytes_out,
                  s.close_reason.empty() ? "(live)" : s.close_reason.c_str());
    out << line;
  }
  return out.str();
}

std::string SulServer::next_nonce() {
  const std::uint64_t n = static_cast<std::uint64_t>(
      nonce_counter_.fetch_add(1, std::memory_order_relaxed));
  const std::uint64_t raw = splitmix64(nonce_seed_ ^ (n * 0x9E3779B97F4A7C15ULL));
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(raw));
  return hex;
}

void SulServer::set_close_reason(long session_id, const std::string& reason) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (session_id >= 0 && static_cast<std::size_t>(session_id) < sessions_.size() &&
      sessions_[static_cast<std::size_t>(session_id)].close_reason.empty()) {
    sessions_[static_cast<std::size_t>(session_id)].close_reason = reason;
  }
}

// ---------------------------------------------------------------------------
// Accept / admission
// ---------------------------------------------------------------------------

void SulServer::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    auto conn = listener_.accept(options_.poll_seconds);
    if (!conn) continue;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections;
    }
    // Admission control: shedding happens here, *before* a session thread or
    // any SUL state exists, so an overloaded or draining server answers
    // immediately with a structured reject instead of queueing the client.
    if (draining_.load(std::memory_order_acquire)) {
      send_control(*conn, -1, FrameType::kServerBusy, kReasonDraining, 0, 0);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_draining;
      continue;
    }
    if (active_.load(std::memory_order_acquire) >= options_.max_sessions) {
      send_control(*conn, -1, FrameType::kServerBusy, kReasonServerBusy, 0, 0);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_busy;
      continue;
    }

    long session_id;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      session_id = static_cast<long>(sessions_.size());
      SessionStats s;
      s.id = session_id;
      sessions_.push_back(std::move(s));
      ++stats_.sessions_admitted;
    }
    active_.fetch_add(1, std::memory_order_acq_rel);
    auto shared = std::make_shared<TcpConn>(std::move(*conn));
    pool_->submit([this, shared, session_id] { run_session(shared, session_id); });
  }
}

// ---------------------------------------------------------------------------
// Session worker
// ---------------------------------------------------------------------------

void SulServer::run_session(std::shared_ptr<TcpConn> conn, long session_id) {
  std::string close_reason = "eof";
  try {
    FrameReader reader;
    int batch_words = 0;
    if (handshake(*conn, session_id, reader, &close_reason, &batch_words)) {
      close_reason = session_loop(*conn, session_id, reader, batch_words);
    }
  } catch (const std::exception& e) {
    // Crash isolation: an exception tears down this session only. The close
    // frame is best-effort — the peer may be the reason we're here.
    close_reason = std::string(kReasonSessionError) + ": " + e.what();
    send_control(*conn, session_id, FrameType::kClose, close_reason, 0, 0);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.session_errors;
  } catch (...) {
    close_reason = kReasonSessionError;
    send_control(*conn, session_id, FrameType::kClose, close_reason, 0, 0);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.session_errors;
  }
  set_close_reason(session_id, close_reason);
  conn->close();
  active_.fetch_sub(1, std::memory_order_acq_rel);
}

void SulServer::send_control(TcpConn& conn, long session_id, FrameType type,
                             const std::string& reason, std::uint32_t epoch,
                             std::uint32_t seq) {
  Frame f;
  f.type = type;
  f.epoch = epoch;
  f.seq = seq;
  f.payload = reason;
  Bytes wire = encode_frame(f);
  conn.send_all(wire, options_.poll_seconds);
  if (session_id >= 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (static_cast<std::size_t>(session_id) < sessions_.size()) {
      sessions_[static_cast<std::size_t>(session_id)].bytes_out +=
          static_cast<long>(wire.size());
    }
  }
}

SulServer::ReadStatus SulServer::read_frame(TcpConn& conn, long session_id,
                                            FrameReader& reader, double budget_seconds,
                                            Frame* out) {
  const auto started = Clock::now();
  Bytes chunk;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return ReadStatus::kStop;
    Decoded d = reader.next();
    if (d.status == DecodeStatus::kBadFrame) return ReadStatus::kBadFrame;
    if (d.status == DecodeStatus::kFrame) {
      *out = d.frame;
      return ReadStatus::kFrame;
    }
    const double elapsed = seconds_since(started);
    if (elapsed >= budget_seconds) return ReadStatus::kTimeout;
    const double slice = std::min(options_.poll_seconds, budget_seconds - elapsed);
    chunk.clear();
    auto status = conn.recv_some(chunk, 4096, slice);
    if (status == TcpConn::RecvStatus::kTimeout) continue;
    if (status != TcpConn::RecvStatus::kData) return ReadStatus::kEof;
    reader.feed(chunk);
    if (session_id >= 0) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (static_cast<std::size_t>(session_id) < sessions_.size()) {
        sessions_[static_cast<std::size_t>(session_id)].bytes_in +=
            static_cast<long>(chunk.size());
      }
    }
  }
}

bool SulServer::handshake(TcpConn& conn, long session_id, FrameReader& reader,
                          std::string* close_reason, int* batch_words) {
  *batch_words = 0;
  Frame hello;
  switch (read_frame(conn, session_id, reader, options_.handshake_timeout_seconds, &hello)) {
    case ReadStatus::kFrame:
      break;
    case ReadStatus::kBadFrame: {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.framing_errors;
      *close_reason = "framing_error";
      return false;
    }
    case ReadStatus::kTimeout:
      *close_reason = "handshake_timeout";
      return false;
    default:
      *close_reason = "eof";
      return false;
  }

  if (hello.type != FrameType::kHello) {
    send_control(conn, session_id, FrameType::kError,
                 "expected hello, got " + std::string(to_string(hello.type)), hello.epoch,
                 hello.seq);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.protocol_errors;
    *close_reason = "protocol_error";
    return false;
  }
  // Version gate: a legacy (pre-auth) v1 client gets a structured upgrade
  // notice and a closed socket — never a half-open connection. v2 clients
  // are served per-symbol; a v3 hello may additionally offer a batch
  // capacity, granted below and echoed in the hello-ack.
  if (hello.version < kMinServedVersion) {
    send_control(conn, session_id, FrameType::kClose, kReasonUpgradeRequired, hello.epoch,
                 hello.seq);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.upgrade_rejects;
    *close_reason = kReasonUpgradeRequired;
    return false;
  }
  if (hello.version >= 3) {
    const int offered = parse_batch_token(hello.payload);
    if (offered > 0) {
      *batch_words = std::min(offered, kDefaultBatchWords);
    }
  }

  // The final hello-ack answers the last client frame of the handshake — the
  // hello in open mode, the auth response in PSK mode — so the client's
  // seq-matched rpc consumes it instead of discarding it as stale.
  std::uint32_t ack_epoch = hello.epoch;
  std::uint32_t ack_seq = hello.seq;
  if (!options_.psk.empty()) {
    // Fresh nonce per connection: a captured auth_response from any earlier
    // connection is bound to a nonce that will never be issued again, so
    // replay cannot authenticate.
    const std::string nonce = next_nonce();
    send_control(conn, session_id, FrameType::kChallenge, nonce, hello.epoch, hello.seq);
    Frame auth;
    switch (
        read_frame(conn, session_id, reader, options_.handshake_timeout_seconds, &auth)) {
      case ReadStatus::kFrame:
        break;
      case ReadStatus::kBadFrame: {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.framing_errors;
        *close_reason = "framing_error";
        return false;
      }
      default: {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.auth_failures;
        *close_reason = kReasonAuthFailed;
        return false;
      }
    }
    const std::string expected = auth_mac(options_.psk, nonce, auth.epoch);
    if (auth.type != FrameType::kAuthResponse ||
        !constant_time_equal(auth.payload, expected)) {
      send_control(conn, session_id, FrameType::kClose, kReasonAuthFailed, auth.epoch,
                   auth.seq);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.auth_failures;
      *close_reason = kReasonAuthFailed;
      return false;
    }
    ack_epoch = auth.epoch;
    ack_seq = auth.seq;
  }

  // The ack payload is exactly the profile name for v2 clients; a granted
  // batch offer rides as a " batch=N" suffix the v3 client strips back off.
  send_control(conn, session_id, FrameType::kHelloAck,
               with_batch_token(profile_.name, *batch_words), ack_epoch, ack_seq);
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.sessions_authenticated;
  if (static_cast<std::size_t>(session_id) < sessions_.size()) {
    sessions_[static_cast<std::size_t>(session_id)].authenticated = true;
  }
  return true;
}

std::string SulServer::session_loop(TcpConn& conn, long session_id, FrameReader& reader,
                                    int batch_words) {
  // The SUL exists only for an authenticated session — a rejected handshake
  // can never have touched stack state.
  learner::UeSul sul(profile_);
  const auto session_started = Clock::now();
  auto last_activity = Clock::now();

  // Word-execution state (wire v3): the inputs applied to `sul` since its
  // last reset, with their outputs. A batch sorted into prefix order makes
  // consecutive words share prefixes, so a word whose predecessor is a full
  // prefix continues stepping from the live state instead of resetting —
  // that's the reset amortization the prefix_hits counter measures.
  std::vector<std::string> exec_inputs;
  std::vector<std::string> exec_outputs;
  bool exec_valid = false;  // sul state == initial state + exec_inputs applied

  auto run_word = [&](const std::vector<std::string>& word, long* resets_done,
                      long* steps_done, long* prefix_continuations) {
    std::size_t keep = 0;
    if (exec_valid && exec_inputs.size() <= word.size() &&
        std::equal(exec_inputs.begin(), exec_inputs.end(), word.begin())) {
      keep = exec_inputs.size();
    } else {
      sul.reset();
      ++*resets_done;
      exec_inputs.clear();
      exec_outputs.clear();
      exec_valid = true;
    }
    if (keep > 0) ++*prefix_continuations;
    std::vector<std::string> outputs(exec_outputs.begin(),
                                     exec_outputs.begin() + static_cast<std::ptrdiff_t>(keep));
    for (std::size_t i = keep; i < word.size(); ++i) {
      std::string out = sul.step(word[i]);
      ++*steps_done;
      exec_inputs.push_back(word[i]);
      exec_outputs.push_back(out);
      outputs.push_back(std::move(out));
    }
    return outputs;
  };

  // Malformed or oversized v3 payloads get a structured per-request refusal;
  // the session survives — a refused request touched no SUL state.
  auto refuse = [&](const Frame& req, const char* reason) {
    send_control(conn, session_id, FrameType::kError, reason, req.epoch, req.seq);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batch_refusals;
  };

  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return "server_stop";

    // Wall-clock quota and drain deadline are time-based: check every poll.
    if (options_.max_session_seconds > 0 &&
        seconds_since(session_started) > options_.max_session_seconds) {
      send_control(conn, session_id, FrameType::kClose, kReasonQuotaWall, 0, 0);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.quota_trips;
      return kReasonQuotaWall;
    }
    const bool draining = draining_.load(std::memory_order_acquire);
    if (draining && seconds_since(drain_started_) > options_.drain_deadline_seconds) {
      send_control(conn, session_id, FrameType::kClose, kReasonDrained, 0, 0);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.drained_closes;
      return kReasonDrained;
    }
    if (options_.idle_timeout_seconds > 0 &&
        seconds_since(last_activity) > options_.idle_timeout_seconds) {
      send_control(conn, session_id, FrameType::kClose, kReasonIdleTimeout, 0, 0);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.reaped_idle;
      return kReasonIdleTimeout;
    }

    Frame req;
    switch (read_frame(conn, session_id, reader, options_.poll_seconds, &req)) {
      case ReadStatus::kFrame:
        break;
      case ReadStatus::kTimeout:
        continue;  // quota/drain/idle checks re-run above
      case ReadStatus::kBadFrame: {
        // Resync is impossible once framing breaks (the length prefix itself
        // is untrusted); drop the session and let the client replay.
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.framing_errors;
        return "framing_error";
      }
      case ReadStatus::kStop:
        return "server_stop";
      default:
        return "eof";
    }
    last_activity = Clock::now();

    const bool is_app_request =
        req.type == FrameType::kReset || req.type == FrameType::kStep ||
        req.type == FrameType::kQueryWord || req.type == FrameType::kQueryBatch;

    // Drain: the next word boundary is where an in-flight word is provably
    // finished — for the per-symbol protocol that's the next reset, for the
    // word protocol every word/batch frame *is* a boundary. Close there with
    // a structured reason instead of starting another word.
    if (draining && (req.type == FrameType::kReset || req.type == FrameType::kQueryWord ||
                     req.type == FrameType::kQueryBatch)) {
      send_control(conn, session_id, FrameType::kClose, kReasonDrained, req.epoch, req.seq);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.drained_closes;
      return kReasonDrained;
    }

    // Per-session query and byte quotas, checked before the request mutates
    // the SUL so a quota-tripped session never half-applies a word.
    if (is_app_request && options_.max_session_queries > 0) {
      long session_requests;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        session_requests = sessions_[static_cast<std::size_t>(session_id)].requests;
      }
      if (session_requests >= options_.max_session_queries) {
        send_control(conn, session_id, FrameType::kClose, kReasonQuotaQueries, req.epoch,
                     req.seq);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.quota_trips;
        return kReasonQuotaQueries;
      }
    }
    if (options_.max_session_bytes > 0) {
      long bytes_in;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        bytes_in = sessions_[static_cast<std::size_t>(session_id)].bytes_in;
      }
      if (bytes_in > options_.max_session_bytes) {
        send_control(conn, session_id, FrameType::kClose, kReasonQuotaBytes, req.epoch,
                     req.seq);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.quota_trips;
        return kReasonQuotaBytes;
      }
    }

    // Per-request execution tallies: quota/kill accounting runs in logical
    // reset+step units (a word costs 1 + its length regardless of how many
    // resets the prefix-sorted execution actually saved), while resets_done/
    // steps_done count the SUL work really performed.
    long app_cost = 0;
    long resets_done = 0;
    long steps_done = 0;
    long prefix_continuations = 0;
    long words_served = 0;
    bool is_word_query = false;
    bool is_batch_query = false;

    Frame ack;
    ack.epoch = req.epoch;
    ack.seq = req.seq;
    switch (req.type) {
      case FrameType::kHello:
        // A repeated hello inside a live session is harmless: re-ack.
        ack.type = FrameType::kHelloAck;
        ack.payload = with_batch_token(profile_.name, batch_words);
        break;
      case FrameType::kReset:
        sul.reset();
        exec_inputs.clear();
        exec_outputs.clear();
        exec_valid = true;
        app_cost = 1;
        resets_done = 1;
        ack.type = FrameType::kResetAck;
        break;
      case FrameType::kStep:
        ack.type = FrameType::kStepAck;
        ack.payload = sul.step(req.payload);
        if (exec_valid) {
          exec_inputs.push_back(req.payload);
          exec_outputs.push_back(ack.payload);
        }
        app_cost = 1;
        steps_done = 1;
        break;
      case FrameType::kQueryWord: {
        const auto word = decode_word(req.payload);
        if (!word) {
          refuse(req, kReasonBadWord);
          continue;
        }
        is_word_query = true;
        app_cost = 1 + static_cast<long>(word->size());
        ack.type = FrameType::kWordAck;
        ack.payload =
            encode_word(run_word(*word, &resets_done, &steps_done, &prefix_continuations));
        break;
      }
      case FrameType::kQueryBatch: {
        const std::size_t cap =
            batch_words > 0 ? static_cast<std::size_t>(batch_words)
                            : static_cast<std::size_t>(kDefaultBatchWords);
        const auto words = decode_batch(req.payload, kMaxBatchWords);
        if (!words || words->size() > cap) {
          // Distinguish "too large" from "malformed" for the structured
          // refusal even when decoding bailed early: separator counts bound
          // the item/symbol totals without trusting the payload.
          const std::size_t semis = static_cast<std::size_t>(
              std::count(req.payload.begin(), req.payload.end(), ';'));
          const std::size_t commas = static_cast<std::size_t>(
              std::count(req.payload.begin(), req.payload.end(), ','));
          const bool too_large = (words && words->size() > cap) || semis + 1 > cap ||
                                 semis + commas + 1 > kMaxBatchSymbols;
          refuse(req, too_large ? kReasonBatchTooLarge : kReasonBadBatch);
          continue;
        }
        is_batch_query = true;
        words_served = static_cast<long>(words->size());
        // Prefix-sorted execution: lexicographic order lands every word right
        // after its longest batched prefix, so run_word continues stepping
        // instead of resetting. Acks go back in the *request* order.
        std::vector<std::size_t> order(words->size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
          return (*words)[a] < (*words)[b];
        });
        std::vector<BatchItem> items(words->size());
        for (const std::size_t idx : order) {
          BatchItem& item = items[idx];
          item.ok = true;
          item.outputs =
              run_word((*words)[idx], &resets_done, &steps_done, &prefix_continuations);
          app_cost += 1 + static_cast<long>((*words)[idx].size());
        }
        ack.type = FrameType::kBatchAck;
        ack.payload = encode_batch_ack(items);
        break;
      }
      case FrameType::kPing:
        ack.type = FrameType::kPong;
        break;
      case FrameType::kBye:
        return "bye";  // orderly end; no ack expected
      default: {
        // A client-side frame type the server never expects (acks, pongs,
        // control frames): answer with a structured refusal and drop the
        // session.
        send_control(conn, session_id, FrameType::kError,
                     "unexpected frame type: " + std::string(to_string(req.type)),
                     req.epoch, req.seq);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
        return "protocol_error";
      }
    }

    bool kill = false;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (req.type == FrameType::kPing) ++stats_.pings;
      if (is_app_request) {
        SessionStats& s = sessions_[static_cast<std::size_t>(session_id)];
        const long pre = options_.kill_session < 0 ? stats_.requests : s.requests;
        stats_.requests += app_cost;
        s.requests += app_cost;
        stats_.resets += resets_done;
        s.resets += resets_done;
        stats_.steps += steps_done;
        s.steps += steps_done;
        stats_.prefix_hits += prefix_continuations;
        s.prefix_hits += prefix_continuations;
        if (is_word_query) {
          ++stats_.word_queries;
          ++s.word_queries;
        }
        if (is_batch_query) {
          ++stats_.batch_queries;
          ++s.batch_queries;
          stats_.batched_words += words_served;
          s.batched_words += words_served;
        }
        if (options_.kill_after_requests >= 0) {
          // Threshold crossing, not equality: a word/batch advances the count
          // by more than one unit, and the kill-at-every-message sweeps need
          // the hook to fire for *any* threshold inside that request.
          const long post = pre + app_cost;
          const bool in_scope =
              options_.kill_session < 0 || session_id == options_.kill_session;
          if (in_scope && pre < options_.kill_after_requests &&
              options_.kill_after_requests <= post) {
            kill = true;
            ++stats_.kills;
          }
        }
      }
    }
    if (kill && options_.kill_before_reply) return "killed";  // crash before the ack
    {
      Bytes wire = encode_frame(ack);
      if (!conn.send_all(wire, options_.poll_seconds)) return "eof";
      std::lock_guard<std::mutex> lock(stats_mu_);
      sessions_[static_cast<std::size_t>(session_id)].bytes_out +=
          static_cast<long>(wire.size());
    }
    if (kill) return "killed";  // crash after the ack
  }
}

}  // namespace procheck::net
