#include "net/sul_server.h"

namespace procheck::net {

SulServer::SulServer(ue::StackProfile profile, SulServerOptions options)
    : profile_(std::move(profile)), options_(options), sul_(profile_) {}

SulServer::~SulServer() { stop(); }

bool SulServer::start() {
  auto listener = TcpListener::listen(options_.port);
  if (!listener) return false;
  listener_ = std::move(*listener);
  port_ = listener_.port();
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void SulServer::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void SulServer::serve() {
  if (!listener_.valid()) {
    auto listener = TcpListener::listen(options_.port);
    if (!listener) return;
    listener_ = std::move(*listener);
    port_ = listener_.port();
  }
  running_.store(true, std::memory_order_release);
  serve_loop();
  running_.store(false, std::memory_order_release);
}

SulServerStats SulServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void SulServer::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    auto conn = listener_.accept(options_.poll_seconds);
    if (!conn) continue;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections;
    }
    serve_connection(std::move(*conn));
  }
}

void SulServer::serve_connection(TcpConn conn) {
  FrameReader reader;
  Bytes chunk;
  while (!stop_.load(std::memory_order_acquire)) {
    // Drain every already-buffered frame before reading more bytes.
    Decoded d = reader.next();
    if (d.status == DecodeStatus::kBadFrame) {
      // Resync is impossible once framing breaks (the length prefix itself
      // is untrusted); drop the link and let the client replay.
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.framing_errors;
      return;
    }
    if (d.status == DecodeStatus::kNeedMore) {
      chunk.clear();
      auto status = conn.recv_some(chunk, 4096, options_.poll_seconds);
      if (status == TcpConn::RecvStatus::kTimeout) continue;
      if (status != TcpConn::RecvStatus::kData) return;  // EOF or error
      reader.feed(chunk);
      continue;
    }

    const Frame& req = d.frame;
    Frame ack;
    ack.epoch = req.epoch;
    ack.seq = req.seq;
    bool is_app_request = false;
    switch (req.type) {
      case FrameType::kHello:
        ack.type = FrameType::kHelloAck;
        ack.payload = profile_.name;
        break;
      case FrameType::kReset:
        sul_.reset();
        ack.type = FrameType::kResetAck;
        is_app_request = true;
        break;
      case FrameType::kStep:
        ack.type = FrameType::kStepAck;
        ack.payload = sul_.step(req.payload);
        is_app_request = true;
        break;
      case FrameType::kPing:
        ack.type = FrameType::kPong;
        break;
      case FrameType::kBye:
        return;  // orderly end; no ack expected
      default: {
        // A client-side frame type the server never expects (acks, pongs,
        // errors): answer with a structured refusal and drop the link.
        ack.type = FrameType::kError;
        ack.payload = "unexpected frame type: " + std::string(to_string(req.type));
        conn.send_all(encode_frame(ack), options_.poll_seconds);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
        return;
      }
    }

    bool kill = false;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (req.type == FrameType::kPing) ++stats_.pings;
      if (is_app_request) {
        ++stats_.requests;
        if (req.type == FrameType::kReset) ++stats_.resets;
        if (req.type == FrameType::kStep) ++stats_.steps;
        if (options_.kill_after_requests >= 0 &&
            stats_.requests == options_.kill_after_requests) {
          kill = true;
          ++stats_.kills;
        }
      }
    }
    if (kill && options_.kill_before_reply) return;  // crash before the ack
    if (!conn.send_all(encode_frame(ack), options_.poll_seconds)) return;
    if (kill) return;  // crash after the ack
  }
}

}  // namespace procheck::net
