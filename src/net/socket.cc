#include "net/socket.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace procheck::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Remaining budget in whole milliseconds for poll(2); never negative.
int remaining_ms(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void tune(int fd) {
  // The SUL protocol is small synchronous request/response frames; Nagle
  // would add 40 ms per query.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// --- TcpConn -----------------------------------------------------------------

TcpConn::~TcpConn() { close(); }

TcpConn::TcpConn(TcpConn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpConn TcpConn::adopt(int fd) {
  TcpConn conn;
  conn.fd_ = fd;
  if (fd >= 0) {
    set_nonblocking(fd);
    tune(fd);
  }
  return conn;
}

std::optional<TcpConn> TcpConn::connect(const std::string& host, std::uint16_t port,
                                        double timeout_seconds) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return std::nullopt;
  }
  tune(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return std::nullopt;
  }

  auto deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(timeout_seconds));
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return std::nullopt;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    for (;;) {
      int n = ::poll(&pfd, 1, remaining_ms(deadline));
      if (n > 0) break;
      if (n == 0 || errno != EINTR) {
        ::close(fd);
        return std::nullopt;
      }
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return std::nullopt;
    }
  }
  return adopt(fd);
}

bool TcpConn::send_all(const Bytes& data, double timeout_seconds) {
  if (fd_ < 0) return false;
  auto deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(timeout_seconds));
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      int ms = remaining_ms(deadline);
      if (ms == 0) return false;
      if (::poll(&pfd, 1, ms) <= 0 && errno != EINTR) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

TcpConn::RecvStatus TcpConn::recv_some(Bytes& out, std::size_t max_bytes,
                                       double timeout_seconds) {
  if (fd_ < 0) return RecvStatus::kError;
  auto deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(timeout_seconds));
  for (;;) {
    std::uint8_t buf[4096];
    std::size_t want = max_bytes < sizeof(buf) ? max_bytes : sizeof(buf);
    ssize_t n = ::recv(fd_, buf, want, 0);
    if (n > 0) {
      out.insert(out.end(), buf, buf + n);
      return RecvStatus::kData;
    }
    if (n == 0) return RecvStatus::kEof;
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return RecvStatus::kError;
    pollfd pfd{fd_, POLLIN, 0};
    int ms = remaining_ms(deadline);
    if (ms == 0) return RecvStatus::kTimeout;
    int p = ::poll(&pfd, 1, ms);
    if (p == 0) return RecvStatus::kTimeout;
    if (p < 0 && errno != EINTR) return RecvStatus::kError;
  }
}

// --- TcpListener ---------------------------------------------------------------

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<TcpListener> TcpListener::listen(std::uint16_t port) {
  return listen("127.0.0.1", port);
}

std::optional<TcpListener> TcpListener::listen(const std::string& bind_host,
                                               std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return std::nullopt;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return std::nullopt;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return std::nullopt;
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return std::nullopt;
  }

  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

std::optional<TcpConn> TcpListener::accept(double timeout_seconds) {
  if (fd_ < 0) return std::nullopt;
  auto deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(timeout_seconds));
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return TcpConn::adopt(fd);
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return std::nullopt;
    pollfd pfd{fd_, POLLIN, 0};
    int ms = remaining_ms(deadline);
    if (ms == 0) return std::nullopt;
    int p = ::poll(&pfd, 1, ms);
    if (p == 0) return std::nullopt;
    if (p < 0 && errno != EINTR) return std::nullopt;
  }
}

}  // namespace procheck::net
