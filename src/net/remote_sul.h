// Fault-tolerant remote SUL client (DESIGN.md §12).
//
// RemoteUeSul implements the learner::Sul interface over the framed wire
// protocol, absorbing every transport fault the chaos proxy (or a real
// network) can throw at it:
//
//   * per-call deadlines — no call ever blocks past its budget;
//   * reconnect with jittered exponential backoff, bumping the epoch so a
//     stale answer from a dead link is discarded, never consumed;
//   * state resync after reconnect: reset() is lazy (no I/O), and the live
//     query path replays reset + the current word prefix on a fresh link,
//     reconstructing the deterministic server state exactly — which is why
//     learning over a lossy-but-not-lying channel stays byte-identical to an
//     in-process run;
//   * a circuit breaker (closed → open → half-open probe) that stops
//     hammering a dead server and degrades to the structured
//     learner::kSulUnavailable output symbol — learners converge to an
//     explicit inconclusive verdict instead of hanging or throwing;
//   * a majority-vote answer cache keyed by the word prefix: repeated
//     queries vote, disagreement flags the SUT as nondeterministic in the
//     stats, and replays during reconnect storms can be answered from cache;
//   * an optional heartbeat thread that pings the idle link so a silently
//     dead connection is detected before the next query stalls on it.
//
// Thread-safety: all client state lives under one mutex shared by the query
// path and the heartbeat thread; the TSan suite pins this.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "learner/sul.h"
#include "net/socket.h"
#include "net/wire.h"

namespace procheck::net {

struct RemoteSulOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  /// Shared key for the server's challenge/response handshake. "" works
  /// against an open (loopback) server; against a PSK server it yields a
  /// structured auth_failed close.
  std::string psk;

  /// Wall-clock budget for one frame round-trip (send + matching ack).
  double call_deadline_seconds = 1.0;
  /// Budget for one TCP connect attempt.
  double connect_timeout_seconds = 0.5;

  /// Reconnect backoff: base * 2^attempt, jittered, capped at max.
  double backoff_base_seconds = 0.01;
  double backoff_max_seconds = 0.25;
  /// Transport attempts per step() before degrading to kSulUnavailable.
  int attempts_per_query = 3;

  /// Circuit breaker: consecutive transport failures before opening, and how
  /// long the open circuit rejects attempts before a half-open probe.
  int breaker_failure_threshold = 5;
  double breaker_open_seconds = 0.2;

  /// Heartbeat period for the keepalive thread; 0 disables it.
  double heartbeat_seconds = 0.0;

  /// Words offered per kQueryBatch in the hello negotiation; 0 disables the
  /// v3 word protocol entirely (pure per-symbol v2 behavior). The server
  /// grants min(offer, its own cap) and echoes the grant in the hello-ack;
  /// a server that echoes no grant (v2, or a test fake) silently keeps the
  /// client on the per-symbol path.
  int max_batch_words = kDefaultBatchWords;
  /// Batch frames allowed in flight before query_batch waits on an ack
  /// (acks come back in request order, so the window just hides RTTs).
  int max_inflight_batches = 4;

  /// Jitter seed (deterministic backoff for reproducible tests).
  std::uint64_t seed = 0x5EEDF00D;
};

struct RemoteSulStats {
  long connects = 0;            // successful connections (incl. the first)
  long reconnects = 0;          // connections after the first
  long connect_failures = 0;
  long rpc_timeouts = 0;
  long framing_errors = 0;      // corrupted stream detected by CRC/length
  long stale_frames = 0;        // answers from a previous epoch, discarded
  long breaker_opens = 0;
  long breaker_probes = 0;      // half-open trial queries
  long unavailable_answers = 0; // steps degraded to kSulUnavailable
  long cache_fallbacks = 0;     // answered from the vote cache during outage
  long nondeterministic_queries = 0;  // votes disagreed for a word prefix
  long heartbeats = 0;
  long heartbeat_failures = 0;
  long auth_challenges = 0;     // kChallenge frames answered
  long busy_rejects = 0;        // kServerBusy rejects (admission/drain)
  long server_closes = 0;       // structured kClose frames received
  long word_queries = 0;        // whole words answered over kQueryWord
  long batch_queries = 0;       // kQueryBatch frames acked
  long batched_words = 0;       // words answered inside those batches
  long word_resyncs = 0;        // reconnect resyncs collapsed to one word RPC
};

/// Circuit-breaker state (exposed for tests and status lines).
enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };
std::string_view to_string(BreakerState state);

class RemoteUeSul final : public learner::Sul {
 public:
  explicit RemoteUeSul(RemoteSulOptions options);
  ~RemoteUeSul() override;

  RemoteUeSul(const RemoteUeSul&) = delete;
  RemoteUeSul& operator=(const RemoteUeSul&) = delete;

  /// Lazy: clears the logical word and marks the server out-of-sync; the
  /// actual reset frame rides with the next step (no I/O here, so a dead
  /// server cannot stall reset storms).
  void reset() override;

  /// One abstract input. Never throws, never blocks past the attempt budget;
  /// degrades to learner::kSulUnavailable when the transport is beyond help.
  std::string step(const std::string& input) override;

  /// Whole membership query in one kQueryWord round trip when the server
  /// granted the word protocol; otherwise (or on transport failure) it falls
  /// back to the per-symbol path, which already encodes every retry, vote,
  /// and degradation rule — so answers are byte-identical either way.
  std::vector<std::string> query_word(const std::vector<std::string>& word) override;

  /// Deduplicates the words, ships the distinct ones as pipelined kQueryBatch
  /// frames (up to max_inflight_batches in the air), and finishes any word a
  /// failed batch left unanswered through query_word's fallback chain.
  std::vector<std::vector<std::string>> query_batch(
      const std::vector<std::vector<std::string>>& words) override;

  /// One fresh kQueryWord round trip whose raw server answer is returned
  /// as-is — it neither consults nor feeds the majority-vote cache. The
  /// learning supervisor's k-of-n arbitration samples through this: the
  /// cache's job is to *smooth* flapping, which is exactly what a vote must
  /// not see. Falls back to the per-symbol path when the server never
  /// granted the word protocol.
  std::vector<std::string> query_word_fresh(
      const std::vector<std::string>& word) override;

  long resets() const override;
  long steps() const override;

  /// Batch capacity granted by the server in the last hello-ack (0 before
  /// first contact or when the server kept us on the per-symbol path).
  int negotiated_batch_words() const;

  RemoteSulStats stats() const;
  BreakerState breaker() const;

  /// Server profile name from the hello handshake ("" before first contact).
  std::string server_profile() const;

  /// Reason string from the last structured kClose / kServerBusy frame the
  /// server sent ("" if none yet). Surfaced through unavailable_reason() so
  /// `learn --remote` can print *why* a run went inconclusive.
  std::string last_close_reason() const;
  std::string unavailable_reason() const override;

 private:
  struct VoteBox {
    std::map<std::string, int> votes;
    bool disagreed = false;
  };

  // All private helpers assume mu_ is held.
  bool breaker_allows_locked();
  void record_failure_locked();
  void record_success_locked();
  bool connect_locked(double budget_seconds);
  void drop_connection_locked();
  bool send_frame_locked(FrameType type, const std::string& payload, std::uint32_t* seq_out);
  std::optional<Frame> await_ack_locked(std::uint32_t seq);
  std::optional<Frame> rpc_locked(FrameType type, const std::string& payload);
  std::optional<std::string> live_step_locked(double backoff_scale);
  std::string vote_and_answer_locked(const std::string& observed);
  std::optional<std::string> cached_answer_locked() const;

  /// Feeds every proper prefix's observed output into the vote cache and
  /// returns the majority answer per position — exactly what a per-symbol
  /// run of the same word would have produced (the byte-identity invariant).
  std::vector<std::string> vote_word_locked(const std::vector<std::string>& word,
                                            const std::vector<std::string>& outputs);

  /// One word over kQueryWord, with the step() retry/backoff/breaker rules.
  /// `raw` skips the vote cache entirely (arbitration sampling); the default
  /// feeds the observed outputs through it for run-to-run answer stability.
  enum class WordRpc : std::uint8_t { kOk, kDenied, kFailed };
  WordRpc word_query_locked(const std::vector<std::string>& word,
                            std::vector<std::string>* answers, bool raw = false);
  /// Best-effort pipelined batches over the distinct `words`; every answered
  /// word lands in `*answered`. Words left behind (denied protocol, failed
  /// link, unencodable symbols) are the caller's to finish per-word.
  void batch_rpc_locked(const std::vector<std::vector<std::string>>& words,
                        std::map<std::vector<std::string>, std::vector<std::string>>* answered);

  void heartbeat_loop();

  RemoteSulOptions options_;

  mutable std::mutex mu_;
  TcpConn conn_;
  FrameReader reader_;
  std::uint32_t epoch_ = 0;
  std::uint32_t seq_ = 0;
  bool server_synced_ = false;  // server holds reset+word_ state for epoch_
  std::vector<std::string> word_;  // inputs since the last reset()
  std::string server_profile_;
  std::string last_close_reason_;
  int negotiated_batch_ = 0;  // words per batch the server granted (0 = denied)

  BreakerState breaker_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  std::chrono::steady_clock::time_point breaker_opened_at_{};

  std::map<std::vector<std::string>, VoteBox> vote_cache_;
  Rng jitter_;

  long resets_ = 0;
  long steps_ = 0;
  RemoteSulStats stats_;

  // Heartbeat machinery: its own mutex/cv so stop() can interrupt the wait
  // without contending with an in-flight query.
  std::thread heartbeat_thread_;
  std::mutex hb_mu_;
  std::condition_variable hb_cv_;
  bool stopping_ = false;
};

}  // namespace procheck::net
