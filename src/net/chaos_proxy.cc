#include "net/chaos_proxy.h"

#include <chrono>
#include <memory>

namespace procheck::net {

namespace {

void sleep_ms(int ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

ChaosProxy::ChaosProxy(ChaosProxyOptions options)
    : options_(options), rng_(options.seed) {}

ChaosProxy::~ChaosProxy() { stop(); }

bool ChaosProxy::start() {
  auto listener = TcpListener::listen(options_.listen_port);
  if (!listener) return false;
  listener_ = std::move(*listener);
  port_ = listener_.port();
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { pump_loop(); });
  return true;
}

void ChaosProxy::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  // The accept thread is dead, so pumps_ is stable; the pumps themselves
  // poll stop_ and exit within one poll interval.
  for (std::thread& t : pumps_) {
    if (t.joinable()) t.join();
  }
  pumps_.clear();
}

ChaosProxyStats ChaosProxy::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

ChaosProxy::Fault ChaosProxy::draw_fault() {
  // Caller holds mu_. At most one fault per chunk, fixed draw order, and an
  // inactive profile consumes no randomness (byte-transparent regression).
  const ProxyFaultProfile& p = options_.faults;
  if (!p.active()) return Fault::kNone;
  auto roll = [this](double prob) {
    if (prob <= 0) return false;
    return static_cast<double>(rng_.next_below(1u << 20)) / static_cast<double>(1u << 20) < prob;
  };
  if (roll(p.reset)) return Fault::kReset;
  if (roll(p.corrupt)) return Fault::kCorrupt;
  if (roll(p.reorder)) return Fault::kReorder;
  if (roll(p.fragment)) return Fault::kFragment;
  if (roll(p.delay)) return Fault::kDelay;
  return Fault::kNone;
}

void ChaosProxy::pump_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    auto client = listener_.accept(options_.poll_seconds);
    if (!client) continue;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.connections;
    }
    // Thread-per-connection so concurrent learner sessions never head-of-line
    // block each other through the proxy.
    auto shared = std::make_shared<TcpConn>(std::move(*client));
    pumps_.emplace_back([this, shared] { pump_connection(std::move(*shared)); });
  }
}

void ChaosProxy::pump_connection(TcpConn client) {
  auto upstream = TcpConn::connect(options_.upstream_host, options_.upstream_port,
                                   options_.poll_seconds * 10);
  if (!upstream) return;  // server gone: client sees EOF and backs off

  // One pump thread alternates short bounded reads on both directions; the
  // reorder fault holds a chunk per direction until the next one arrives.
  Bytes held_up;    // client → upstream
  Bytes held_down;  // upstream → client
  while (!stop_.load(std::memory_order_acquire)) {
    Bytes chunk;
    bool moved = false;

    auto status = client.recv_some(chunk, 4096, options_.poll_seconds);
    if (status == TcpConn::RecvStatus::kData) {
      moved = true;
      if (!forward(*upstream, std::move(chunk), held_up)) return;
    } else if (status != TcpConn::RecvStatus::kTimeout) {
      break;  // client closed; flush and go home
    }

    chunk.clear();
    status = upstream->recv_some(chunk, 4096, options_.poll_seconds);
    if (status == TcpConn::RecvStatus::kData) {
      moved = true;
      if (!forward(client, std::move(chunk), held_down)) return;
    } else if (status != TcpConn::RecvStatus::kTimeout) {
      break;  // upstream closed
    }

    // Idle moment: a held reorder chunk has no successor to swap with, so
    // release it rather than stalling the conversation forever.
    if (!moved) {
      if (!held_up.empty()) {
        Bytes flush;
        flush.swap(held_up);
        if (!upstream->send_all(flush, options_.poll_seconds * 10)) return;
      }
      if (!held_down.empty()) {
        Bytes flush;
        flush.swap(held_down);
        if (!client.send_all(flush, options_.poll_seconds * 10)) return;
      }
    }
  }
  // Orderly teardown: flush what we held so no bytes are lost.
  if (!held_up.empty()) upstream->send_all(held_up, options_.poll_seconds * 10);
  if (!held_down.empty()) client.send_all(held_down, options_.poll_seconds * 10);
}

bool ChaosProxy::forward(TcpConn& dst, Bytes chunk, Bytes& held) {
  Fault fault;
  int delay_ms = 0;
  std::size_t flip_bit = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.chunks;
    fault = draw_fault();
    switch (fault) {
      case Fault::kDelay:
        ++stats_.delayed;
        delay_ms = 1 + static_cast<int>(rng_.next_below(
                           static_cast<std::uint64_t>(options_.max_delay_ms)));
        break;
      case Fault::kFragment:
        ++stats_.fragmented;
        break;
      case Fault::kReorder:
        ++stats_.reordered;
        break;
      case Fault::kCorrupt:
        if (chunk.empty()) {
          fault = Fault::kNone;
          break;
        }
        ++stats_.corrupted;
        flip_bit = rng_.next_below(chunk.size() * 8);
        break;
      case Fault::kReset:
        ++stats_.resets;
        break;
      case Fault::kNone:
        break;
    }
  }

  const double send_budget = options_.poll_seconds * 20;
  // A chunk held for reorder goes out *before* this one.
  auto send_with_held = [&](const Bytes& data) {
    if (!held.empty()) {
      Bytes first;
      first.swap(held);
      if (!dst.send_all(first, send_budget)) return false;
    }
    return dst.send_all(data, send_budget);
  };

  switch (fault) {
    case Fault::kReset:
      return false;  // caller closes both sides: a mid-message connection kill
    case Fault::kCorrupt:
      chunk[flip_bit / 8] ^= static_cast<std::uint8_t>(1u << (flip_bit % 8));
      return send_with_held(chunk);
    case Fault::kDelay:
      sleep_ms(delay_ms);
      return send_with_held(chunk);
    case Fault::kFragment: {
      if (!held.empty()) {
        Bytes first;
        first.swap(held);
        if (!dst.send_all(first, send_budget)) return false;
      }
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        Bytes one{chunk[i]};
        if (!dst.send_all(one, send_budget)) return false;
      }
      return true;
    }
    case Fault::kReorder:
      if (!held.empty()) {
        // Already holding one: this chunk jumps the queue (the swap).
        Bytes first;
        first.swap(held);
        if (!dst.send_all(chunk, send_budget)) return false;
        return dst.send_all(first, send_budget);
      }
      held = std::move(chunk);  // wait for a successor to swap with
      return true;
    case Fault::kNone:
      return send_with_held(chunk);
  }
  return true;
}

}  // namespace procheck::net
