#include "net/wire.h"

#include <cstdio>

#include "common/journal.h"  // crc32
#include "common/rng.h"      // prf64 (simulation-grade keyed MAC)

namespace procheck::net {

namespace {

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] << 8 | p[1]);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 | static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 | static_cast<std::uint32_t>(p[3]);
}

Decoded bad(std::string reason) {
  Decoded d;
  d.status = DecodeStatus::kBadFrame;
  d.error = std::move(reason);
  return d;
}

}  // namespace

std::string_view to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "hello";
    case FrameType::kHelloAck:
      return "hello_ack";
    case FrameType::kReset:
      return "reset";
    case FrameType::kResetAck:
      return "reset_ack";
    case FrameType::kStep:
      return "step";
    case FrameType::kStepAck:
      return "step_ack";
    case FrameType::kPing:
      return "ping";
    case FrameType::kPong:
      return "pong";
    case FrameType::kBye:
      return "bye";
    case FrameType::kError:
      return "error";
    case FrameType::kChallenge:
      return "challenge";
    case FrameType::kAuthResponse:
      return "auth_response";
    case FrameType::kServerBusy:
      return "server_busy";
    case FrameType::kClose:
      return "close";
  }
  return "?";
}

bool known_frame_type(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(FrameType::kHello) &&
         raw <= static_cast<std::uint8_t>(FrameType::kClose);
}

std::string auth_mac(const std::string& psk, const std::string& nonce_hex,
                     std::uint32_t epoch) {
  // Key = PRF of the PSK octets under a fixed domain constant; MAC = PRF of
  // (nonce || epoch) under that key. Domain separation keeps this MAC from
  // colliding with any other prf64 use in the framework.
  Bytes key_material(psk.begin(), psk.end());
  const std::uint64_t key = prf64(0x50C5A117u, key_material);
  Bytes data(nonce_hex.begin(), nonce_hex.end());
  put_u32(data, epoch);
  const std::uint64_t mac = prf64(key, data);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(mac));
  return hex;
}

bool constant_time_equal(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  unsigned char acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<unsigned char>(acc | (static_cast<unsigned char>(a[i]) ^
                                            static_cast<unsigned char>(b[i])));
  }
  return acc == 0;
}

Bytes encode_frame(const Frame& frame) {
  const std::size_t payload = frame.payload.size() <= kMaxFramePayload
                                  ? frame.payload.size()
                                  : kMaxFramePayload;  // defensive clamp
  Bytes out;
  out.reserve(4 + kFrameOverhead + payload);
  put_u32(out, static_cast<std::uint32_t>(kFrameOverhead + payload));
  put_u16(out, kWireMagic);
  out.push_back(frame.version);
  out.push_back(static_cast<std::uint8_t>(frame.type));
  put_u32(out, frame.epoch);
  put_u32(out, frame.seq);
  out.insert(out.end(), frame.payload.begin(), frame.payload.begin() +
                            static_cast<std::ptrdiff_t>(payload));
  // CRC over magic..payload (body minus the CRC itself).
  std::string_view body(reinterpret_cast<const char*>(out.data() + 4), out.size() - 4);
  put_u32(out, crc32(body));
  return out;
}

Decoded decode_frame(const Bytes& wire, std::size_t* consumed) {
  if (consumed) *consumed = 0;
  if (wire.size() < 4) {
    Decoded d;
    d.status = DecodeStatus::kNeedMore;
    return d;
  }
  const std::uint32_t length = get_u32(wire.data());
  if (length < kFrameOverhead || length > kFrameOverhead + kMaxFramePayload) {
    return bad("frame length out of range");
  }
  if (wire.size() < 4 + static_cast<std::size_t>(length)) {
    Decoded d;
    d.status = DecodeStatus::kNeedMore;
    return d;
  }
  const std::uint8_t* body = wire.data() + 4;
  if (get_u16(body) != kWireMagic) return bad("bad magic");
  if (body[2] < kMinWireVersion || body[2] > kWireVersion) {
    return bad("unsupported protocol version");
  }
  if (!known_frame_type(body[3])) return bad("unknown frame type");

  const std::size_t payload_len = length - kFrameOverhead;
  const std::uint32_t tagged = get_u32(body + 12 + payload_len);
  std::string_view covered(reinterpret_cast<const char*>(body), length - 4);
  if (crc32(covered) != tagged) return bad("crc mismatch");

  Decoded d;
  d.status = DecodeStatus::kFrame;
  d.frame.type = static_cast<FrameType>(body[3]);
  d.frame.version = body[2];
  d.frame.epoch = get_u32(body + 4);
  d.frame.seq = get_u32(body + 8);
  d.frame.payload.assign(reinterpret_cast<const char*>(body + 12), payload_len);
  if (consumed) *consumed = 4 + length;
  return d;
}

void FrameReader::feed(const std::uint8_t* data, std::size_t n) {
  if (poisoned_) return;  // the stream is already dead; don't accumulate
  buf_.insert(buf_.end(), data, data + n);
}

Decoded FrameReader::next() {
  if (poisoned_) {
    Decoded d;
    d.status = DecodeStatus::kBadFrame;
    d.error = poison_reason_;
    return d;
  }
  // Compact lazily so long sessions don't grow the buffer unboundedly.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 64 * 1024)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  Bytes window(buf_.begin() + static_cast<std::ptrdiff_t>(pos_), buf_.end());
  std::size_t consumed = 0;
  Decoded d = decode_frame(window, &consumed);
  if (d.status == DecodeStatus::kFrame) {
    pos_ += consumed;
  } else if (d.status == DecodeStatus::kBadFrame) {
    poisoned_ = true;
    poison_reason_ = d.error;
  }
  return d;
}

void FrameReader::reset() {
  buf_.clear();
  pos_ = 0;
  poisoned_ = false;
  poison_reason_.clear();
}

}  // namespace procheck::net
