#include "net/wire.h"

#include <cstdio>

#include "common/journal.h"  // crc32
#include "common/rng.h"      // prf64 (simulation-grade keyed MAC)

namespace procheck::net {

namespace {

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] << 8 | p[1]);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 | static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 | static_cast<std::uint32_t>(p[3]);
}

Decoded bad(std::string reason) {
  Decoded d;
  d.status = DecodeStatus::kBadFrame;
  d.error = std::move(reason);
  return d;
}

}  // namespace

std::string_view to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "hello";
    case FrameType::kHelloAck:
      return "hello_ack";
    case FrameType::kReset:
      return "reset";
    case FrameType::kResetAck:
      return "reset_ack";
    case FrameType::kStep:
      return "step";
    case FrameType::kStepAck:
      return "step_ack";
    case FrameType::kPing:
      return "ping";
    case FrameType::kPong:
      return "pong";
    case FrameType::kBye:
      return "bye";
    case FrameType::kError:
      return "error";
    case FrameType::kChallenge:
      return "challenge";
    case FrameType::kAuthResponse:
      return "auth_response";
    case FrameType::kServerBusy:
      return "server_busy";
    case FrameType::kClose:
      return "close";
    case FrameType::kQueryWord:
      return "query_word";
    case FrameType::kWordAck:
      return "word_ack";
    case FrameType::kQueryBatch:
      return "query_batch";
    case FrameType::kBatchAck:
      return "batch_ack";
  }
  return "?";
}

bool known_frame_type(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(FrameType::kHello) &&
         raw <= static_cast<std::uint8_t>(FrameType::kBatchAck);
}

// ---------------------------------------------------------------------------
// Word / batch payload codec (wire v3)
// ---------------------------------------------------------------------------

namespace {

bool valid_symbol_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '_' || c == '.' || c == '-';
}

/// Splits `text` into symbols at ','; total and bounds-checked. An empty
/// text is the empty word (ε), which is valid.
bool decode_word_into(std::string_view text, std::vector<std::string>* out) {
  out->clear();
  if (text.empty()) return true;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i < text.size() && text[i] != ',') {
      if (!valid_symbol_char(text[i])) return false;
      continue;
    }
    const std::size_t len = i - start;
    if (len == 0 || len > kMaxSymbolChars) return false;
    if (out->size() >= kMaxWordSymbols) return false;
    out->emplace_back(text.substr(start, len));
    start = i + 1;
  }
  return true;
}

}  // namespace

std::string encode_word(const std::vector<std::string>& word) {
  std::string out;
  for (std::size_t i = 0; i < word.size(); ++i) {
    if (i > 0) out += ',';
    out += word[i];
  }
  return out;
}

std::optional<std::vector<std::string>> decode_word(std::string_view text) {
  std::vector<std::string> word;
  if (!decode_word_into(text, &word)) return std::nullopt;
  return word;
}

std::string encode_batch(const std::vector<std::vector<std::string>>& words) {
  std::string out;
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (i > 0) out += ';';
    out += encode_word(words[i]);
  }
  return out;
}

std::optional<std::vector<std::vector<std::string>>> decode_batch(std::string_view text,
                                                                  std::size_t max_words) {
  std::vector<std::vector<std::string>> words;
  const std::size_t cap = max_words == 0 || max_words > kMaxBatchWords ? kMaxBatchWords
                                                                       : max_words;
  std::size_t total_symbols = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i < text.size() && text[i] != ';') continue;
    if (words.size() >= cap) return std::nullopt;
    std::vector<std::string> word;
    if (!decode_word_into(text.substr(start, i - start), &word)) return std::nullopt;
    // An empty item is only meaningful as the single ε word of a one-item
    // batch; ";;" runs are malformed.
    if (word.empty() && text.size() > 0) return std::nullopt;
    total_symbols += word.size();
    if (total_symbols > kMaxBatchSymbols) return std::nullopt;
    words.push_back(std::move(word));
    start = i + 1;
  }
  if (words.empty()) return std::nullopt;
  return words;
}

std::string encode_batch_ack(const std::vector<BatchItem>& items) {
  // Per-item status prefix: '+' carries outputs, '!' carries a reason token.
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ';';
    if (items[i].ok) {
      out += '+';
      out += encode_word(items[i].outputs);
    } else {
      out += '!';
      for (char c : items[i].error) out += valid_symbol_char(c) ? c : '_';
    }
  }
  return out;
}

std::optional<std::vector<BatchItem>> decode_batch_ack(std::string_view text,
                                                       std::size_t max_words) {
  std::vector<BatchItem> items;
  const std::size_t cap = max_words == 0 || max_words > kMaxBatchWords ? kMaxBatchWords
                                                                       : max_words;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i < text.size() && text[i] != ';') continue;
    if (items.size() >= cap) return std::nullopt;
    std::string_view item = text.substr(start, i - start);
    if (item.empty()) return std::nullopt;
    BatchItem decoded;
    if (item[0] == '+') {
      decoded.ok = true;
      if (!decode_word_into(item.substr(1), &decoded.outputs)) return std::nullopt;
    } else if (item[0] == '!') {
      decoded.ok = false;
      std::string_view reason = item.substr(1);
      if (reason.empty() || reason.size() > kMaxSymbolChars) return std::nullopt;
      for (char c : reason) {
        if (!valid_symbol_char(c)) return std::nullopt;
      }
      decoded.error.assign(reason);
    } else {
      return std::nullopt;
    }
    items.push_back(std::move(decoded));
    start = i + 1;
  }
  if (items.empty()) return std::nullopt;
  return items;
}

std::string with_batch_token(const std::string& base, int batch_words) {
  if (batch_words <= 0) return base;
  return base + " batch=" + std::to_string(batch_words);
}

int parse_batch_token(std::string_view payload) {
  const std::string_view token = " batch=";
  const std::size_t at = payload.rfind(token);
  if (at == std::string_view::npos) return 0;
  std::string_view digits = payload.substr(at + token.size());
  if (digits.empty() || digits.size() > 4) return 0;
  int value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return 0;
    value = value * 10 + (c - '0');
  }
  if (value <= 0) return 0;
  return value > static_cast<int>(kMaxBatchWords) ? static_cast<int>(kMaxBatchWords) : value;
}

std::string strip_batch_token(std::string_view payload) {
  const std::string_view token = " batch=";
  const std::size_t at = payload.rfind(token);
  if (at == std::string_view::npos || parse_batch_token(payload) == 0) {
    return std::string(payload);
  }
  return std::string(payload.substr(0, at));
}

std::string auth_mac(const std::string& psk, const std::string& nonce_hex,
                     std::uint32_t epoch) {
  // Key = PRF of the PSK octets under a fixed domain constant; MAC = PRF of
  // (nonce || epoch) under that key. Domain separation keeps this MAC from
  // colliding with any other prf64 use in the framework.
  Bytes key_material(psk.begin(), psk.end());
  const std::uint64_t key = prf64(0x50C5A117u, key_material);
  Bytes data(nonce_hex.begin(), nonce_hex.end());
  put_u32(data, epoch);
  const std::uint64_t mac = prf64(key, data);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(mac));
  return hex;
}

bool constant_time_equal(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  unsigned char acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<unsigned char>(acc | (static_cast<unsigned char>(a[i]) ^
                                            static_cast<unsigned char>(b[i])));
  }
  return acc == 0;
}

Bytes encode_frame(const Frame& frame) {
  const std::size_t payload = frame.payload.size() <= kMaxFramePayload
                                  ? frame.payload.size()
                                  : kMaxFramePayload;  // defensive clamp
  Bytes out;
  out.reserve(4 + kFrameOverhead + payload);
  put_u32(out, static_cast<std::uint32_t>(kFrameOverhead + payload));
  put_u16(out, kWireMagic);
  out.push_back(frame.version);
  out.push_back(static_cast<std::uint8_t>(frame.type));
  put_u32(out, frame.epoch);
  put_u32(out, frame.seq);
  out.insert(out.end(), frame.payload.begin(), frame.payload.begin() +
                            static_cast<std::ptrdiff_t>(payload));
  // CRC over magic..payload (body minus the CRC itself).
  std::string_view body(reinterpret_cast<const char*>(out.data() + 4), out.size() - 4);
  put_u32(out, crc32(body));
  return out;
}

Decoded decode_frame(const Bytes& wire, std::size_t* consumed) {
  if (consumed) *consumed = 0;
  if (wire.size() < 4) {
    Decoded d;
    d.status = DecodeStatus::kNeedMore;
    return d;
  }
  const std::uint32_t length = get_u32(wire.data());
  if (length < kFrameOverhead || length > kFrameOverhead + kMaxFramePayload) {
    return bad("frame length out of range");
  }
  if (wire.size() < 4 + static_cast<std::size_t>(length)) {
    Decoded d;
    d.status = DecodeStatus::kNeedMore;
    return d;
  }
  const std::uint8_t* body = wire.data() + 4;
  if (get_u16(body) != kWireMagic) return bad("bad magic");
  if (body[2] < kMinWireVersion || body[2] > kWireVersion) {
    return bad("unsupported protocol version");
  }
  if (!known_frame_type(body[3])) return bad("unknown frame type");

  const std::size_t payload_len = length - kFrameOverhead;
  const std::uint32_t tagged = get_u32(body + 12 + payload_len);
  std::string_view covered(reinterpret_cast<const char*>(body), length - 4);
  if (crc32(covered) != tagged) return bad("crc mismatch");

  Decoded d;
  d.status = DecodeStatus::kFrame;
  d.frame.type = static_cast<FrameType>(body[3]);
  d.frame.version = body[2];
  d.frame.epoch = get_u32(body + 4);
  d.frame.seq = get_u32(body + 8);
  d.frame.payload.assign(reinterpret_cast<const char*>(body + 12), payload_len);
  if (consumed) *consumed = 4 + length;
  return d;
}

void FrameReader::feed(const std::uint8_t* data, std::size_t n) {
  if (poisoned_) return;  // the stream is already dead; don't accumulate
  buf_.insert(buf_.end(), data, data + n);
}

Decoded FrameReader::next() {
  if (poisoned_) {
    Decoded d;
    d.status = DecodeStatus::kBadFrame;
    d.error = poison_reason_;
    return d;
  }
  // Compact lazily so long sessions don't grow the buffer unboundedly.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 64 * 1024)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  Bytes window(buf_.begin() + static_cast<std::ptrdiff_t>(pos_), buf_.end());
  std::size_t consumed = 0;
  Decoded d = decode_frame(window, &consumed);
  if (d.status == DecodeStatus::kFrame) {
    pos_ += consumed;
  } else if (d.status == DecodeStatus::kBadFrame) {
    poisoned_ = true;
    poison_reason_ = d.error;
  }
  return d;
}

void FrameReader::reset() {
  buf_.clear();
  pos_ = 0;
  poisoned_ = false;
  poison_reason_.clear();
}

}  // namespace procheck::net
