// Minimal deadline-aware TCP primitives for the remote-SUL transport
// (DESIGN.md §12). Everything the net layer needs and nothing more: a
// loopback-friendly listener and a connection with bounded connect / send /
// recv. All operations take explicit wall-clock budgets — a misbehaving peer
// can stall a call, never wedge it — and no call ever raises a signal
// (SIGPIPE is suppressed per send).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"

namespace procheck::net {

/// One TCP connection. Movable, not copyable; the destructor closes the fd.
class TcpConn {
 public:
  TcpConn() = default;
  ~TcpConn();
  TcpConn(TcpConn&& other) noexcept;
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  /// Non-blocking connect bounded by `timeout_seconds`; nullopt on refusal,
  /// unreachable host, or deadline.
  static std::optional<TcpConn> connect(const std::string& host, std::uint16_t port,
                                        double timeout_seconds);

  /// Writes the whole buffer or fails; partial progress past the deadline is
  /// a failure (the frame layer treats the stream as dead either way).
  bool send_all(const Bytes& data, double timeout_seconds);

  /// Outcome of one bounded read.
  enum class RecvStatus : std::uint8_t { kData, kEof, kTimeout, kError };
  /// Appends up to `max_bytes` received bytes to `out`.
  RecvStatus recv_some(Bytes& out, std::size_t max_bytes, double timeout_seconds);

  bool valid() const { return fd_ >= 0; }
  void close();

  /// Adopts an accepted fd (listener use).
  static TcpConn adopt(int fd);

 private:
  int fd_ = -1;
};

/// A listening socket, loopback by default. Port 0 requests an ephemeral
/// port; `port()` reports the bound one.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  static std::optional<TcpListener> listen(std::uint16_t port);
  /// Binds a specific IPv4 address ("0.0.0.0" for all interfaces). Callers
  /// exposing a routable bind must layer authentication on top — the SUL
  /// server refuses a non-loopback bind without a PSK.
  static std::optional<TcpListener> listen(const std::string& bind_host,
                                           std::uint16_t port);

  /// Waits up to `timeout_seconds` for one connection; nullopt on timeout or
  /// a closed listener.
  std::optional<TcpConn> accept(double timeout_seconds);

  std::uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace procheck::net
