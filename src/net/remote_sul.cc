#include "net/remote_sul.h"

#include <algorithm>

namespace procheck::net {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t) {
  return std::chrono::duration<double>(Clock::now() - t).count();
}

void sleep_seconds(double s) {
  if (s > 0) std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

}  // namespace

std::string_view to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "?";
}

RemoteUeSul::RemoteUeSul(RemoteSulOptions options)
    : options_(options), jitter_(options.seed) {
  if (options_.heartbeat_seconds > 0) {
    heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
  }
}

RemoteUeSul::~RemoteUeSul() {
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    stopping_ = true;
  }
  hb_cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (conn_.valid()) {
    Frame bye;
    bye.type = FrameType::kBye;
    bye.epoch = epoch_;
    bye.seq = ++seq_;
    conn_.send_all(encode_frame(bye), 0.05);  // best-effort courtesy
  }
}

void RemoteUeSul::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  ++resets_;
  word_.clear();
  server_synced_ = false;  // the reset frame rides with the next step
}

long RemoteUeSul::resets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resets_;
}

long RemoteUeSul::steps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steps_;
}

RemoteSulStats RemoteUeSul::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

BreakerState RemoteUeSul::breaker() const {
  std::lock_guard<std::mutex> lock(mu_);
  return breaker_;
}

std::string RemoteUeSul::server_profile() const {
  std::lock_guard<std::mutex> lock(mu_);
  return server_profile_;
}

std::string RemoteUeSul::last_close_reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_close_reason_;
}

std::string RemoteUeSul::unavailable_reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!last_close_reason_.empty()) return "server said: " + last_close_reason_;
  if (stats_.connect_failures > 0 && stats_.connects == 0) return "server unreachable";
  return "";
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

bool RemoteUeSul::breaker_allows_locked() {
  switch (breaker_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (seconds_since(breaker_opened_at_) < options_.breaker_open_seconds) return false;
      breaker_ = BreakerState::kHalfOpen;  // cooldown elapsed: one probe
      ++stats_.breaker_probes;
      return true;
    case BreakerState::kHalfOpen:
      // A probe is conceptually in flight; the single-threaded query path
      // means we *are* the probe.
      return true;
  }
  return true;
}

void RemoteUeSul::record_failure_locked() {
  ++consecutive_failures_;
  if (breaker_ == BreakerState::kHalfOpen ||
      (breaker_ == BreakerState::kClosed &&
       consecutive_failures_ >= options_.breaker_failure_threshold)) {
    breaker_ = BreakerState::kOpen;
    breaker_opened_at_ = Clock::now();
    ++stats_.breaker_opens;
  }
}

void RemoteUeSul::record_success_locked() {
  consecutive_failures_ = 0;
  breaker_ = BreakerState::kClosed;
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

void RemoteUeSul::drop_connection_locked() {
  conn_.close();
  reader_.reset();
  server_synced_ = false;
}

bool RemoteUeSul::connect_locked(double budget_seconds) {
  auto conn = TcpConn::connect(options_.host, options_.port, budget_seconds);
  if (!conn) {
    ++stats_.connect_failures;
    return false;
  }
  conn_ = std::move(*conn);
  reader_.reset();
  ++epoch_;  // stale answers from the dead link can never match again
  seq_ = 0;
  server_synced_ = false;
  ++stats_.connects;
  if (stats_.connects > 1) ++stats_.reconnects;

  auto ack = rpc_locked(FrameType::kHello, "prochecker-learner");
  if (ack && ack->type == FrameType::kChallenge) {
    // PSK handshake: prove key possession with a MAC over the server's fresh
    // nonce and our epoch. An empty PSK still answers (with a wrong MAC) so
    // the refusal comes back as a structured auth_failed close.
    ++stats_.auth_challenges;
    const std::string mac = auth_mac(options_.psk, ack->payload, epoch_);
    ack = rpc_locked(FrameType::kAuthResponse, mac);
  }
  if (!ack || ack->type != FrameType::kHelloAck) {
    drop_connection_locked();
    return false;
  }
  server_profile_ = ack->payload;
  return true;
}

std::optional<Frame> RemoteUeSul::rpc_locked(FrameType type, const std::string& payload) {
  if (!conn_.valid()) return std::nullopt;
  Frame req;
  req.type = type;
  req.epoch = epoch_;
  req.seq = ++seq_;
  req.payload = payload;
  if (!conn_.send_all(encode_frame(req), options_.call_deadline_seconds)) {
    drop_connection_locked();
    return std::nullopt;
  }

  const auto started = Clock::now();
  Bytes chunk;
  while (seconds_since(started) < options_.call_deadline_seconds) {
    Decoded d = reader_.next();
    if (d.status == DecodeStatus::kBadFrame) {
      // Corruption is *detected*, never consumed: the CRC turned it into a
      // framing error, and the only safe move is a fresh connection.
      ++stats_.framing_errors;
      drop_connection_locked();
      return std::nullopt;
    }
    if (d.status == DecodeStatus::kFrame) {
      // Server-initiated control frames carry the *server's* sequencing
      // (admission rejects precede our hello; drain/quota closes fire at poll
      // time), so they must be recognized before the epoch/seq match below
      // would discard them as stale.
      if (d.frame.type == FrameType::kServerBusy || d.frame.type == FrameType::kClose) {
        if (d.frame.type == FrameType::kServerBusy) {
          ++stats_.busy_rejects;
        } else {
          ++stats_.server_closes;
        }
        last_close_reason_ = d.frame.payload;
        drop_connection_locked();
        return std::nullopt;
      }
      if (d.frame.epoch != epoch_ || d.frame.seq != req.seq) {
        ++stats_.stale_frames;  // leftover answer from an earlier life
        continue;
      }
      if (d.frame.type == FrameType::kError) {
        drop_connection_locked();
        return std::nullopt;
      }
      return d.frame;
    }
    chunk.clear();
    double remaining = options_.call_deadline_seconds - seconds_since(started);
    auto status = conn_.recv_some(chunk, 4096, std::max(remaining, 0.001));
    if (status == TcpConn::RecvStatus::kData) {
      reader_.feed(chunk);
      continue;
    }
    if (status == TcpConn::RecvStatus::kTimeout) break;
    drop_connection_locked();  // EOF or socket error
    return std::nullopt;
  }
  ++stats_.rpc_timeouts;
  drop_connection_locked();  // the stream may deliver the answer later; too late
  return std::nullopt;
}

std::optional<std::string> RemoteUeSul::live_step_locked(double backoff_scale) {
  if (!breaker_allows_locked()) return std::nullopt;

  if (!conn_.valid()) {
    // Jittered exponential backoff before redialing (scale grows per attempt).
    double backoff = options_.backoff_base_seconds * backoff_scale;
    backoff = std::min(backoff, options_.backoff_max_seconds);
    double jittered = backoff * (0.5 + 0.5 * static_cast<double>(jitter_.next_below(1000)) / 1000.0);
    sleep_seconds(jittered);
    if (!connect_locked(options_.connect_timeout_seconds)) {
      record_failure_locked();
      return std::nullopt;
    }
  }

  if (!server_synced_) {
    // Resync: reset the server SUL, then replay everything but the current
    // input. The server is deterministic, so this reconstructs its state
    // exactly — the reason reconnect-heavy runs stay byte-identical. Replay
    // answers are real observations and feed the vote cache too.
    auto ack = rpc_locked(FrameType::kReset, "");
    if (!ack || ack->type != FrameType::kResetAck) {
      record_failure_locked();
      return std::nullopt;
    }
    for (std::size_t i = 0; i + 1 < word_.size(); ++i) {
      auto step_ack = rpc_locked(FrameType::kStep, word_[i]);
      if (!step_ack || step_ack->type != FrameType::kStepAck) {
        record_failure_locked();
        return std::nullopt;
      }
      std::vector<std::string> prefix(word_.begin(),
                                      word_.begin() + static_cast<std::ptrdiff_t>(i + 1));
      VoteBox& box = vote_cache_[prefix];
      if (!box.votes.empty() && box.votes.count(step_ack->payload) == 0 && !box.disagreed) {
        box.disagreed = true;
        ++stats_.nondeterministic_queries;
      }
      ++box.votes[step_ack->payload];
    }
    server_synced_ = true;
  }

  auto ack = rpc_locked(FrameType::kStep, word_.back());
  if (!ack || ack->type != FrameType::kStepAck) {
    record_failure_locked();
    return std::nullopt;
  }
  record_success_locked();
  return ack->payload;
}

// ---------------------------------------------------------------------------
// Majority-vote cache
// ---------------------------------------------------------------------------

std::string RemoteUeSul::vote_and_answer_locked(const std::string& observed) {
  VoteBox& box = vote_cache_[word_];
  if (!box.votes.empty() && box.votes.count(observed) == 0 && !box.disagreed) {
    box.disagreed = true;
    ++stats_.nondeterministic_queries;
  }
  ++box.votes[observed];
  // Majority answer; ties break toward the lexicographically smallest symbol
  // so the result is deterministic run-to-run.
  const std::string* best = nullptr;
  int best_count = -1;
  for (const auto& [symbol, count] : box.votes) {
    if (count > best_count) {
      best = &symbol;
      best_count = count;
    }
  }
  return best ? *best : observed;
}

std::optional<std::string> RemoteUeSul::cached_answer_locked() const {
  auto it = vote_cache_.find(word_);
  if (it == vote_cache_.end() || it->second.votes.empty()) return std::nullopt;
  const std::string* best = nullptr;
  int best_count = -1;
  for (const auto& [symbol, count] : it->second.votes) {
    if (count > best_count) {
      best = &symbol;
      best_count = count;
    }
  }
  return *best;
}

// ---------------------------------------------------------------------------
// The Sul interface
// ---------------------------------------------------------------------------

std::string RemoteUeSul::step(const std::string& input) {
  std::lock_guard<std::mutex> lock(mu_);
  ++steps_;
  word_.push_back(input);

  double backoff_scale = 1.0;
  for (int attempt = 0; attempt < options_.attempts_per_query; ++attempt) {
    auto out = live_step_locked(backoff_scale);
    if (out) return vote_and_answer_locked(*out);
    backoff_scale *= 2.0;
    if (breaker_ == BreakerState::kOpen) break;  // stop hammering a dead server
  }

  // The transport is beyond help for now. A replayed query (reconnect storm)
  // can still be answered from the vote cache; a novel one degrades to the
  // structured unavailable symbol the learner converts into "inconclusive".
  if (auto cached = cached_answer_locked()) {
    ++stats_.cache_fallbacks;
    return *cached;
  }
  ++stats_.unavailable_answers;
  return learner::kSulUnavailable;
}

// ---------------------------------------------------------------------------
// Heartbeat
// ---------------------------------------------------------------------------

void RemoteUeSul::heartbeat_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(hb_mu_);
      hb_cv_.wait_for(lock, std::chrono::duration<double>(options_.heartbeat_seconds),
                      [this] { return stopping_; });
      if (stopping_) return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!conn_.valid()) continue;  // nothing to keep alive
    ++stats_.heartbeats;
    auto pong = rpc_locked(FrameType::kPing, "");
    if (!pong || pong->type != FrameType::kPong) {
      // rpc_locked already dropped the connection; the next query redials.
      ++stats_.heartbeat_failures;
    }
  }
}

}  // namespace procheck::net
