#include "net/remote_sul.h"

#include <algorithm>
#include <deque>
#include <set>

namespace procheck::net {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t) {
  return std::chrono::duration<double>(Clock::now() - t).count();
}

void sleep_seconds(double s) {
  if (s > 0) std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

/// True when the v3 codec can carry this word verbatim: the fallback for an
/// exotic symbol is the per-symbol path, never a lossy re-encoding.
bool word_encodable(const std::vector<std::string>& word) {
  if (word.size() > kMaxWordSymbols) return false;
  for (const std::string& s : word) {
    if (s.empty() || s.size() > kMaxSymbolChars) return false;
    for (const char c : s) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
      if (!ok) return false;
    }
  }
  return true;
}

}  // namespace

std::string_view to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "?";
}

RemoteUeSul::RemoteUeSul(RemoteSulOptions options)
    : options_(options), jitter_(options.seed) {
  if (options_.heartbeat_seconds > 0) {
    heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
  }
}

RemoteUeSul::~RemoteUeSul() {
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    stopping_ = true;
  }
  hb_cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (conn_.valid()) {
    Frame bye;
    bye.type = FrameType::kBye;
    bye.epoch = epoch_;
    bye.seq = ++seq_;
    conn_.send_all(encode_frame(bye), 0.05);  // best-effort courtesy
  }
}

void RemoteUeSul::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  ++resets_;
  word_.clear();
  server_synced_ = false;  // the reset frame rides with the next step
}

long RemoteUeSul::resets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resets_;
}

long RemoteUeSul::steps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steps_;
}

RemoteSulStats RemoteUeSul::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

BreakerState RemoteUeSul::breaker() const {
  std::lock_guard<std::mutex> lock(mu_);
  return breaker_;
}

std::string RemoteUeSul::server_profile() const {
  std::lock_guard<std::mutex> lock(mu_);
  return server_profile_;
}

std::string RemoteUeSul::last_close_reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_close_reason_;
}

std::string RemoteUeSul::unavailable_reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!last_close_reason_.empty()) return "server said: " + last_close_reason_;
  if (stats_.connect_failures > 0 && stats_.connects == 0) return "server unreachable";
  return "";
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

bool RemoteUeSul::breaker_allows_locked() {
  switch (breaker_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (seconds_since(breaker_opened_at_) < options_.breaker_open_seconds) return false;
      breaker_ = BreakerState::kHalfOpen;  // cooldown elapsed: one probe
      ++stats_.breaker_probes;
      return true;
    case BreakerState::kHalfOpen:
      // A probe is conceptually in flight; the single-threaded query path
      // means we *are* the probe.
      return true;
  }
  return true;
}

void RemoteUeSul::record_failure_locked() {
  ++consecutive_failures_;
  if (breaker_ == BreakerState::kHalfOpen ||
      (breaker_ == BreakerState::kClosed &&
       consecutive_failures_ >= options_.breaker_failure_threshold)) {
    breaker_ = BreakerState::kOpen;
    breaker_opened_at_ = Clock::now();
    ++stats_.breaker_opens;
  }
}

void RemoteUeSul::record_success_locked() {
  consecutive_failures_ = 0;
  breaker_ = BreakerState::kClosed;
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

void RemoteUeSul::drop_connection_locked() {
  conn_.close();
  reader_.reset();
  server_synced_ = false;
}

bool RemoteUeSul::connect_locked(double budget_seconds) {
  auto conn = TcpConn::connect(options_.host, options_.port, budget_seconds);
  if (!conn) {
    ++stats_.connect_failures;
    return false;
  }
  conn_ = std::move(*conn);
  reader_.reset();
  ++epoch_;  // stale answers from the dead link can never match again
  seq_ = 0;
  server_synced_ = false;
  ++stats_.connects;
  if (stats_.connects > 1) ++stats_.reconnects;

  // A v3 hello may carry a batch offer; a server (or test fake) that echoes
  // no grant in the ack keeps this connection on the per-symbol path.
  const std::string hello_payload =
      options_.max_batch_words > 0
          ? with_batch_token("prochecker-learner",
                             std::min<int>(options_.max_batch_words,
                                           static_cast<int>(kMaxBatchWords)))
          : "prochecker-learner";
  auto ack = rpc_locked(FrameType::kHello, hello_payload);
  if (ack && ack->type == FrameType::kChallenge) {
    // PSK handshake: prove key possession with a MAC over the server's fresh
    // nonce and our epoch. An empty PSK still answers (with a wrong MAC) so
    // the refusal comes back as a structured auth_failed close.
    ++stats_.auth_challenges;
    const std::string mac = auth_mac(options_.psk, ack->payload, epoch_);
    ack = rpc_locked(FrameType::kAuthResponse, mac);
  }
  if (!ack || ack->type != FrameType::kHelloAck) {
    drop_connection_locked();
    return false;
  }
  negotiated_batch_ = options_.max_batch_words > 0 ? parse_batch_token(ack->payload) : 0;
  server_profile_ = strip_batch_token(ack->payload);
  return true;
}

bool RemoteUeSul::send_frame_locked(FrameType type, const std::string& payload,
                                    std::uint32_t* seq_out) {
  if (!conn_.valid()) return false;
  Frame req;
  req.type = type;
  req.epoch = epoch_;
  req.seq = ++seq_;
  req.payload = payload;
  if (!conn_.send_all(encode_frame(req), options_.call_deadline_seconds)) {
    drop_connection_locked();
    return false;
  }
  *seq_out = req.seq;
  return true;
}

std::optional<Frame> RemoteUeSul::rpc_locked(FrameType type, const std::string& payload) {
  std::uint32_t seq = 0;
  if (!send_frame_locked(type, payload, &seq)) return std::nullopt;
  return await_ack_locked(seq);
}

std::optional<Frame> RemoteUeSul::await_ack_locked(std::uint32_t seq) {
  if (!conn_.valid()) return std::nullopt;
  const auto started = Clock::now();
  Bytes chunk;
  while (seconds_since(started) < options_.call_deadline_seconds) {
    Decoded d = reader_.next();
    if (d.status == DecodeStatus::kBadFrame) {
      // Corruption is *detected*, never consumed: the CRC turned it into a
      // framing error, and the only safe move is a fresh connection.
      ++stats_.framing_errors;
      drop_connection_locked();
      return std::nullopt;
    }
    if (d.status == DecodeStatus::kFrame) {
      // Server-initiated control frames carry the *server's* sequencing
      // (admission rejects precede our hello; drain/quota closes fire at poll
      // time), so they must be recognized before the epoch/seq match below
      // would discard them as stale.
      if (d.frame.type == FrameType::kServerBusy || d.frame.type == FrameType::kClose) {
        if (d.frame.type == FrameType::kServerBusy) {
          ++stats_.busy_rejects;
        } else {
          ++stats_.server_closes;
        }
        last_close_reason_ = d.frame.payload;
        drop_connection_locked();
        return std::nullopt;
      }
      if (d.frame.epoch != epoch_ || d.frame.seq != seq) {
        ++stats_.stale_frames;  // leftover answer from an earlier life
        continue;
      }
      if (d.frame.type == FrameType::kError) {
        drop_connection_locked();
        return std::nullopt;
      }
      return d.frame;
    }
    chunk.clear();
    double remaining = options_.call_deadline_seconds - seconds_since(started);
    auto status = conn_.recv_some(chunk, 4096, std::max(remaining, 0.001));
    if (status == TcpConn::RecvStatus::kData) {
      reader_.feed(chunk);
      continue;
    }
    if (status == TcpConn::RecvStatus::kTimeout) break;
    drop_connection_locked();  // EOF or socket error
    return std::nullopt;
  }
  ++stats_.rpc_timeouts;
  drop_connection_locked();  // the stream may deliver the answer later; too late
  return std::nullopt;
}

std::optional<std::string> RemoteUeSul::live_step_locked(double backoff_scale) {
  if (!breaker_allows_locked()) return std::nullopt;

  if (!conn_.valid()) {
    // Jittered exponential backoff before redialing (scale grows per attempt).
    double backoff = options_.backoff_base_seconds * backoff_scale;
    backoff = std::min(backoff, options_.backoff_max_seconds);
    double jittered = backoff * (0.5 + 0.5 * static_cast<double>(jitter_.next_below(1000)) / 1000.0);
    sleep_seconds(jittered);
    if (!connect_locked(options_.connect_timeout_seconds)) {
      record_failure_locked();
      return std::nullopt;
    }
  }

  if (!server_synced_) {
    // Resync: reconstruct the server state for everything but the current
    // input. The server is deterministic, so this rebuilds its state exactly
    // — the reason reconnect-heavy runs stay byte-identical. Replay answers
    // are real observations and feed the vote cache too.
    const std::vector<std::string> replay(word_.begin(), word_.end() - 1);
    if (negotiated_batch_ > 0 && !replay.empty() && word_encodable(replay)) {
      // Word protocol granted: the whole replay collapses into one RPC
      // instead of 1 + |replay| round trips.
      auto ack = rpc_locked(FrameType::kQueryWord, encode_word(replay));
      const auto outs =
          ack && ack->type == FrameType::kWordAck ? decode_word(ack->payload) : std::nullopt;
      if (!outs || outs->size() != replay.size()) {
        record_failure_locked();
        return std::nullopt;
      }
      ++stats_.word_resyncs;
      vote_word_locked(replay, *outs);
    } else {
      auto ack = rpc_locked(FrameType::kReset, "");
      if (!ack || ack->type != FrameType::kResetAck) {
        record_failure_locked();
        return std::nullopt;
      }
      for (std::size_t i = 0; i + 1 < word_.size(); ++i) {
        auto step_ack = rpc_locked(FrameType::kStep, word_[i]);
        if (!step_ack || step_ack->type != FrameType::kStepAck) {
          record_failure_locked();
          return std::nullopt;
        }
        std::vector<std::string> prefix(word_.begin(),
                                        word_.begin() + static_cast<std::ptrdiff_t>(i + 1));
        VoteBox& box = vote_cache_[prefix];
        if (!box.votes.empty() && box.votes.count(step_ack->payload) == 0 && !box.disagreed) {
          box.disagreed = true;
          ++stats_.nondeterministic_queries;
        }
        ++box.votes[step_ack->payload];
      }
    }
    server_synced_ = true;
  }

  auto ack = rpc_locked(FrameType::kStep, word_.back());
  if (!ack || ack->type != FrameType::kStepAck) {
    record_failure_locked();
    return std::nullopt;
  }
  record_success_locked();
  return ack->payload;
}

// ---------------------------------------------------------------------------
// Majority-vote cache
// ---------------------------------------------------------------------------

std::string RemoteUeSul::vote_and_answer_locked(const std::string& observed) {
  VoteBox& box = vote_cache_[word_];
  if (!box.votes.empty() && box.votes.count(observed) == 0 && !box.disagreed) {
    box.disagreed = true;
    ++stats_.nondeterministic_queries;
  }
  ++box.votes[observed];
  // Majority answer; ties break toward the lexicographically smallest symbol
  // so the result is deterministic run-to-run.
  const std::string* best = nullptr;
  int best_count = -1;
  for (const auto& [symbol, count] : box.votes) {
    if (count > best_count) {
      best = &symbol;
      best_count = count;
    }
  }
  return best ? *best : observed;
}

std::optional<std::string> RemoteUeSul::cached_answer_locked() const {
  auto it = vote_cache_.find(word_);
  if (it == vote_cache_.end() || it->second.votes.empty()) return std::nullopt;
  const std::string* best = nullptr;
  int best_count = -1;
  for (const auto& [symbol, count] : it->second.votes) {
    if (count > best_count) {
      best = &symbol;
      best_count = count;
    }
  }
  return *best;
}

// ---------------------------------------------------------------------------
// The Sul interface
// ---------------------------------------------------------------------------

std::string RemoteUeSul::step(const std::string& input) {
  std::lock_guard<std::mutex> lock(mu_);
  ++steps_;
  word_.push_back(input);

  double backoff_scale = 1.0;
  for (int attempt = 0; attempt < options_.attempts_per_query; ++attempt) {
    auto out = live_step_locked(backoff_scale);
    if (out) return vote_and_answer_locked(*out);
    backoff_scale *= 2.0;
    if (breaker_ == BreakerState::kOpen) break;  // stop hammering a dead server
  }

  // The transport is beyond help for now. A replayed query (reconnect storm)
  // can still be answered from the vote cache; a novel one degrades to the
  // structured unavailable symbol the learner converts into "inconclusive".
  if (auto cached = cached_answer_locked()) {
    ++stats_.cache_fallbacks;
    return *cached;
  }
  ++stats_.unavailable_answers;
  return learner::kSulUnavailable;
}

// ---------------------------------------------------------------------------
// Word-level protocol (wire v3)
// ---------------------------------------------------------------------------

std::vector<std::string> RemoteUeSul::vote_word_locked(const std::vector<std::string>& word,
                                                       const std::vector<std::string>& outputs) {
  std::vector<std::string> answers;
  answers.reserve(word.size());
  std::vector<std::string> prefix;
  prefix.reserve(word.size());
  for (std::size_t i = 0; i < word.size() && i < outputs.size(); ++i) {
    prefix.push_back(word[i]);
    VoteBox& box = vote_cache_[prefix];
    if (!box.votes.empty() && box.votes.count(outputs[i]) == 0 && !box.disagreed) {
      box.disagreed = true;
      ++stats_.nondeterministic_queries;
    }
    ++box.votes[outputs[i]];
    // Majority per position, ties toward the smallest symbol — identical to
    // what vote_and_answer_locked would have returned step by step.
    const std::string* best = nullptr;
    int best_count = -1;
    for (const auto& [symbol, count] : box.votes) {
      if (count > best_count) {
        best = &symbol;
        best_count = count;
      }
    }
    answers.push_back(best ? *best : outputs[i]);
  }
  return answers;
}

RemoteUeSul::WordRpc RemoteUeSul::word_query_locked(const std::vector<std::string>& word,
                                                    std::vector<std::string>* answers,
                                                    bool raw) {
  if (options_.max_batch_words <= 0 || !word_encodable(word)) return WordRpc::kDenied;

  double backoff_scale = 1.0;
  for (int attempt = 0; attempt < options_.attempts_per_query; ++attempt) {
    if (!breaker_allows_locked()) break;
    if (!conn_.valid()) {
      double backoff = options_.backoff_base_seconds * backoff_scale;
      backoff = std::min(backoff, options_.backoff_max_seconds);
      sleep_seconds(backoff *
                    (0.5 + 0.5 * static_cast<double>(jitter_.next_below(1000)) / 1000.0));
      backoff_scale *= 2.0;
      if (!connect_locked(options_.connect_timeout_seconds)) {
        record_failure_locked();
        if (breaker_ == BreakerState::kOpen) break;
        continue;
      }
    }
    if (negotiated_batch_ <= 0) return WordRpc::kDenied;  // server kept us on v2

    auto ack = rpc_locked(FrameType::kQueryWord, encode_word(word));
    const auto outs =
        ack && ack->type == FrameType::kWordAck ? decode_word(ack->payload) : std::nullopt;
    if (outs && outs->size() == word.size()) {
      record_success_locked();
      server_synced_ = false;  // the server SUL now sits at this word's end state
      ++resets_;
      steps_ += static_cast<long>(word.size());
      ++stats_.word_queries;
      *answers = raw ? *outs : vote_word_locked(word, *outs);
      return WordRpc::kOk;
    }
    record_failure_locked();
    backoff_scale *= 2.0;
    if (breaker_ == BreakerState::kOpen) break;
  }
  return WordRpc::kFailed;
}

std::vector<std::string> RemoteUeSul::query_word(const std::vector<std::string>& word) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> answers;
    if (word_query_locked(word, &answers) == WordRpc::kOk) return answers;
  }
  // Denied or failed: the per-symbol path already encodes every retry,
  // breaker, vote-cache, and degradation rule, so falling back preserves
  // byte-identity (and a hard outage still degrades to kSulUnavailable).
  return Sul::query_word(word);
}

std::vector<std::string> RemoteUeSul::query_word_fresh(
    const std::vector<std::string>& word) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> answers;
    if (word_query_locked(word, &answers, /*raw=*/true) == WordRpc::kOk) return answers;
  }
  // No word protocol (or the link is down): the per-symbol path is the only
  // transport left. Its vote cache cannot be bypassed per-call, so the
  // sample is as fresh as the wire allows.
  return Sul::query_word(word);
}

void RemoteUeSul::batch_rpc_locked(
    const std::vector<std::vector<std::string>>& words,
    std::map<std::vector<std::string>, std::vector<std::string>>* answered) {
  std::vector<std::vector<std::string>> remaining;
  for (const auto& w : words) {
    if (word_encodable(w) && !w.empty()) remaining.push_back(w);
  }

  double backoff_scale = 1.0;
  for (int attempt = 0; attempt < options_.attempts_per_query && !remaining.empty();
       ++attempt) {
    if (!breaker_allows_locked()) break;
    if (!conn_.valid()) {
      double backoff = options_.backoff_base_seconds * backoff_scale;
      backoff = std::min(backoff, options_.backoff_max_seconds);
      sleep_seconds(backoff *
                    (0.5 + 0.5 * static_cast<double>(jitter_.next_below(1000)) / 1000.0));
      backoff_scale *= 2.0;
      if (!connect_locked(options_.connect_timeout_seconds)) {
        record_failure_locked();
        if (breaker_ == BreakerState::kOpen) break;
        continue;
      }
    }
    if (negotiated_batch_ <= 0) return;  // denied: caller finishes per word

    // Chunk the remaining words by the negotiated count and the codec's
    // total-symbol bound, keeping up to max_inflight_batches frames in the
    // air; acks come back in request order.
    const std::size_t cap = static_cast<std::size_t>(negotiated_batch_);
    const std::size_t window =
        static_cast<std::size_t>(std::max(1, options_.max_inflight_batches));
    std::deque<std::pair<std::uint32_t, std::vector<std::vector<std::string>>>> inflight;
    std::size_t next = 0;
    bool failed = false;

    auto drain_one = [&]() {
      auto [seq, chunk] = std::move(inflight.front());
      inflight.pop_front();
      auto ack = await_ack_locked(seq);
      if (!ack || ack->type != FrameType::kBatchAck) return false;
      const auto items = decode_batch_ack(ack->payload, chunk.size());
      if (!items || items->size() != chunk.size()) {
        drop_connection_locked();  // the server answered something we never asked
        return false;
      }
      server_synced_ = false;
      ++stats_.batch_queries;
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        const BatchItem& item = (*items)[i];
        if (!item.ok || item.outputs.size() != chunk[i].size()) continue;
        ++resets_;
        steps_ += static_cast<long>(chunk[i].size());
        ++stats_.batched_words;
        (*answered)[chunk[i]] = vote_word_locked(chunk[i], item.outputs);
      }
      return true;
    };

    while (next < remaining.size() || !inflight.empty()) {
      while (next < remaining.size() && inflight.size() < window && conn_.valid()) {
        std::vector<std::vector<std::string>> chunk;
        std::size_t symbols = 0;
        while (next < remaining.size() && chunk.size() < cap &&
               symbols + remaining[next].size() <= kMaxBatchSymbols) {
          symbols += remaining[next].size();
          chunk.push_back(remaining[next]);
          ++next;
        }
        if (chunk.empty()) {  // a single word over the symbol bound: skip it
          ++next;
          continue;
        }
        std::uint32_t seq = 0;
        if (!send_frame_locked(FrameType::kQueryBatch, encode_batch(chunk), &seq)) {
          failed = true;
          break;
        }
        inflight.emplace_back(seq, std::move(chunk));
      }
      if (inflight.empty()) break;
      if (!drain_one()) {
        failed = true;
        break;
      }
    }

    std::vector<std::vector<std::string>> still;
    for (const auto& w : remaining) {
      if (answered->count(w) == 0) still.push_back(w);
    }
    remaining = std::move(still);
    if (failed) {
      record_failure_locked();
      backoff_scale *= 2.0;
      if (breaker_ == BreakerState::kOpen) break;
    } else if (remaining.empty()) {
      record_success_locked();
    }
  }
}

std::vector<std::vector<std::string>> RemoteUeSul::query_batch(
    const std::vector<std::vector<std::string>>& words) {
  // Dedupe identical words client-side: each distinct word rides the wire
  // once and fans its answer back out to every position that asked for it.
  std::vector<std::vector<std::string>> unique;
  std::set<std::vector<std::string>> seen;
  for (const auto& w : words) {
    if (seen.insert(w).second) unique.push_back(w);
  }
  std::map<std::vector<std::string>, std::vector<std::string>> answered;

  if (options_.max_batch_words > 0 && unique.size() > 1) {
    std::lock_guard<std::mutex> lock(mu_);
    batch_rpc_locked(unique, &answered);
  }
  // Anything a batch could not carry (denied protocol, transport failure,
  // unencodable symbols) finishes through query_word's full fallback chain.
  for (const auto& w : unique) {
    if (answered.count(w) == 0) answered[w] = query_word(w);
  }

  std::vector<std::vector<std::string>> results;
  results.reserve(words.size());
  for (const auto& w : words) results.push_back(answered.at(w));
  return results;
}

int RemoteUeSul::negotiated_batch_words() const {
  std::lock_guard<std::mutex> lock(mu_);
  return negotiated_batch_;
}

// ---------------------------------------------------------------------------
// Heartbeat
// ---------------------------------------------------------------------------

void RemoteUeSul::heartbeat_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(hb_mu_);
      hb_cv_.wait_for(lock, std::chrono::duration<double>(options_.heartbeat_seconds),
                      [this] { return stopping_; });
      if (stopping_) return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!conn_.valid()) continue;  // nothing to keep alive
    ++stats_.heartbeats;
    auto pong = rpc_locked(FrameType::kPing, "");
    if (!pong || pong->type != FrameType::kPong) {
      // rpc_locked already dropped the connection; the next query redials.
      ++stats_.heartbeat_failures;
    }
  }
}

}  // namespace procheck::net
