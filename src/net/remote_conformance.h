// Differential conformance over a remote SUL (DESIGN.md §12).
//
// The full Testbed conformance suite needs white-box access (adversary
// interceptors, channel hooks) that a reset/step wire protocol cannot carry.
// What the remote boundary *can* check is behavioral equivalence: a fixed
// set of scripted attach/security flows over the abstract alphabet, with the
// expected outputs computed by an in-process learner::UeSul built from the
// same profile. A remote stack that answers every scripted word like the
// local reference passes; a transport that degrades to kSulUnavailable
// yields an explicit *inconclusive* verdict (never a bogus fail, never a
// hang) — the structured-degradation contract of the whole net layer.
//
// render() is deterministic, so interrupted-and-reconnected runs can be
// pinned byte-identical to uninterrupted ones.
#pragma once

#include <string>
#include <vector>

#include "learner/sul.h"
#include "ue/profile.h"

namespace procheck::net {

/// One scripted flow over the abstract input alphabet.
struct RemoteScenario {
  std::string id;
  std::vector<std::string> word;
};

/// The scripted suite: attach/security flows the paper's conformance themes
/// map onto the learning alphabet.
const std::vector<RemoteScenario>& remote_scenarios();

enum class RemoteVerdict : std::uint8_t { kPass, kFail, kInconclusive };
std::string_view to_string(RemoteVerdict verdict);

struct RemoteCaseResult {
  std::string id;
  std::vector<std::string> word;
  std::vector<std::string> expected;  // local reference outputs
  std::vector<std::string> actual;    // remote outputs
  RemoteVerdict verdict = RemoteVerdict::kInconclusive;
};

struct RemoteConformanceReport {
  std::string profile;
  std::vector<RemoteCaseResult> results;

  int passed() const;
  int failed() const;
  int inconclusive() const;
  int total() const { return static_cast<int>(results.size()); }
  /// Every scenario produced a definite verdict (no transport degradation).
  bool conclusive() const { return inconclusive() == 0; }

  /// Canonical deterministic rendering; byte-identity across interrupted and
  /// clean runs is pinned by the net suite.
  std::string render() const;
};

/// Runs the scripted suite: expectations from a fresh in-process UeSul over
/// `profile`, observations from `sul` (typically a RemoteUeSul). Any word
/// whose remote answer contains learner::kSulUnavailable is inconclusive.
RemoteConformanceReport run_remote_conformance(const ue::StackProfile& profile,
                                               learner::Sul& sul);

}  // namespace procheck::net
