// Remote-SUL wire framing (DESIGN.md §12, §13).
//
// A frame is a length-prefixed, CRC-tagged, versioned record:
//
//   u32  length L           (bytes that follow the prefix; bounds-checked)
//   u16  magic  0x50C5
//   u8   version (kWireVersion; v1 frames still decode so a legacy hello
//                 can be answered with a structured "upgrade required"
//                 close instead of a silent framing drop)
//   u8   type    (FrameType)
//   u32  epoch   (connection generation — bumped on every reconnect so a
//                 stale answer from a previous link can never interleave)
//   u32  seq     (per-request counter within the epoch; acks echo it)
//   ...  payload (L - 16 bytes: the input/output symbol or error text)
//   u32  crc32   (IEEE, over magic..payload)
//
// All integers big-endian. The decoder is *total*: any byte stream either
// yields frames, asks for more bytes, or reports a framing error with a
// reason — it never crashes and never silently yields corrupted data (the
// CRC turns corruption into a detected framing error, the contract the
// chaos-proxy corruption regime pins). Once a stream mis-frames, resync is
// impossible (the length prefix itself is untrusted), so a framing error
// poisons the FrameReader until reset() — transports must drop the
// connection, which is exactly what the client and server do.
//
// v2 adds the authenticated session handshake (DESIGN.md §13):
// hello → [challenge → auth_response] → hello_ack, plus the structured
// admission/teardown frames (server_busy, close) whose payload is a reason
// token from the kReason* set below.
//
// v3 adds the word-level batched query frames (DESIGN.md §14):
// query_word/word_ack ship a whole membership query (reset + word) in one
// round trip; query_batch/batch_ack ship up to a negotiated number of words
// per round trip with per-item status. Batch capacity is negotiated in the
// hello exchange ("batch=N" suffixes on the hello payload / hello-ack);
// v2 clients that never offer a batch keep working unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"

namespace procheck::net {

inline constexpr std::uint16_t kWireMagic = 0x50C5;
/// Current protocol generation: v3 = word-level batched queries on top of
/// the v2 authenticated multi-session handshake.
inline constexpr std::uint8_t kWireVersion = 3;
/// Oldest version a server still *serves* (v2 per-symbol sessions keep
/// working; only the pre-auth v1 hello is refused with upgrade_required).
inline constexpr std::uint8_t kMinServedVersion = 2;
/// Oldest version the decoder still *parses* (so the server can answer a v1
/// hello with a structured upgrade-required close rather than mis-framing).
inline constexpr std::uint8_t kMinWireVersion = 1;
/// Fixed body bytes besides the payload (magic..seq + trailing CRC).
inline constexpr std::size_t kFrameOverhead = 16;
/// Payload bound: symbols, error strings, and (since v3) batched words are
/// short; anything bigger is a corrupted length prefix and must not drive
/// allocation. Sized so a maximal batch ack (kMaxBatchSymbols output symbols
/// of kMaxSymbolChars each, plus separators and status bytes) always fits —
/// the server never has to truncate a reply it already computed.
inline constexpr std::size_t kMaxFramePayload = 16384;

enum class FrameType : std::uint8_t {
  kHello = 1,     // client → server: open a session (payload: client note)
  kHelloAck,      // server → client: session admitted (payload: profile name)
  kReset,         // client → server: reset the SUL to its initial state
  kResetAck,      // server → client
  kStep,          // client → server: one input symbol (payload)
  kStepAck,       // server → client: the output symbol (payload)
  kPing,          // keepalive probe
  kPong,          //
  kBye,           // orderly session end
  kError,         // server → client: structured refusal (payload: reason)
  kChallenge,     // server → client: PSK auth nonce (payload: hex nonce)
  kAuthResponse,  // client → server: HMAC over nonce+epoch (payload: hex mac)
  kServerBusy,    // server → client: admission rejected (payload: reason)
  kClose,         // server → client: structured session teardown (reason)
  kQueryWord,     // client → server: whole word = reset + symbols (payload)
  kWordAck,       // server → client: the word's output symbols (payload)
  kQueryBatch,    // client → server: up to the negotiated number of words
  kBatchAck,      // server → client: per-item outputs or per-item refusal
};

std::string_view to_string(FrameType type);
bool known_frame_type(std::uint8_t raw);

// --- Word / batch payload codec (wire v3, DESIGN.md §14) ---------------------
// Words are symbol lists over the learning alphabet; symbols are short
// identifier-like tokens ([A-Za-z0-9_.-]), so ',' separates symbols within a
// word and ';' separates words within a batch. The decoders are total and
// length-bounded: a payload with too many symbols, oversized symbols, or any
// separator/illegal byte inside a symbol is a structured decode failure —
// never an allocation driven by attacker-controlled counts.

/// Hard per-word and per-batch codec bounds (the negotiated batch size can
/// only be lower). Chosen so a full batch of worst-case words still fits
/// kMaxFramePayload.
inline constexpr std::size_t kMaxWordSymbols = 64;
inline constexpr std::size_t kMaxSymbolChars = 48;
inline constexpr std::size_t kMaxBatchWords = 64;
/// Total symbols across one batch, so the worst-case ack stays well under
/// kMaxFramePayload: kMaxBatchSymbols * (kMaxSymbolChars + 1) + kMaxBatchWords
/// status/separator bytes < 16 KiB.
inline constexpr std::size_t kMaxBatchSymbols = 256;
/// Default batch capacity a server grants when the client offers more.
inline constexpr int kDefaultBatchWords = 16;

std::string encode_word(const std::vector<std::string>& word);
std::optional<std::vector<std::string>> decode_word(std::string_view text);

std::string encode_batch(const std::vector<std::vector<std::string>>& words);
std::optional<std::vector<std::vector<std::string>>> decode_batch(std::string_view text,
                                                                  std::size_t max_words);

/// One kBatchAck entry: the item's outputs, or a structured per-item refusal.
struct BatchItem {
  bool ok = false;
  std::vector<std::string> outputs;  // valid when ok
  std::string error;                 // reason token when !ok
};

std::string encode_batch_ack(const std::vector<BatchItem>& items);
std::optional<std::vector<BatchItem>> decode_batch_ack(std::string_view text,
                                                       std::size_t max_words);

/// "name batch=N" suffix handling for the hello negotiation: appends the
/// offer/grant to a hello or hello-ack payload, and parses it back out.
/// parse returns 0 when no batch token is present (a v2 peer).
std::string with_batch_token(const std::string& base, int batch_words);
int parse_batch_token(std::string_view payload);
/// The payload with any " batch=N" suffix removed (the profile name / note).
std::string strip_batch_token(std::string_view payload);

// Reason tokens carried by kServerBusy / kClose payloads. Machine-matchable
// (the client surfaces them verbatim in stats and CLI diagnostics).
inline constexpr const char* kReasonServerBusy = "server_busy";
inline constexpr const char* kReasonDraining = "draining";
inline constexpr const char* kReasonAuthFailed = "auth_failed";
inline constexpr const char* kReasonUpgradeRequired =
    "upgrade_required: protocol v2 with PSK handshake; rebuild your client";
inline constexpr const char* kReasonQuotaQueries = "quota_exceeded: queries";
inline constexpr const char* kReasonQuotaBytes = "quota_exceeded: bytes";
inline constexpr const char* kReasonQuotaWall = "quota_exceeded: wall_clock";
inline constexpr const char* kReasonIdleTimeout = "idle_timeout";
inline constexpr const char* kReasonDrained = "drained";
inline constexpr const char* kReasonSessionError = "session_error";
// Per-request refusal tokens for v3 word/batch queries (kError payloads; the
// session survives them — a refused request mutated no SUL state).
inline constexpr const char* kReasonBadWord = "bad_word";
inline constexpr const char* kReasonBadBatch = "bad_batch";
inline constexpr const char* kReasonBatchTooLarge = "batch_too_large";

// --- PSK authentication (DESIGN.md §13) --------------------------------------
// Challenge/response over the reserved hello payload slot: the server sends a
// fresh per-connection nonce, the client answers with a keyed MAC over
// (nonce, epoch) under the shared PSK, and the server compares in constant
// time. Anti-replay falls out of nonce freshness: a captured auth_response is
// bound to a nonce that will never be issued again. The MAC is the
// simulation-grade keyed PRF of common/rng.h (DESIGN.md §1: logical — not
// cryptographic — strength is what this reproduction models).

/// Hex-encoded 64-bit MAC binding the shared key to this connection's nonce
/// and epoch. Both sides compute it; the server compares in constant time.
std::string auth_mac(const std::string& psk, const std::string& nonce_hex,
                     std::uint32_t epoch);

/// Length-leaking-only comparison: runtime independent of *where* the inputs
/// differ, so a byte-at-a-time MAC oracle cannot exist.
bool constant_time_equal(std::string_view a, std::string_view b);

struct Frame {
  FrameType type = FrameType::kError;
  /// Protocol version this frame was encoded with (decode fills it in; the
  /// server uses it to version-gate the hello).
  std::uint8_t version = kWireVersion;
  std::uint32_t epoch = 0;
  std::uint32_t seq = 0;
  std::string payload;

  bool operator==(const Frame&) const = default;
};

/// Serializes one frame (length prefix included).
Bytes encode_frame(const Frame& frame);

enum class DecodeStatus : std::uint8_t {
  kFrame,     // one frame decoded
  kNeedMore,  // prefix of a valid frame; feed more bytes
  kBadFrame,  // framing error (bad magic/version/length/CRC/type)
};

struct Decoded {
  DecodeStatus status = DecodeStatus::kNeedMore;
  Frame frame;        // valid when status == kFrame
  std::string error;  // valid when status == kBadFrame
};

/// One-shot decoder over the start of `wire`. `consumed` (optional) receives
/// the bytes a kFrame result used. Total: never throws, never reads out of
/// bounds.
Decoded decode_frame(const Bytes& wire, std::size_t* consumed = nullptr);

/// Incremental stream decoder: feed received chunks, pop frames. The first
/// framing error poisons the reader (every subsequent next() repeats it)
/// until reset() — callers drop the connection and start a fresh stream.
class FrameReader {
 public:
  void feed(const std::uint8_t* data, std::size_t n);
  void feed(const Bytes& data) { feed(data.data(), data.size()); }

  Decoded next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buf_.size() - pos_; }
  bool poisoned() const { return poisoned_; }

  /// Forgets everything (new connection).
  void reset();

 private:
  Bytes buf_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
  std::string poison_reason_;
};

}  // namespace procheck::net
