// Remote-SUL wire framing (DESIGN.md §12, §13).
//
// A frame is a length-prefixed, CRC-tagged, versioned record:
//
//   u32  length L           (bytes that follow the prefix; bounds-checked)
//   u16  magic  0x50C5
//   u8   version (kWireVersion; v1 frames still decode so a legacy hello
//                 can be answered with a structured "upgrade required"
//                 close instead of a silent framing drop)
//   u8   type    (FrameType)
//   u32  epoch   (connection generation — bumped on every reconnect so a
//                 stale answer from a previous link can never interleave)
//   u32  seq     (per-request counter within the epoch; acks echo it)
//   ...  payload (L - 16 bytes: the input/output symbol or error text)
//   u32  crc32   (IEEE, over magic..payload)
//
// All integers big-endian. The decoder is *total*: any byte stream either
// yields frames, asks for more bytes, or reports a framing error with a
// reason — it never crashes and never silently yields corrupted data (the
// CRC turns corruption into a detected framing error, the contract the
// chaos-proxy corruption regime pins). Once a stream mis-frames, resync is
// impossible (the length prefix itself is untrusted), so a framing error
// poisons the FrameReader until reset() — transports must drop the
// connection, which is exactly what the client and server do.
//
// v2 adds the authenticated session handshake (DESIGN.md §13):
// hello → [challenge → auth_response] → hello_ack, plus the structured
// admission/teardown frames (server_busy, close) whose payload is a reason
// token from the kReason* set below.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace procheck::net {

inline constexpr std::uint16_t kWireMagic = 0x50C5;
/// Current protocol generation: v2 = authenticated multi-session handshake.
inline constexpr std::uint8_t kWireVersion = 2;
/// Oldest version the decoder still *parses* (so the server can answer a v1
/// hello with a structured upgrade-required close rather than mis-framing).
inline constexpr std::uint8_t kMinWireVersion = 1;
/// Fixed body bytes besides the payload (magic..seq + trailing CRC).
inline constexpr std::size_t kFrameOverhead = 16;
/// Payload bound: symbols and error strings are short; anything bigger is a
/// corrupted length prefix and must not drive allocation.
inline constexpr std::size_t kMaxFramePayload = 4096;

enum class FrameType : std::uint8_t {
  kHello = 1,     // client → server: open a session (payload: client note)
  kHelloAck,      // server → client: session admitted (payload: profile name)
  kReset,         // client → server: reset the SUL to its initial state
  kResetAck,      // server → client
  kStep,          // client → server: one input symbol (payload)
  kStepAck,       // server → client: the output symbol (payload)
  kPing,          // keepalive probe
  kPong,          //
  kBye,           // orderly session end
  kError,         // server → client: structured refusal (payload: reason)
  kChallenge,     // server → client: PSK auth nonce (payload: hex nonce)
  kAuthResponse,  // client → server: HMAC over nonce+epoch (payload: hex mac)
  kServerBusy,    // server → client: admission rejected (payload: reason)
  kClose,         // server → client: structured session teardown (reason)
};

std::string_view to_string(FrameType type);
bool known_frame_type(std::uint8_t raw);

// Reason tokens carried by kServerBusy / kClose payloads. Machine-matchable
// (the client surfaces them verbatim in stats and CLI diagnostics).
inline constexpr const char* kReasonServerBusy = "server_busy";
inline constexpr const char* kReasonDraining = "draining";
inline constexpr const char* kReasonAuthFailed = "auth_failed";
inline constexpr const char* kReasonUpgradeRequired =
    "upgrade_required: protocol v2 with PSK handshake; rebuild your client";
inline constexpr const char* kReasonQuotaQueries = "quota_exceeded: queries";
inline constexpr const char* kReasonQuotaBytes = "quota_exceeded: bytes";
inline constexpr const char* kReasonQuotaWall = "quota_exceeded: wall_clock";
inline constexpr const char* kReasonIdleTimeout = "idle_timeout";
inline constexpr const char* kReasonDrained = "drained";
inline constexpr const char* kReasonSessionError = "session_error";

// --- PSK authentication (DESIGN.md §13) --------------------------------------
// Challenge/response over the reserved hello payload slot: the server sends a
// fresh per-connection nonce, the client answers with a keyed MAC over
// (nonce, epoch) under the shared PSK, and the server compares in constant
// time. Anti-replay falls out of nonce freshness: a captured auth_response is
// bound to a nonce that will never be issued again. The MAC is the
// simulation-grade keyed PRF of common/rng.h (DESIGN.md §1: logical — not
// cryptographic — strength is what this reproduction models).

/// Hex-encoded 64-bit MAC binding the shared key to this connection's nonce
/// and epoch. Both sides compute it; the server compares in constant time.
std::string auth_mac(const std::string& psk, const std::string& nonce_hex,
                     std::uint32_t epoch);

/// Length-leaking-only comparison: runtime independent of *where* the inputs
/// differ, so a byte-at-a-time MAC oracle cannot exist.
bool constant_time_equal(std::string_view a, std::string_view b);

struct Frame {
  FrameType type = FrameType::kError;
  /// Protocol version this frame was encoded with (decode fills it in; the
  /// server uses it to version-gate the hello).
  std::uint8_t version = kWireVersion;
  std::uint32_t epoch = 0;
  std::uint32_t seq = 0;
  std::string payload;

  bool operator==(const Frame&) const = default;
};

/// Serializes one frame (length prefix included).
Bytes encode_frame(const Frame& frame);

enum class DecodeStatus : std::uint8_t {
  kFrame,     // one frame decoded
  kNeedMore,  // prefix of a valid frame; feed more bytes
  kBadFrame,  // framing error (bad magic/version/length/CRC/type)
};

struct Decoded {
  DecodeStatus status = DecodeStatus::kNeedMore;
  Frame frame;        // valid when status == kFrame
  std::string error;  // valid when status == kBadFrame
};

/// One-shot decoder over the start of `wire`. `consumed` (optional) receives
/// the bytes a kFrame result used. Total: never throws, never reads out of
/// bounds.
Decoded decode_frame(const Bytes& wire, std::size_t* consumed = nullptr);

/// Incremental stream decoder: feed received chunks, pop frames. The first
/// framing error poisons the reader (every subsequent next() repeats it)
/// until reset() — callers drop the connection and start a fresh stream.
class FrameReader {
 public:
  void feed(const std::uint8_t* data, std::size_t n);
  void feed(const Bytes& data) { feed(data.data(), data.size()); }

  Decoded next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buf_.size() - pos_; }
  bool poisoned() const { return poisoned_; }

  /// Forgets everything (new connection).
  void reset();

 private:
  Bytes buf_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
  std::string poison_reason_;
};

}  // namespace procheck::net
