// Remote-SUL wire framing (DESIGN.md §12).
//
// A frame is a length-prefixed, CRC-tagged, versioned record:
//
//   u32  length L           (bytes that follow the prefix; bounds-checked)
//   u16  magic  0x50C5
//   u8   version (kWireVersion)
//   u8   type    (FrameType)
//   u32  epoch   (connection generation — bumped on every reconnect so a
//                 stale answer from a previous link can never interleave)
//   u32  seq     (per-request counter within the epoch; acks echo it)
//   ...  payload (L - 16 bytes: the input/output symbol or error text)
//   u32  crc32   (IEEE, over magic..payload)
//
// All integers big-endian. The decoder is *total*: any byte stream either
// yields frames, asks for more bytes, or reports a framing error with a
// reason — it never crashes and never silently yields corrupted data (the
// CRC turns corruption into a detected framing error, the contract the
// chaos-proxy corruption regime pins). Once a stream mis-frames, resync is
// impossible (the length prefix itself is untrusted), so a framing error
// poisons the FrameReader until reset() — transports must drop the
// connection, which is exactly what the client and server do.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace procheck::net {

inline constexpr std::uint16_t kWireMagic = 0x50C5;
inline constexpr std::uint8_t kWireVersion = 1;
/// Fixed body bytes besides the payload (magic..seq + trailing CRC).
inline constexpr std::size_t kFrameOverhead = 16;
/// Payload bound: symbols and error strings are short; anything bigger is a
/// corrupted length prefix and must not drive allocation.
inline constexpr std::size_t kMaxFramePayload = 4096;

enum class FrameType : std::uint8_t {
  kHello = 1,    // client → server: open a session (payload: client note)
  kHelloAck,     // server → client: session accepted (payload: profile name)
  kReset,        // client → server: reset the SUL to its initial state
  kResetAck,     // server → client
  kStep,         // client → server: one input symbol (payload)
  kStepAck,      // server → client: the output symbol (payload)
  kPing,         // keepalive probe
  kPong,         //
  kBye,          // orderly session end
  kError,        // server → client: structured refusal (payload: reason)
};

std::string_view to_string(FrameType type);
bool known_frame_type(std::uint8_t raw);

struct Frame {
  FrameType type = FrameType::kError;
  std::uint32_t epoch = 0;
  std::uint32_t seq = 0;
  std::string payload;

  bool operator==(const Frame&) const = default;
};

/// Serializes one frame (length prefix included).
Bytes encode_frame(const Frame& frame);

enum class DecodeStatus : std::uint8_t {
  kFrame,     // one frame decoded
  kNeedMore,  // prefix of a valid frame; feed more bytes
  kBadFrame,  // framing error (bad magic/version/length/CRC/type)
};

struct Decoded {
  DecodeStatus status = DecodeStatus::kNeedMore;
  Frame frame;        // valid when status == kFrame
  std::string error;  // valid when status == kBadFrame
};

/// One-shot decoder over the start of `wire`. `consumed` (optional) receives
/// the bytes a kFrame result used. Total: never throws, never reads out of
/// bounds.
Decoded decode_frame(const Bytes& wire, std::size_t* consumed = nullptr);

/// Incremental stream decoder: feed received chunks, pop frames. The first
/// framing error poisons the reader (every subsequent next() repeats it)
/// until reset() — callers drop the connection and start a fresh stream.
class FrameReader {
 public:
  void feed(const std::uint8_t* data, std::size_t n);
  void feed(const Bytes& data) { feed(data.data(), data.size()); }

  Decoded next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buf_.size() - pos_; }
  bool poisoned() const { return poisoned_; }

  /// Forgets everything (new connection).
  void reset();

 private:
  Bytes buf_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
  std::string poison_reason_;
};

}  // namespace procheck::net
