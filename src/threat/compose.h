// Adversarial model instrumentor (paper §IV-B / §VI "Adversarial model
// instrumentor"): takes the two extracted/manual FSMs UE^μ and MME^μ and
// produces the threat-instrumented model IMP^μ as an mc::Model.
//
// Composition: two unidirectional single-slot channels (c1 uplink UE→MME,
// c2 downlink MME→UE). Each in-flight message carries a *provenance* tag —
// genuine, replayed, or fabricated — which is how the Dolev–Yao adversary
// is folded into the state space:
//   * drop     — remove the in-flight message from either channel;
//   * inject   — place any protocol message with provenance=fabricated;
//   * replay   — place any message the protocol genuinely transmits
//                (present or past sessions) with provenance=replayed;
//   * modify   — expressible as drop + inject.
//
// FSM conditions are split into the incoming-message atom, internal-trigger
// atoms (*_trigger), and predicate atoms ("mac_valid=1"). Two predicate
// atoms have *structural* meaning the composer encodes directly (counter
// monotonicity is not a cryptographic question):
//   * count_ok=1        — the NAS COUNT was fresh: impossible on a replay;
//   * replay_accepted=1 / smc_replay=1 / counter_reset=1 — the
//     implementation processed a stale COUNT: requires provenance=replayed.
// All *cryptographic* feasibility (can a fabricated message carry a valid
// MAC? can a replayed authentication_request pass the USIM's SQN check?) is
// deliberately NOT encoded here — the model is optimistic, and the CPV
// prunes infeasible counterexamples in the CEGAR loop (cpv/, checker/).
//
// The composer also maintains two vocabulary-driven indicator flags used by
// authentication-bypass properties: flag_auth / flag_smc are set when the UE
// emits authentication_response / security_mode_complete and reset when it
// emits a fresh attach_request.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fsm/fsm.h"
#include "mc/model.h"

namespace procheck::threat {

struct ComposeOptions {
  bool adversary_downlink = true;  // c2 adversary-controlled
  bool adversary_uplink = true;    // c1 adversary-controlled
  /// Extra downlink messages the adversary may inject/replay even if absent
  /// from the MME model's action alphabet (e.g. attach_reject for reject-
  /// based attacks).
  std::vector<std::string> extra_downlink;
  std::vector<std::string> extra_uplink;
};

/// The compiled threat model plus the variable handles and alphabets the
/// property layer needs.
struct ThreatModel {
  mc::Model model;

  int ue_state = -1;
  int mme_state = -1;
  int chan_dl = -1;       // message on c2 (0 = none)
  int chan_dl_prov = -1;  // Provenance of the c2 message
  int chan_ul = -1;
  int chan_ul_prov = -1;
  int flag_auth = -1;  // UE completed AKA since its last attach_request
  int flag_smc = -1;   // UE completed SMC since its last attach_request
  /// UE currently holds a valid NAS security context (set on SMC complete,
  /// cleared on context-deleting transitions). Drives chan_ul_protected.
  int flag_ctx = -1;
  /// MME-side context flag (set when the MME issues security_mode_command,
  /// cleared on context-deleting events). Drives chan_dl_protected.
  int flag_mme_ctx = -1;
  /// Whether the in-flight downlink message is integrity-protected. Genuine
  /// MME sends derive it from flag_mme_ctx (paging stays plain; SMC is
  /// protected with the fresh keys); adversarial placements are free. A
  /// *genuine* delivery can only fire a transition whose sec_hdr atom
  /// matches this bit — a legitimate network never sends protected-mandatory
  /// messages in plaintext.
  int chan_dl_protected = -1;
  /// Whether the in-flight uplink message is integrity-protected. Genuine
  /// UE sends copy flag_ctx; adversary placements claim protection (the CPV
  /// prunes unforgeable claims). MME transitions requiring integrity_ok=1
  /// are guarded on this bit — an integrity-verified message must actually
  /// have been protected by a key holder.
  int chan_ul_protected = -1;

  std::vector<std::string> dl_alphabet;  // [0] = "none"
  std::vector<std::string> ul_alphabet;

  std::int32_t dl_index(const std::string& msg) const;
  std::int32_t ul_index(const std::string& msg) const;
  std::int32_t ue_state_index(const std::string& name) const;
  std::int32_t mme_state_index(const std::string& name) const;
};

/// Splits a transition's condition set: returns the incoming-message atom
/// (or the internal trigger atom), with predicates in `predicates`.
struct ConditionSplit {
  std::string message;  // empty if none found
  bool is_trigger = false;
  std::vector<std::string> predicates;
};
ConditionSplit split_conditions(const std::set<fsm::Atom>& conditions);

/// Atoms marking a transition that tolerates a stale NAS COUNT — the only
/// transitions a *session-protected* replay can structurally drive. These
/// are the predicate atoms with structural meaning to the composer (see the
/// header comment); the diff triage layer also treats them as implementation-
/// deviation indicators.
bool is_replay_tolerant_atom(const std::string& atom);

/// Which provenance values a received-message transition structurally
/// admits (crypto feasibility is the CPV's job, not encoded here). Exposed
/// so the diff triage layer can rebuild the same per-provenance CommandMeta
/// the composer emits when matching properties against diverging edges.
std::vector<std::int32_t> admissible_provenance(const fsm::Transition& t);

/// Builds IMP^μ from the two machines.
ThreatModel compose(const fsm::Fsm& ue_fsm, const fsm::Fsm& mme_fsm,
                    const ComposeOptions& options = {});

}  // namespace procheck::threat
