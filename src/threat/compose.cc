#include "threat/compose.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace procheck::threat {

namespace {

bool is_predicate_atom(const std::string& atom) { return contains(atom, "="); }
bool is_trigger_atom(const std::string& atom) { return ends_with(atom, "_trigger"); }

struct TransitionView {
  const fsm::Transition* t;
  ConditionSplit cond;
  std::string action;  // first non-null action ("" if none)
};

std::vector<TransitionView> views_of(const fsm::Fsm& machine) {
  std::vector<TransitionView> out;
  for (const fsm::Transition& t : machine.transitions()) {
    TransitionView v;
    v.t = &t;
    v.cond = split_conditions(t.conditions);
    for (const fsm::Atom& a : t.actions) {
      if (a != fsm::kNullAction) {
        v.action = a;
        break;
      }
    }
    out.push_back(std::move(v));
  }
  return out;
}

std::int32_t index_of(const std::vector<std::string>& alphabet, const std::string& name) {
  auto it = std::find(alphabet.begin(), alphabet.end(), name);
  return it == alphabet.end() ? -1 : static_cast<std::int32_t>(it - alphabet.begin());
}

/// Does this transition clear the receiver's security context?
bool clears_context(const fsm::Transition& t, const std::string& message) {
  if (t.conditions.count("ctx_deleted=1") > 0 || t.conditions.count("key_desync=1") > 0) {
    return true;
  }
  return message == "detach_request" || message == "detach_accept" ||
         message == "authentication_reject" || message == "service_reject";
}

}  // namespace

bool is_replay_tolerant_atom(const std::string& atom) {
  return atom == "replay_accepted=1" || atom == "smc_replay=1" || atom == "counter_reset=1";
}

/// Which provenance values a received-message transition structurally
/// admits (crypto feasibility is the CPV's job, not encoded here).
std::vector<std::int32_t> admissible_provenance(const fsm::Transition& t) {
  bool replay_tolerant = false;
  bool plain = false;
  bool count_fresh_required = false;
  bool protected_hdr = false;
  bool integrity_flag = false;
  for (const fsm::Atom& a : t.conditions) {
    if (is_replay_tolerant_atom(a)) replay_tolerant = true;
    if (a == "sec_hdr=plain_nas") plain = true;
    if (a == "count_ok=1") count_fresh_required = true;
    if (starts_with(a, "sec_hdr=") && a != "sec_hdr=plain_nas") protected_hdr = true;
    if (a == "integrity_ok=1") integrity_flag = true;
  }
  std::vector<std::int32_t> out{mc::kProvGenuine, mc::kProvFabricated};
  // A session-protected replay carries a stale COUNT: only replay-tolerant
  // transitions, or transitions consuming messages outside the session's
  // counter stream (plain, or claiming no integrity at all), can consume it.
  if (!count_fresh_required &&
      (replay_tolerant || plain || (!protected_hdr && !integrity_flag))) {
    out.push_back(mc::kProvReplayed);
  }
  return out;
}

ConditionSplit split_conditions(const std::set<fsm::Atom>& conditions) {
  ConditionSplit out;
  for (const fsm::Atom& a : conditions) {
    if (is_trigger_atom(a)) {
      out.message = a;
      out.is_trigger = true;
    } else if (is_predicate_atom(a)) {
      out.predicates.push_back(a);
    } else {
      out.message = a;
    }
  }
  return out;
}

std::int32_t ThreatModel::dl_index(const std::string& msg) const {
  return index_of(dl_alphabet, msg);
}
std::int32_t ThreatModel::ul_index(const std::string& msg) const {
  return index_of(ul_alphabet, msg);
}
std::int32_t ThreatModel::ue_state_index(const std::string& name) const {
  return model.value_index(ue_state, name);
}
std::int32_t ThreatModel::mme_state_index(const std::string& name) const {
  return model.value_index(mme_state, name);
}

ThreatModel compose(const fsm::Fsm& ue_fsm, const fsm::Fsm& mme_fsm,
                    const ComposeOptions& options) {
  ThreatModel tm;

  const std::vector<TransitionView> ue_views = views_of(ue_fsm);
  const std::vector<TransitionView> mme_views = views_of(mme_fsm);

  // --- Alphabets --------------------------------------------------------
  std::set<std::string> dl_set;   // messages that can sit on c2 (MME→UE)
  std::set<std::string> ul_set;   // messages that can sit on c1 (UE→MME)
  std::set<std::string> dl_genuine;  // genuinely transmitted: replayable
  std::set<std::string> ul_genuine;
  for (const TransitionView& v : ue_views) {
    if (!v.cond.is_trigger && !v.cond.message.empty()) dl_set.insert(v.cond.message);
    if (!v.action.empty()) {
      ul_set.insert(v.action);
      ul_genuine.insert(v.action);
    }
  }
  for (const TransitionView& v : mme_views) {
    if (!v.cond.is_trigger && !v.cond.message.empty()) ul_set.insert(v.cond.message);
    if (!v.action.empty()) {
      dl_set.insert(v.action);
      dl_genuine.insert(v.action);
    }
  }
  for (const std::string& m : options.extra_downlink) {
    dl_set.insert(m);
    dl_genuine.insert(m);  // observable in past sessions
  }
  for (const std::string& m : options.extra_uplink) {
    ul_set.insert(m);
    ul_genuine.insert(m);
  }

  tm.dl_alphabet = {"none"};
  tm.dl_alphabet.insert(tm.dl_alphabet.end(), dl_set.begin(), dl_set.end());
  tm.ul_alphabet = {"none"};
  tm.ul_alphabet.insert(tm.ul_alphabet.end(), ul_set.begin(), ul_set.end());

  // --- Variables ----------------------------------------------------------
  std::vector<std::string> ue_states(ue_fsm.states().begin(), ue_fsm.states().end());
  std::vector<std::string> mme_states(mme_fsm.states().begin(), mme_fsm.states().end());
  auto init_index = [](const std::vector<std::string>& states, const std::string& initial) {
    auto it = std::find(states.begin(), states.end(), initial);
    return it == states.end() ? 0 : static_cast<std::int32_t>(it - states.begin());
  };

  tm.ue_state = tm.model.add_var("ue_state", static_cast<std::int32_t>(ue_states.size()),
                                 init_index(ue_states, ue_fsm.initial()), ue_states);
  tm.mme_state = tm.model.add_var("mme_state", static_cast<std::int32_t>(mme_states.size()),
                                  init_index(mme_states, mme_fsm.initial()), mme_states);
  tm.chan_dl = tm.model.add_var("chan_dl", static_cast<std::int32_t>(tm.dl_alphabet.size()), 0,
                                tm.dl_alphabet);
  tm.chan_dl_prov = tm.model.add_var("chan_dl_prov", 4, 0,
                                     {"none", "genuine", "replayed", "fabricated"});
  tm.chan_ul = tm.model.add_var("chan_ul", static_cast<std::int32_t>(tm.ul_alphabet.size()), 0,
                                tm.ul_alphabet);
  tm.chan_ul_prov = tm.model.add_var("chan_ul_prov", 4, 0,
                                     {"none", "genuine", "replayed", "fabricated"});
  tm.flag_auth = tm.model.add_var("flag_auth", 2, 0, {"0", "1"});
  tm.flag_smc = tm.model.add_var("flag_smc", 2, 0, {"0", "1"});
  tm.flag_ctx = tm.model.add_var("flag_ctx", 2, 0, {"0", "1"});
  tm.flag_mme_ctx = tm.model.add_var("flag_mme_ctx", 2, 0, {"0", "1"});
  tm.chan_ul_protected = tm.model.add_var("chan_ul_protected", 2, 0, {"0", "1"});
  tm.chan_dl_protected = tm.model.add_var("chan_dl_protected", 2, 0, {"0", "1"});

  using mc::Command;
  using mc::CommandMeta;
  using mc::Expr;

  // --- Protocol-entity commands -------------------------------------------
  auto add_entity_commands = [&](const std::vector<TransitionView>& views, bool is_ue) {
    const int state_var = is_ue ? tm.ue_state : tm.mme_state;
    const int in_chan = is_ue ? tm.chan_dl : tm.chan_ul;
    const int in_prov = is_ue ? tm.chan_dl_prov : tm.chan_ul_prov;
    const int out_chan = is_ue ? tm.chan_ul : tm.chan_dl;
    const int out_prov = is_ue ? tm.chan_ul_prov : tm.chan_dl_prov;
    const std::vector<std::string>& out_alphabet = is_ue ? tm.ul_alphabet : tm.dl_alphabet;
    const std::string prefix = is_ue ? "ue" : "mme";

    for (const TransitionView& v : views) {
      const std::int32_t from = tm.model.value_index(state_var, v.t->from);
      const std::int32_t to = tm.model.value_index(state_var, v.t->to);
      if (from < 0 || to < 0) continue;

      auto flag_updates = [&](std::vector<mc::Assign>& updates) {
        if (!is_ue) {
          // MME-side context tracking + downlink protection stamping.
          if (v.action == "security_mode_command") updates.push_back({tm.flag_mme_ctx, 1});
          if (clears_context(*v.t, v.cond.message) ||
              (v.cond.message == "attach_request" &&
               v.t->conditions.count("integrity_ok=1") == 0)) {
            updates.push_back({tm.flag_mme_ctx, 0});
          }
          if (!v.action.empty()) {
            if (v.action == "security_mode_command") {
              updates.push_back({tm.chan_dl_protected, 1});
            } else if (v.action == "paging") {
              updates.push_back({tm.chan_dl_protected, 0});  // broadcast, always plain
            } else {
              updates.push_back({tm.chan_dl_protected, 0, tm.flag_mme_ctx});
            }
          }
          return;
        }
        if (v.action == "authentication_response") updates.push_back({tm.flag_auth, 1});
        if (v.action == "security_mode_complete") {
          updates.push_back({tm.flag_smc, 1});
          updates.push_back({tm.flag_ctx, 1});
        }
        if (v.action == "attach_request") {
          updates.push_back({tm.flag_auth, 0});
          updates.push_back({tm.flag_smc, 0});
        }
        if (clears_context(*v.t, v.cond.message)) updates.push_back({tm.flag_ctx, 0});
        if (!v.action.empty()) {
          // Genuine uplink sends are protected iff the UE holds a context
          // (smc_complete itself is protected with the just-installed one —
          // the const assignment above stands; this copy runs first).
          if (v.action != "security_mode_complete") {
            updates.push_back({tm.chan_ul_protected, 0, tm.flag_ctx});
          } else {
            updates.push_back({tm.chan_ul_protected, 1});
          }
        }
      };

      if (v.cond.is_trigger || v.cond.message.empty()) {
        // Internal-event transition: fires when the outgoing channel has
        // room for the responsive action.
        Command cmd;
        cmd.label = prefix + "_internal_" + (v.cond.message.empty() ? "tau" : v.cond.message) +
                    "_at_" + v.t->from;
        Expr guard = Expr::eq(state_var, from);
        std::vector<mc::Assign> updates{{state_var, to}};
        if (!v.action.empty()) {
          guard = Expr::land(std::move(guard), Expr::eq(out_chan, 0));
          std::int32_t act = index_of(out_alphabet, v.action);
          updates.push_back({out_chan, act});
          updates.push_back({out_prov, mc::kProvGenuine});
        }
        flag_updates(updates);
        cmd.guard = std::move(guard);
        cmd.updates = std::move(updates);
        cmd.meta.actor = is_ue ? CommandMeta::Actor::kUe : CommandMeta::Actor::kMme;
        cmd.meta.kind = CommandMeta::Kind::kInternal;
        cmd.meta.message = v.cond.message;
        cmd.meta.atoms = v.t->conditions;
        cmd.meta.actions = v.t->actions;
        cmd.meta.from_state = v.t->from;
        cmd.meta.to_state = v.t->to;
        tm.model.add_command(std::move(cmd));
        continue;
      }

      // Received-message transition: one command per admissible provenance
      // so counterexample steps carry the provenance statically.
      const std::int32_t msg =
          index_of(is_ue ? tm.dl_alphabet : tm.ul_alphabet, v.cond.message);
      if (msg < 0) continue;
      for (std::int32_t prov : admissible_provenance(*v.t)) {
        Command cmd;
        cmd.label = prefix + "_recv_" + v.cond.message + "_at_" + v.t->from + "_" +
                    tm.model.value_name(in_prov, prov);
        if (!v.cond.predicates.empty()) {
          cmd.label += " [" + join(v.cond.predicates, ",") + "]";
        }
        Expr guard = Expr::all({Expr::eq(state_var, from), Expr::eq(in_chan, msg),
                                Expr::eq(in_prov, prov)});
        if (!is_ue && v.t->conditions.count("integrity_ok=1") > 0) {
          // An integrity-verified uplink message must actually have been
          // protected by a key holder.
          guard = Expr::land(std::move(guard), Expr::eq(tm.chan_ul_protected, 1));
        }
        if (is_ue) {
          // Key-possession structure (not forgeability — that is the
          // CPV's domain): deciphering a protected+ciphered message needs
          // the current security context; MAC-verifying an SMC needs either
          // the fresh AKA keys or the current context.
          if (v.t->conditions.count("sec_hdr=integrity_protected_ciphered") > 0) {
            guard = Expr::land(std::move(guard), Expr::eq(tm.flag_ctx, 1));
          } else if (v.t->conditions.count("sec_hdr=integrity_protected") > 0 &&
                     v.t->conditions.count("mac_valid=1") > 0 &&
                     v.t->conditions.count("smc_replay=1") == 0) {
            guard = Expr::land(std::move(guard),
                               Expr::lor(Expr::eq(tm.flag_auth, 1), Expr::eq(tm.flag_ctx, 1)));
          }
          // Framing consistency for genuine traffic: the legitimate network
          // sends each message with the protection its context mandates, so
          // a genuine delivery only fires a transition whose sec_hdr atom
          // matches the stamped protection bit.
          if (prov == mc::kProvGenuine) {
            if (v.t->conditions.count("sec_hdr=plain_nas") > 0) {
              guard = Expr::land(std::move(guard), Expr::eq(tm.chan_dl_protected, 0));
            } else if (v.t->conditions.count("sec_hdr=integrity_protected") > 0 ||
                       v.t->conditions.count("sec_hdr=integrity_protected_ciphered") > 0) {
              guard = Expr::land(std::move(guard), Expr::eq(tm.chan_dl_protected, 1));
            }
          }
        }
        std::vector<mc::Assign> updates{
            {state_var, to}, {in_chan, 0}, {in_prov, mc::kProvNone}};
        if (!v.action.empty()) {
          guard = Expr::land(std::move(guard), Expr::eq(out_chan, 0));
          std::int32_t act = index_of(out_alphabet, v.action);
          updates.push_back({out_chan, act});
          updates.push_back({out_prov, mc::kProvGenuine});
        }
        flag_updates(updates);
        cmd.guard = std::move(guard);
        cmd.updates = std::move(updates);
        cmd.meta.actor = is_ue ? CommandMeta::Actor::kUe : CommandMeta::Actor::kMme;
        cmd.meta.kind = CommandMeta::Kind::kDeliver;
        cmd.meta.message = v.cond.message;
        cmd.meta.atoms = v.t->conditions;
        cmd.meta.actions = v.t->actions;
        cmd.meta.from_state = v.t->from;
        cmd.meta.to_state = v.t->to;
        cmd.meta.provenance = prov;
        tm.model.add_command(std::move(cmd));
      }
    }
  };

  add_entity_commands(ue_views, /*is_ue=*/true);
  add_entity_commands(mme_views, /*is_ue=*/false);

  // --- Adversary commands ---------------------------------------------------
  auto add_adversary = [&](bool downlink) {
    const int chan = downlink ? tm.chan_dl : tm.chan_ul;
    const int prov = downlink ? tm.chan_dl_prov : tm.chan_ul_prov;
    const std::vector<std::string>& alphabet = downlink ? tm.dl_alphabet : tm.ul_alphabet;
    const std::set<std::string>& genuine = downlink ? dl_genuine : ul_genuine;
    const std::string dir = downlink ? "dl" : "ul";

    for (std::size_t i = 1; i < alphabet.size(); ++i) {
      const std::string& m = alphabet[i];
      const auto mi = static_cast<std::int32_t>(i);

      Command drop;
      drop.label = "adv_drop_" + dir + "_" + m;
      drop.guard = Expr::eq(chan, mi);
      drop.updates = {{chan, 0}, {prov, mc::kProvNone}};
      drop.meta.actor = CommandMeta::Actor::kAdversary;
      drop.meta.kind = CommandMeta::Kind::kDrop;
      drop.meta.message = m;
      tm.model.add_command(std::move(drop));

      Command inject;
      inject.label = "adv_inject_" + dir + "_" + m;
      inject.guard = Expr::eq(chan, 0);
      inject.updates = {{chan, mi}, {prov, mc::kProvFabricated}};
      if (!downlink) inject.updates.push_back({tm.chan_ul_protected, 1});
      inject.meta.actor = CommandMeta::Actor::kAdversary;
      inject.meta.kind = CommandMeta::Kind::kInject;
      inject.meta.message = m;
      inject.meta.provenance = mc::kProvFabricated;
      tm.model.add_command(std::move(inject));

      if (genuine.count(m) > 0) {
        Command replay;
        replay.label = "adv_replay_" + dir + "_" + m;
        replay.guard = Expr::eq(chan, 0);
        replay.updates = {{chan, mi}, {prov, mc::kProvReplayed}};
        if (!downlink) replay.updates.push_back({tm.chan_ul_protected, 1});
        replay.meta.actor = CommandMeta::Actor::kAdversary;
        replay.meta.kind = CommandMeta::Kind::kReplay;
        replay.meta.message = m;
        replay.meta.provenance = mc::kProvReplayed;
        tm.model.add_command(std::move(replay));
      }
    }
  };

  if (options.adversary_downlink) add_adversary(/*downlink=*/true);
  if (options.adversary_uplink) add_adversary(/*downlink=*/false);

  return tm;
}

}  // namespace procheck::threat
