#include "ue/profile.h"

namespace procheck::ue {

StackProfile StackProfile::cls() {
  StackProfile p;
  p.name = "cls";
  p.recv_prefix = "recv_";
  p.send_prefix = "send_";
  p.smc_replay_distinguishable = true;  // I6 holds for all tested stacks
  return p;
}

StackProfile StackProfile::srsue() {
  StackProfile p;
  p.name = "srsue";
  p.recv_prefix = "parse_";
  p.send_prefix = "send_";
  p.accept_replayed_protected = true;
  p.reset_dl_counter_on_replay = true;
  p.accept_equal_sqn = true;
  p.keep_ctx_after_reject = true;
  p.smc_replay_distinguishable = true;
  return p;
}

StackProfile StackProfile::oai() {
  StackProfile p;
  p.name = "oai";
  p.recv_prefix = "emm_recv_";
  p.send_prefix = "emm_send_";
  p.accept_last_replay = true;
  p.accept_plain_after_smc = true;
  p.plain_identity_response = true;
  p.smc_replay_distinguishable = true;
  return p;
}

}  // namespace procheck::ue
