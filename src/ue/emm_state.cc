#include "ue/emm_state.h"

namespace procheck::ue {

std::string_view to_string(EmmState s) {
  switch (s) {
    case EmmState::kNull:
      return "EMM_NULL";
    case EmmState::kDeregistered:
      return "EMM_DEREGISTERED";
    case EmmState::kRegisteredInitiated:
      return "EMM_REGISTERED_INITIATED";
    case EmmState::kRegistered:
      return "EMM_REGISTERED";
    case EmmState::kDeregisteredInitiated:
      return "EMM_DEREGISTERED_INITIATED";
    case EmmState::kTauInitiated:
      return "EMM_TRACKING_AREA_UPDATING_INITIATED";
    case EmmState::kServiceRequestInitiated:
      return "EMM_SERVICE_REQUEST_INITIATED";
    case EmmState::kDeregisteredAttachNeeded:
      return "EMM_DEREGISTERED_ATTACH_NEEDED";
    case EmmState::kDeregisteredLimitedService:
      return "EMM_DEREGISTERED_LIMITED_SERVICE";
    case EmmState::kRegisteredNormalService:
      return "EMM_REGISTERED_NORMAL_SERVICE";
    case EmmState::kRegisteredAttemptingToUpdate:
      return "EMM_REGISTERED_ATTEMPTING_TO_UPDATE";
  }
  return "EMM_NULL";
}

bool is_registered(EmmState s) {
  return s == EmmState::kRegistered || s == EmmState::kRegisteredNormalService ||
         s == EmmState::kRegisteredAttemptingToUpdate;
}

bool is_deregistered(EmmState s) {
  return s == EmmState::kDeregistered || s == EmmState::kDeregisteredAttachNeeded ||
         s == EmmState::kDeregisteredLimitedService;
}

std::optional<EmmState> emm_state_from_name(std::string_view name) {
  for (std::uint8_t i = 0; i <= static_cast<std::uint8_t>(EmmState::kRegisteredAttemptingToUpdate);
       ++i) {
    auto s = static_cast<EmmState>(i);
    if (to_string(s) == name) return s;
  }
  return std::nullopt;
}

}  // namespace procheck::ue
