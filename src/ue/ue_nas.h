// UE-side NAS (EMM) protocol implementation.
//
// This is the system under test: a complete NAS-layer state machine for the
// procedures of the paper's Fig. 1 (attach, authentication, security mode
// control, GUTI reallocation, identity, TAU, detach, paging/service
// request), written in the shape the paper's §II-D properties describe —
// an event-driven architecture with one `recv_*` handler per incoming
// message that performs well-formedness and cryptographic checks and then
// hands control to a `send_*` handler for the responsive action.
//
// The stack is "pre-instrumented": every handler reports its entrance, the
// global state variables at entry/exit, and its condition locals to a
// TraceLogger, producing exactly the information-rich log of Fig. 3(d) that
// the model extractor consumes. Behavior deviations are selected by a
// StackProfile (see profile.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "instrument/trace_log.h"
#include "nas/messages.h"
#include "nas/security_context.h"
#include "nas/sqn.h"
#include "ue/emm_state.h"
#include "ue/profile.h"

namespace procheck::ue {

class UeNas {
 public:
  /// `trace` may be null (uninstrumented build); it is not owned.
  UeNas(StackProfile profile, std::uint64_t permanent_key, std::string imsi,
        instrument::TraceLogger* trace = nullptr);

  // --- Internal events (triggered by the conformance runner / upper layers).
  // Each returns the uplink PDUs emitted in response.
  std::vector<nas::NasPdu> power_on_attach();
  std::vector<nas::NasPdu> trigger_detach();
  std::vector<nas::NasPdu> trigger_service_request();
  std::vector<nas::NasPdu> trigger_tau();

  /// Downlink entry point — the paper's `air_msg_handler`: unpack, route to
  /// the incoming-message handler, return any responsive uplink PDUs.
  std::vector<nas::NasPdu> handle_downlink(const nas::NasPdu& pdu);

  /// Advances the UE's logical clock by one tick. While a UE-initiated
  /// procedure awaits its answer this counts the retransmission timer down
  /// and, on expiry, re-emits the stored request (fresh COUNT) with linear
  /// backoff; after kMaxRetransmissions the procedure is abandoned and the
  /// state falls back. Disarmed (the fault-free steady case) it is silent.
  std::vector<nas::NasPdu> tick();

  /// Retransmission period in ticks. Deliberately longer than the MME's
  /// kTimerPeriod (3) so the network-side timer drives recovery first and
  /// fault-free scenarios never see a UE retransmission.
  static constexpr int kRetransmissionPeriod = 6;
  static constexpr int kMaxRetransmissions = 4;

  // --- Observability (testbed assertions and ground-truth tests).
  EmmState state() const { return emm_state_; }
  const nas::SecurityContext& security() const { return sec_; }
  const std::string& guti() const { return guti_; }
  const std::string& imsi() const { return imsi_; }
  const StackProfile& profile() const { return profile_; }
  nas::Usim& usim() { return usim_; }

  /// Number of successful AKA runs (P1's battery-depletion marker).
  int authentications_completed() const { return auth_runs_; }
  /// Stale-COUNT protected messages that were nevertheless processed (I1/I3).
  int replays_accepted() const { return replays_accepted_; }
  /// Plain messages processed after the security context was valid (I2).
  int plain_accepted_after_ctx() const { return plain_after_ctx_; }
  /// Protected downlink messages discarded due to failed integrity — the
  /// P1 key-desynchronization marker (UE discarding the legitimate MME).
  int protected_discards() const { return protected_discards_; }
  std::optional<std::uint32_t> last_accepted_dl_count() const { return last_dl_; }
  /// Default EPS bearer id activated via the ESM piggyback (0 = none).
  std::uint64_t esm_bearer_id() const { return esm_bearer_id_; }
  /// Requests re-sent by the retransmission timer (loss recovery marker).
  int retransmissions_sent() const { return retransmissions_sent_; }
  /// Procedures abandoned after exhausting kMaxRetransmissions.
  int procedures_abandoned() const { return procedures_abandoned_; }
  bool retransmission_armed() const { return pending_retx_.has_value(); }

 private:
  // Routing and policy.
  std::vector<nas::NasPdu> handle_downlink_impl(const nas::NasPdu& pdu);
  std::vector<nas::NasPdu> route_plain(const nas::NasMessage& msg, const nas::NasPdu& pdu);
  std::vector<nas::NasPdu> route_protected(const nas::NasMessage& msg, const nas::NasPdu& pdu);
  bool downlink_count_acceptable(std::uint32_t count, bool* is_replay);

  // Incoming-message handlers (one per message type, named per profile in
  // the trace). Each returns the responsive PDUs.
  std::vector<nas::NasPdu> recv_authentication_request(const nas::NasMessage& msg);
  std::vector<nas::NasPdu> recv_security_mode_command(const nas::NasPdu& pdu);
  std::vector<nas::NasPdu> recv_attach_accept(const nas::NasMessage& msg);
  std::vector<nas::NasPdu> recv_attach_reject(const nas::NasMessage& msg);
  std::vector<nas::NasPdu> recv_identity_request(const nas::NasMessage& msg, bool was_plain);
  std::vector<nas::NasPdu> recv_guti_reallocation_command(const nas::NasMessage& msg);
  std::vector<nas::NasPdu> recv_detach_request(const nas::NasMessage& msg);
  std::vector<nas::NasPdu> recv_detach_accept(const nas::NasMessage& msg);
  std::vector<nas::NasPdu> recv_tau_accept(const nas::NasMessage& msg);
  std::vector<nas::NasPdu> recv_tau_reject(const nas::NasMessage& msg);
  std::vector<nas::NasPdu> recv_service_reject(const nas::NasMessage& msg);
  std::vector<nas::NasPdu> recv_paging(const nas::NasMessage& msg);
  std::vector<nas::NasPdu> recv_authentication_reject(const nas::NasMessage& msg);
  std::vector<nas::NasPdu> recv_configuration_update_command(const nas::NasMessage& msg);
  std::vector<nas::NasPdu> recv_emm_information(const nas::NasMessage& msg);

  // Outgoing-message helper: logs the send_* handler entrance and protects
  // the message with the current context (or sends plain pre-context).
  nas::NasPdu send_message(nas::NasMessage msg, bool force_plain = false);

  // Retransmission timer (armed while a UE-initiated procedure is pending).
  struct PendingRetransmission {
    nas::NasMessage msg;   // the request to re-send (re-protected on expiry)
    bool force_plain;
    EmmState armed_state;  // leaving this state disarms the timer
    int ticks_left;
    int retransmissions;
  };
  void arm_retransmission(const nas::NasMessage& msg, bool force_plain);
  std::vector<nas::NasPdu> abandon_procedure();

  // Trace helpers.
  void trace_enter_recv(std::string_view standard_name);
  void trace_enter_send(std::string_view standard_name);
  void trace_enter_raw(std::string_view function);
  void trace_globals();
  void trace_local(std::string_view name, std::uint64_t value);
  void trace_local(std::string_view name, std::string_view value);
  void set_state(EmmState next);

  StackProfile profile_;
  instrument::TraceLogger* trace_;

  // Per-delivery context surfaced as condition locals by trace_enter_recv
  // (they must appear *after* the handler entrance so the extractor's block
  // division attributes them to the right transition).
  std::optional<nas::SecHdr> current_hdr_;
  bool current_replay_accepted_ = false;
  bool current_plain_after_ctx_ = false;

  std::string imsi_;
  std::string guti_ = "none";
  nas::Usim usim_;
  nas::SecurityContext sec_;
  std::optional<std::uint64_t> pending_kasme_;  // from AKA, awaiting SMC
  std::optional<std::uint32_t> last_dl_;        // last accepted downlink NAS COUNT
  EmmState emm_state_ = EmmState::kDeregistered;

  std::optional<PendingRetransmission> pending_retx_;

  int auth_runs_ = 0;
  int replays_accepted_ = 0;
  int plain_after_ctx_ = 0;
  int protected_discards_ = 0;
  int retransmissions_sent_ = 0;
  int procedures_abandoned_ = 0;
  std::uint64_t esm_bearer_id_ = 0;
};

}  // namespace procheck::ue
