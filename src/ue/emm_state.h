// UE-side EMM states (TS 24.301 §5.1.3), including the substates the paper
// highlights in RQ2: ProChecker's automatic extraction surfaces substates
// (e.g. EMM_DEREGISTERED_ATTACH_NEEDED) that manual models like
// LTEInspector's collapse into their parent states. The to_string() names
// are exactly the standard's state names — implementations use them
// verbatim (paper §II-D), which is what lets the extractor's
// state-signature matching work.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace procheck::ue {

enum class EmmState : std::uint8_t {
  kNull,
  kDeregistered,
  kRegisteredInitiated,
  kRegistered,
  kDeregisteredInitiated,
  kTauInitiated,
  kServiceRequestInitiated,
  // Substates (TS 24.301 §5.1.3.2.2 / §5.1.3.2.3).
  kDeregisteredAttachNeeded,
  kDeregisteredLimitedService,
  kRegisteredNormalService,
  kRegisteredAttemptingToUpdate,
};

std::string_view to_string(EmmState s);
std::optional<EmmState> emm_state_from_name(std::string_view name);

/// True for EMM_REGISTERED and its substates.
bool is_registered(EmmState s);
/// True for EMM_DEREGISTERED and its substates.
bool is_deregistered(EmmState s);

/// All standard state names, in declaration order — the `state_signatures`
/// input of Algorithm 1.
inline constexpr std::string_view kUeStateNames[] = {
    "EMM_NULL",
    "EMM_DEREGISTERED",
    "EMM_REGISTERED_INITIATED",
    "EMM_REGISTERED",
    "EMM_DEREGISTERED_INITIATED",
    "EMM_TRACKING_AREA_UPDATING_INITIATED",
    "EMM_SERVICE_REQUEST_INITIATED",
    "EMM_DEREGISTERED_ATTACH_NEEDED",
    "EMM_DEREGISTERED_LIMITED_SERVICE",
    "EMM_REGISTERED_NORMAL_SERVICE",
    "EMM_REGISTERED_ATTEMPTING_TO_UPDATE",
};

}  // namespace procheck::ue
