// Behavior profiles for the three analyzed UE NAS implementations.
//
// The paper evaluates one closed-source stack and two open-source stacks
// (srsLTE's srsUE and OpenAirInterface). This reproduction implements one
// complete NAS stack whose spec-deviations and logging signatures are
// selected by a profile, reproducing each stack's documented behavior
// (DESIGN.md §1 and §3):
//   * cls    — the closed-source stand-in: spec-conformant implementation
//              (still subject to the standards-level flaws P1–P3).
//   * srsue  — srsLTE: deviations I1 (accepts any replayed protected message
//              and resets the DL counter), I3 (accepts an equal SQN again),
//              I4 (re-registers after reject without re-authentication),
//              I6; logging signature send_/parse_.
//   * oai    — OpenAirInterface: deviations I1 (accepts a replay of the last
//              message), I2 (accepts plain messages after the security
//              context), I5 (answers plain identity_request with the IMSI),
//              I6; logging signature emm_send_/emm_recv_.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace procheck::ue {

struct StackProfile {
  std::string name;         // "cls" | "srsue" | "oai"
  std::string recv_prefix;  // handler-name prefix for incoming messages
  std::string send_prefix;  // handler-name prefix for outgoing messages

  // Implementation deviations (ground truth for Table I).
  bool accept_replayed_protected = false;  // I1 (srs): any old COUNT accepted
  bool reset_dl_counter_on_replay = false; // I1 (srs): DL COUNT reset to replayed value
  bool accept_last_replay = false;         // I1 (oai): replay of the most recent message
  bool accept_plain_after_smc = false;     // I2 (oai): plain NAS accepted post-SMC
  bool accept_equal_sqn = false;           // I3 (srs): same SQN accepted, counter reset
  bool keep_ctx_after_reject = false;      // I4 (srs): security bypass after reject
  bool plain_identity_response = false;    // I5 (oai): IMSI to plain identity_request
  bool smc_replay_distinguishable = false; // I6 (both): replayed SMC response leaks identity

  // Mitigation knob for the ablation bench: TS 33.102 Annex C.2.2 freshness
  // limit L. nullopt (the COTS default) is the P1/P2 root cause.
  std::optional<std::uint64_t> sqn_freshness_limit;

  static StackProfile cls();
  static StackProfile srsue();
  static StackProfile oai();
};

}  // namespace procheck::ue
