#include "ue/ue_nas.h"

#include "nas/crypto.h"

namespace procheck::ue {

using nas::Direction;
using nas::EmmCause;
using nas::MsgType;
using nas::NasMessage;
using nas::NasPdu;
using nas::SecHdr;

UeNas::UeNas(StackProfile profile, std::uint64_t permanent_key, std::string imsi,
             instrument::TraceLogger* trace)
    : profile_(std::move(profile)),
      trace_(trace),
      imsi_(std::move(imsi)),
      usim_(permanent_key,
            nas::UsimConfig{profile_.sqn_freshness_limit, profile_.accept_equal_sqn}) {}

// --- Trace helpers -----------------------------------------------------------

void UeNas::trace_enter_raw(std::string_view function) {
  if (trace_) trace_->enter(function);
}

void UeNas::trace_enter_recv(std::string_view standard_name) {
  if (trace_) trace_->enter(profile_.recv_prefix + std::string(standard_name));
  trace_globals();
  if (trace_ && current_hdr_) {
    trace_->local("sec_hdr", to_string(*current_hdr_));
  }
  if (trace_ && current_replay_accepted_) {
    trace_->local("replay_accepted", 1);
    current_replay_accepted_ = false;
  }
  if (trace_ && current_plain_after_ctx_) {
    trace_->local("plain_accepted_after_ctx", 1);
    current_plain_after_ctx_ = false;
  }
}

void UeNas::trace_enter_send(std::string_view standard_name) {
  if (trace_) trace_->enter(profile_.send_prefix + std::string(standard_name));
}

void UeNas::trace_globals() {
  if (!trace_) return;
  trace_->global("emm_state", to_string(emm_state_));
  trace_->global("ue_sequence_number", last_dl_ ? *last_dl_ + 1 : 0);
  trace_->global("sec_ctx_valid", sec_.valid ? 1 : 0);
  trace_->global("guti", guti_);
}

void UeNas::trace_local(std::string_view name, std::uint64_t value) {
  if (trace_) trace_->local(name, value);
}

void UeNas::trace_local(std::string_view name, std::string_view value) {
  if (trace_) trace_->local(name, value);
}

void UeNas::set_state(EmmState next) {
  // Leaving the state a pending procedure was armed in means the procedure
  // resolved (accept/reject/abandon): stop its retransmission timer.
  if (pending_retx_ && next != pending_retx_->armed_state) pending_retx_.reset();
  emm_state_ = next;
  // State variables are global; the instrumented build reports every write.
  if (trace_) trace_->global("emm_state", to_string(emm_state_));
}

// --- Outgoing helper ---------------------------------------------------------

nas::NasPdu UeNas::send_message(NasMessage msg, bool force_plain) {
  trace_enter_send(standard_name(msg.type));
  if (sec_.valid && !force_plain) {
    // SMC completion is the first protected uplink message; everything after
    // the context goes integrity-protected and ciphered.
    return protect(msg, sec_, Direction::kUplink, SecHdr::kIntegrityCiphered);
  }
  return encode_plain(msg);
}

// --- Retransmission timer ----------------------------------------------------

void UeNas::arm_retransmission(const NasMessage& msg, bool force_plain) {
  pending_retx_ = PendingRetransmission{msg, force_plain, emm_state_, kRetransmissionPeriod, 0};
}

std::vector<NasPdu> UeNas::abandon_procedure() {
  const EmmState armed = pending_retx_->armed_state;
  pending_retx_.reset();
  ++procedures_abandoned_;
  trace_enter_recv("retransmission_timer");
  trace_local("retransmissions_exhausted", 1);
  switch (armed) {
    case EmmState::kRegisteredInitiated:
      set_state(EmmState::kDeregistered);
      break;
    case EmmState::kDeregisteredInitiated:
      // Abnormal detach case (TS 24.301 §5.5.2.2.4): detach locally.
      sec_.clear();
      pending_kasme_.reset();
      last_dl_.reset();
      set_state(EmmState::kDeregistered);
      break;
    case EmmState::kServiceRequestInitiated:
      set_state(EmmState::kRegistered);
      break;
    case EmmState::kTauInitiated:
      set_state(EmmState::kRegisteredAttemptingToUpdate);
      break;
    default:
      break;
  }
  trace_globals();
  return {};
}

std::vector<NasPdu> UeNas::tick() {
  if (!pending_retx_) return {};
  if (--pending_retx_->ticks_left > 0) return {};
  if (pending_retx_->retransmissions >= kMaxRetransmissions) return abandon_procedure();
  ++pending_retx_->retransmissions;
  // Linear backoff: 6, 12, 18, ... ticks between attempts.
  pending_retx_->ticks_left = kRetransmissionPeriod * (pending_retx_->retransmissions + 1);
  ++retransmissions_sent_;
  trace_enter_recv("retransmission_timer");
  trace_local("retransmissions", static_cast<std::uint64_t>(pending_retx_->retransmissions));
  // send_message re-protects with the current context, so the retransmitted
  // PDU carries a fresh uplink COUNT (no self-inflicted replays).
  std::vector<NasPdu> out{send_message(pending_retx_->msg, pending_retx_->force_plain)};
  trace_globals();
  return out;
}

// --- Internal events ---------------------------------------------------------

std::vector<NasPdu> UeNas::power_on_attach() {
  trace_enter_recv("power_on_trigger");
  NasMessage req(MsgType::kAttachRequest);
  req.set_s("identity", guti_ != "none" ? guti_ : imsi_);
  req.set_u("ue_network_capability", 0x7);

  std::vector<NasPdu> out;
  if (profile_.keep_ctx_after_reject && sec_.valid) {
    // I4 path: srsUE re-registers with the retained security context,
    // skipping authentication and security-mode control entirely.
    set_state(EmmState::kRegisteredInitiated);
    out.push_back(send_message(req));
    arm_retransmission(req, /*force_plain=*/false);
  } else {
    sec_.clear();
    last_dl_.reset();
    set_state(EmmState::kRegisteredInitiated);
    out.push_back(send_message(req, /*force_plain=*/true));
    arm_retransmission(req, /*force_plain=*/true);
  }
  trace_globals();
  return out;
}

std::vector<NasPdu> UeNas::trigger_detach() {
  trace_enter_recv("detach_trigger");
  set_state(EmmState::kDeregisteredInitiated);
  NasMessage req(MsgType::kDetachRequest);
  req.set_s("detach_type", "ue_initiated");
  std::vector<NasPdu> out{send_message(req)};
  arm_retransmission(req, /*force_plain=*/false);
  trace_globals();
  return out;
}

std::vector<NasPdu> UeNas::trigger_service_request() {
  trace_enter_recv("service_request_trigger");
  if (!is_registered(emm_state_)) {
    trace_local("service_possible", 0);
    trace_globals();
    return {};
  }
  trace_local("service_possible", 1);
  set_state(EmmState::kServiceRequestInitiated);
  NasMessage req(MsgType::kServiceRequest);
  req.set_s("identity", guti_);
  std::vector<NasPdu> out{send_message(req)};
  arm_retransmission(req, /*force_plain=*/false);
  trace_globals();
  return out;
}

std::vector<NasPdu> UeNas::trigger_tau() {
  trace_enter_recv("tau_trigger");
  set_state(EmmState::kTauInitiated);
  NasMessage req(MsgType::kTauRequest);
  req.set_s("identity", guti_);
  std::vector<NasPdu> out{send_message(req)};
  arm_retransmission(req, /*force_plain=*/false);
  trace_globals();
  return out;
}

// --- Downlink routing --------------------------------------------------------

bool UeNas::downlink_count_acceptable(std::uint32_t count, bool* is_replay) {
  // Standards policy (TS 24.301 §4.4.3.2): accept strictly greater COUNTs.
  // Arbitrary forward jumps are allowed — the under-specification P3
  // exploits. Stale-COUNT acceptance below models I1/I3 deviations.
  const bool fresh = !last_dl_ || count > *last_dl_;
  *is_replay = !fresh;
  if (fresh) {
    last_dl_ = count;
    return true;
  }
  if (profile_.accept_replayed_protected) {
    if (profile_.reset_dl_counter_on_replay) last_dl_ = count;
    ++replays_accepted_;
    return true;
  }
  if (profile_.accept_last_replay && count == *last_dl_) {
    ++replays_accepted_;
    return true;
  }
  return false;
}

std::vector<NasPdu> UeNas::handle_downlink(const NasPdu& pdu) {
  trace_enter_raw("air_msg_handler");
  current_hdr_ = pdu.sec_hdr;
  current_replay_accepted_ = false;
  current_plain_after_ctx_ = false;
  std::vector<NasPdu> out = handle_downlink_impl(pdu);
  current_hdr_.reset();
  current_replay_accepted_ = false;
  current_plain_after_ctx_ = false;
  return out;
}

std::vector<NasPdu> UeNas::handle_downlink_impl(const NasPdu& pdu) {
  if (pdu.sec_hdr == SecHdr::kPlain) {
    auto msg = nas::decode_payload(pdu.payload);
    if (!msg) {
      trace_enter_recv("undecodable_pdu");
      trace_local("well_formed", 0);
      return {};
    }
    return route_plain(*msg, pdu);
  }

  // Security-mode command is integrity-protected with the *new* context and
  // must be verifiable before `sec_` is valid; route it on the visible
  // (integrity-only, uncyphered) payload.
  if (pdu.sec_hdr == SecHdr::kIntegrity) {
    auto msg = nas::decode_payload(pdu.payload);
    if (msg && msg->type == MsgType::kSecurityModeCommand) {
      return recv_security_mode_command(pdu);
    }
  }

  if (!sec_.valid) {
    // Cannot verify or decrypt: the handler rejects the PDU.
    ++protected_discards_;
    trace_enter_recv("undecodable_pdu");
    trace_local("drop_reason", "no_security_context");
    return {};
  }

  nas::UnprotectResult res = unprotect(pdu, sec_, Direction::kDownlink);
  if (res.status == nas::UnprotectResult::Status::kMacFailure) {
    ++protected_discards_;
    trace_enter_recv("undecodable_pdu");
    trace_local("mac_valid", 0);
    return {};
  }
  if (res.status == nas::UnprotectResult::Status::kMalformed) {
    trace_enter_recv("undecodable_pdu");
    trace_local("well_formed", 0);
    return {};
  }

  bool is_replay = false;
  if (!downlink_count_acceptable(pdu.count, &is_replay)) {
    // Replay protection: the handler is entered, fails the COUNT check, and
    // takes no action (an explicit reject self-loop in the extracted FSM).
    trace_enter_recv(standard_name(res.msg.type));
    trace_local("count_ok", 0);
    trace_globals();
    return {};
  }
  current_replay_accepted_ = is_replay;
  return route_protected(res.msg, pdu);
}

std::vector<NasPdu> UeNas::route_plain(const NasMessage& msg, const NasPdu& pdu) {
  // TS 24.301 §4.4.4.2: only a fixed set of messages may be processed
  // without integrity protection.
  switch (msg.type) {
    case MsgType::kAuthenticationRequest:
      return recv_authentication_request(msg);
    case MsgType::kAuthenticationReject:
      return recv_authentication_reject(msg);
    case MsgType::kIdentityRequest:
      return recv_identity_request(msg, /*was_plain=*/true);
    case MsgType::kAttachReject:
      return recv_attach_reject(msg);
    case MsgType::kDetachAccept:
      return recv_detach_accept(msg);
    case MsgType::kDetachRequest:
      // Deployed stacks process network-initiated detach even without
      // integrity protection — the standards gap behind the prior
      // detach/downgrade attacks (LTEInspector, NDSS'18).
      return recv_detach_request(msg);
    case MsgType::kServiceReject:
      return recv_service_reject(msg);
    case MsgType::kTauReject:
      return recv_tau_reject(msg);
    case MsgType::kPaging:
      return recv_paging(msg);
    default:
      break;
  }
  if (sec_.valid && profile_.accept_plain_after_smc) {
    // I2 (OAI): plain-NAS (0x0) messages processed after the security
    // context is established — integrity and confidentiality broken. The
    // atom is surfaced by the handler's own entrance (right log block).
    ++plain_after_ctx_;
    current_plain_after_ctx_ = true;
    return route_protected(msg, pdu);
  }
  // Conformant: an explicit handler-level reject of the plain downgrade.
  trace_enter_recv(standard_name(msg.type));
  trace_local("plain_allowed", 0);
  trace_globals();
  return {};
}

std::vector<NasPdu> UeNas::route_protected(const NasMessage& msg, const NasPdu& pdu) {
  switch (msg.type) {
    case MsgType::kAttachAccept:
      return recv_attach_accept(msg);
    case MsgType::kAttachReject:
      return recv_attach_reject(msg);
    case MsgType::kAuthenticationRequest:
      return recv_authentication_request(msg);
    case MsgType::kSecurityModeCommand:
      return recv_security_mode_command(pdu);
    case MsgType::kIdentityRequest:
      return recv_identity_request(msg, /*was_plain=*/false);
    case MsgType::kGutiReallocationCommand:
      return recv_guti_reallocation_command(msg);
    case MsgType::kDetachRequest:
      return recv_detach_request(msg);
    case MsgType::kDetachAccept:
      return recv_detach_accept(msg);
    case MsgType::kTauAccept:
      return recv_tau_accept(msg);
    case MsgType::kTauReject:
      return recv_tau_reject(msg);
    case MsgType::kServiceReject:
      return recv_service_reject(msg);
    case MsgType::kPaging:
      return recv_paging(msg);
    case MsgType::kConfigurationUpdateCommand:
      return recv_configuration_update_command(msg);
    case MsgType::kEmmInformation:
      return recv_emm_information(msg);
    default:
      trace_local("unexpected_message", 1);
      return {};
  }
}

// --- Incoming-message handlers -----------------------------------------------

std::vector<NasPdu> UeNas::recv_authentication_request(const NasMessage& msg) {
  trace_enter_recv("authentication_request");
  const Bytes rand = msg.get_b("rand");
  const Bytes autn = msg.get_b("autn");

  nas::Usim::Outcome outcome = usim_.authenticate(rand, autn);
  trace_local("mac_valid", outcome.result == nas::Usim::Result::kMacFailure ? 0 : 1);
  trace_local("sqn_ok", outcome.result == nas::Usim::Result::kOk ? 1 : 0);
  if (outcome.equal_seq_accepted) {
    // I3: the USIM accepted the same SQN again — the session counter resets.
    trace_local("counter_reset", 1);
  }

  std::vector<NasPdu> out;
  switch (outcome.result) {
    case nas::Usim::Result::kOk: {
      ++auth_runs_;
      // Fresh session keys supersede the current context; they are taken
      // into use at the next security-mode control run. If a context was
      // already active this *desynchronizes* keys with the legitimate MME —
      // the P1 effect.
      pending_kasme_ = outcome.kasme;
      if (sec_.valid) {
        sec_.clear();
        last_dl_.reset();
        trace_local("key_desync", 1);
      }
      NasMessage resp(MsgType::kAuthenticationResponse);
      resp.set_u("res", outcome.res);
      out.push_back(send_message(resp, /*force_plain=*/true));
      break;
    }
    case nas::Usim::Result::kMacFailure: {
      trace_local("failure_cause", "mac_failure");
      NasMessage fail(MsgType::kAuthenticationFailure);
      fail.set_s("cause", std::string(to_string(EmmCause::kMacFailure)));
      out.push_back(send_message(fail, /*force_plain=*/true));
      break;
    }
    case nas::Usim::Result::kSyncFailure: {
      trace_local("failure_cause", "synch_failure");
      NasMessage fail(MsgType::kAuthenticationFailure);
      fail.set_s("cause", std::string(to_string(EmmCause::kSynchFailure)));
      fail.set_b("auts", outcome.auts);
      out.push_back(send_message(fail, /*force_plain=*/true));
      break;
    }
  }
  trace_globals();
  return out;
}

std::vector<NasPdu> UeNas::recv_security_mode_command(const NasPdu& pdu) {
  trace_enter_recv("security_mode_command");
  trace_local("ue_sequence_number", pdu.count);

  auto msg = nas::decode_payload(pdu.payload);
  if (!msg) {
    trace_local("well_formed", 0);
    return {};
  }
  const auto eia = static_cast<std::uint8_t>(msg->get_u("eia", 1));
  const auto eea = static_cast<std::uint8_t>(msg->get_u("eea", 1));

  // Verify against the pending AKA keys (initial SMC) or the current
  // context's root key (re-run / replayed SMC).
  std::vector<NasPdu> out;
  auto verify_with = [&](std::uint64_t kasme) {
    std::uint64_t k_int = nas::derive_k_nas_int(kasme, eia);
    return nas::nas_mac(k_int, pdu.count, Direction::kDownlink, pdu.payload) == pdu.mac;
  };

  if (pending_kasme_ && verify_with(*pending_kasme_)) {
    trace_local("mac_valid", 1);
    trace_local("caps_match", 1);
    sec_.establish(*pending_kasme_, eia, eea);
    pending_kasme_.reset();
    last_dl_ = pdu.count;
    NasMessage resp(MsgType::kSecurityModeComplete);
    out.push_back(send_message(resp));
    trace_globals();
    return out;
  }

  if (sec_.valid && verify_with(sec_.kasme)) {
    // A replayed SMC from the current session. The victim's response is
    // distinguishable from a non-victim's MAC failure — I6 linkability.
    trace_local("mac_valid", 1);
    trace_local("smc_replay", 1);
    if (profile_.smc_replay_distinguishable) {
      ++replays_accepted_;
      NasMessage resp(MsgType::kSecurityModeComplete);
      out.push_back(send_message(resp));
      trace_globals();
      return out;
    }
    trace_globals();
    return out;
  }

  trace_local("mac_valid", 0);
  NasMessage reject(MsgType::kSecurityModeReject);
  reject.set_s("cause", std::string(to_string(EmmCause::kMacFailure)));
  out.push_back(send_message(reject, /*force_plain=*/true));
  trace_globals();
  return out;
}

std::vector<NasPdu> UeNas::recv_attach_accept(const NasMessage& msg) {
  trace_enter_recv("attach_accept");
  if (emm_state_ != EmmState::kRegisteredInitiated) {
    trace_local("state_ok", 0);
    trace_globals();
    return {};
  }
  trace_local("mac_valid", 1);
  if (msg.has("guti")) {
    guti_ = msg.get_s("guti");
    trace_local("guti_assigned", 1);
  }
  set_state(EmmState::kRegistered);
  NasMessage resp(MsgType::kAttachComplete);
  if (msg.has("esm_bearer_id")) {
    // ESM piggyback: accept the default bearer activation in the complete.
    esm_bearer_id_ = msg.get_u("esm_bearer_id");
    trace_local("esm_bearer_activated", 1);
    resp.set_u("esm_bearer_id", esm_bearer_id_);
  }
  std::vector<NasPdu> out{send_message(resp)};
  set_state(EmmState::kRegisteredNormalService);
  trace_globals();
  return out;
}

std::vector<NasPdu> UeNas::recv_attach_reject(const NasMessage& msg) {
  trace_enter_recv("attach_reject");
  trace_local("cause", msg.get_s("cause", "not_authorized"));
  if (profile_.keep_ctx_after_reject) {
    // I4: the context (and USIM state) survive the reject; the next attach
    // will skip authentication and security-mode control entirely.
    trace_local("ctx_deleted", 0);
  } else {
    sec_.clear();
    pending_kasme_.reset();
    last_dl_.reset();
    guti_ = "none";
    trace_local("ctx_deleted", 1);
  }
  set_state(EmmState::kDeregistered);
  trace_globals();
  return {};
}

std::vector<NasPdu> UeNas::recv_identity_request(const NasMessage& msg, bool was_plain) {
  trace_enter_recv("identity_request");
  const std::string id_type = msg.get_s("id_type", "imsi");
  trace_local("id_type", id_type);

  std::vector<NasPdu> out;
  if (!sec_.valid) {
    // Identification during initial attach: plain IMSI response is the
    // specified behavior.
    NasMessage resp(MsgType::kIdentityResponse);
    resp.set_s("identity", id_type == "imsi" ? imsi_ : guti_);
    out.push_back(send_message(resp, /*force_plain=*/true));
    trace_globals();
    return out;
  }
  if (was_plain && !profile_.plain_identity_response) {
    // Conformant: a plain identity_request after the security context is a
    // downgrade attempt — ignore.
    trace_local("plain_downgrade_refused", 1);
    trace_globals();
    return {};
  }
  // I5 (OAI) when was_plain: IMSI leaks to an unauthenticated requester.
  NasMessage resp(MsgType::kIdentityResponse);
  resp.set_s("identity", id_type == "imsi" ? imsi_ : guti_);
  out.push_back(send_message(resp, /*force_plain=*/was_plain));
  trace_globals();
  return out;
}

std::vector<NasPdu> UeNas::recv_guti_reallocation_command(const NasMessage& msg) {
  trace_enter_recv("guti_reallocation_command");
  guti_ = msg.get_s("guti", guti_);
  trace_local("guti_updated", 1);
  NasMessage resp(MsgType::kGutiReallocationComplete);
  std::vector<NasPdu> out{send_message(resp)};
  trace_globals();
  return out;
}

std::vector<NasPdu> UeNas::recv_detach_request(const NasMessage& msg) {
  trace_enter_recv("detach_request");
  const bool reattach = msg.get_s("detach_type", "reattach_required") == "reattach_required";
  trace_local("reattach_required", reattach ? 1 : 0);
  // Network-initiated detach goes through the attach-needed substate — the
  // intermediate state the paper's Fig. 7(ii) refinement example shows.
  set_state(reattach ? EmmState::kDeregisteredAttachNeeded : EmmState::kDeregisteredLimitedService);
  NasMessage resp(MsgType::kDetachAccept);
  std::vector<NasPdu> out{send_message(resp)};
  sec_.clear();
  pending_kasme_.reset();
  last_dl_.reset();
  set_state(EmmState::kDeregistered);
  trace_globals();
  return out;
}

std::vector<NasPdu> UeNas::recv_detach_accept(const NasMessage&) {
  trace_enter_recv("detach_accept");
  if (emm_state_ != EmmState::kDeregisteredInitiated) {
    trace_local("state_ok", 0);
    trace_globals();
    return {};
  }
  sec_.clear();
  pending_kasme_.reset();
  last_dl_.reset();
  set_state(EmmState::kDeregistered);
  trace_globals();
  return {};
}

std::vector<NasPdu> UeNas::recv_tau_accept(const NasMessage& msg) {
  trace_enter_recv("tracking_area_update_accept");
  if (emm_state_ != EmmState::kTauInitiated) {
    trace_local("state_ok", 0);
    trace_globals();
    return {};
  }
  if (msg.has("guti")) guti_ = msg.get_s("guti");
  set_state(EmmState::kRegistered);
  trace_globals();
  return {};
}

std::vector<NasPdu> UeNas::recv_tau_reject(const NasMessage& msg) {
  trace_enter_recv("tracking_area_update_reject");
  trace_local("cause", msg.get_s("cause", "congestion"));
  set_state(EmmState::kRegisteredAttemptingToUpdate);
  trace_globals();
  return {};
}

std::vector<NasPdu> UeNas::recv_service_reject(const NasMessage& msg) {
  trace_enter_recv("service_reject");
  trace_local("cause", msg.get_s("cause", "not_authorized"));
  sec_.clear();
  pending_kasme_.reset();
  last_dl_.reset();
  set_state(EmmState::kDeregistered);
  trace_globals();
  return {};
}

std::vector<NasPdu> UeNas::recv_paging(const NasMessage& msg) {
  trace_enter_recv("paging");
  const std::string paged_id = msg.get_s("identity");
  const bool match = paged_id == guti_ || paged_id == imsi_;
  trace_local("identity_match", match ? 1 : 0);
  if (match) {
    trace_local("paged_by", paged_id == imsi_ ? "imsi" : "guti");
  }
  if (!match || !is_registered(emm_state_)) {
    trace_globals();
    return {};
  }
  set_state(EmmState::kServiceRequestInitiated);
  NasMessage req(MsgType::kServiceRequest);
  req.set_s("identity", guti_);
  std::vector<NasPdu> out{send_message(req)};
  trace_globals();
  return out;
}

std::vector<NasPdu> UeNas::recv_authentication_reject(const NasMessage&) {
  trace_enter_recv("authentication_reject");
  sec_.clear();
  pending_kasme_.reset();
  last_dl_.reset();
  guti_ = "none";
  set_state(EmmState::kDeregistered);
  trace_globals();
  return {};
}

std::vector<NasPdu> UeNas::recv_configuration_update_command(const NasMessage& msg) {
  trace_enter_recv("configuration_update_command");
  if (msg.has("guti")) guti_ = msg.get_s("guti");
  NasMessage resp(MsgType::kConfigurationUpdateComplete);
  std::vector<NasPdu> out{send_message(resp)};
  trace_globals();
  return out;
}

std::vector<NasPdu> UeNas::recv_emm_information(const NasMessage&) {
  trace_enter_recv("emm_information");
  if (emm_state_ == EmmState::kServiceRequestInitiated) {
    // Service confirmation (stands in for bearer establishment).
    set_state(EmmState::kRegistered);
  }
  trace_globals();
  return {};
}

}  // namespace procheck::ue
