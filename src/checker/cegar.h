// The CEGAR-style verification loop of the paper (§III-E / §IV-B):
//
//   1. model check IMP^μ against the property;
//   2. if a counterexample is produced, submit every adversary-dependent
//      step (consumption of a replayed/fabricated message) to the
//      cryptographic protocol verifier;
//   3. if some step is infeasible, refine: ban that adversary action and
//      re-check (the "invariant added to the property" of §VI);
//   4. if all steps are feasible — and, for linkability properties, the
//      observational-equivalence query confirms distinguishability — report
//      the counterexample as a realizable attack.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "checker/property.h"
#include "cpv/lte_crypto.h"
#include "fsm/fsm.h"
#include "mc/checker.h"
#include "threat/compose.h"

namespace procheck::checker {

struct PropertyResult {
  /// kInconclusive: a search budget (state bound, wall-clock deadline, or
  /// the CEGAR iteration cap) stopped verification before a conclusion —
  /// explicitly NOT "verified"; `note` carries the exhausted budget.
  enum class Status { kVerified, kAttack, kNotApplicable, kInconclusive };
  Status status = Status::kVerified;
  std::string property_id;
  std::string attack_id;  // from the property definition

  std::optional<mc::CounterExample> counterexample;  // kAttack only
  /// CEGAR refinements applied: "banned <command-label>: <reason>".
  std::vector<std::string> refinements;
  /// Set for linkability properties (whether or not it confirmed).
  std::optional<cpv::EquivalenceVerdict> equivalence;

  int iterations = 0;       // MC runs (1 = no refinement needed)
  double total_seconds = 0; // cumulative MC time
  /// States explored summed across all MC iterations (throughput metric).
  std::size_t total_states = 0;
  /// Largest visited-set footprint any iteration reached (bytes).
  std::size_t peak_visited_bytes = 0;
  mc::CheckStats last_stats;
  std::string note;  // human-readable outcome detail
};

struct CegarOptions {
  /// Sized so every catalog property's reachable fragment is fully explored
  /// on every profile (srsue/S20 needs >400k states): at the default budget
  /// no search truncates, so kInconclusive only appears under explicitly
  /// tightened budgets.
  std::size_t max_states = 1'000'000;
  int max_iterations = 16;
  /// Total wall-clock budget (seconds) across all MC iterations of one
  /// property; 0 = unbounded. Each iteration gets the remaining slice.
  double max_seconds = 0.0;
  /// Approximate per-iteration memory ceiling over the MC's visited-state
  /// structures (bytes); 0 = unbounded. A trip yields kInconclusive with
  /// the ceiling named in the note (the supervisor's OOM containment).
  std::size_t max_visited_bytes = 0;
  /// Cooperative cancellation (polled in the MC hot loop and between CEGAR
  /// iterations); a cancelled run yields kInconclusive.
  const CancelToken* cancel = nullptr;
};

/// Runs the full MC ⇄ CPV loop for one property. `ue_fsm` is the extracted
/// machine used for observational-equivalence queries.
PropertyResult check_property(const threat::ThreatModel& tm, const fsm::Fsm& ue_fsm,
                              const PropertyDef& prop, const cpv::LteCryptoModel& crypto,
                              const CegarOptions& options = {});

}  // namespace procheck::checker
