#include "checker/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/journal.h"
#include "common/json.h"

namespace procheck::checker {

std::string_view to_string(FailureClass f) {
  switch (f) {
    case FailureClass::kNone:
      return "none";
    case FailureClass::kException:
      return "exception";
    case FailureClass::kDeadline:
      return "deadline";
    case FailureClass::kMemCeiling:
      return "mem-ceiling";
    case FailureClass::kBudget:
      return "budget";
    case FailureClass::kCancelled:
      return "cancelled";
  }
  return "?";
}

// Journal record codec: JSON via the shared minimal parser/encoder in
// common/json.h. The parser is strict — any malformation fails the whole
// record, which the resume path treats as "absent" (the property is simply
// re-verified).

namespace {

std::string_view status_token(PropertyResult::Status s) {
  switch (s) {
    case PropertyResult::Status::kVerified:
      return "verified";
    case PropertyResult::Status::kAttack:
      return "attack";
    case PropertyResult::Status::kNotApplicable:
      return "not_applicable";
    case PropertyResult::Status::kInconclusive:
      return "inconclusive";
  }
  return "?";
}

std::optional<PropertyResult::Status> status_from_token(std::string_view t) {
  if (t == "verified") return PropertyResult::Status::kVerified;
  if (t == "attack") return PropertyResult::Status::kAttack;
  if (t == "not_applicable") return PropertyResult::Status::kNotApplicable;
  if (t == "inconclusive") return PropertyResult::Status::kInconclusive;
  return std::nullopt;
}

std::optional<FailureClass> failure_from_token(std::string_view t) {
  for (FailureClass f : {FailureClass::kNone, FailureClass::kException, FailureClass::kDeadline,
                         FailureClass::kMemCeiling, FailureClass::kBudget,
                         FailureClass::kCancelled}) {
    if (t == to_string(f)) return f;
  }
  return std::nullopt;
}

// v2 adds "opts": the jobs-independent analysis-options fingerprint. A v1
// journal (no fingerprint) fails the version check and is discarded like any
// foreign journal — its verdicts may have been produced under different
// budgets, which is exactly what the fingerprint exists to rule out.
constexpr int kJournalVersion = 2;

std::string encode_header(const std::string& tag, const std::string& opts) {
  return std::string("{\"kind\":\"header\",\"v\":") + std::to_string(kJournalVersion) +
         ",\"tag\":" + json_quote(tag) + ",\"opts\":" + json_quote(opts) + "}";
}

struct Header {
  std::string tag;
  std::string opts;
};

/// Returns the header fields, or nullopt if the payload is not a valid
/// current-version header.
std::optional<Header> decode_header(std::string_view payload) {
  std::optional<Json> v = json_parse(payload);
  if (!v || !v->is(Json::Type::kObject)) return std::nullopt;
  if (v->get_str("kind") != "header") return std::nullopt;
  if (v->get_int("v") != kJournalVersion) return std::nullopt;
  return Header{v->get_str("tag"), v->get_str("opts")};
}

}  // namespace

std::string encode_outcome(const PropertyOutcome& outcome) {
  const PropertyResult& r = outcome.result;
  std::string out = "{\"kind\":\"outcome\"";
  out += ",\"id\":" + json_quote(r.property_id);
  out += ",\"attack\":" + json_quote(r.attack_id);
  out += ",\"status\":\"" + std::string(status_token(r.status)) + "\"";
  out += ",\"note\":" + json_quote(r.note);
  out += ",\"iters\":" + std::to_string(r.iterations);
  out += ",\"attempts\":" + std::to_string(outcome.attempts);
  out += ",\"failure\":\"" + std::string(to_string(outcome.failure)) + "\"";
  out += ",\"diag\":" + json_quote(outcome.diagnostics);
  out += ",\"refs\":" + json_quote_array(r.refinements);
  if (r.equivalence) {
    out += ",\"equiv\":{\"dist\":" + std::string(r.equivalence->distinguishable ? "true" : "false");
    out += ",\"victim\":" + json_quote(r.equivalence->victim_response);
    out += ",\"other\":" + json_quote(r.equivalence->other_response);
    out += ",\"reason\":" + json_quote(r.equivalence->reason) + "}";
  }
  if (r.counterexample) {
    out += ",\"cex\":{\"loop\":" + std::to_string(r.counterexample->loop_start);
    out += ",\"steps\":[";
    for (std::size_t i = 0; i < r.counterexample->steps.size(); ++i) {
      const mc::TraceStep& step = r.counterexample->steps[i];
      if (i > 0) out += ',';
      out += "{\"label\":" + json_quote(step.label);
      out += ",\"actor\":" + std::to_string(static_cast<int>(step.meta.actor));
      out += ",\"ckind\":" + std::to_string(static_cast<int>(step.meta.kind));
      out += ",\"msg\":" + json_quote(step.meta.message);
      out += ",\"prov\":" + std::to_string(step.meta.provenance);
      out += ",\"from\":" + json_quote(step.meta.from_state);
      out += ",\"to\":" + json_quote(step.meta.to_state);
      out += ",\"atoms\":" +
             json_quote_array({step.meta.atoms.begin(), step.meta.atoms.end()});
      out += ",\"acts\":" +
             json_quote_array({step.meta.actions.begin(), step.meta.actions.end()});
      out += ",\"post\":[";
      for (std::size_t k = 0; k < step.post.size(); ++k) {
        if (k > 0) out += ',';
        out += std::to_string(step.post[k]);
      }
      out += "]}";
    }
    out += "]}";
  }
  out += '}';
  return out;
}

std::optional<PropertyOutcome> decode_outcome(std::string_view json) {
  std::optional<Json> v = json_parse(json);
  if (!v || !v->is(Json::Type::kObject)) return std::nullopt;
  if (v->get_str("kind") != "outcome") return std::nullopt;

  PropertyOutcome out;
  PropertyResult& r = out.result;
  r.property_id = v->get_str("id");
  if (r.property_id.empty()) return std::nullopt;
  r.attack_id = v->get_str("attack");
  std::optional<PropertyResult::Status> status = status_from_token(v->get_str("status"));
  if (!status) return std::nullopt;
  r.status = *status;
  r.note = v->get_str("note");
  r.iterations = static_cast<int>(v->get_int("iters"));
  out.attempts = static_cast<int>(v->get_int("attempts", 1));
  std::optional<FailureClass> failure = failure_from_token(v->get_str("failure"));
  if (!failure) return std::nullopt;
  out.failure = *failure;
  out.diagnostics = v->get_str("diag");

  if (const Json* refs = v->find("refs")) {
    if (!refs->is(Json::Type::kArray)) return std::nullopt;
    for (const Json& item : refs->arr) {
      if (!item.is(Json::Type::kString)) return std::nullopt;
      r.refinements.push_back(item.s);
    }
  }
  if (const Json* equiv = v->find("equiv")) {
    if (!equiv->is(Json::Type::kObject)) return std::nullopt;
    cpv::EquivalenceVerdict eq;
    eq.distinguishable = equiv->get_bool("dist");
    eq.victim_response = equiv->get_str("victim");
    eq.other_response = equiv->get_str("other");
    eq.reason = equiv->get_str("reason");
    r.equivalence = std::move(eq);
  }
  if (const Json* cex = v->find("cex")) {
    if (!cex->is(Json::Type::kObject)) return std::nullopt;
    mc::CounterExample trace;
    trace.loop_start = static_cast<int>(cex->get_int("loop", -1));
    const Json* steps = cex->find("steps");
    if (!steps || !steps->is(Json::Type::kArray)) return std::nullopt;
    for (const Json& item : steps->arr) {
      if (!item.is(Json::Type::kObject)) return std::nullopt;
      mc::TraceStep step;
      step.label = item.get_str("label");
      step.meta.actor = static_cast<mc::CommandMeta::Actor>(item.get_int("actor"));
      step.meta.kind = static_cast<mc::CommandMeta::Kind>(item.get_int("ckind"));
      step.meta.message = item.get_str("msg");
      step.meta.provenance = static_cast<int>(item.get_int("prov"));
      step.meta.from_state = item.get_str("from");
      step.meta.to_state = item.get_str("to");
      if (const Json* atoms = item.find("atoms")) {
        for (const Json& a : atoms->arr) step.meta.atoms.insert(a.s);
      }
      if (const Json* acts = item.find("acts")) {
        for (const Json& a : acts->arr) step.meta.actions.insert(a.s);
      }
      if (const Json* post = item.find("post")) {
        for (const Json& p : post->arr) {
          if (!p.is(Json::Type::kInt)) return std::nullopt;
          step.post.push_back(static_cast<std::int32_t>(p.i));
        }
      }
      trace.steps.push_back(std::move(step));
    }
    r.counterexample = std::move(trace);
  }
  return out;
}

// --- The supervisor ---------------------------------------------------------

namespace {

/// min over the positive operands (0 = "unbounded" on either side).
double min_deadline(double a, double b) {
  if (a <= 0) return b;
  if (b <= 0) return a;
  return std::min(a, b);
}

std::size_t min_ceiling(std::size_t a, std::size_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  return std::min(a, b);
}

FailureClass classify(const PropertyResult& r) {
  if (r.status != PropertyResult::Status::kInconclusive) return FailureClass::kNone;
  const mc::CheckStats& s = r.last_stats;
  if (s.cancelled || r.note.find("cancelled") != std::string::npos) {
    return FailureClass::kCancelled;
  }
  if (s.mem_hit) return FailureClass::kMemCeiling;
  if (s.deadline_hit || r.note.find("wall-clock") != std::string::npos) {
    return FailureClass::kDeadline;
  }
  return FailureClass::kBudget;
}

PropertyOutcome exception_outcome(const PropertyDef& prop, int attempt,
                                  const std::string& what) {
  PropertyOutcome out;
  out.attempts = attempt;
  out.failure = FailureClass::kException;
  out.diagnostics = what;
  out.result.status = PropertyResult::Status::kInconclusive;
  out.result.property_id = prop.id;
  out.result.attack_id = prop.attack_id;
  out.result.note = "worker exception: " + what;
  return out;
}

PropertyOutcome cancelled_outcome(const PropertyDef& prop) {
  PropertyOutcome out;
  out.attempts = 0;
  out.failure = FailureClass::kCancelled;
  out.diagnostics = "run cancelled";
  out.result.status = PropertyResult::Status::kInconclusive;
  out.result.property_id = prop.id;
  out.result.attack_id = prop.attack_id;
  out.result.note = "cancelled before verification started";
  return out;
}

/// One property under the watchdog + retry/degrade ladder. Exceptions from
/// the MC/CEGAR loop (or the test fault hook) never escape.
PropertyOutcome run_one_property(const threat::ThreatModel& tm, const fsm::Fsm& ue_fsm,
                                 const PropertyDef& prop, const cpv::LteCryptoModel& crypto,
                                 const CegarOptions& base, const SupervisorOptions& options) {
  const int total_attempts = 1 + std::max(0, options.retries);
  std::size_t max_states = base.max_states;
  double deadline = min_deadline(base.max_seconds, options.deadline_per_property);
  const std::size_t ceiling = min_ceiling(base.max_visited_bytes, options.mem_ceiling_bytes);

  PropertyOutcome out;
  for (int attempt = 1; attempt <= total_attempts; ++attempt) {
    out.attempts = attempt;
    CegarOptions per_attempt = base;
    per_attempt.max_states = max_states;
    per_attempt.max_seconds = deadline;
    per_attempt.max_visited_bytes = ceiling;
    per_attempt.cancel = options.cancel;
    try {
      if (options.fault_hook) options.fault_hook(prop.id, attempt);
      out.result = check_property(tm, ue_fsm, prop, crypto, per_attempt);
      out.failure = classify(out.result);
      out.diagnostics = out.failure == FailureClass::kNone ? std::string() : out.result.note;
    } catch (const std::exception& e) {
      out = exception_outcome(prop, attempt, e.what());
    } catch (...) {
      out = exception_outcome(prop, attempt, "unknown exception type");
    }
    if (out.failure == FailureClass::kNone || out.failure == FailureClass::kCancelled) {
      return out;
    }
    if (attempt == total_attempts) break;
    // Degrade ladder: each retry after a *resource* trip gets a smaller
    // search so a property that OOMs or wedges converges to an explicit
    // kInconclusive instead of failing identically N times. A transient
    // exception keeps its full budget — the search size wasn't the problem.
    if (out.failure != FailureClass::kException) {
      max_states = std::max<std::size_t>(
          options.degrade_floor_states,
          static_cast<std::size_t>(static_cast<double>(max_states) * options.degrade_factor));
      if (deadline > 0) deadline = std::max(0.01, deadline * options.degrade_factor);
    }
    if (options.backoff_seconds > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          options.backoff_seconds * static_cast<double>(1 << (attempt - 1))));
    }
  }

  // Retries exhausted: the last attempt's result stands as a structured
  // kInconclusive with the failure class embedded (never a propagated error).
  out.result.status = PropertyResult::Status::kInconclusive;
  if (total_attempts > 1) {
    out.result.note += " [supervisor: " + std::string(to_string(out.failure)) +
                       " persisted through " + std::to_string(out.attempts) + " attempts]";
  }
  return out;
}

}  // namespace

SupervisedRun run_supervised(const threat::ThreatModel& tm, const fsm::Fsm& ue_fsm,
                             const std::vector<const PropertyDef*>& selected,
                             const cpv::LteCryptoModel::Options& crypto_options,
                             const CegarOptions& cegar, const SupervisorOptions& options) {
  SupervisedRun run;

  // --- Journal single-writer lock ------------------------------------------
  // Two concurrent runs against the same journal would interleave commits and
  // corrupt the resume state; the second one must fail fast and structured —
  // before any outcome slot exists (a refused run verifies nothing).
  JournalLock lock;
  if (!options.journal_path.empty() && !lock.acquire(options.journal_path)) {
    run.aborted = true;
    run.abort_reason = "concurrent analyze run: " + lock.error();
    return run;
  }

  run.outcomes.resize(selected.size());
  std::vector<char> done(selected.size(), 0);

  // --- Journal adoption (resume) -------------------------------------------
  std::map<std::string, PropertyOutcome> adopted;
  if (!options.journal_path.empty()) {
    if (options.resume) {
      JournalLoad load = load_journal(options.journal_path);
      bool header_ok = false;
      for (std::size_t k = 0; k < load.payloads.size(); ++k) {
        if (k == 0) {
          std::optional<Header> header = decode_header(load.payloads[k]);
          header_ok = header && (options.run_tag.empty() || header->tag == options.run_tag);
          if (!header_ok) break;
          if (!options.options_hash.empty() && header->opts != options.options_hash) {
            // The journal's verdicts were produced under different analysis
            // budgets/selection. Adopting them would mix incompatible runs;
            // discarding them would silently throw away work the user asked
            // to keep. Refuse, loudly.
            run.aborted = true;
            run.abort_reason = "resume refused: journal " + options.journal_path +
                               " was written with options hash " +
                               (header->opts.empty() ? std::string("<none>") : header->opts) +
                               " but this run has " + options.options_hash +
                               "; re-run with matching options or delete the journal";
            run.outcomes.clear();  // a refused run verifies nothing
            return run;
          }
          continue;
        }
        std::optional<PropertyOutcome> outcome = decode_outcome(load.payloads[k]);
        if (outcome) adopted[outcome->result.property_id] = std::move(*outcome);
      }
      if (!header_ok && !load.payloads.empty()) {
        // A journal from a different profile (or version) must never leak
        // verdicts into this run: discard it wholesale.
        run.journal_error = "journal header mismatch; re-verifying every property";
        adopted.clear();
        std::remove(options.journal_path.c_str());
      }
    } else {
      std::remove(options.journal_path.c_str());
    }
  }

  std::unique_ptr<JournalWriter> journal;
  std::mutex journal_mutex;
  if (!options.journal_path.empty()) {
    journal = std::make_unique<JournalWriter>(options.journal_path);
    if (journal->records() == 0) {
      journal->append(encode_header(options.run_tag, options.options_hash));
      if (!journal->commit()) {
        run.journal_error = "cannot write journal at " + options.journal_path +
                            "; continuing without durability";
        journal.reset();
      }
    }
  }

  std::vector<std::size_t> work;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    auto it = adopted.find(selected[i]->id);
    if (it != adopted.end()) {
      run.outcomes[i] = it->second;
      run.outcomes[i].resumed = true;
      done[i] = 1;
      ++run.resumed;
    } else {
      work.push_back(i);
    }
  }

  // Journal-first publication: an outcome is recorded durably before it is
  // considered done, so a crash between the two re-verifies (never loses)
  // at most the in-flight property. Cancelled outcomes are interruptions,
  // not verdicts — they are never journaled, so resume re-verifies them.
  auto record = [&](std::size_t i, PropertyOutcome outcome) {
    if (outcome.failure != FailureClass::kCancelled) {
      std::lock_guard<std::mutex> lock(journal_mutex);
      if (journal) {
        journal->append(encode_outcome(outcome));
        if (!journal->commit()) {
          run.journal_error =
              "journal write failed mid-run; continuing without durability";
          journal.reset();
        }
      }
    }
    run.outcomes[i] = std::move(outcome);
    done[i] = 1;
  };

  const std::size_t jobs = std::max<std::size_t>(1, options.jobs);
  if (jobs <= 1 || work.size() <= 1) {
    cpv::LteCryptoModel crypto(crypto_options);
    for (std::size_t i : work) {
      if (options.cancel && options.cancel->cancelled()) break;
      record(i, run_one_property(tm, ue_fsm, *selected[i], crypto, cegar, options));
    }
  } else {
    ThreadPool pool(std::min(jobs, work.size()));
    // Verifiers are reused across properties through a free-list (the
    // cpv::Knowledge saturation cache stays warm, as in the per-worker
    // claim-loop design this replaces) but never shared concurrently.
    std::mutex crypto_mutex;
    std::vector<std::unique_ptr<cpv::LteCryptoModel>> idle_verifiers;
    for (std::size_t i : work) {
      pool.submit([&, i] {
        // Catch-all even outside run_one_property: a throwing task would
        // reach std::terminate through the pool, taking down the whole run.
        try {
          if (options.cancel && options.cancel->cancelled()) {
            // Shed everything not yet started; this property (already
            // started) is reported as cancelled below.
            pool.cancel_pending();
            return;
          }
          std::unique_ptr<cpv::LteCryptoModel> crypto;
          {
            std::lock_guard<std::mutex> lock(crypto_mutex);
            if (!idle_verifiers.empty()) {
              crypto = std::move(idle_verifiers.back());
              idle_verifiers.pop_back();
            }
          }
          if (!crypto) crypto = std::make_unique<cpv::LteCryptoModel>(crypto_options);
          PropertyOutcome outcome =
              run_one_property(tm, ue_fsm, *selected[i], *crypto, cegar, options);
          {
            std::lock_guard<std::mutex> lock(crypto_mutex);
            idle_verifiers.push_back(std::move(crypto));
          }
          record(i, std::move(outcome));
        } catch (const std::exception& e) {
          record(i, exception_outcome(*selected[i], 1, e.what()));
        } catch (...) {
          record(i, exception_outcome(*selected[i], 1, "unknown exception type"));
        }
      });
    }
    pool.wait();
  }

  // Properties never started (cancelled run / shed tasks) still get a
  // structured outcome — the report has one row per selected property.
  for (std::size_t i = 0; i < selected.size(); ++i) {
    if (!done[i]) run.outcomes[i] = cancelled_outcome(*selected[i]);
  }
  for (const PropertyOutcome& outcome : run.outcomes) {
    if (outcome.failure == FailureClass::kCancelled) ++run.cancelled;
  }
  if (journal) {
    // Exclude the header line from the record count.
    run.journal_records = journal->records() > 0 ? journal->records() - 1 : 0;
  }
  return run;
}

}  // namespace procheck::checker
