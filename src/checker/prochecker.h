// ProChecker facade — the end-to-end pipeline of the paper's Fig. 2:
//
//   conformance suite + instrumented stack → information-rich log
//     → model extractor → UE FSM (Pro^μ)
//     → adversarial model instrumentor (⊗ MME^μ, ⊗ Dolev–Yao) → IMP^μ
//     → MC ⇄ CPV CEGAR loop over the 62-property catalog
//     → per-implementation findings (the rows of Table I).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "checker/cegar.h"
#include "checker/property.h"
#include "extractor/extractor.h"
#include "fsm/fsm.h"
#include "testing/conformance.h"
#include "threat/compose.h"
#include "ue/profile.h"

namespace procheck::checker {

struct AnalysisOptions {
  /// Explicit-state budget per MC run (see CegarOptions::max_states: large
  /// enough that no default-budget search truncates on any profile).
  std::size_t max_states = 1'000'000;
  int max_cegar_iterations = 16;
  /// Wall-clock budget (seconds) per property across its CEGAR iterations;
  /// 0 = unbounded. Exhaustion yields Status::kInconclusive, never blowup.
  double max_seconds_per_property = 0.0;
  /// Restrict to properties whose id is in this set (empty = all 62).
  std::set<std::string> only_properties;
  /// Worker threads for the per-property CEGAR fan-out: 0 = one per
  /// hardware thread, 1 = sequential. The report is byte-identical at any
  /// value — results land in catalog order and each worker owns its own
  /// cryptographic verifier (see DESIGN.md §10).
  int jobs = 0;
};

struct ImplementationReport {
  std::string profile_name;
  testing::ConformanceReport conformance;

  std::size_t log_records = 0;
  double extraction_seconds = 0;

  fsm::Fsm extracted;       // substate-aware machine (RQ2 / visualization)
  fsm::Fsm checking_model;  // flat machine with predicate conditions (MC input)

  std::vector<PropertyResult> results;
  /// Table I rows detected: attack ids of violated properties.
  std::set<std::string> attacks_found;

  int verified_count() const;
  int attack_count() const;
  int not_applicable_count() const;
  int inconclusive_count() const;
};

class ProChecker {
 public:
  /// Runs the complete pipeline against one stack profile. The USIM
  /// freshness-limit mitigation is taken from the profile (ablation knob).
  static ImplementationReport analyze(const ue::StackProfile& profile,
                                      const AnalysisOptions& options = {});

  /// The threat model for a given UE machine (exposed for benches/tests);
  /// the MME side is always the manual LTEInspector-style model, as in the
  /// paper.
  static threat::ThreatModel build_threat_model(const fsm::Fsm& ue_fsm);
};

}  // namespace procheck::checker
