// ProChecker facade — the end-to-end pipeline of the paper's Fig. 2:
//
//   conformance suite + instrumented stack → information-rich log
//     → model extractor → UE FSM (Pro^μ)
//     → adversarial model instrumentor (⊗ MME^μ, ⊗ Dolev–Yao) → IMP^μ
//     → MC ⇄ CPV CEGAR loop over the 62-property catalog
//     → per-implementation findings (the rows of Table I).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "checker/cegar.h"
#include "checker/property.h"
#include "checker/supervisor.h"
#include "extractor/extractor.h"
#include "fsm/fsm.h"
#include "testing/conformance.h"
#include "threat/compose.h"
#include "ue/profile.h"

namespace procheck::checker {

struct AnalysisOptions {
  /// Explicit-state budget per MC run (see CegarOptions::max_states: large
  /// enough that no default-budget search truncates on any profile).
  std::size_t max_states = 1'000'000;
  int max_cegar_iterations = 16;
  /// Wall-clock budget (seconds) per property across its CEGAR iterations;
  /// 0 = unbounded. Exhaustion yields Status::kInconclusive, never blowup.
  double max_seconds_per_property = 0.0;
  /// Restrict to properties whose id is in this set (empty = all 62).
  std::set<std::string> only_properties;
  /// Worker threads for the per-property CEGAR fan-out: 0 = one per
  /// hardware thread, 1 = sequential. The report is byte-identical at any
  /// value — results land in catalog order and each worker owns its own
  /// cryptographic verifier (see DESIGN.md §10).
  int jobs = 0;

  // --- Supervisor knobs (DESIGN.md §11) ------------------------------------
  /// Extra attempts for properties that throw or trip a budget; each retry
  /// runs degraded (smaller state/deadline budgets). 0 = fail fast to a
  /// structured kInconclusive (exceptions are still contained).
  int retries = 0;
  /// Base of the exponential retry backoff, seconds (see SupervisorOptions).
  double retry_backoff_seconds = 0.05;
  /// Per-attempt watchdog wall-clock deadline (seconds); 0 = none. Distinct
  /// from max_seconds_per_property (the CEGAR budget): the effective
  /// per-attempt deadline is the min of the two positives.
  double deadline_per_property = 0.0;
  /// Approximate per-property memory ceiling over the MC's visited-state
  /// structures (bytes, cooperatively polled); 0 = none.
  std::size_t mem_ceiling_bytes = 0;
  /// Crash-safe run journal path; "" disables journaling.
  std::string journal_path;
  /// Adopt completed outcomes from journal_path (skip re-verification).
  bool resume = false;
  /// Cooperative run-level cancellation (properties not yet started are
  /// shed and reported as cancelled outcomes).
  const CancelToken* cancel = nullptr;
  /// Test hook forwarded to the supervisor: called at the start of every
  /// attempt; a throw simulates a worker crash.
  std::function<void(const std::string& property_id, int attempt)> fault_hook;
};

/// Fingerprint (16 hex digits) of the verdict-shaping slice of the analysis
/// configuration: budgets, property selection, retries, and the profile's
/// freshness-limit mitigation — everything that can change a journaled
/// verdict. Deliberately excludes `jobs` (reports are byte-identical at any
/// parallelism) and the journal/resume/cancel plumbing. Recorded in the run
/// journal header; --resume refuses a mismatch.
std::string analysis_options_hash(const AnalysisOptions& options,
                                  const ue::StackProfile& profile);

struct ImplementationReport {
  std::string profile_name;
  testing::ConformanceReport conformance;

  std::size_t log_records = 0;
  double extraction_seconds = 0;

  fsm::Fsm extracted;       // substate-aware machine (RQ2 / visualization)
  fsm::Fsm checking_model;  // flat machine with predicate conditions (MC input)

  std::vector<PropertyResult> results;
  /// Table I rows detected: attack ids of violated properties.
  std::set<std::string> attacks_found;

  /// Supervisor outcome per property (parallel to `results`): attempt
  /// counts, failure classes, resume provenance.
  std::vector<PropertyOutcome> outcomes;
  std::size_t resumed_count = 0;    // outcomes adopted from the run journal
  std::size_t cancelled_count = 0;  // properties interrupted by cancellation
  /// Non-empty when the run journal could not be written (analysis continued).
  std::string journal_error;
  /// The run refused to start (journal held by a live concurrent run, or
  /// --resume against an options-incompatible journal). `results` is empty
  /// and `abort_reason` carries the structured diagnostic.
  bool aborted = false;
  std::string abort_reason;

  int verified_count() const;
  int attack_count() const;
  int not_applicable_count() const;
  int inconclusive_count() const;
  /// Properties whose failure was contained (exception/deadline/mem/budget
  /// — everything except clean verdicts and cancellations).
  int contained_count() const;
};

class ProChecker {
 public:
  /// Runs the complete pipeline against one stack profile. The USIM
  /// freshness-limit mitigation is taken from the profile (ablation knob).
  static ImplementationReport analyze(const ue::StackProfile& profile,
                                      const AnalysisOptions& options = {});

  /// The threat model for a given UE machine (exposed for benches/tests);
  /// the MME side is always the manual LTEInspector-style model, as in the
  /// paper.
  static threat::ThreatModel build_threat_model(const fsm::Fsm& ue_fsm);
};

}  // namespace procheck::checker
