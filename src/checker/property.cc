#include "checker/property.h"

#include <algorithm>

namespace procheck::checker {

using mc::CommandMeta;
using Actor = mc::CommandMeta::Actor;
using Kind = mc::CommandMeta::Kind;

const std::vector<std::string>& registered_family() {
  static const std::vector<std::string> kFamily = {
      "EMM_REGISTERED", "EMM_REGISTERED_NORMAL_SERVICE",
      "EMM_REGISTERED_ATTEMPTING_TO_UPDATE"};
  return kFamily;
}

bool MetaMatch::matches_meta(const CommandMeta& m) const {
  if (actor && m.actor != *actor) return false;
  if (kind && m.kind != *kind) return false;
  if (!message.empty() && m.message != message) return false;
  for (const std::string& a : atoms_all) {
    if (!m.has_atom(a)) return false;
  }
  for (const std::string& a : atoms_none) {
    if (m.has_atom(a)) return false;
  }
  if (!actions_any.empty()) {
    bool any = false;
    for (const std::string& a : actions_any) any = any || m.has_action(a);
    if (!any) return false;
  }
  for (const std::string& a : actions_none) {
    if (m.has_action(a)) return false;
  }
  if (!provenance_any.empty() &&
      std::find(provenance_any.begin(), provenance_any.end(), m.provenance) ==
          provenance_any.end()) {
    return false;
  }
  if (!from_states.empty() &&
      std::find(from_states.begin(), from_states.end(), m.from_state) == from_states.end()) {
    return false;
  }
  if (!to_states.empty() &&
      std::find(to_states.begin(), to_states.end(), m.to_state) == to_states.end()) {
    return false;
  }
  if (action_nonnull) {
    bool has_real = false;
    for (const std::string& a : m.actions) has_real = has_real || a != "null_action";
    if (has_real != *action_nonnull) return false;
  }
  if (state_changed && (m.from_state != m.to_state) != *state_changed) return false;
  return true;
}

mc::EdgePred MetaMatch::compile(const threat::ThreatModel& tm) const {
  // Resolve pre-state constraints once against the model.
  std::vector<std::pair<int, std::int32_t>> pre;
  for (const auto& [var_name, value_name] : pre_equals) {
    int var = tm.model.var(var_name);
    std::int32_t value = var >= 0 ? tm.model.value_index(var, value_name) : -1;
    pre.emplace_back(var, value);
  }
  // The metadata half of the match depends only on the command, never on
  // the states, so it is decided once per command here rather than once per
  // explored edge (the checker visits each command millions of times).
  auto meta_ok = std::make_shared<std::vector<std::uint8_t>>();
  meta_ok->reserve(tm.model.commands().size());
  for (const mc::Command& cmd : tm.model.commands()) {
    meta_ok->push_back(matches_meta(cmd.meta) ? 1 : 0);
  }
  MetaMatch self = *this;
  return [self = std::move(self), pre, meta_ok](const mc::State& before,
                                                const mc::Command& cmd, const mc::State&) {
    if (cmd.index >= 0 && static_cast<std::size_t>(cmd.index) < meta_ok->size()) {
      if (!(*meta_ok)[cmd.index]) return false;
    } else if (!self.matches_meta(cmd.meta)) {  // command outside the compiled model
      return false;
    }
    for (const auto& [var, value] : pre) {
      if (var < 0 || value < 0 || before[var] != value) return false;
    }
    return true;
  };
}

namespace {

MetaMatch ue_deliver(std::string msg, std::vector<std::int32_t> prov = {},
                     std::vector<std::string> atoms = {},
                     std::vector<std::string> actions = {}) {
  MetaMatch m;
  m.actor = Actor::kUe;
  m.kind = Kind::kDeliver;
  m.message = std::move(msg);
  m.provenance_any = std::move(prov);
  m.atoms_all = std::move(atoms);
  m.actions_any = std::move(actions);
  return m;
}

MetaMatch mme_deliver(std::string msg, std::vector<std::int32_t> prov = {},
                      std::vector<std::string> atoms = {},
                      std::vector<std::string> actions = {}) {
  MetaMatch m = ue_deliver(std::move(msg), std::move(prov), std::move(atoms),
                           std::move(actions));
  m.actor = Actor::kMme;
  return m;
}

MetaMatch actor_sends(Actor actor, std::string action) {
  MetaMatch m;
  m.actor = actor;
  m.actions_any = {std::move(action)};
  return m;
}

PropertyDef edge_never(std::string id, std::string description, PropertyDef::Type type,
                       MetaMatch bad, std::string attack_id = "") {
  PropertyDef p;
  p.id = std::move(id);
  p.description = std::move(description);
  p.type = type;
  p.kind = PropertyDef::Kind::kEdgeNever;
  p.bad = std::move(bad);
  p.attack_id = std::move(attack_id);
  return p;
}

PropertyDef response(std::string id, std::string description, PropertyDef::Type type,
                     MetaMatch trigger, MetaMatch resp, std::string attack_id = "") {
  PropertyDef p;
  p.id = std::move(id);
  p.description = std::move(description);
  p.type = type;
  p.kind = PropertyDef::Kind::kResponse;
  p.trigger = std::move(trigger);
  p.response = std::move(resp);
  p.attack_id = std::move(attack_id);
  return p;
}

constexpr auto kSec = PropertyDef::Type::kSecurity;
constexpr auto kPriv = PropertyDef::Type::kPrivacy;
constexpr std::int32_t kRep = mc::kProvReplayed;
constexpr std::int32_t kFab = mc::kProvFabricated;

std::vector<PropertyDef> build_catalog() {
  std::vector<PropertyDef> c;

  // ===== Security properties S01–S37 =====================================

  // S01 [P1] — the paper's flagship: "If the UE is in the registered
  // initiated state, it will get authenticated with an authentication SQN
  // greater than the previously accepted SQN."
  c.push_back(edge_never(
      "S01", "UE never authenticates against a replayed (stale-SQN) authentication_request",
      kSec,
      [] {
        MetaMatch m = ue_deliver("authentication_request", {kRep}, {"sqn_ok=1"});
        m.atoms_none = {"counter_reset=1"};
        return m;
      }(),
      "P1"));

  // S02–S04 [P3] — timer-supervised common procedures must complete.
  c.push_back(response("S02", "An initiated GUTI reallocation eventually completes", kSec,
                       actor_sends(Actor::kMme, "guti_reallocation_command"),
                       mme_deliver("guti_reallocation_complete"), "P3"));
  c.push_back(response("S03",
                       "An initiated configuration update eventually completes (5G-style)",
                       kSec, actor_sends(Actor::kMme, "configuration_update_command"),
                       mme_deliver("configuration_update_complete"), "P3"));
  {
    PropertyDef p = response("S04", "An initiated security mode procedure eventually completes",
                             kSec, actor_sends(Actor::kMme, "security_mode_command"),
                             mme_deliver("security_mode_complete"), "P3");
    p.common_with_lteinspector = true;
    c.push_back(std::move(p));
  }

  // S05–S08 [I1–I4] — implementation-issue detectors.
  c.push_back(edge_never("S05",
                         "UE never processes a protected message with a stale NAS COUNT",
                         kSec, ue_deliver("", {}, {"replay_accepted=1"}), "I1"));
  c.push_back(edge_never("S06",
                         "UE never processes plain messages after the security context",
                         kSec, ue_deliver("", {}, {"plain_accepted_after_ctx=1"}), "I2"));
  c.push_back(edge_never("S07", "UE never resets the counter by re-accepting an equal SQN",
                         kSec, ue_deliver("authentication_request", {}, {"counter_reset=1"}),
                         "I3"));
  c.push_back(edge_never(
      "S08", "UE reaches the registered state only after completing security mode control",
      kSec,
      [] {
        MetaMatch m = ue_deliver("attach_accept");
        m.to_states = registered_family();
        m.pre_equals = {{"flag_smc", "0"}};
        return m;
      }(),
      "I4"));

  // S09–S19 — prior attacks (standards-level).
  {
    PropertyDef p = edge_never(
        "S09", "MME initiates authentication only for a UE-originated attach", kSec,
        mme_deliver("attach_request", {kFab, kRep}, {}, {"authentication_request"}), "PR01");
    p.common_with_lteinspector = true;
    c.push_back(std::move(p));
  }
  {
    PropertyDef p =
        edge_never("S10", "MME detaches a UE only on an authentic detach_request", kSec,
                   mme_deliver("detach_request", {kFab}), "PR02");
    p.common_with_lteinspector = true;
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = edge_never("S11", "UE acts only on paging from the serving network",
                               kSec, ue_deliver("paging", {kFab}), "PR03");
    p.common_with_lteinspector = true;
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = edge_never(
        "S12", "Attach requests cannot be relayed to authenticate a remote victim", kSec,
        mme_deliver("attach_request", {kRep}), "PR07");
    p.common_with_lteinspector = true;
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = edge_never("S13", "UE deregisters only on an authentic service_reject",
                               kSec, ue_deliver("service_reject", {kFab}), "PR08");
    p.common_with_lteinspector = true;
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = edge_never("S14", "UE deregisters only on an authentic attach_reject",
                               kSec, ue_deliver("attach_reject", {kFab}), "PR10");
    p.common_with_lteinspector = true;
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = edge_never(
        "S15", "UE detaches only on an integrity-protected detach_request", kSec,
        ue_deliver("detach_request", {kFab}, {"sec_hdr=plain_nas"}), "PR12");
    p.common_with_lteinspector = true;
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = edge_never("S16", "UE abandons TAU only on an authentic reject", kSec,
                               ue_deliver("tracking_area_update_reject", {kFab}), "PR13");
    p.common_with_lteinspector = true;
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = edge_never(
        "S17", "tracking_area_update_reject cannot downgrade the RAT", kSec,
        ue_deliver("tracking_area_update_reject", {kFab}, {"cause=rat_downgrade"}), "PR09");
    p.requires_atoms = {"cause=rat_downgrade"};
    c.push_back(std::move(p));
  }
  c.push_back(edge_never("S18", "Fabricated paging cannot hijack the service response", kSec,
                         ue_deliver("paging", {kFab}, {}, {"service_request"}), "PR11"));
  c.push_back(edge_never("S19", "UE deregisters only on an authentic authentication_reject",
                         kSec, ue_deliver("authentication_reject", {kFab}), "PR10"));

  // S20–S33 — integrity/authenticity invariants expected to verify.
  c.push_back(edge_never("S20", "UE never accepts a fabricated attach_accept", kSec,
                         ue_deliver("attach_accept", {kFab})));
  c.push_back(edge_never("S21", "UE never accepts a fabricated security_mode_command", kSec,
                         ue_deliver("security_mode_command", {kFab}, {"mac_valid=1"})));
  c.push_back(edge_never(
      "S22", "UE never accepts a fabricated protected guti_reallocation_command", kSec,
      ue_deliver("guti_reallocation_command", {kFab},
                 {"sec_hdr=integrity_protected_ciphered"})));
  c.push_back(edge_never("S23", "MME never accepts a fabricated security_mode_complete",
                         kSec, mme_deliver("security_mode_complete", {kFab})));
  c.push_back(edge_never("S24", "MME never accepts a fabricated RES", kSec,
                         mme_deliver("authentication_response", {kFab}, {"res_valid=1"})));
  c.push_back(edge_never(
      "S25", "UE never completes security mode control without authentication", kSec,
      [] {
        MetaMatch m = ue_deliver("security_mode_command", {}, {}, {"security_mode_complete"});
        m.atoms_none = {"smc_replay=1"};
        m.pre_equals = {{"flag_auth", "0"}};
        return m;
      }()));
  c.push_back(edge_never("S26", "UE never completes SMC with an invalid MAC", kSec,
                         ue_deliver("security_mode_command", {}, {"mac_valid=0"},
                                    {"security_mode_complete"})));
  c.push_back(edge_never("S27", "UE never answers a challenge that failed the SQN check",
                         kSec,
                         ue_deliver("authentication_request", {}, {"sqn_ok=0"},
                                    {"authentication_response"})));
  c.push_back(edge_never("S28", "Undecodable PDUs elicit no response", kSec, [] {
    MetaMatch m = ue_deliver("undecodable_pdu");
    m.action_nonnull = true;
    return m;
  }()));
  c.push_back(edge_never("S29", "Undecodable PDUs cause no state change", kSec, [] {
    MetaMatch m = ue_deliver("undecodable_pdu");
    m.state_changed = true;
    return m;
  }()));
  c.push_back(edge_never("S30", "Messages failing the COUNT check elicit no response", kSec,
                         [] {
                           MetaMatch m = ue_deliver("", {}, {"count_ok=0"});
                           m.action_nonnull = true;
                           return m;
                         }()));
  c.push_back(edge_never("S31", "MME fast re-attach requires verified integrity", kSec, [] {
    MetaMatch m = mme_deliver("attach_request", {}, {"integrity_ok=1"}, {"attach_accept"});
    m.pre_equals = {{"chan_ul_protected", "0"}};
    return m;
  }()));
  c.push_back(edge_never("S32", "Service requests are sent only when service is possible",
                         kSec, [] {
                           MetaMatch m;
                           m.actor = Actor::kUe;
                           m.kind = Kind::kInternal;
                           m.message = "service_request_trigger";
                           m.atoms_all = {"service_possible=0"};
                           m.action_nonnull = true;
                           return m;
                         }()));
  c.push_back(edge_never("S33", "UE never starts an attach while registered", kSec, [] {
    MetaMatch m;
    m.actor = Actor::kUe;
    m.kind = Kind::kInternal;
    m.message = "power_on_trigger";
    m.from_states = registered_family();
    return m;
  }()));

  // S34–S37 — procedure-completion liveness (selective-denial family) and a
  // network-side replay invariant.
  {
    PropertyDef p = response("S34", "A UE-initiated detach eventually completes", kSec,
                             actor_sends(Actor::kUe, "detach_request"),
                             ue_deliver("detach_accept"), "P3");
    p.common_with_lteinspector = true;
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = response("S35", "An initiated tracking area update eventually completes",
                             kSec, actor_sends(Actor::kUe, "tracking_area_update_request"),
                             ue_deliver("tracking_area_update_accept"), "P3");
    p.common_with_lteinspector = true;
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = response("S36", "A paged UE eventually obtains service", kSec,
                             actor_sends(Actor::kMme, "paging"),
                             mme_deliver("service_request"), "P3");
    p.common_with_lteinspector = true;
    c.push_back(std::move(p));
  }
  c.push_back(edge_never("S37", "MME never processes a stale-COUNT uplink message", kSec,
                         mme_deliver("", {}, {"replay_accepted=1"})));

  // ===== Privacy properties P01–P25 ======================================

  {
    PropertyDef p = edge_never(
        "P01", "Responses to a replayed authentication_request are not linkable", kPriv,
        ue_deliver("authentication_request", {kRep}, {"sqn_ok=1"},
                   {"authentication_response"}),
        "P2");
    p.equivalence_message = "authentication_request";
    p.equivalence_victim_atoms = {"sqn_ok=1"};
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = edge_never(
        "P02", "IMSI is never disclosed to a plain identity_request after registration",
        kPriv,
        [] {
          MetaMatch m = ue_deliver("identity_request", {}, {"sec_hdr=plain_nas"},
                                   {"identity_response"});
          m.from_states = registered_family();
          return m;
        }(),
        "I5");
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = edge_never(
        "P03", "Responses to a replayed security_mode_command are not linkable", kPriv,
        ue_deliver("security_mode_command", {}, {"smc_replay=1"},
                   {"security_mode_complete"}),
        "I6");
    p.equivalence_message = "security_mode_command";
    p.equivalence_victim_atoms = {"smc_replay=1"};
    c.push_back(std::move(p));
  }
  {
    PropertyDef p =
        edge_never("P04", "TMSI reallocation responses are not linkable", kPriv,
                   ue_deliver("tmsi_reallocation_command"), "PR04");
    p.requires_atoms = {"tmsi_reallocation_command"};
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = edge_never(
        "P05", "Paging responses do not reveal IMSI-to-GUTI mappings", kPriv,
        ue_deliver("paging", {kFab, kRep}, {"identity_match=1"}, {"service_request"}),
        "PR05");
    p.equivalence_message = "paging";
    p.equivalence_victim_atoms = {"identity_match=1"};
    p.common_with_lteinspector = true;
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = edge_never(
        "P06", "Authentication failure causes are not linkable", kPriv,
        ue_deliver("authentication_request", {kRep}, {"sqn_ok=0"}), "PR06");
    p.equivalence_message = "authentication_request";
    p.equivalence_victim_atoms = {"sqn_ok=0"};
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = response(
        "P07", "An assigned GUTI is eventually reallocated (anti-tracking)", kPriv,
        ue_deliver("attach_accept", {}, {"guti_assigned=1"}),
        ue_deliver("guti_reallocation_command"), "PR14");
    p.common_with_lteinspector = true;
    c.push_back(std::move(p));
  }
  c.push_back(edge_never("P08", "IMSI is never disclosed while deregistered", kPriv, [] {
    MetaMatch m = ue_deliver("identity_request", {}, {}, {"identity_response"});
    m.from_states = {"EMM_DEREGISTERED", "EMM_DEREGISTERED_ATTACH_NEEDED",
                     "EMM_DEREGISTERED_LIMITED_SERVICE"};
    return m;
  }()));
  c.push_back(edge_never("P09", "Paging for a foreign identity elicits no response", kPriv,
                         [] {
                           MetaMatch m = ue_deliver("paging", {}, {"identity_match=0"});
                           m.action_nonnull = true;
                           return m;
                         }()));
  {
    PropertyDef p = edge_never("P10", "GUTI reallocation replays are not linkable", kPriv,
                               [] {
                                 MetaMatch m = ue_deliver("guti_reallocation_command", {kRep});
                                 m.action_nonnull = true;
                                 return m;
                               }());
    p.equivalence_message = "guti_reallocation_command";
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = edge_never(
        "P11", "attach_accept replays are not linkable", kPriv,
        ue_deliver("attach_accept", {kRep}, {"replay_accepted=1"}), "I1");
    p.equivalence_message = "attach_accept";
    p.equivalence_victim_atoms = {"replay_accepted=1"};
    c.push_back(std::move(p));
  }
  c.push_back(edge_never("P12", "emm_information replays are not linkable", kPriv, [] {
    MetaMatch m = ue_deliver("emm_information", {kRep, kFab});
    m.action_nonnull = true;
    return m;
  }()));
  c.push_back(edge_never("P13", "tracking_area_update_accept replays are not linkable",
                         kPriv, [] {
                           MetaMatch m = ue_deliver("tracking_area_update_accept", {kRep, kFab});
                           m.action_nonnull = true;
                           return m;
                         }()));
  c.push_back(edge_never("P14", "detach_accept injection is not observable", kPriv, [] {
    MetaMatch m = ue_deliver("detach_accept", {kRep, kFab});
    m.action_nonnull = true;
    return m;
  }()));
  c.push_back(edge_never("P15", "Refused identity downgrades produce no response", kPriv,
                         [] {
                           MetaMatch m = ue_deliver("identity_request", {},
                                                    {"plain_downgrade_refused=1"});
                           m.action_nonnull = true;
                           return m;
                         }()));
  c.push_back(edge_never("P16", "configuration_update_command replays are not linkable",
                         kPriv, [] {
                           MetaMatch m = ue_deliver("configuration_update_command", {kRep});
                           m.action_nonnull = true;
                           return m;
                         }()));
  {
    PropertyDef p = edge_never("P17", "attach_reject handling is observationally uniform",
                               kPriv, [] {
                                 MetaMatch m = ue_deliver("attach_reject", {kFab});
                                 m.action_nonnull = true;
                                 return m;
                               }());
    p.equivalence_message = "attach_reject";
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = edge_never("P18", "service_reject handling is observationally uniform",
                               kPriv, [] {
                                 MetaMatch m = ue_deliver("service_reject", {kFab});
                                 m.action_nonnull = true;
                                 return m;
                               }());
    p.equivalence_message = "service_reject";
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = edge_never("P19", "tau_reject handling is observationally uniform",
                               kPriv, [] {
                                 MetaMatch m = ue_deliver("tracking_area_update_reject", {kFab});
                                 m.action_nonnull = true;
                                 return m;
                               }());
    p.equivalence_message = "tracking_area_update_reject";
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = edge_never("P20", "authentication_reject handling is uniform", kPriv,
                               [] {
                                 MetaMatch m = ue_deliver("authentication_reject", {kFab});
                                 m.action_nonnull = true;
                                 return m;
                               }());
    p.equivalence_message = "authentication_reject";
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = edge_never(
        "P21", "security_mode_reject responses are observationally uniform", kPriv,
        ue_deliver("security_mode_command", {kFab}, {"mac_valid=0"},
                   {"security_mode_reject"}));
    p.equivalence_message = "security_mode_command";
    p.equivalence_victim_atoms = {"mac_valid=0"};
    c.push_back(std::move(p));
  }
  {
    PropertyDef p = edge_never("P22", "detach_request handling is observationally uniform",
                               kPriv, [] {
                                 MetaMatch m = ue_deliver("detach_request", {kFab});
                                 m.action_nonnull = true;
                                 return m;
                               }());
    p.equivalence_message = "detach_request";
    c.push_back(std::move(p));
  }
  c.push_back(edge_never("P23", "The network never pages by IMSI once a GUTI is assigned",
                         kPriv, [] {
                           MetaMatch m = ue_deliver("paging", {}, {"paged_by=imsi"});
                           m.from_states = registered_family();
                           return m;
                         }()));
  {
    PropertyDef p = edge_never(
        "P24", "GUTI is never rewritten by an unprotected command", kPriv,
        ue_deliver("guti_reallocation_command", {}, {"sec_hdr=plain_nas", "guti_updated=1"}),
        "I2");
    c.push_back(std::move(p));
  }
  c.push_back(edge_never("P25", "service_request replays are not accepted by the MME", kPriv,
                         mme_deliver("service_request", {kRep})));

  return c;
}

}  // namespace

const std::vector<PropertyDef>& property_catalog() {
  static const std::vector<PropertyDef> kCatalog = build_catalog();
  return kCatalog;
}

std::vector<const PropertyDef*> common_properties() {
  std::vector<const PropertyDef*> out;
  for (const PropertyDef& p : property_catalog()) {
    if (p.common_with_lteinspector) out.push_back(&p);
  }
  return out;
}

}  // namespace procheck::checker
