// Report rendering: turns an ImplementationReport (and cross-implementation
// comparisons) into human-readable text/markdown — what a vendor integrating
// ProChecker into functional testing would read, and what the audit example
// and the CLI print.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "checker/prochecker.h"
#include "threat/compose.h"

namespace procheck::checker {

struct ReportOptions {
  bool include_traces = false;       // append counterexample traces
  bool include_verified = false;     // list verified properties too
  bool include_conformance = true;   // conformance pass/fail section
};

/// One-implementation report (markdown).
std::string render_report(const ImplementationReport& report,
                          const ReportOptions& options = ReportOptions());

/// The canonical verdict block (what `prochecker analyze` prints): one line
/// per property, the summary line, and the contained-failure roster. Built
/// only from the deterministic slice of the report — verdicts, notes, and
/// containment metadata, never timings or resume provenance — so the output
/// is byte-identical across jobs levels and across interrupt/resume cycles
/// (the journal round-trips every field this function reads).
std::string render_verdicts(const ImplementationReport& report);

/// Cross-implementation findings matrix (markdown table): one row per
/// property where at least one implementation is non-verified.
std::string render_findings_matrix(const std::vector<const ImplementationReport*>& reports);

/// Short status word for a verdict.
std::string to_string(PropertyResult::Status status);

}  // namespace procheck::checker
