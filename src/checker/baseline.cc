#include "checker/baseline.h"

namespace procheck::checker {

namespace {

fsm::Transition make(std::string from, std::string to, std::set<fsm::Atom> cond,
                     std::set<fsm::Atom> act) {
  fsm::Transition t;
  t.from = std::move(from);
  t.to = std::move(to);
  t.conditions = std::move(cond);
  t.actions = std::move(act);
  return t;
}

}  // namespace

fsm::Fsm lteinspector_ue_model() {
  fsm::Fsm m;
  m.set_initial("ue_deregistered");

  m.add_transition(make("ue_deregistered", "ue_registered_initiated", {"power_on_trigger"},
                        {"attach_request"}));
  m.add_transition(make("ue_registered_initiated", "ue_registered_initiated",
                        {"authentication_request"}, {"authentication_response"}));
  m.add_transition(make("ue_registered_initiated", "ue_deregistered",
                        {"authentication_reject"}, {fsm::kNullAction}));
  m.add_transition(make("ue_registered_initiated", "ue_registered_initiated",
                        {"security_mode_command"}, {"security_mode_complete"}));
  m.add_transition(make("ue_registered_initiated", "ue_registered", {"attach_accept"},
                        {"attach_complete"}));
  m.add_transition(make("ue_registered_initiated", "ue_deregistered", {"attach_reject"},
                        {fsm::kNullAction}));
  m.add_transition(
      make("ue_registered", "ue_registered", {"paging"}, {"service_request"}));
  m.add_transition(make("ue_registered", "ue_registered", {"guti_reallocation_command"},
                        {"guti_reallocation_complete"}));
  m.add_transition(make("ue_registered", "ue_registered", {"identity_request"},
                        {"identity_response"}));
  m.add_transition(make("ue_registered", "ue_deregistered", {"detach_request"},
                        {"detach_accept"}));
  m.add_transition(make("ue_registered", "ue_registered", {"tau_trigger"},
                        {"tracking_area_update_request"}));
  m.add_transition(make("ue_registered", "ue_registered",
                        {"tracking_area_update_reject"}, {fsm::kNullAction}));
  m.add_transition(make("ue_registered", "ue_deregistered", {"service_reject"},
                        {fsm::kNullAction}));
  m.add_transition(make("ue_registered", "ue_dereg_initiated", {"detach_trigger"},
                        {"detach_request"}));
  m.add_transition(make("ue_dereg_initiated", "ue_deregistered", {"detach_accept"},
                        {fsm::kNullAction}));
  return m;
}

fsm::Fsm lteinspector_mme_model() {
  fsm::Fsm m;
  m.set_initial("mme_deregistered");

  m.add_transition(make("mme_deregistered", "mme_common_procedure_initiated",
                        {"attach_request"}, {"authentication_request"}));
  m.add_transition(make("mme_common_procedure_initiated", "mme_common_procedure_initiated",
                        {"identity_response"}, {"authentication_request"}));
  m.add_transition(make("mme_common_procedure_initiated", "mme_wait_smc",
                        {"authentication_response", "res_valid=1"},
                        {"security_mode_command"}));
  m.add_transition(make("mme_common_procedure_initiated", "mme_deregistered",
                        {"authentication_response", "res_valid=0"},
                        {"authentication_reject"}));
  m.add_transition(make("mme_common_procedure_initiated", "mme_common_procedure_initiated",
                        {"authentication_failure"}, {"authentication_request"}));
  m.add_transition(make("mme_wait_smc", "mme_wait_attach_complete",
                        {"security_mode_complete", "integrity_ok=1"}, {"attach_accept"}));
  m.add_transition(make("mme_wait_smc", "mme_deregistered", {"security_mode_reject"},
                        {fsm::kNullAction}));
  m.add_transition(make("mme_wait_attach_complete", "mme_registered",
                        {"attach_complete", "integrity_ok=1"}, {fsm::kNullAction}));
  // Fast re-attach with an existing, integrity-verified security context
  // (the network-side path srsUE's I4 bypass rides on).
  m.add_transition(make("mme_registered", "mme_wait_attach_complete",
                        {"attach_request", "integrity_ok=1"}, {"attach_accept"}));
  // Re-attach without a context: full AKA from scratch.
  m.add_transition(make("mme_registered", "mme_common_procedure_initiated",
                        {"attach_request"}, {"authentication_request"}));
  m.add_transition(make("mme_registered", "mme_deregistered", {"detach_request"},
                        {"detach_accept"}));
  m.add_transition(make("mme_registered", "mme_registered",
                        {"tracking_area_update_request", "integrity_ok=1"},
                        {"tracking_area_update_accept"}));
  m.add_transition(make("mme_registered", "mme_registered",
                        {"service_request", "integrity_ok=1"}, {"emm_information"}));
  // Network-initiated timer-supervised common procedures.
  m.add_transition(make("mme_registered", "mme_wait_guti_complete", {"guti_realloc_trigger"},
                        {"guti_reallocation_command"}));
  m.add_transition(make("mme_wait_guti_complete", "mme_registered",
                        {"guti_reallocation_complete", "integrity_ok=1"}, {fsm::kNullAction}));
  m.add_transition(make("mme_registered", "mme_wait_config_complete",
                        {"config_update_trigger"}, {"configuration_update_command"}));
  m.add_transition(make("mme_wait_config_complete", "mme_registered",
                        {"configuration_update_complete", "integrity_ok=1"},
                        {fsm::kNullAction}));
  m.add_transition(
      make("mme_registered", "mme_registered", {"paging_trigger"}, {"paging"}));
  m.add_transition(make("mme_registered", "mme_dereg_initiated", {"detach_trigger_mme"},
                        {"detach_request"}));
  m.add_transition(make("mme_dereg_initiated", "mme_deregistered",
                        {"detach_accept", "integrity_ok=1"}, {fsm::kNullAction}));
  return m;
}

std::map<std::string, std::set<std::string>> lteinspector_state_map() {
  return {
      {"ue_deregistered",
       {"EMM_DEREGISTERED", "EMM_DEREGISTERED_ATTACH_NEEDED",
        "EMM_DEREGISTERED_LIMITED_SERVICE"}},
      {"ue_registered_initiated", {"EMM_REGISTERED_INITIATED"}},
      {"ue_registered",
       {"EMM_REGISTERED", "EMM_REGISTERED_NORMAL_SERVICE",
        "EMM_REGISTERED_ATTEMPTING_TO_UPDATE", "EMM_TRACKING_AREA_UPDATING_INITIATED",
        "EMM_SERVICE_REQUEST_INITIATED"}},
      {"ue_dereg_initiated", {"EMM_DEREGISTERED_INITIATED"}},
  };
}

}  // namespace procheck::checker
