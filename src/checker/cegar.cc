#include "checker/cegar.h"

#include <algorithm>
#include <set>

namespace procheck::checker {

namespace {

/// Applicability: every atom in requires_atoms must appear somewhere in the
/// UE FSM's condition or action vocabulary.
bool applicable(const PropertyDef& prop, const fsm::Fsm& ue_fsm) {
  for (const std::string& atom : prop.requires_atoms) {
    if (ue_fsm.conditions().count(atom) == 0 && ue_fsm.actions().count(atom) == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

PropertyResult check_property(const threat::ThreatModel& tm, const fsm::Fsm& ue_fsm,
                              const PropertyDef& prop, const cpv::LteCryptoModel& crypto,
                              const CegarOptions& options) {
  PropertyResult result;
  result.property_id = prop.id;
  result.attack_id = prop.attack_id;

  if (!applicable(prop, ue_fsm)) {
    result.status = PropertyResult::Status::kNotApplicable;
    result.note = "procedure not implemented by this stack";
    return result;
  }

  mc::Checker checker(tm.model);
  std::set<std::string> banned;
  // Indexed view of `banned` for the hot path: the allowed-filter then costs
  // one byte load per edge instead of a string-set lookup.
  std::vector<std::uint8_t> allowed_cmd(tm.model.commands().size(), 1);

  mc::EdgePred bad, trigger, response;
  if (prop.kind == PropertyDef::Kind::kEdgeNever) {
    bad = prop.bad.compile(tm);
  } else {
    trigger = prop.trigger.compile(tm);
    response = prop.response.compile(tm);
  }

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    if (options.cancel && options.cancel->cancelled()) {
      result.status = PropertyResult::Status::kInconclusive;
      result.note = "cancelled before iteration " + std::to_string(result.iterations + 1);
      return result;
    }
    ++result.iterations;
    mc::CheckOptions mc_options;
    mc_options.max_states = options.max_states;
    mc_options.max_visited_bytes = options.max_visited_bytes;
    mc_options.cancel = options.cancel;
    if (options.max_seconds > 0) {
      const double remaining = options.max_seconds - result.total_seconds;
      if (remaining <= 0) {
        result.status = PropertyResult::Status::kInconclusive;
        result.note = "wall-clock budget exhausted (" + std::to_string(options.max_seconds) +
                      "s) before iteration " + std::to_string(result.iterations);
        return result;
      }
      mc_options.max_seconds = remaining;
    }
    if (!banned.empty()) {
      mc_options.allowed = [&allowed_cmd, &banned](const mc::State&, const mc::Command& cmd,
                                                   const mc::State&) {
        if (cmd.index >= 0 && static_cast<std::size_t>(cmd.index) < allowed_cmd.size()) {
          return allowed_cmd[cmd.index] != 0;
        }
        return banned.count(cmd.label) == 0;
      };
    }

    mc::CheckStats stats;
    std::optional<mc::CounterExample> cex =
        prop.kind == PropertyDef::Kind::kEdgeNever
            ? checker.check_edge_never(bad, &stats, mc_options)
            : checker.check_response(trigger, response, &stats, mc_options);
    result.last_stats = stats;
    result.total_seconds += stats.seconds;
    result.total_states += stats.states_explored;
    result.peak_visited_bytes = std::max(result.peak_visited_bytes, stats.visited_bytes);

    if (!cex) {
      if (stats.truncated()) {
        // The search stopped at a budget without finding a violation: the
        // unexplored remainder may still hold one, so this is not a verdict.
        const char* why = stats.bound_hit      ? "state bound"
                          : stats.deadline_hit ? "wall-clock deadline"
                          : stats.mem_hit      ? "memory ceiling"
                                               : "cancellation";
        result.status = PropertyResult::Status::kInconclusive;
        result.note = std::string("search budget exhausted (") + why + " after " +
                      std::to_string(stats.states_explored) +
                      " states); no counterexample found in the explored fragment";
        return result;
      }
      result.status = PropertyResult::Status::kVerified;
      result.note = banned.empty() ? "verified" : "verified after CEGAR refinement";
      return result;
    }

    // CPV validation of every adversary-dependent consumption in the trace.
    std::vector<std::pair<std::string, std::string>> infeasible;
    for (const mc::TraceStep& step : cex->steps) {
      if (step.meta.kind != mc::CommandMeta::Kind::kDeliver) continue;
      if (step.meta.provenance == mc::kProvGenuine) continue;
      cpv::StepVerdict v = crypto.judge_delivery(step.meta);
      if (!v.feasible) infeasible.emplace_back(step.label, v.reason);
    }

    if (!infeasible.empty()) {
      for (const auto& [label, reason] : infeasible) {
        banned.insert(label);
        result.refinements.push_back("banned " + label + ": " + reason);
      }
      for (const mc::Command& cmd : tm.model.commands()) {
        if (banned.count(cmd.label) > 0) allowed_cmd[cmd.index] = 0;
      }
      continue;  // spurious counterexample ruled out; re-verify
    }

    // Cryptographically realizable. Linkability properties additionally
    // require the observational-equivalence confirmation.
    if (!prop.equivalence_message.empty()) {
      cpv::EquivalenceVerdict eq = crypto.distinguishability(
          ue_fsm, prop.equivalence_message, prop.equivalence_victim_atoms);
      result.equivalence = eq;
      if (!eq.distinguishable) {
        result.status = PropertyResult::Status::kVerified;
        result.note = "counterexample reachable but observationally equivalent: " + eq.reason;
        return result;
      }
      result.note = eq.reason;
    } else {
      result.note = "realizable counterexample";
    }
    result.status = PropertyResult::Status::kAttack;
    result.counterexample = std::move(cex);
    return result;
  }

  // Refinement did not converge within the iteration budget. Every produced
  // counterexample was spurious, but the refined model was never fully
  // re-verified — that is inconclusive, not verified.
  result.status = PropertyResult::Status::kInconclusive;
  result.note = "CEGAR iteration budget exhausted (" + std::to_string(options.max_iterations) +
                " iterations); all counterexamples so far were spurious";
  return result;
}

}  // namespace procheck::checker
