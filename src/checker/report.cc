#include "checker/report.h"

#include <sstream>

namespace procheck::checker {

std::string to_string(PropertyResult::Status status) {
  switch (status) {
    case PropertyResult::Status::kVerified:
      return "verified";
    case PropertyResult::Status::kAttack:
      return "ATTACK";
    case PropertyResult::Status::kNotApplicable:
      return "n/a";
    case PropertyResult::Status::kInconclusive:
      return "INCONCLUSIVE";
  }
  return "?";
}

namespace {

/// Left-justified field of at least `width` characters (printf "%-*s").
void pad_to(std::string& out, const std::string& field, std::size_t width) {
  out += field;
  for (std::size_t k = field.size(); k < width; ++k) out += ' ';
}

}  // namespace

std::string render_verdicts(const ImplementationReport& report) {
  std::string out;
  for (const PropertyResult& r : report.results) {
    pad_to(out, r.property_id, 4);
    out += ' ';
    pad_to(out, to_string(r.status), 12);
    out += ' ';
    pad_to(out, r.attack_id.empty() ? "-" : r.attack_id, 5);
    out += ' ';
    out += r.note;
    out += '\n';
  }
  out += '\n' + report.profile_name + ": " + std::to_string(report.verified_count()) +
         " verified, " + std::to_string(report.attack_count()) + " attacks, " +
         std::to_string(report.not_applicable_count()) + " n/a, " +
         std::to_string(report.inconclusive_count()) + " inconclusive | Table I rows: ";
  for (const std::string& id : report.attacks_found) out += id + ' ';
  out += '\n';
  if (report.contained_count() > 0) {
    out += "contained failures:";
    for (const PropertyOutcome& o : report.outcomes) {
      if (o.failure == FailureClass::kNone || o.failure == FailureClass::kCancelled) continue;
      out += ' ' + o.result.property_id + ':' + std::string(to_string(o.failure)) + '(' +
             std::to_string(o.attempts) + ')';
    }
    out += '\n';
  }
  return out;
}

std::string render_report(const ImplementationReport& report, const ReportOptions& options) {
  std::ostringstream out;
  out << "# ProChecker report: " << report.profile_name << "\n\n";

  // Pipeline summary.
  auto flat = report.checking_model.stats();
  auto rich = report.extracted.stats();
  out << "## Pipeline\n\n"
      << "- log records: " << report.log_records << " (extraction "
      << report.extraction_seconds << " s)\n"
      << "- checking model: " << flat.states << " states, " << flat.transitions
      << " transitions, " << flat.conditions << " condition atoms\n"
      << "- substate model: " << rich.states << " states, " << rich.transitions
      << " transitions\n\n";

  if (options.include_conformance) {
    out << "## Conformance\n\n"
        << "- " << report.conformance.passed() << "/" << report.conformance.total()
        << " cases passed, handler coverage "
        << static_cast<int>(report.conformance.handler_coverage * 100) << "%\n";
    for (const testing::TestResult& r : report.conformance.results) {
      if (!r.passed) out << "- FAILED: " << r.id << "\n";
    }
    out << "\n";
  }

  out << "## Verdicts\n\n"
      << "- " << report.verified_count() << " verified, " << report.attack_count()
      << " attacks, " << report.not_applicable_count() << " not applicable";
  if (report.inconclusive_count() > 0) {
    out << ", " << report.inconclusive_count() << " INCONCLUSIVE (budget exhausted)";
  }
  out << "\n- Table I rows detected:";
  for (const std::string& id : report.attacks_found) out << " " << id;
  out << "\n";
  if (report.contained_count() > 0) {
    out << "- " << report.contained_count()
        << " contained failures (exception/deadline/memory — see per-property notes)\n";
  }
  if (report.resumed_count > 0) {
    out << "- " << report.resumed_count << " verdicts adopted from the run journal\n";
  }
  out << "\n## Findings\n\n";

  threat::ThreatModel tm =
      options.include_traces ? ProChecker::build_threat_model(report.checking_model)
                             : threat::ThreatModel{};
  for (const PropertyResult& r : report.results) {
    bool is_attack = r.status == PropertyResult::Status::kAttack;
    // Inconclusive results are findings too: the analyst must either raise
    // the budget or treat the property as unassessed.
    bool interesting = is_attack || r.status == PropertyResult::Status::kInconclusive;
    if (!interesting && !options.include_verified) continue;
    out << "### " << r.property_id << " — " << to_string(r.status);
    if (!r.attack_id.empty()) out << " [" << r.attack_id << "]";
    out << "\n\n" << r.note << "\n";
    if (r.iterations > 1) {
      out << "\nCEGAR: " << r.iterations << " iterations";
      if (!r.refinements.empty()) out << ", " << r.refinements.size() << " refinements";
      out << "\n";
      for (const std::string& ref : r.refinements) out << "- " << ref << "\n";
    }
    if (r.equivalence) {
      out << "\nObservational equivalence: " << r.equivalence->reason << "\n";
    }
    if (is_attack && options.include_traces && r.counterexample) {
      out << "\n```\n" << r.counterexample->render(tm.model) << "```\n";
    }
    out << "\n";
  }
  return out.str();
}

std::string render_findings_matrix(const std::vector<const ImplementationReport*>& reports) {
  std::ostringstream out;
  out << "| Property | Row |";
  for (const ImplementationReport* rep : reports) out << " " << rep->profile_name << " |";
  out << "\n|---|---|";
  for (std::size_t i = 0; i < reports.size(); ++i) out << "---|";
  out << "\n";

  if (reports.empty()) return out.str();
  const std::size_t n = reports.front()->results.size();
  for (std::size_t i = 0; i < n; ++i) {
    bool interesting = false;
    for (const ImplementationReport* rep : reports) {
      interesting = interesting ||
                    (i < rep->results.size() &&
                     rep->results[i].status != PropertyResult::Status::kVerified);
    }
    if (!interesting) continue;
    const PropertyResult& first = reports.front()->results[i];
    out << "| " << first.property_id << " | "
        << (first.attack_id.empty() ? "-" : first.attack_id) << " |";
    for (const ImplementationReport* rep : reports) {
      out << " " << (i < rep->results.size() ? to_string(rep->results[i].status) : "?")
          << " |";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace procheck::checker
