// Analysis supervisor (DESIGN.md §11 "Failure containment & resume").
//
// Layered between ProChecker::analyze and the per-property CEGAR workers:
// each property runs crash-isolated under a cooperative watchdog (wall-clock
// deadline + approximate memory ceiling polled in the MC hot loop), so any
// single property can throw, trip a budget, or be cancelled and the catalog
// run still completes with a structured outcome for every property. Failed
// or inconclusive properties are retried on a degrade ladder (shrinking
// state/deadline budgets, exponential backoff); the final attempt falls back
// to kInconclusive with the failure class embedded. Every completed outcome
// is appended to a crash-safe JSONL journal (common/journal.h), and a
// resumed run adopts journaled outcomes instead of re-verifying them —
// reproducing a verdict report byte-identical to an uninterrupted run.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "checker/cegar.h"
#include "checker/property.h"
#include "common/thread_pool.h"
#include "cpv/lte_crypto.h"
#include "fsm/fsm.h"
#include "threat/compose.h"

namespace procheck::checker {

/// How a property's verification failed to reach a clean verdict. The
/// classes mirror the containment paths: kException (a worker threw),
/// kDeadline (watchdog wall-clock), kMemCeiling (approximate visited-set
/// ceiling), kBudget (state bound / CEGAR iteration cap), kCancelled (the
/// run's CancelToken fired — the property was interrupted, not concluded,
/// so it is never journaled and a resumed run re-verifies it).
enum class FailureClass : std::uint8_t {
  kNone,
  kException,
  kDeadline,
  kMemCeiling,
  kBudget,
  kCancelled,
};

std::string_view to_string(FailureClass f);

/// The supervisor's structured per-property outcome: the verdict plus the
/// containment metadata (what failed, how many attempts were consumed).
struct PropertyOutcome {
  PropertyResult result;
  int attempts = 1;
  FailureClass failure = FailureClass::kNone;
  /// Failure detail of the last attempt (exception message, tripped budget).
  std::string diagnostics;
  /// True when the outcome was adopted from the run journal (not re-verified).
  bool resumed = false;
};

struct SupervisorOptions {
  /// Extra attempts after the first for failed/inconclusive properties.
  int retries = 0;
  /// Base of the exponential retry backoff (seconds): attempt k sleeps
  /// backoff * 2^(k-1) before re-running. 0 disables the sleep.
  double backoff_seconds = 0.05;
  /// Degrade ladder: max_states and the per-attempt deadline shrink by this
  /// factor on every retry, so a property that OOMs or wedges converges to
  /// an explicit kInconclusive instead of failing the same way N times.
  double degrade_factor = 0.5;
  std::size_t degrade_floor_states = 4096;

  /// Per-attempt watchdog wall-clock deadline (seconds); 0 = none.
  double deadline_per_property = 0.0;
  /// Approximate per-property memory ceiling (bytes over the MC's
  /// visited-state structures, polled cooperatively); 0 = none.
  std::size_t mem_ceiling_bytes = 0;

  /// Path of the crash-safe run journal; "" disables journaling.
  std::string journal_path;
  /// Adopt completed outcomes from journal_path instead of re-verifying.
  /// Without resume, a pre-existing journal at the path is clobbered.
  bool resume = false;
  /// Journal header tag (the profile name): a resumed journal with a
  /// different tag is discarded, never mixed into this run's results.
  std::string run_tag;
  /// Fingerprint of the analysis options that shape verdicts (budgets,
  /// property selection — anything jobs-independent; see
  /// checker::analysis_options_hash). Recorded in the journal header; a
  /// --resume against a journal written under a *different* fingerprint is
  /// refused outright (aborted run) — adopting those verdicts would silently
  /// mix incompatible budgets into one report. "" disables the check
  /// (legacy callers).
  std::string options_hash;

  std::size_t jobs = 1;
  /// Cooperative run-level cancellation: properties not yet started are shed
  /// (ThreadPool::cancel_pending) and reported as kCancelled outcomes.
  const CancelToken* cancel = nullptr;
  /// Test hook: invoked at the start of every attempt; a throw simulates a
  /// worker crash inside the MC/CEGAR loop.
  std::function<void(const std::string& property_id, int attempt)> fault_hook;
};

struct SupervisedRun {
  /// One outcome per selected property, in selection (catalog) order.
  std::vector<PropertyOutcome> outcomes;
  std::size_t resumed = 0;    // outcomes adopted from the journal
  std::size_t cancelled = 0;  // properties interrupted by the CancelToken
  std::size_t journal_records = 0;
  /// Non-empty when journaling failed mid-run: the analysis continued
  /// (containment), but the journal is no longer extending.
  std::string journal_error;
  /// True when the run refused to start (journal locked by a live process,
  /// or --resume against an options-hash-incompatible journal). No property
  /// was verified; `abort_reason` carries the structured diagnostic.
  bool aborted = false;
  std::string abort_reason;
};

/// Runs `selected` under supervision. Exceptions never escape a worker:
/// every property produces a PropertyOutcome. The verdicts are byte-for-byte
/// deterministic across jobs levels and across interrupt/resume cycles for
/// deterministic budgets (see DESIGN.md §11 for the determinism argument).
SupervisedRun run_supervised(const threat::ThreatModel& tm, const fsm::Fsm& ue_fsm,
                             const std::vector<const PropertyDef*>& selected,
                             const cpv::LteCryptoModel::Options& crypto_options,
                             const CegarOptions& cegar, const SupervisorOptions& options);

/// Journal record codec. Encodes the deterministic slice of an outcome
/// (verdict, note, refinements, equivalence, counterexample, containment
/// metadata) as a single-line JSON object; timing/footprint stats are
/// deliberately excluded (they are not part of the determinism contract).
std::string encode_outcome(const PropertyOutcome& outcome);
/// Strict inverse; nullopt on any malformation (the record is then treated
/// as absent and the property re-verified — safe by construction).
std::optional<PropertyOutcome> decode_outcome(std::string_view json);

}  // namespace procheck::checker
