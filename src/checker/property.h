// Formal property catalog (paper §VI "Formal property gathering"): 62
// properties — 37 security, 25 privacy — extracted from the conformance
// test suite's informal goals and the TS 24.301 / TS 33.102 requirements,
// phrased over the vocabulary of the threat-instrumented model: command
// metadata (message, provenance, FSM condition atoms, actions, endpoint
// states) and the model's indicator flags.
//
// Each property is either a never-claim on edges ("the UE never consumes a
// replayed authentication challenge that passes the SQN check") or a
// response-liveness claim ("an initiated GUTI reallocation eventually
// completes"). Privacy properties may additionally name an observational-
// equivalence query that the CPV must confirm before a counterexample
// counts as a linkability attack.
//
// `attack_id` ties a property to its Table I row: P1–P3 (new protocol
// attacks), I1–I6 (implementation issues), PR01–PR14 (prior attacks).
// Properties with an empty attack_id are expected to verify on conformant
// implementations.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "mc/checker.h"
#include "mc/model.h"
#include "threat/compose.h"

namespace procheck::checker {

/// Declarative matcher over a command's metadata plus optional pre-state
/// variable constraints; compiled to an mc::EdgePred against a ThreatModel.
struct MetaMatch {
  std::optional<mc::CommandMeta::Actor> actor;
  std::optional<mc::CommandMeta::Kind> kind;
  std::string message;                       // "" = any
  std::vector<std::string> atoms_all;        // all must be present
  std::vector<std::string> atoms_none;       // none may be present
  std::vector<std::string> actions_any;      // at least one present (if non-empty)
  std::vector<std::string> actions_none;
  std::vector<std::int32_t> provenance_any;  // non-empty = must be one of
  std::vector<std::string> from_states;      // non-empty = must be one of
  std::vector<std::string> to_states;
  std::optional<bool> action_nonnull;        // transition takes a real action
  std::optional<bool> state_changed;         // from_state != to_state
  /// Pre-state constraints: (variable name, value name).
  std::vector<std::pair<std::string, std::string>> pre_equals;

  bool matches_meta(const mc::CommandMeta& m) const;
  mc::EdgePred compile(const threat::ThreatModel& tm) const;
};

struct PropertyDef {
  std::string id;  // "S01".."S37", "P01".."P25"
  std::string description;

  enum class Type { kSecurity, kPrivacy };
  Type type = Type::kSecurity;

  enum class Kind { kEdgeNever, kResponse };
  Kind kind = Kind::kEdgeNever;

  MetaMatch bad;       // kEdgeNever: this edge must never fire
  MetaMatch trigger;   // kResponse
  MetaMatch response;  // kResponse

  /// Non-empty for linkability properties: the CPV must confirm the victim's
  /// response to this message is distinguishable from other UEs'.
  std::string equivalence_message;
  std::set<std::string> equivalence_victim_atoms;

  /// Applicability: the UE FSM must contain these condition/action atoms,
  /// otherwise the property is reported "not applicable" (the Table I "-"
  /// rows: procedures the analyzed stacks do not implement).
  std::vector<std::string> requires_atoms;

  std::string attack_id;  // Table I mapping; "" = expected to verify
  bool common_with_lteinspector = false;  // Table II membership (14 of these)
};

/// The full 62-property catalog (37 security + 25 privacy).
const std::vector<PropertyDef>& property_catalog();

/// The 14 properties shared with LTEInspector (Table II / Fig. 8).
std::vector<const PropertyDef*> common_properties();

/// Registered-state family helper shared by several property definitions.
const std::vector<std::string>& registered_family();

}  // namespace procheck::checker
