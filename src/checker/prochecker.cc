#include "checker/prochecker.h"

#include <chrono>
#include <cstdio>

#include "checker/baseline.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace procheck::checker {

int ImplementationReport::verified_count() const {
  int n = 0;
  for (const PropertyResult& r : results) {
    n += r.status == PropertyResult::Status::kVerified ? 1 : 0;
  }
  return n;
}

int ImplementationReport::attack_count() const {
  int n = 0;
  for (const PropertyResult& r : results) {
    n += r.status == PropertyResult::Status::kAttack ? 1 : 0;
  }
  return n;
}

int ImplementationReport::not_applicable_count() const {
  int n = 0;
  for (const PropertyResult& r : results) {
    n += r.status == PropertyResult::Status::kNotApplicable ? 1 : 0;
  }
  return n;
}

int ImplementationReport::inconclusive_count() const {
  int n = 0;
  for (const PropertyResult& r : results) {
    n += r.status == PropertyResult::Status::kInconclusive ? 1 : 0;
  }
  return n;
}

int ImplementationReport::contained_count() const {
  int n = 0;
  for (const PropertyOutcome& o : outcomes) {
    n += o.failure != FailureClass::kNone && o.failure != FailureClass::kCancelled ? 1 : 0;
  }
  return n;
}

threat::ThreatModel ProChecker::build_threat_model(const fsm::Fsm& ue_fsm) {
  return threat::compose(ue_fsm, lteinspector_mme_model());
}

std::string analysis_options_hash(const AnalysisOptions& options,
                                  const ue::StackProfile& profile) {
  // Canonical text of every verdict-shaping knob, hashed with the repo's
  // keyed PRF to 16 hex digits. Field order is part of the format: changing
  // it (or adding a knob) intentionally invalidates old journals.
  std::string canon;
  canon += "max_states=" + std::to_string(options.max_states);
  canon += ";cegar=" + std::to_string(options.max_cegar_iterations);
  canon += ";budget=" + std::to_string(options.max_seconds_per_property);
  canon += ";retries=" + std::to_string(options.retries);
  canon += ";deadline=" + std::to_string(options.deadline_per_property);
  canon += ";mem=" + std::to_string(options.mem_ceiling_bytes);
  canon += ";freshness=";
  canon += profile.sqn_freshness_limit ? std::to_string(*profile.sqn_freshness_limit) : "none";
  canon += ";props=";
  for (const std::string& id : options.only_properties) {  // std::set: sorted
    canon += id;
    canon += ',';
  }
  Bytes data(canon.begin(), canon.end());
  std::uint64_t h = prf64(0x0A75BA5E, data);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(h));
  return hex;
}

ImplementationReport ProChecker::analyze(const ue::StackProfile& profile,
                                         const AnalysisOptions& options) {
  ImplementationReport report;
  report.profile_name = profile.name;

  // (1) Instrumented conformance execution → information-rich log.
  instrument::TraceLogger trace;
  report.conformance = testing::run_conformance(profile, trace);
  report.log_records = trace.records().size();

  // (2) Model extraction (both the substate-aware machine and the flat
  // predicate machine the checker consumes).
  extractor::Signatures sigs = extractor::ue_signatures(profile);
  extractor::ExtractionOptions rich_opts;
  rich_opts.initial_state = "EMM_DEREGISTERED";
  auto t0 = std::chrono::steady_clock::now();
  report.extracted = extractor::extract(trace.records(), sigs, rich_opts);
  extractor::ExtractionOptions flat_opts = rich_opts;
  flat_opts.chain_substates = false;
  report.checking_model = extractor::extract_basic(trace.records(), sigs, flat_opts);
  report.extraction_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // (3) Threat instrumentation: IMP^μ = UE^μ ⊗ MME^μ ⊗ Dolev–Yao.
  threat::ThreatModel tm = build_threat_model(report.checking_model);

  // (4) MC ⇄ CPV over the property catalog, fanned across worker threads
  // under the analysis supervisor (crash isolation, watchdogs, retries,
  // journal/resume — DESIGN.md §11).
  //
  // The unit of parallelism is one property's whole CEGAR loop: refinement
  // state (banned commands) is strictly per-property, so workers share only
  // immutables — the ThreatModel, the extracted FSM, and the catalog. The
  // cryptographic verifier is NOT shared: cpv::Knowledge saturates lazily
  // behind a const interface (mutable cache), so the supervisor hands each
  // concurrent worker its own LteCryptoModel (reused via a free-list).
  // Outcomes land in catalog order, making the report byte-identical to a
  // sequential run.
  cpv::LteCryptoModel::Options crypto_options;
  crypto_options.usim_freshness_limit = profile.sqn_freshness_limit.has_value();

  CegarOptions cegar;
  cegar.max_states = options.max_states;
  cegar.max_iterations = options.max_cegar_iterations;
  cegar.max_seconds = options.max_seconds_per_property;

  std::vector<const PropertyDef*> selected;
  for (const PropertyDef& prop : property_catalog()) {
    if (!options.only_properties.empty() && options.only_properties.count(prop.id) == 0) {
      continue;
    }
    selected.push_back(&prop);
  }

  SupervisorOptions sup;
  sup.retries = options.retries;
  sup.backoff_seconds = options.retry_backoff_seconds;
  sup.deadline_per_property = options.deadline_per_property;
  sup.mem_ceiling_bytes = options.mem_ceiling_bytes;
  sup.journal_path = options.journal_path;
  sup.resume = options.resume;
  sup.run_tag = profile.name;
  sup.options_hash = analysis_options_hash(options, profile);
  sup.jobs = options.jobs > 0 ? static_cast<std::size_t>(options.jobs)
                              : ThreadPool::default_parallelism();
  sup.cancel = options.cancel;
  sup.fault_hook = options.fault_hook;

  SupervisedRun run =
      run_supervised(tm, report.checking_model, selected, crypto_options, cegar, sup);
  if (run.aborted) {
    report.aborted = true;
    report.abort_reason = std::move(run.abort_reason);
    return report;
  }
  report.resumed_count = run.resumed;
  report.cancelled_count = run.cancelled;
  report.journal_error = std::move(run.journal_error);

  for (PropertyOutcome& outcome : run.outcomes) {
    const PropertyResult& r = outcome.result;
    if (r.status == PropertyResult::Status::kAttack && !r.attack_id.empty()) {
      report.attacks_found.insert(r.attack_id);
    }
    report.results.push_back(r);
    report.outcomes.push_back(std::move(outcome));
  }
  return report;
}

}  // namespace procheck::checker
