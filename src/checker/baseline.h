// LTEInspector-style baseline models (Hussain et al., NDSS'18) — manually
// constructed, coarse FSMs of the UE and MME NAS layers.
//
// Two roles in the reproduction (as in the paper):
//  * The MME model used for verification: the paper had no core-network
//    source access and checked against this hand-built machine (§VI).
//  * The RQ2 baseline: the automatically extracted Pro^μ must be a
//    *refinement* of this LTE^μ (same vocabulary, coarser states, no
//    payload-predicate conditions), and Fig. 8 compares verification times
//    on the two models.
#pragma once

#include <map>
#include <set>
#include <string>

#include "fsm/fsm.h"

namespace procheck::checker {

/// The manual UE model LTE^μ (coarse four-state machine, message-level
/// conditions only).
fsm::Fsm lteinspector_ue_model();

/// The manual MME model (used as MME^μ in every composed threat model).
fsm::Fsm lteinspector_mme_model();

/// State map for refinement checking: LTE^μ state → the set of extracted
/// TS 24.301 states/substates it corresponds to (paper §VII-B: states map
/// onto sub-states following the standard).
std::map<std::string, std::set<std::string>> lteinspector_state_map();

}  // namespace procheck::checker
