#include "fsm/fsm.h"

#include <deque>

#include "common/strings.h"

namespace procheck::fsm {

std::string Transition::label() const {
  std::string cond = join(std::vector<std::string>(conditions.begin(), conditions.end()), " & ");
  std::string act = join(std::vector<std::string>(actions.begin(), actions.end()), ", ");
  return from + " --[" + cond + " / " + (act.empty() ? kNullAction : act) + "]--> " + to;
}

void Fsm::set_initial(std::string s0) {
  states_.insert(s0);
  initial_ = std::move(s0);
}

void Fsm::add_transition(Transition t) {
  states_.insert(t.from);
  states_.insert(t.to);
  conditions_.insert(t.conditions.begin(), t.conditions.end());
  actions_.insert(t.actions.begin(), t.actions.end());
  if (transition_index_.insert(t).second) {
    transitions_.push_back(std::move(t));
  }
}

std::vector<const Transition*> Fsm::from(const std::string& state) const {
  std::vector<const Transition*> out;
  for (const Transition& t : transitions_) {
    if (t.from == state) out.push_back(&t);
  }
  return out;
}

std::set<std::string> Fsm::reachable() const {
  std::set<std::string> seen;
  if (initial_.empty()) return seen;
  std::deque<std::string> work{initial_};
  seen.insert(initial_);
  while (!work.empty()) {
    std::string s = std::move(work.front());
    work.pop_front();
    for (const Transition* t : from(s)) {
      if (seen.insert(t->to).second) work.push_back(t->to);
    }
  }
  return seen;
}

bool Fsm::deterministic() const {
  std::map<std::pair<std::string, std::set<Atom>>, const Transition*> index;
  for (const Transition& t : transitions_) {
    auto [it, inserted] = index.try_emplace({t.from, t.conditions}, &t);
    if (!inserted && (it->second->to != t.to || it->second->actions != t.actions)) {
      return false;
    }
  }
  return true;
}

Fsm::Stats Fsm::stats() const {
  return {states_.size(), transitions_.size(), conditions_.size(), actions_.size()};
}

std::string Fsm::to_dot(const std::string& name) const {
  std::string out = "digraph " + name + " {\n  rankdir=LR;\n";
  if (!initial_.empty()) {
    out += "  __start [shape=point];\n  __start -> \"" + initial_ + "\";\n";
  }
  for (const std::string& s : states_) {
    out += "  \"" + s + "\" [shape=box];\n";
  }
  for (const Transition& t : transitions_) {
    std::string cond =
        join(std::vector<std::string>(t.conditions.begin(), t.conditions.end()), " & ");
    std::string act = join(std::vector<std::string>(t.actions.begin(), t.actions.end()), ", ");
    out += "  \"" + t.from + "\" -> \"" + t.to + "\" [label=\"" + cond + " / " + act + "\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace procheck::fsm
