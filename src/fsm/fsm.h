// Protocol finite-state machine — the 5-tuple (Σ, Γ, S, s0, T) of the
// paper's §III-B. States are the standard's state names; condition atoms are
// incoming-message names plus "var=value" predicates harvested from the
// log's condition locals; action atoms are outgoing-message names or
// kNullAction when a message triggered no response.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace procheck::fsm {

/// A condition/action atom. Conditions: an incoming-message name
/// ("attach_accept") or a predicate ("mac_valid=1"); actions: an
/// outgoing-message name or kNullAction.
using Atom = std::string;

inline const Atom kNullAction = "null_action";

struct Transition {
  std::string from;
  std::string to;
  std::set<Atom> conditions;  // σ ⊆ Σ
  std::set<Atom> actions;     // γ ⊆ Γ

  bool operator==(const Transition&) const = default;
  auto operator<=>(const Transition&) const = default;

  /// "from --[c1 & c2 / a1]--> to" rendering for reports.
  std::string label() const;
};

class Fsm {
 public:
  void set_initial(std::string s0);
  const std::string& initial() const { return initial_; }

  void add_state(const std::string& s) { states_.insert(s); }
  /// Inserts the transition (deduplicated) and unions its states,
  /// conditions, and actions into S, Σ, and Γ.
  void add_transition(Transition t);

  const std::set<std::string>& states() const { return states_; }
  const std::set<Atom>& conditions() const { return conditions_; }
  const std::set<Atom>& actions() const { return actions_; }
  const std::vector<Transition>& transitions() const { return transitions_; }

  bool has_state(const std::string& s) const { return states_.count(s) > 0; }
  std::vector<const Transition*> from(const std::string& state) const;

  /// States reachable from the initial state via transitions.
  std::set<std::string> reachable() const;
  /// True when no two transitions share (from, conditions) with different
  /// outcomes — the determinism the paper's §III-B FSMs assume.
  bool deterministic() const;

  struct Stats {
    std::size_t states = 0;
    std::size_t transitions = 0;
    std::size_t conditions = 0;
    std::size_t actions = 0;
  };
  Stats stats() const;

  /// Graphviz rendering (the model generator's input language, §VI).
  std::string to_dot(const std::string& name = "fsm") const;

  bool operator==(const Fsm&) const = default;

 private:
  std::string initial_;
  std::set<std::string> states_;
  std::set<Atom> conditions_;
  std::set<Atom> actions_;
  std::vector<Transition> transitions_;
  std::set<Transition> transition_index_;  // dedup
};

}  // namespace procheck::fsm
