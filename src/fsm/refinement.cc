#include "fsm/refinement.h"

#include <algorithm>
#include <functional>

namespace procheck::fsm {

namespace {

bool superset(const std::set<Atom>& big, const std::set<Atom>& small) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

std::set<Atom> strip_null(const std::set<Atom>& actions) {
  std::set<Atom> out = actions;
  out.erase(kNullAction);
  return out;
}

}  // namespace

int RefinementReport::count(TransitionMatch m) const {
  int n = 0;
  for (const TransitionMapping& tm : transition_mappings) {
    if (tm.match == m) ++n;
  }
  return n;
}

std::string RefinementReport::summary() const {
  std::string out;
  out += refines ? "REFINES\n" : "DOES NOT REFINE\n";
  out += "  states mapped:        " + std::string(states_mapped ? "yes" : "no") + "\n";
  out += "  conditions superset:  " + std::string(conditions_superset ? "yes" : "no") +
         (conditions_strict_superset ? " (strict)" : "") + "\n";
  out += "  actions superset:     " + std::string(actions_superset ? "yes" : "no") +
         (actions_strict_superset ? " (strict)" : "") + "\n";
  out += "  transitions: direct=" + std::to_string(count(TransitionMatch::kDirect)) +
         " condition-refined=" + std::to_string(count(TransitionMatch::kConditionRefined)) +
         " split=" + std::to_string(count(TransitionMatch::kSplit)) +
         " unmatched=" + std::to_string(count(TransitionMatch::kUnmatched)) + "\n";
  for (const std::string& s : unmapped_states) {
    out += "  unmapped state: " + s + "\n";
  }
  for (const TransitionMapping& tm : transition_mappings) {
    if (tm.match == TransitionMatch::kUnmatched) {
      out += "  unmatched transition: " + tm.abstract.label() + "\n";
    }
  }
  return out;
}

RefinementReport check_refinement(const Fsm& abstract, const Fsm& refined,
                                  const std::map<std::string, std::set<std::string>>& state_map,
                                  int max_split_len) {
  RefinementReport report;

  // (1) State mapping. A map entry may list substates the implementation
  // never visits (the standard defines more substates than any one stack
  // reaches); the mapping is valid as long as at least one image exists in
  // the refined machine, and only existing images participate in matching.
  auto mapped = [&](const std::string& s) -> std::set<std::string> {
    std::set<std::string> out;
    auto it = state_map.find(s);
    if (it != state_map.end()) {
      for (const std::string& r : it->second) {
        if (refined.has_state(r)) out.insert(r);
      }
      return out;
    }
    if (refined.has_state(s)) out.insert(s);
    return out;
  };
  report.states_mapped = true;
  for (const std::string& s : abstract.states()) {
    if (mapped(s).empty()) {
      report.states_mapped = false;
      report.unmapped_states.push_back(s);
    }
  }

  // (2) Σ and Γ supersets.
  report.conditions_superset = superset(refined.conditions(), abstract.conditions());
  report.conditions_strict_superset =
      report.conditions_superset && refined.conditions().size() > abstract.conditions().size();
  report.actions_superset =
      superset(refined.actions(), strip_null(abstract.actions()));
  report.actions_strict_superset =
      report.actions_superset && refined.actions().size() > abstract.actions().size();

  // (3) Transition mapping.
  for (const Transition& t1 : abstract.transitions()) {
    TransitionMapping tm;
    tm.abstract = t1;
    const std::set<Atom> want_cond = t1.conditions;
    const std::set<Atom> want_act = strip_null(t1.actions);

    const std::set<std::string> sources = mapped(t1.from);
    const std::set<std::string> targets = mapped(t1.to);

    // Cases (i)/(ii): a single refined transition between mapped endpoints.
    for (const Transition& t2 : refined.transitions()) {
      if (sources.count(t2.from) == 0 || targets.count(t2.to) == 0) continue;
      if (!superset(t2.conditions, want_cond) || !superset(t2.actions, want_act)) continue;
      bool exact = t2.conditions == want_cond && strip_null(t2.actions) == want_act;
      tm.match = exact ? TransitionMatch::kDirect : TransitionMatch::kConditionRefined;
      tm.refined = {t2};
      break;
    }

    // Case (iii): a bounded path through new intermediate states whose
    // unioned conditions/actions cover the abstract transition.
    if (tm.match == TransitionMatch::kUnmatched) {
      std::vector<Transition> path;
      std::function<bool(const std::string&, std::set<Atom>, std::set<Atom>, int)> dfs =
          [&](const std::string& at, std::set<Atom> cond_cover, std::set<Atom> act_cover,
              int depth) -> bool {
        if (targets.count(at) > 0 && path.size() >= 2 && superset(cond_cover, want_cond) &&
            superset(act_cover, want_act)) {
          return true;
        }
        if (depth == 0) return false;
        for (const Transition* t2 : refined.from(at)) {
          // Avoid revisiting a state already on the path (simple paths only).
          bool on_path = false;
          for (const Transition& p : path) {
            if (p.from == t2->to || p.to == t2->to) on_path = (t2->to != t1.to);
          }
          if (on_path) continue;
          path.push_back(*t2);
          std::set<Atom> c = cond_cover;
          c.insert(t2->conditions.begin(), t2->conditions.end());
          std::set<Atom> a = act_cover;
          a.insert(t2->actions.begin(), t2->actions.end());
          if (dfs(t2->to, std::move(c), std::move(a), depth - 1)) return true;
          path.pop_back();
        }
        return false;
      };
      // Iterative deepening: prefer the shortest realizing path (keeps the
      // Fig. 7-style examples free of superfluous hops).
      for (int depth = 2; depth <= max_split_len && tm.match == TransitionMatch::kUnmatched;
           ++depth) {
        for (const std::string& src : sources) {
          path.clear();
          if (dfs(src, {}, {}, depth)) {
            tm.match = TransitionMatch::kSplit;
            tm.refined = path;
            break;
          }
        }
      }
    }

    report.transition_mappings.push_back(std::move(tm));
  }

  bool all_transitions_mapped = true;
  for (const TransitionMapping& tm : report.transition_mappings) {
    all_transitions_mapped = all_transitions_mapped && tm.match != TransitionMatch::kUnmatched;
  }
  report.refines = report.states_mapped && report.conditions_superset &&
                   report.actions_superset && all_transitions_mapped;
  return report;
}

}  // namespace procheck::fsm
