// FSM refinement checking, implementing the paper's §VII-B definition used
// to answer RQ2 ("is the automatically extracted model Pro^μ a refinement
// of the manually built LTEInspector model LTE^μ?").
//
// M2 refines M1 when:
//  (1) every state of M1 maps (one-to-one, or via the provided
//      state-to-substates map) into M2's state set;
//  (2) Σ2 ⊇ Σ1 and Γ2 ⊇ Γ1 (strict supersets in the paper's comparison);
//  (3) every transition of M1 maps into M2 by one of three cases:
//      (i)  directly (same endpoints, same condition/action sets);
//      (ii) with a *stricter* condition σ2 = σ1 ∧ φ (same endpoints,
//           superset condition, superset action);
//      (iii) split across new intermediate states: a path in M2 from the
//           mapped source to the mapped target whose unioned conditions and
//           actions cover σ1 and γ1.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "fsm/fsm.h"

namespace procheck::fsm {

/// How one abstract transition was matched in the refined machine.
enum class TransitionMatch { kDirect, kConditionRefined, kSplit, kUnmatched };

struct TransitionMapping {
  Transition abstract;
  TransitionMatch match = TransitionMatch::kUnmatched;
  /// The refined transitions realizing the abstract one (1 for direct /
  /// condition-refined; ≥2 for split).
  std::vector<Transition> refined;
};

struct RefinementReport {
  bool refines = false;
  bool states_mapped = false;
  bool conditions_superset = false;
  bool conditions_strict_superset = false;
  bool actions_superset = false;
  bool actions_strict_superset = false;
  std::vector<std::string> unmapped_states;
  std::vector<TransitionMapping> transition_mappings;

  int count(TransitionMatch m) const;
  /// Human-readable summary (used by the RQ2 bench and example).
  std::string summary() const;
};

/// `state_map` maps an abstract state to the set of refined states it
/// corresponds to (e.g. ue_registered -> {EMM_REGISTERED,
/// EMM_REGISTERED_NORMAL_SERVICE}); abstract states absent from the map are
/// matched by identical name. `max_split_len` bounds case-(iii) path search.
RefinementReport check_refinement(const Fsm& abstract, const Fsm& refined,
                                  const std::map<std::string, std::set<std::string>>& state_map,
                                  int max_split_len = 4);

}  // namespace procheck::fsm
