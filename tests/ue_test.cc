// UE NAS stack tests: the normal procedure flows plus the per-profile
// deviation matrix of DESIGN.md §3 — the ground truth Table I detections
// are validated against.
#include <gtest/gtest.h>

#include "testing/conformance.h"
#include "testing/testbed.h"
#include "ue/emm_state.h"
#include "ue/profile.h"

namespace procheck::ue {
namespace {

using nas::MsgType;
using nas::NasMessage;
using nas::NasPdu;
using nas::SecHdr;
using testing::Testbed;

struct Rig {
  Testbed tb;
  int conn;
  explicit Rig(const StackProfile& profile)
      : conn(tb.add_ue(profile, testing::kTestImsi, testing::kTestKey)) {}
  UeNas& ue() { return tb.ue(conn); }
  bool attach() { return testing::complete_attach(tb, conn); }
};

// --- Profiles ---------------------------------------------------------------

TEST(Profiles, SignatureConventionsMatchThePaper) {
  EXPECT_EQ(StackProfile::cls().recv_prefix, "recv_");
  EXPECT_EQ(StackProfile::cls().send_prefix, "send_");
  // "srsLTE and OAI use the consistent signature of send_/parse_ and
  // emm_send_/emm_recv_" (paper §IX).
  EXPECT_EQ(StackProfile::srsue().recv_prefix, "parse_");
  EXPECT_EQ(StackProfile::srsue().send_prefix, "send_");
  EXPECT_EQ(StackProfile::oai().recv_prefix, "emm_recv_");
  EXPECT_EQ(StackProfile::oai().send_prefix, "emm_send_");
}

TEST(Profiles, DeviationMatrix) {
  StackProfile cls = StackProfile::cls();
  EXPECT_FALSE(cls.accept_replayed_protected);
  EXPECT_FALSE(cls.accept_plain_after_smc);
  EXPECT_FALSE(cls.accept_equal_sqn);
  EXPECT_FALSE(cls.keep_ctx_after_reject);
  EXPECT_FALSE(cls.plain_identity_response);

  StackProfile srs = StackProfile::srsue();
  EXPECT_TRUE(srs.accept_replayed_protected);
  EXPECT_TRUE(srs.reset_dl_counter_on_replay);
  EXPECT_TRUE(srs.accept_equal_sqn);
  EXPECT_TRUE(srs.keep_ctx_after_reject);

  StackProfile oai = StackProfile::oai();
  EXPECT_TRUE(oai.accept_last_replay);
  EXPECT_TRUE(oai.accept_plain_after_smc);
  EXPECT_TRUE(oai.plain_identity_response);
}

// --- EMM state helpers --------------------------------------------------------

TEST(EmmStateNames, RoundTrip) {
  for (int i = 0; i <= static_cast<int>(EmmState::kRegisteredAttemptingToUpdate); ++i) {
    auto s = static_cast<EmmState>(i);
    auto back = emm_state_from_name(to_string(s));
    ASSERT_TRUE(back.has_value()) << to_string(s);
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(emm_state_from_name("NOT_A_STATE").has_value());
}

TEST(EmmStateNames, FamilyPredicates) {
  EXPECT_TRUE(is_registered(EmmState::kRegistered));
  EXPECT_TRUE(is_registered(EmmState::kRegisteredNormalService));
  EXPECT_FALSE(is_registered(EmmState::kRegisteredInitiated));
  EXPECT_TRUE(is_deregistered(EmmState::kDeregistered));
  EXPECT_TRUE(is_deregistered(EmmState::kDeregisteredAttachNeeded));
  EXPECT_FALSE(is_deregistered(EmmState::kDeregisteredInitiated));
}

// --- Attach flow --------------------------------------------------------------

class AttachPerProfile : public ::testing::TestWithParam<StackProfile> {};

TEST_P(AttachPerProfile, CompletesWithContextAndGuti) {
  Rig rig(GetParam());
  ASSERT_TRUE(rig.attach());
  EXPECT_TRUE(rig.ue().security().valid);
  EXPECT_NE(rig.ue().guti(), "none");
  EXPECT_EQ(rig.ue().authentications_completed(), 1);
  EXPECT_EQ(rig.ue().replays_accepted(), 0);
  // The ESM default bearer rode on the attach accept/complete.
  EXPECT_EQ(rig.ue().esm_bearer_id(), 5u);
}

INSTANTIATE_TEST_SUITE_P(Profiles, AttachPerProfile,
                         ::testing::Values(StackProfile::cls(), StackProfile::srsue(),
                                           StackProfile::oai()),
                         [](const auto& info) { return info.param.name; });

TEST(UeAttach, PowerOnEntersRegisteredInitiated) {
  Rig rig(StackProfile::cls());
  auto out = rig.ue().power_on_attach();
  EXPECT_EQ(rig.ue().state(), EmmState::kRegisteredInitiated);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].sec_hdr, SecHdr::kPlain);
}

TEST(UeAttach, ReplayedAttachAcceptDoesNotRewriteState) {
  Rig rig(StackProfile::cls());
  ASSERT_TRUE(rig.attach());
  auto state_before = rig.ue().state();
  std::string guti_before = rig.ue().guti();
  const NasPdu* accept = rig.tb.last_downlink_of_type(rig.conn, MsgType::kAttachAccept);
  ASSERT_NE(accept, nullptr);
  rig.tb.inject_downlink(rig.conn, *accept);
  rig.tb.run_until_quiet();
  EXPECT_EQ(rig.ue().state(), state_before);
  EXPECT_EQ(rig.ue().guti(), guti_before);
}

// --- Replay policy (I1 / I3) ---------------------------------------------------

TEST(ReplayPolicy, ClsDiscardsReplays) {
  Rig rig(StackProfile::cls());
  ASSERT_TRUE(rig.attach());
  const NasPdu* accept = rig.tb.last_downlink_of_type(rig.conn, MsgType::kAttachAccept);
  ASSERT_NE(accept, nullptr);
  rig.tb.inject_downlink(rig.conn, *accept);
  rig.tb.run_until_quiet();
  EXPECT_EQ(rig.ue().replays_accepted(), 0);
}

TEST(ReplayPolicy, SrsAcceptsReplayAndResetsCounter) {
  Rig rig(StackProfile::srsue());
  ASSERT_TRUE(rig.attach());
  const NasPdu* accept = rig.tb.last_downlink_of_type(rig.conn, MsgType::kAttachAccept);
  ASSERT_NE(accept, nullptr);
  auto count_before = rig.ue().last_accepted_dl_count();
  rig.tb.inject_downlink(rig.conn, *accept);
  rig.tb.run_until_quiet();
  EXPECT_EQ(rig.ue().replays_accepted(), 1);
  // I1: the downlink counter is reset to the replayed value.
  EXPECT_LE(rig.ue().last_accepted_dl_count().value_or(0), count_before.value_or(0));
}

TEST(ReplayPolicy, OaiAcceptsOnlyLastMessageReplay) {
  Rig rig(StackProfile::oai());
  ASSERT_TRUE(rig.attach());
  // Generate one more protected downlink so the attach_accept is stale.
  rig.tb.mme_configuration_update(rig.conn);
  rig.tb.run_until_quiet();
  const NasPdu* old_accept_ptr =
      rig.tb.last_downlink_of_type(rig.conn, MsgType::kAttachAccept);
  const NasPdu* last_cmd_ptr =
      rig.tb.last_downlink_of_type(rig.conn, MsgType::kConfigurationUpdateCommand);
  ASSERT_NE(old_accept_ptr, nullptr);
  ASSERT_NE(last_cmd_ptr, nullptr);
  // Copy before injecting: new captures may reallocate the capture vector.
  NasPdu old_accept = *old_accept_ptr;
  NasPdu last_cmd = *last_cmd_ptr;
  rig.tb.inject_downlink(rig.conn, old_accept);  // older than last: discarded
  rig.tb.run_until_quiet();
  EXPECT_EQ(rig.ue().replays_accepted(), 0);
  rig.tb.inject_downlink(rig.conn, last_cmd);  // the most recent: accepted
  rig.tb.run_until_quiet();
  EXPECT_EQ(rig.ue().replays_accepted(), 1);
}

// --- Plain-after-context (I2) ---------------------------------------------------

TEST(PlainPolicy, ClsIgnoresPlainGutiCommandAfterContext) {
  Rig rig(StackProfile::cls());
  ASSERT_TRUE(rig.attach());
  NasMessage cmd(MsgType::kGutiReallocationCommand);
  cmd.set_s("guti", "guti-attacker");
  rig.tb.inject_downlink(rig.conn, nas::encode_plain(cmd));
  rig.tb.run_until_quiet();
  EXPECT_EQ(rig.ue().plain_accepted_after_ctx(), 0);
  EXPECT_NE(rig.ue().guti(), "guti-attacker");
}

TEST(PlainPolicy, OaiProcessesPlainGutiCommandAfterContext) {
  Rig rig(StackProfile::oai());
  ASSERT_TRUE(rig.attach());
  NasMessage cmd(MsgType::kGutiReallocationCommand);
  cmd.set_s("guti", "guti-attacker");
  rig.tb.inject_downlink(rig.conn, nas::encode_plain(cmd));
  rig.tb.run_until_quiet();
  EXPECT_GE(rig.ue().plain_accepted_after_ctx(), 1);
  EXPECT_EQ(rig.ue().guti(), "guti-attacker");  // I2: GUTI poisoned in plaintext
}

// --- Reject handling (I4) --------------------------------------------------------

TEST(RejectPolicy, ClsDeletesContextOnReject) {
  Rig rig(StackProfile::cls());
  ASSERT_TRUE(rig.attach());
  NasMessage reject(MsgType::kAttachReject);
  reject.set_s("cause", "illegal_ue");
  rig.tb.inject_downlink(rig.conn, nas::encode_plain(reject));
  rig.tb.run_until_quiet();
  EXPECT_TRUE(is_deregistered(rig.ue().state()));
  EXPECT_FALSE(rig.ue().security().valid);
  EXPECT_EQ(rig.ue().guti(), "none");
  // Re-attach requires a fresh AKA run.
  rig.tb.power_on(rig.conn);
  rig.tb.run_until_quiet();
  EXPECT_TRUE(is_registered(rig.ue().state()));
  EXPECT_EQ(rig.ue().authentications_completed(), 2);
}

TEST(RejectPolicy, SrsKeepsContextAndBypassesSecurity) {
  Rig rig(StackProfile::srsue());
  ASSERT_TRUE(rig.attach());
  NasMessage reject(MsgType::kAttachReject);
  rig.tb.inject_downlink(rig.conn, nas::encode_plain(reject));
  rig.tb.run_until_quiet();
  EXPECT_TRUE(is_deregistered(rig.ue().state()));
  EXPECT_TRUE(rig.ue().security().valid);  // I4: context survives
  rig.tb.power_on(rig.conn);
  rig.tb.run_until_quiet();
  // Registered again without a second authentication run.
  EXPECT_TRUE(is_registered(rig.ue().state()));
  EXPECT_EQ(rig.ue().authentications_completed(), 1);
}

// --- Identity handling (I5) --------------------------------------------------------

TEST(IdentityPolicy, PlainRequestBeforeContextGetsImsi) {
  // Spec-mandated identification during initial attach.
  Rig rig(StackProfile::cls());
  rig.tb.power_on(rig.conn);  // do not run to completion
  NasMessage req(MsgType::kIdentityRequest);
  req.set_s("id_type", "imsi");
  auto out = rig.ue().handle_downlink(nas::encode_plain(req));
  ASSERT_EQ(out.size(), 1u);
  auto resp = nas::decode_payload(out[0].payload);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, MsgType::kIdentityResponse);
  EXPECT_EQ(resp->get_s("identity"), testing::kTestImsi);
}

TEST(IdentityPolicy, ClsIgnoresPlainRequestAfterContext) {
  Rig rig(StackProfile::cls());
  ASSERT_TRUE(rig.attach());
  NasMessage req(MsgType::kIdentityRequest);
  req.set_s("id_type", "imsi");
  auto out = rig.ue().handle_downlink(nas::encode_plain(req));
  EXPECT_TRUE(out.empty());
}

TEST(IdentityPolicy, OaiLeaksImsiToPlainRequestAfterContext) {
  Rig rig(StackProfile::oai());
  ASSERT_TRUE(rig.attach());
  NasMessage req(MsgType::kIdentityRequest);
  req.set_s("id_type", "imsi");
  auto out = rig.ue().handle_downlink(nas::encode_plain(req));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].sec_hdr, SecHdr::kPlain);  // I5: IMSI on the air in clear
  auto resp = nas::decode_payload(out[0].payload);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->get_s("identity"), testing::kTestImsi);
}

// --- Replayed authentication_request (P1) -----------------------------------------

TEST(AuthReplay, StaleChallengeDesynchronizesKeys) {
  // The P1 flow on the live stack (Fig. 4): the adversary elicits and
  // captures a challenge the victim never consumes, then replays it to the
  // registered victim.
  Rig rig(StackProfile::cls());
  ASSERT_TRUE(rig.attach());
  auto captured = testing::capture_dropped_challenge(rig.tb, rig.conn);
  ASSERT_TRUE(captured.has_value());
  ASSERT_TRUE(is_registered(rig.ue().state()));
  int auth_before = rig.ue().authentications_completed();

  // The days-old challenge is replayed: the USIM accepts the stale SQN and
  // regenerates session keys, desynchronizing UE and MME.
  auto out = rig.ue().handle_downlink(*captured);
  ASSERT_EQ(out.size(), 1u);
  auto resp = nas::decode_payload(out[0].payload);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, MsgType::kAuthenticationResponse);
  EXPECT_EQ(rig.ue().authentications_completed(), auth_before + 1);
  EXPECT_FALSE(rig.ue().security().valid);  // key desync: old context discarded
}

TEST(AuthReplay, DesyncMakesUeDiscardLegitimateTraffic) {
  // The P1 impact: after the desync the UE keeps discarding genuine MME
  // messages until re-authentication.
  Rig rig(StackProfile::cls());
  ASSERT_TRUE(rig.attach());
  auto captured = testing::capture_dropped_challenge(rig.tb, rig.conn);
  ASSERT_TRUE(captured.has_value());
  rig.tb.inject_downlink(rig.conn, *captured);
  rig.tb.run_until_quiet();
  int discards_before = rig.ue().protected_discards();
  rig.tb.mme_configuration_update(rig.conn);  // genuine protected traffic
  rig.tb.run_until_quiet();
  EXPECT_GT(rig.ue().protected_discards(), discards_before);
}

TEST(AuthReplay, FreshnessLimitMitigatesP1) {
  StackProfile mitigated = StackProfile::cls();
  mitigated.sqn_freshness_limit = 1;
  Rig rig(mitigated);
  ASSERT_TRUE(rig.attach());
  auto captured = testing::capture_dropped_challenge(rig.tb, rig.conn);
  ASSERT_TRUE(captured.has_value());
  // Age the captured challenge past the window L = 1.
  for (int i = 0; i < 2; ++i) {
    rig.tb.ue_detach(rig.conn);
    rig.tb.run_until_quiet();
    rig.tb.power_on(rig.conn);
    rig.tb.run_until_quiet();
  }

  auto out = rig.ue().handle_downlink(*captured);
  ASSERT_EQ(out.size(), 1u);
  auto resp = nas::decode_payload(out[0].payload);
  ASSERT_TRUE(resp.has_value());
  // With L enforced the stale challenge is refused (sync failure).
  EXPECT_EQ(resp->type, MsgType::kAuthenticationFailure);
  EXPECT_EQ(resp->get_s("cause"), "synch_failure");
  EXPECT_TRUE(rig.ue().security().valid);  // context untouched
}

// --- Misc handlers ------------------------------------------------------------------

TEST(UeHandlers, NetworkDetachClearsContext) {
  Rig rig(StackProfile::cls());
  ASSERT_TRUE(rig.attach());
  rig.tb.mme_detach(rig.conn);
  rig.tb.run_until_quiet();
  EXPECT_EQ(rig.ue().state(), EmmState::kDeregistered);
  EXPECT_FALSE(rig.ue().security().valid);
}

TEST(UeHandlers, ServiceRequestRefusedWhenNotRegistered) {
  Rig rig(StackProfile::cls());
  auto out = rig.ue().trigger_service_request();
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(is_deregistered(rig.ue().state()));
}

TEST(UeHandlers, PagingForForeignIdentityIgnored) {
  Rig rig(StackProfile::cls());
  ASSERT_TRUE(rig.attach());
  NasMessage page(MsgType::kPaging);
  page.set_s("identity", "guti-9999");
  auto out = rig.ue().handle_downlink(nas::encode_plain(page));
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(is_registered(rig.ue().state()));
}

TEST(UeHandlers, UndecodablePduDiscarded) {
  Rig rig(StackProfile::cls());
  ASSERT_TRUE(rig.attach());
  NasPdu garbage;
  garbage.sec_hdr = SecHdr::kIntegrityCiphered;
  garbage.count = 999;
  garbage.mac = 0xBAD;
  garbage.payload = {0x01, 0x02};
  auto out = rig.ue().handle_downlink(garbage);
  EXPECT_TRUE(out.empty());
  EXPECT_GE(rig.ue().protected_discards(), 1);
}

TEST(UeHandlers, SmcReplayAnsweredDistinguishably) {
  // I6 surface on the live stack.
  Rig rig(StackProfile::cls());
  ASSERT_TRUE(rig.attach());
  const NasPdu* smc = rig.tb.last_downlink_of_type(rig.conn, MsgType::kSecurityModeCommand);
  ASSERT_NE(smc, nullptr);
  auto out = rig.ue().handle_downlink(*smc);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_GE(rig.ue().replays_accepted(), 1);
}

TEST(UeHandlers, PlainDetachRequestProcessed) {
  // The deployed standards gap behind the prior detach attacks.
  Rig rig(StackProfile::cls());
  ASSERT_TRUE(rig.attach());
  NasMessage req(MsgType::kDetachRequest);
  req.set_s("detach_type", "reattach_required");
  auto out = rig.ue().handle_downlink(nas::encode_plain(req));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(is_deregistered(rig.ue().state()));
}

TEST(UeHandlers, TraceDisabledStillFunctions) {
  // A null trace logger (uninstrumented build) must not change behavior.
  ue::UeNas ue(StackProfile::cls(), testing::kTestKey, testing::kTestImsi, nullptr);
  auto out = ue.power_on_attach();
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(ue.state(), EmmState::kRegisteredInitiated);
}

}  // namespace
}  // namespace procheck::ue
