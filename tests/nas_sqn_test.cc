// Tests for the TS 33.102 Annex C sequence-number scheme — the root cause
// of the paper's P1/P2 attacks (Fig. 5) and the I3 deviation. The key
// behavioral facts under test:
//   * out-of-order *stale* SQNs are accepted when they land in an SQN-array
//     slot with an older SEQ (up to 31 captured challenges stay valid);
//   * the optional freshness limit L (Annex C.2.2) closes that window;
//   * equal-SEQ re-acceptance only happens under the I3 deviation.
#include <gtest/gtest.h>

#include "nas/crypto.h"
#include "nas/sqn.h"

namespace procheck::nas {
namespace {

constexpr std::uint64_t kK = 0x5EC2E7ULL;

struct Challenge {
  Bytes rand;
  Bytes autn;
};

Challenge make_challenge(std::uint64_t k, Sqn sqn, std::uint8_t rand_tag = 0) {
  Challenge c;
  c.rand = {0xA0, rand_tag, static_cast<std::uint8_t>(sqn.seq & 0xFF),
            static_cast<std::uint8_t>(sqn.ind & 0xFF)};
  Autn autn;
  autn.sqn_xor_ak = (sqn.value() ^ f5_ak(k, c.rand)) & kSqnMask;
  autn.amf = 0x8000;
  autn.mac = f1_mac(k, sqn.value(), c.rand, autn.amf);
  c.autn = autn.encode();
  return c;
}

// --- Sqn value packing ---------------------------------------------------

TEST(Sqn, PackUnpack) {
  Sqn s{0x1234, 17};
  Sqn back = Sqn::from_value(s.value());
  EXPECT_EQ(back.seq, s.seq);
  EXPECT_EQ(back.ind, s.ind);
}

TEST(Sqn, IndOccupiesLowBits) {
  Sqn s{1, 0};
  EXPECT_EQ(s.value(), 1u << kIndBits);
  Sqn s2{0, 5};
  EXPECT_EQ(s2.value(), 5u);
}

TEST(Sqn, FromValueMasks48Bits) {
  Sqn s = Sqn::from_value(~0ULL);
  EXPECT_EQ(s.value(), kSqnMask);
}

// --- Generator -----------------------------------------------------------

TEST(SqnGenerator, IncrementsSeqAndCyclesInd) {
  SqnGenerator gen;
  Sqn first = gen.next();
  EXPECT_EQ(first.seq, 1u);
  EXPECT_EQ(first.ind, 0u);
  for (std::uint32_t i = 1; i < kIndCount + 2; ++i) {
    Sqn s = gen.next();
    EXPECT_EQ(s.seq, i + 1);
    EXPECT_EQ(s.ind, i % kIndCount);
  }
}

TEST(SqnGenerator, ResumesFromExplicitState) {
  SqnGenerator gen(100, 5);
  Sqn s = gen.next();
  EXPECT_EQ(s.seq, 101u);
  EXPECT_EQ(s.ind, 6u);
}

// --- USIM basic verification ----------------------------------------------

TEST(Usim, AcceptsFreshChallenge) {
  Usim usim(kK);
  SqnGenerator gen;
  Challenge c = make_challenge(kK, gen.next());
  auto out = usim.authenticate(c.rand, c.autn);
  EXPECT_EQ(out.result, Usim::Result::kOk);
  EXPECT_EQ(out.res, f2_res(kK, c.rand));
  EXPECT_EQ(out.kasme, derive_kasme(kK, c.rand, out.received_sqn.value()));
  EXPECT_FALSE(out.equal_seq_accepted);
}

TEST(Usim, RejectsWrongKeyAsMacFailure) {
  Usim usim(kK);
  SqnGenerator gen;
  Challenge c = make_challenge(kK ^ 1, gen.next());  // built under another key
  EXPECT_EQ(usim.authenticate(c.rand, c.autn).result, Usim::Result::kMacFailure);
}

TEST(Usim, RejectsTamperedAutnAsMacFailure) {
  Usim usim(kK);
  SqnGenerator gen;
  Challenge c = make_challenge(kK, gen.next());
  c.autn.back() ^= 0xFF;
  EXPECT_EQ(usim.authenticate(c.rand, c.autn).result, Usim::Result::kMacFailure);
}

TEST(Usim, RejectsMalformedAutn) {
  Usim usim(kK);
  EXPECT_EQ(usim.authenticate({1, 2}, {0x00}).result, Usim::Result::kMacFailure);
}

TEST(Usim, UpdatesArraySlotOnAccept) {
  Usim usim(kK);
  SqnGenerator gen;
  Sqn sqn = gen.next();
  Challenge c = make_challenge(kK, sqn);
  ASSERT_EQ(usim.authenticate(c.rand, c.autn).result, Usim::Result::kOk);
  EXPECT_EQ(usim.seq_at(sqn.ind), sqn.seq);
  EXPECT_EQ(usim.highest_accepted_seq(), sqn.seq);
}

TEST(Usim, ReplayOfSameChallengeIsSyncFailure) {
  Usim usim(kK);
  SqnGenerator gen;
  Challenge c = make_challenge(kK, gen.next());
  ASSERT_EQ(usim.authenticate(c.rand, c.autn).result, Usim::Result::kOk);
  auto replay = usim.authenticate(c.rand, c.autn);
  EXPECT_EQ(replay.result, Usim::Result::kSyncFailure);
  EXPECT_FALSE(replay.auts.empty());
}

TEST(Usim, AutsCarriesHighestAcceptedSqn) {
  Usim usim(kK);
  SqnGenerator gen;
  Challenge c1 = make_challenge(kK, gen.next(), 1);
  Challenge c2 = make_challenge(kK, gen.next(), 2);
  ASSERT_EQ(usim.authenticate(c1.rand, c1.autn).result, Usim::Result::kOk);
  ASSERT_EQ(usim.authenticate(c2.rand, c2.autn).result, Usim::Result::kOk);
  auto fail = usim.authenticate(c1.rand, c1.autn);  // stale same-slot replay
  ASSERT_EQ(fail.result, Usim::Result::kSyncFailure);
  auto auts = Auts::decode(fail.auts);
  ASSERT_TRUE(auts.has_value());
  std::uint64_t sqn_ms = (auts->sqn_ms_xor_ak ^ f5star_ak(kK, c1.rand)) & kSqnMask;
  EXPECT_EQ(Sqn::from_value(sqn_ms).seq, usim.highest_accepted_seq());
  EXPECT_EQ(auts->mac_s, f1star_mac(kK, sqn_ms, c1.rand));
}

// --- The P1 root cause: stale out-of-order SQNs are accepted ---------------

TEST(Usim, AcceptsStaleOutOfOrderSqn_TheP1Vulnerability) {
  Usim usim(kK);
  SqnGenerator gen;
  // Adversary captures (and drops) challenge #1; the network proceeds with
  // #2..#4, all consumed normally.
  Sqn captured_sqn = gen.next();
  Challenge captured = make_challenge(kK, captured_sqn, 99);
  for (int i = 0; i < 3; ++i) {
    Challenge c = make_challenge(kK, gen.next(), static_cast<std::uint8_t>(i));
    ASSERT_EQ(usim.authenticate(c.rand, c.autn).result, Usim::Result::kOk);
  }
  // The days-old challenge replays successfully: its IND slot still holds
  // SEQ 0 while the received SEQ is 1.
  auto replay = usim.authenticate(captured.rand, captured.autn);
  EXPECT_EQ(replay.result, Usim::Result::kOk);
}

TEST(Usim, AcceptsUpTo31StaleChallenges) {
  // With IND = 5 bits the USIM accepts up to kIndCount - 1 captured
  // challenges (the paper: "the USIM accepts 31 previously captured stale
  // authentication_request messages").
  Usim usim(kK);
  SqnGenerator gen;
  std::vector<Challenge> captured;
  std::vector<Sqn> sqns;
  for (std::uint32_t i = 0; i < kIndCount - 1; ++i) {
    Sqn s = gen.next();
    sqns.push_back(s);
    captured.push_back(make_challenge(kK, s, static_cast<std::uint8_t>(i)));
  }
  // One fresh challenge is consumed; it lands on IND 31.
  Challenge fresh = make_challenge(kK, gen.next(), 200);
  ASSERT_EQ(usim.authenticate(fresh.rand, fresh.autn).result, Usim::Result::kOk);
  // All 31 captured challenges now replay successfully.
  for (std::uint32_t i = 0; i < captured.size(); ++i) {
    EXPECT_EQ(usim.authenticate(captured[i].rand, captured[i].autn).result,
              Usim::Result::kOk)
        << "captured challenge " << i;
  }
}

// --- Freshness limit L (the Annex C.2.2 mitigation, ablation knob) ---------

TEST(Usim, FreshnessLimitRejectsStaleSqn) {
  UsimConfig cfg;
  cfg.freshness_limit = 1;
  Usim usim(kK, cfg);
  SqnGenerator gen;
  Sqn captured_sqn = gen.next();
  Challenge captured = make_challenge(kK, captured_sqn, 99);
  for (int i = 0; i < 3; ++i) {
    Challenge c = make_challenge(kK, gen.next(), static_cast<std::uint8_t>(i));
    ASSERT_EQ(usim.authenticate(c.rand, c.autn).result, Usim::Result::kOk);
  }
  // SEQ_MS - SEQ_received = 4 - 1 > L = 1: rejected.
  EXPECT_EQ(usim.authenticate(captured.rand, captured.autn).result,
            Usim::Result::kSyncFailure);
}

TEST(Usim, FreshnessLimitStillAcceptsRecentOutOfOrder) {
  UsimConfig cfg;
  cfg.freshness_limit = 10;
  Usim usim(kK, cfg);
  SqnGenerator gen;
  Sqn first = gen.next();
  Challenge c1 = make_challenge(kK, first, 1);
  Challenge c2 = make_challenge(kK, gen.next(), 2);
  // Delivered out of order but within the window: both accepted.
  ASSERT_EQ(usim.authenticate(c2.rand, c2.autn).result, Usim::Result::kOk);
  EXPECT_EQ(usim.authenticate(c1.rand, c1.autn).result, Usim::Result::kOk);
}

// --- I3 deviation: equal-SEQ acceptance -------------------------------------

TEST(Usim, ConformantRejectsEqualSeq) {
  Usim usim(kK);
  SqnGenerator gen;
  Challenge c = make_challenge(kK, gen.next());
  ASSERT_EQ(usim.authenticate(c.rand, c.autn).result, Usim::Result::kOk);
  EXPECT_EQ(usim.authenticate(c.rand, c.autn).result, Usim::Result::kSyncFailure);
}

TEST(Usim, I3DeviationAcceptsEqualSeqAndFlagsIt) {
  UsimConfig cfg;
  cfg.accept_equal_seq = true;
  Usim usim(kK, cfg);
  SqnGenerator gen;
  Challenge c = make_challenge(kK, gen.next());
  ASSERT_EQ(usim.authenticate(c.rand, c.autn).result, Usim::Result::kOk);
  auto replay = usim.authenticate(c.rand, c.autn);
  EXPECT_EQ(replay.result, Usim::Result::kOk);
  EXPECT_TRUE(replay.equal_seq_accepted);  // the logged counter_reset atom
}

// --- Property-style sweep: monotone in-order delivery always accepted -------

class InOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(InOrderSweep, AllInOrderChallengesAccepted) {
  Usim usim(kK);
  SqnGenerator gen;
  for (int i = 0; i < GetParam(); ++i) {
    Challenge c = make_challenge(kK, gen.next(), static_cast<std::uint8_t>(i & 0xFF));
    ASSERT_EQ(usim.authenticate(c.rand, c.autn).result, Usim::Result::kOk) << i;
  }
  EXPECT_EQ(usim.highest_accepted_seq(), static_cast<std::uint64_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Lengths, InOrderSweep, ::testing::Values(1, 5, 32, 33, 100));

class StaleWindowSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StaleWindowSweep, StaleAcceptanceDependsOnSlotAge) {
  // Capture challenge #1, consume `gap` further challenges, then replay.
  // The replay is accepted iff the captured challenge's IND slot was not
  // overwritten in between (gap < kIndCount).
  const std::uint32_t gap = GetParam();
  Usim usim(kK);
  SqnGenerator gen;
  Sqn captured_sqn = gen.next();
  Challenge captured = make_challenge(kK, captured_sqn, 77);
  for (std::uint32_t i = 0; i < gap; ++i) {
    Challenge c = make_challenge(kK, gen.next(), static_cast<std::uint8_t>(i & 0xFF));
    ASSERT_EQ(usim.authenticate(c.rand, c.autn).result, Usim::Result::kOk);
  }
  auto replay = usim.authenticate(captured.rand, captured.autn);
  if (gap >= kIndCount) {
    // The slot has been overwritten with a larger SEQ: rejected.
    EXPECT_EQ(replay.result, Usim::Result::kSyncFailure);
  } else {
    // The captured challenge's slot is untouched (its SEQ is still below
    // the received one): the stale challenge is accepted.
    EXPECT_EQ(replay.result, Usim::Result::kOk);
  }
}

INSTANTIATE_TEST_SUITE_P(Gaps, StaleWindowSweep,
                         ::testing::Values(0u, 1u, 2u, 15u, 31u, 32u, 40u));

}  // namespace
}  // namespace procheck::nas
