// 5G NR stack tests: the paper's "Impact on 5G" claims — P1/P2 carry over
// (identical SQN scheme), P3 carries over (T3555 bounded retries on the
// configuration update), while SUCI concealment removes LTE-style IMSI
// catching — and the portability claim: the unchanged extractor and
// threat-composer run on 5G logs.
#include <gtest/gtest.h>

#include "extractor/extractor.h"
#include "nr/nr_stack.h"
#include "threat/compose.h"

namespace procheck::nr {
namespace {

using nas::MsgType;
using nas::NasMessage;
using nas::NasPdu;

struct Rig {
  std::uint64_t hn_key = 0x5159;
  Amf amf;
  NrUe ue;
  Rig(instrument::TraceLogger* trace = nullptr,
      std::optional<std::uint64_t> freshness = std::nullopt)
      : amf(0x5159, 0xA3F, trace), ue(0xFEED5, "001010987654321", 0x5159, trace, freshness) {
    amf.provision_subscriber("001010987654321", 0xFEED5);
  }
  bool do_register() { return complete_registration(ue, amf); }
};

TEST(Suci, ConcealmentHidesSupi) {
  std::string suci = conceal_supi("001010987654321", 0x5159);
  EXPECT_EQ(suci.find("001010987654321"), std::string::npos);
  EXPECT_EQ(suci, conceal_supi("001010987654321", 0x5159));      // deterministic
  EXPECT_NE(suci, conceal_supi("001010987654322", 0x5159));      // identity-bound
  EXPECT_NE(suci, conceal_supi("001010987654321", 0x5158));      // key-bound
}

TEST(Registration, CompletesWithGuti) {
  Rig rig;
  ASSERT_TRUE(rig.do_register());
  EXPECT_NE(rig.ue.guti(), "none");
  EXPECT_EQ(rig.ue.guti(), rig.amf.assigned_guti());
  EXPECT_EQ(rig.ue.authentications_completed(), 1);
}

TEST(Registration, SupiNeverOnTheAirInClear) {
  // Capture every uplink PDU and check the SUPI digits never appear in any
  // plaintext payload — the 5G privacy improvement over LTE attach.
  Rig rig;
  std::vector<NasPdu> uplink = rig.ue.power_on_register();
  std::vector<NasPdu> downlink;
  bool leaked = false;
  auto check = [&leaked, &rig](const NasPdu& pdu) {
    if (pdu.sec_hdr != nas::SecHdr::kPlain) return;  // ciphered is fine
    auto msg = nas::decode_payload(pdu.payload);
    if (!msg) return;
    for (const auto& [k, v] : msg->s) {
      leaked = leaked || v.find(rig.ue.supi()) != std::string::npos;
    }
  };
  for (int step = 0; step < 100 && (!uplink.empty() || !downlink.empty()); ++step) {
    if (!downlink.empty()) {
      NasPdu pdu = downlink.front();
      downlink.erase(downlink.begin());
      for (auto& out : rig.ue.handle_downlink(pdu)) {
        check(out);
        uplink.push_back(std::move(out));
      }
    } else {
      NasPdu pdu = uplink.front();
      check(pdu);
      uplink.erase(uplink.begin());
      for (auto& out : rig.amf.handle_uplink(pdu)) downlink.push_back(std::move(out));
    }
  }
  EXPECT_TRUE(rig.ue.state() == FgmmState::kRegistered);
  EXPECT_FALSE(leaked);
}

TEST(Registration, IdentityRequestYieldsSuciNotSupi) {
  Rig rig;
  NasMessage req(MsgType::kIdentityRequest);
  auto out = rig.ue.handle_downlink(nas::encode_plain(req));
  ASSERT_EQ(out.size(), 1u);
  auto resp = nas::decode_payload(out[0].payload);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->get_s("identity"), conceal_supi(rig.ue.supi(), 0x5159));
}

TEST(Registration, UnknownSuciRejected) {
  Amf amf(0x5159);
  NrUe rogue(0xBAD, "999999999999999", 0x5159);  // not provisioned
  exchange(rogue, amf, rogue.power_on_register());
  EXPECT_EQ(rogue.state(), FgmmState::kDeregistered);
}

TEST(Registration, DeregistrationRoundTrip) {
  Rig rig;
  ASSERT_TRUE(rig.do_register());
  exchange(rig.ue, rig.amf, rig.ue.trigger_deregister());
  EXPECT_EQ(rig.ue.state(), FgmmState::kDeregistered);
  EXPECT_FALSE(rig.ue.security().valid);
}

TEST(Registration, SyncFailureResynchronizes) {
  Rig rig;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(rig.do_register());
    exchange(rig.ue, rig.amf, rig.ue.trigger_deregister());
  }
  rig.amf.debug_set_sqn("001010987654321", 0, 0);
  ASSERT_TRUE(rig.do_register());  // recovers via AUTS
}

// --- "Impact on 5G": P1 carries over ------------------------------------------

TEST(FiveGImpact, P1StaleChallengeReplayDesynchronizesKeys) {
  // The SQN scheme is exactly the same in 5G: capture a challenge the UE
  // never consumed, register normally, replay — accepted, keys desync.
  Rig rig;
  // Elicit a challenge via a rogue registration with the victim's SUCI and
  // capture it without delivering.
  NasMessage rogue_reg(MsgType::kRegistrationRequest);
  rogue_reg.set_s("identity", conceal_supi(rig.ue.supi(), 0x5159));
  auto challenge = rig.amf.handle_uplink(nas::encode_plain(rogue_reg));
  ASSERT_EQ(challenge.size(), 1u);
  NasPdu captured = challenge[0];  // dropped in transit

  ASSERT_TRUE(rig.do_register());
  int auth_before = rig.ue.authentications_completed();
  auto out = rig.ue.handle_downlink(captured);
  ASSERT_EQ(out.size(), 1u);
  auto resp = nas::decode_payload(out[0].payload);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, MsgType::kAuthenticationResponse);  // stale SQN accepted!
  EXPECT_EQ(rig.ue.authentications_completed(), auth_before + 1);
  EXPECT_FALSE(rig.ue.security().valid);  // 5G P1: key desynchronization
}

TEST(FiveGImpact, FreshnessLimitMitigatesP1InFiveGToo) {
  instrument::TraceLogger* no_trace = nullptr;
  Rig rig(no_trace, /*freshness=*/std::uint64_t{1});
  NasMessage rogue_reg(MsgType::kRegistrationRequest);
  rogue_reg.set_s("identity", conceal_supi(rig.ue.supi(), 0x5159));
  auto challenge = rig.amf.handle_uplink(nas::encode_plain(rogue_reg));
  ASSERT_EQ(challenge.size(), 1u);
  NasPdu captured = challenge[0];
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(rig.do_register());
    exchange(rig.ue, rig.amf, rig.ue.trigger_deregister());
  }
  auto out = rig.ue.handle_downlink(captured);
  ASSERT_EQ(out.size(), 1u);
  auto resp = nas::decode_payload(out[0].payload);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, MsgType::kAuthenticationFailure);
}

// --- "Impact on 5G": P3 carries over (T3555) -----------------------------------

TEST(FiveGImpact, P3ConfigurationUpdateAbortsAfterFiveDrops) {
  Rig rig;
  ASSERT_TRUE(rig.do_register());
  std::string guti_before = rig.ue.guti();
  // The adversary drops the command and all four retransmissions.
  auto first = rig.amf.start_configuration_update();
  ASSERT_EQ(first.size(), 1u);  // dropped
  int transmissions = 1;
  for (int tick = 0; tick < Amf::kTimerPeriod * (Amf::kMaxRetransmissions + 2); ++tick) {
    transmissions += static_cast<int>(rig.amf.tick().size());  // all dropped
  }
  EXPECT_EQ(transmissions, 1 + Amf::kMaxRetransmissions);  // 5 total tries
  EXPECT_EQ(rig.amf.procedures_aborted(), 1);
  EXPECT_FALSE(rig.amf.has_pending_procedure());
  EXPECT_EQ(rig.ue.guti(), guti_before);  // the 5G-GUTI never rotated
}

TEST(FiveGImpact, ConfigurationUpdateCompletesUndisturbed) {
  Rig rig;
  ASSERT_TRUE(rig.do_register());
  std::string guti_before = rig.ue.guti();
  exchange(rig.ue, rig.amf, {}, 0);  // no-op
  auto cmds = rig.amf.start_configuration_update();
  ASSERT_EQ(cmds.size(), 1u);
  std::vector<NasPdu> uplink;
  for (auto& out : rig.ue.handle_downlink(cmds[0])) uplink.push_back(out);
  exchange(rig.ue, rig.amf, uplink);
  EXPECT_FALSE(rig.amf.has_pending_procedure());
  EXPECT_NE(rig.ue.guti(), guti_before);
}

// --- Portability: the unchanged pipeline runs on 5G logs ------------------------

extractor::Signatures nr_signatures() {
  extractor::Signatures sigs;
  for (std::string_view s : kNrStateNames) sigs.state_signatures.emplace_back(s);
  sigs.incoming_prefixes = {"recv_"};
  sigs.outgoing_prefixes = {"send_"};
  return sigs;
}

TEST(FiveGPipeline, ExtractorRunsOnFiveGLogs) {
  instrument::TraceLogger trace;
  Amf amf(0x5159, 0xA3F, nullptr);  // instrument only the UE layer
  NrUe ue(0xFEED5, "001010987654321", 0x5159, &trace);
  amf.provision_subscriber("001010987654321", 0xFEED5);
  ASSERT_TRUE(complete_registration(ue, amf));
  exchange(ue, amf, ue.trigger_deregister());
  ASSERT_TRUE(complete_registration(ue, amf));

  extractor::ExtractionOptions opts;
  opts.initial_state = "FIVEGMM_DEREGISTERED";
  fsm::Fsm m = extractor::extract(trace.records(), nr_signatures(), opts);
  EXPECT_GE(m.stats().states, 3u);
  EXPECT_TRUE(m.conditions().count("registration_accept"));
  EXPECT_TRUE(m.conditions().count("authentication_request"));
  EXPECT_TRUE(m.actions().count("registration_complete"));
}

TEST(FiveGPipeline, ComposerRunsOnFiveGMachines) {
  instrument::TraceLogger trace;
  Amf amf(0x5159, 0xA3F, nullptr);
  NrUe ue(0xFEED5, "001010987654321", 0x5159, &trace);
  amf.provision_subscriber("001010987654321", 0xFEED5);
  ASSERT_TRUE(complete_registration(ue, amf));

  extractor::ExtractionOptions opts;
  opts.chain_substates = false;
  opts.initial_state = "FIVEGMM_DEREGISTERED";
  fsm::Fsm ue_fsm = extractor::extract_basic(trace.records(), nr_signatures(), opts);

  // A minimal manual 5G AMF model (as the paper used a manual MME model).
  fsm::Fsm amf_fsm;
  amf_fsm.set_initial("AMF_DEREGISTERED");
  fsm::Transition t;
  t.from = "AMF_DEREGISTERED";
  t.to = "AMF_COMMON";
  t.conditions = {"registration_request"};
  t.actions = {"authentication_request"};
  amf_fsm.add_transition(t);

  threat::ThreatModel tm = threat::compose(ue_fsm, amf_fsm);
  EXPECT_GE(tm.dl_index("authentication_request"), 1);
  EXPECT_GT(tm.model.commands().size(), 5u);
}

}  // namespace
}  // namespace procheck::nr
