// Testbed tests: channels, the MITM interception point (drop / replace /
// capture), multi-UE support, and the white-box decode used by verdicts.
#include <gtest/gtest.h>

#include "testing/conformance.h"
#include "testing/testbed.h"
#include "ue/emm_state.h"

namespace procheck::testing {
namespace {

using nas::MsgType;
using nas::NasMessage;
using nas::NasPdu;

TEST(Testbed, AttachFlowCompletes) {
  Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), kTestImsi, kTestKey);
  EXPECT_TRUE(complete_attach(tb, conn));
}

TEST(Testbed, CapturesBothDirections) {
  Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), kTestImsi, kTestKey);
  ASSERT_TRUE(complete_attach(tb, conn));
  EXPECT_GE(tb.downlink_captures().size(), 3u);  // challenge, SMC, accept
  EXPECT_GE(tb.uplink_captures().size(), 4u);    // attach, auth resp, smc compl, complete
  for (const Capture& c : tb.downlink_captures()) EXPECT_TRUE(c.delivered);
}

TEST(Testbed, CapturesCarryClearView) {
  Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), kTestImsi, kTestKey);
  ASSERT_TRUE(complete_attach(tb, conn));
  bool saw_attach_accept = false;
  for (const Capture& c : tb.downlink_captures()) {
    if (c.clear && c.clear->type == MsgType::kAttachAccept) saw_attach_accept = true;
  }
  EXPECT_TRUE(saw_attach_accept);  // despite being ciphered on the wire
}

TEST(Testbed, DropInterceptorRecordsUndelivered) {
  Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), kTestImsi, kTestKey);
  tb.set_downlink_interceptor([](int, const NasPdu&) { return AdversaryAction::drop(); });
  tb.power_on(conn);
  tb.run_until_quiet();
  EXPECT_FALSE(ue::is_registered(tb.ue(conn).state()));
  ASSERT_FALSE(tb.downlink_captures().empty());
  EXPECT_FALSE(tb.downlink_captures().front().delivered);
}

TEST(Testbed, ReplaceInterceptorSubstitutesMessage) {
  Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), kTestImsi, kTestKey);
  // Replace the first challenge with an attach_reject: UE deregisters.
  bool replaced = false;
  tb.set_downlink_interceptor([&replaced](int, const NasPdu&) {
    if (replaced) return AdversaryAction::pass();
    replaced = true;
    NasMessage reject(MsgType::kAttachReject);
    return AdversaryAction::replace(nas::encode_plain(reject));
  });
  tb.power_on(conn);
  tb.run_until_quiet();
  EXPECT_TRUE(ue::is_deregistered(tb.ue(conn).state()));
}

TEST(Testbed, ClearInterceptorsRestoresPassThrough) {
  Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), kTestImsi, kTestKey);
  tb.set_downlink_interceptor([](int, const NasPdu&) { return AdversaryAction::drop(); });
  tb.clear_interceptors();
  EXPECT_TRUE(complete_attach(tb, conn));
}

TEST(Testbed, MultipleUesIndependentSessions) {
  Testbed tb;
  int a = tb.add_ue(ue::StackProfile::cls(), "001010000000001", 0xA);
  int b = tb.add_ue(ue::StackProfile::cls(), "001010000000002", 0xB);
  EXPECT_TRUE(complete_attach(tb, a));
  EXPECT_TRUE(complete_attach(tb, b));
  EXPECT_NE(tb.ue(a).guti(), tb.ue(b).guti());
  EXPECT_NE(tb.mme().guti(a), tb.mme().guti(b));
}

TEST(Testbed, InjectionReachesTheRightUe) {
  Testbed tb;
  int a = tb.add_ue(ue::StackProfile::cls(), "001010000000001", 0xA);
  int b = tb.add_ue(ue::StackProfile::cls(), "001010000000002", 0xB);
  ASSERT_TRUE(complete_attach(tb, a));
  ASSERT_TRUE(complete_attach(tb, b));
  NasMessage reject(MsgType::kAttachReject);
  tb.inject_downlink(a, nas::encode_plain(reject));
  tb.run_until_quiet();
  EXPECT_TRUE(ue::is_deregistered(tb.ue(a).state()));
  EXPECT_TRUE(ue::is_registered(tb.ue(b).state()));
}

TEST(Testbed, LastDownlinkOfTypeFindsCipheredMessages) {
  Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), kTestImsi, kTestKey);
  ASSERT_TRUE(complete_attach(tb, conn));
  EXPECT_NE(tb.last_downlink_of_type(conn, MsgType::kAttachAccept), nullptr);
  EXPECT_NE(tb.last_downlink_of_type(conn, MsgType::kAuthenticationRequest), nullptr);
  EXPECT_EQ(tb.last_downlink_of_type(conn, MsgType::kPaging), nullptr);
}

TEST(Testbed, RunUntilQuietBoundsSteps) {
  Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), kTestImsi, kTestKey);
  // A reflector that replays every downlink back as downlink forever would
  // loop; the step bound must terminate the run regardless.
  tb.set_downlink_interceptor([&tb, conn](int, const NasPdu& pdu) {
    tb.inject_downlink(conn, pdu);
    return AdversaryAction::pass();
  });
  tb.power_on(conn);
  // The bound must terminate the run AND report the livelock.
  EXPECT_FALSE(tb.run_until_quiet(50));
  EXPECT_EQ(tb.step_limit_hits(), 1u);
}

TEST(Testbed, RunUntilQuietReportsQuiescence) {
  Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), kTestImsi, kTestKey);
  tb.power_on(conn);
  EXPECT_TRUE(tb.run_until_quiet());
  EXPECT_EQ(tb.step_limit_hits(), 0u);
  // Draining an already-quiet testbed is trivially quiescent.
  EXPECT_TRUE(tb.run_until_quiet());
}

TEST(Testbed, DelayedPdusDrainToQuiescence) {
  // A delay-heavy channel parks PDUs; aging them counts as progress and the
  // run only reports quiet once every parked PDU was delivered.
  Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), kTestImsi, kTestKey);
  ChannelConfig cfg;
  cfg.downlink.delay = 1.0;  // every downlink is parked at least one step
  cfg.max_delay_steps = 2;
  tb.set_channel(cfg);
  tb.power_on(conn);
  EXPECT_TRUE(tb.run_until_quiet());
  EXPECT_EQ(tb.step_limit_hits(), 0u);
}

TEST(Testbed, QuiesceReportSurfacesStepBudgetAsVerdict) {
  Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), kTestImsi, kTestKey);
  tb.set_downlink_interceptor([&tb, conn](int, const NasPdu& pdu) {
    tb.inject_downlink(conn, pdu);
    return AdversaryAction::pass();
  });
  tb.power_on(conn);
  Testbed::QuiesceReport report = tb.run_until_quiet_report(50);
  EXPECT_FALSE(report.quiet());
  EXPECT_EQ(report.verdict, Testbed::QuiesceReport::Verdict::kStepBudget);
  EXPECT_EQ(report.deliveries, 50);
  EXPECT_EQ(tb.step_limit_hits(), 1u);

  // A quiescent scenario reports kQuiet with the work it actually did.
  Testbed clean;
  int c2 = clean.add_ue(ue::StackProfile::cls(), kTestImsi, kTestKey);
  clean.power_on(c2);
  Testbed::QuiesceReport ok = clean.run_until_quiet_report();
  EXPECT_TRUE(ok.quiet());
  EXPECT_GT(ok.deliveries, 0);
  EXPECT_EQ(ok.horizon_skips, 0);  // no channel, no delay line
}

TEST(Testbed, QuiesceHorizonSkipBoundsIterationsByDeliveries) {
  // With only parked traffic left, the logical clock must jump to the next
  // release instead of burning one step per idle tick: a delay draw near the
  // step budget would otherwise read as a livelock.
  Testbed tb;
  int conn = tb.add_ue(ue::StackProfile::cls(), kTestImsi, kTestKey);
  ChannelConfig cfg;
  cfg.downlink.delay = 1.0;  // every downlink parks
  cfg.max_delay_steps = 40;  // close to the tight budget below
  cfg.seed = 11;
  tb.set_channel(cfg);
  tb.power_on(conn);
  Testbed::QuiesceReport report = tb.run_until_quiet_report(48);
  EXPECT_TRUE(report.quiet()) << "idle delay ticks consumed the step budget";
  EXPECT_GT(report.horizon_skips, 0);
  EXPECT_EQ(tb.step_limit_hits(), 0u);
}

TEST(Testbed, P2LinkabilityScenario) {
  // Fig. 6 end-to-end: replay the victim's captured challenge to every UE
  // in the cell; only the victim answers with authentication_response.
  Testbed tb;
  int victim = tb.add_ue(ue::StackProfile::cls(), "001010000000001", 0xA);
  int other = tb.add_ue(ue::StackProfile::cls(), "001010000000002", 0xB);
  ASSERT_TRUE(complete_attach(tb, victim));
  ASSERT_TRUE(complete_attach(tb, other));
  auto captured = capture_dropped_challenge(tb, victim);
  ASSERT_TRUE(captured.has_value());

  auto victim_resp = tb.ue(victim).handle_downlink(*captured);
  auto other_resp = tb.ue(other).handle_downlink(*captured);
  ASSERT_EQ(victim_resp.size(), 1u);
  ASSERT_EQ(other_resp.size(), 1u);
  auto vm = nas::decode_payload(victim_resp[0].payload);
  auto om = nas::decode_payload(other_resp[0].payload);
  ASSERT_TRUE(vm.has_value());
  ASSERT_TRUE(om.has_value());
  EXPECT_EQ(vm->type, MsgType::kAuthenticationResponse);   // victim: accepts
  EXPECT_EQ(om->type, MsgType::kAuthenticationFailure);    // others: MAC failure
  EXPECT_EQ(om->get_s("cause"), "mac_failure");
}

}  // namespace
}  // namespace procheck::testing
