// Deterministic structure-aware fuzz smoke for the two parsing frontends:
// the NAS payload/PDU codec (nas/messages.h) and the execution-log parser
// (instrument/trace_log.h). A seeded mutator perturbs members of a valid
// corpus — bit flips, truncations, extensions, splices — and the harness
// asserts the frontends' contracts on every input:
//
//   * no crash / sanitizer trip (the suite runs under the asan preset too);
//   * decode either rejects (nullopt) or returns a value whose re-encoding
//     decodes to the same value (decode–encode–decode agreement);
//   * the log parser's accounting is conserved (records + skipped +
//     truncated lines never exceed input lines) and render→reparse agrees.
//
// This is a smoke, not a campaign: a few thousand deterministic inputs in
// ~2 s, with the accept/reject coverage counters printed so a shrinking
// corpus is visible in CI logs.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "diff/report_json.h"
#include "instrument/trace_log.h"
#include "learner/learn_supervisor.h"
#include "learner/lstar.h"
#include "learner/sul.h"
#include "nas/messages.h"
#include "net/socket.h"
#include "net/sul_server.h"
#include "net/wire.h"
#include "ue/profile.h"

namespace procheck {
namespace {

// --- Seeded structure-aware mutator ----------------------------------------

Bytes mutate_bytes(const Bytes& input, Rng& rng) {
  Bytes out = input;
  switch (rng.next_below(5)) {
    case 0: {  // bit flip
      if (out.empty()) break;
      std::size_t i = rng.next_below(out.size());
      out[i] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
      break;
    }
    case 1: {  // truncate
      if (out.empty()) break;
      out.resize(rng.next_below(out.size()));
      break;
    }
    case 2: {  // extend with random tail
      Bytes tail = rng.next_bytes(1 + rng.next_below(16));
      out.insert(out.end(), tail.begin(), tail.end());
      break;
    }
    case 3: {  // overwrite a window
      if (out.empty()) break;
      std::size_t i = rng.next_below(out.size());
      std::size_t n = 1 + rng.next_below(8);
      for (std::size_t k = i; k < out.size() && k < i + n; ++k) {
        out[k] = static_cast<std::uint8_t>(rng.next_u64());
      }
      break;
    }
    default: {  // splice with another corpus-shaped prefix/suffix
      std::size_t cut = out.empty() ? 0 : rng.next_below(out.size() + 1);
      Bytes other = rng.next_bytes(rng.next_below(24));
      out.resize(cut);
      out.insert(out.end(), other.begin(), other.end());
      break;
    }
  }
  return out;
}

/// Valid NAS messages spanning the field-map shapes (numeric, string, octet
/// fields; plain and protected headers) — the corpus the mutator starts from.
std::vector<nas::NasMessage> nas_corpus() {
  std::vector<nas::NasMessage> corpus;
  {
    nas::NasMessage m(nas::MsgType::kAttachRequest);
    m.set_s("imsi", "001010123456789").set_u("ue_network_capability", 0xE0);
    corpus.push_back(m);
  }
  {
    nas::NasMessage m(nas::MsgType::kAuthenticationRequest);
    m.set_b("rand", {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08});
    m.set_b("autn", {0xA0, 0xA1, 0xA2, 0xA3});
    m.set_u("ksi", 3);
    corpus.push_back(m);
  }
  {
    nas::NasMessage m(nas::MsgType::kAuthenticationFailure);
    m.set_s("cause", "synch_failure");
    m.set_b("auts", {0x10, 0x20, 0x30});
    corpus.push_back(m);
  }
  {
    nas::NasMessage m(nas::MsgType::kSecurityModeCommand);
    m.sec_hdr = nas::SecHdr::kIntegrity;
    m.count = 7;
    m.mac = 0x1122334455667788ULL;
    m.set_u("eia", 1).set_u("eea", 1).set_u("ue_sequence_number", 0);
    corpus.push_back(m);
  }
  {
    nas::NasMessage m(nas::MsgType::kAttachAccept);
    m.sec_hdr = nas::SecHdr::kIntegrityCiphered;
    m.count = 12;
    m.set_s("guti", "guti-4711").set_u("t3412", 54);
    corpus.push_back(m);
  }
  {
    nas::NasMessage m(nas::MsgType::kTauRequest);
    m.set_s("guti", "guti-old").set_u("eps_update_type", 1);
    corpus.push_back(m);
  }
  return corpus;
}

TEST(FuzzSmoke, NasPayloadDecodeTotalAndRoundTrips) {
  Rng rng(0xF02DECDEULL);
  std::vector<nas::NasMessage> corpus = nas_corpus();
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (int round = 0; round < 4000; ++round) {
    const nas::NasMessage& seed = corpus[rng.next_below(corpus.size())];
    Bytes wire = nas::encode_payload(seed);
    // Stack up to 3 mutations so inputs drift away from the valid shapes.
    std::uint64_t depth = 1 + rng.next_below(3);
    for (std::uint64_t d = 0; d < depth; ++d) wire = mutate_bytes(wire, rng);

    std::optional<nas::NasMessage> decoded = nas::decode_payload(wire);
    if (!decoded) {
      ++rejected;
      continue;
    }
    ++accepted;
    // Decode–encode–decode agreement: whatever the decoder accepted must be
    // a fixpoint of the codec, or the extractor sees phantom fields.
    Bytes re = nas::encode_payload(*decoded);
    std::optional<nas::NasMessage> again = nas::decode_payload(re);
    ASSERT_TRUE(again.has_value()) << "re-encode of accepted input rejected";
    EXPECT_EQ(*again, *decoded);
  }
  // A healthy frontend both accepts and rejects across the mutation space;
  // all-accept means the mutator is toothless, all-reject means the corpus
  // no longer encodes.
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
  std::printf("[fuzz] nas payload: %zu accepted, %zu rejected\n", accepted, rejected);
}

TEST(FuzzSmoke, NasPduDecodeTotalAndRoundTrips) {
  Rng rng(0x9DF00DULL ^ 0x5EED);
  std::vector<nas::NasMessage> corpus = nas_corpus();
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (int round = 0; round < 4000; ++round) {
    const nas::NasMessage& seed = corpus[rng.next_below(corpus.size())];
    nas::NasPdu pdu;
    pdu.sec_hdr = seed.sec_hdr;
    pdu.count = seed.count;
    pdu.mac = seed.mac;
    pdu.payload = nas::encode_payload(seed);
    Bytes wire = pdu.encode();
    std::uint64_t depth = 1 + rng.next_below(3);
    for (std::uint64_t d = 0; d < depth; ++d) wire = mutate_bytes(wire, rng);

    std::optional<nas::NasPdu> decoded = nas::NasPdu::decode(wire);
    if (!decoded) {
      ++rejected;
      continue;
    }
    ++accepted;
    std::optional<nas::NasPdu> again = nas::NasPdu::decode(decoded->encode());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *decoded);
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
  std::printf("[fuzz] nas pdu: %zu accepted, %zu rejected\n", accepted, rejected);
}

// --- Remote-SUL wire-frame fuzz ---------------------------------------------

/// Valid frames spanning every type and payload shape — the corpus the wire
/// mutator starts from.
std::vector<net::Frame> frame_corpus() {
  std::vector<net::Frame> corpus;
  net::Frame f;
  f.type = net::FrameType::kHello;
  f.epoch = 1;
  f.seq = 1;
  f.payload = "prochecker-learner";
  corpus.push_back(f);
  f.type = net::FrameType::kStep;
  f.epoch = 3;
  f.seq = 42;
  f.payload = "authentication_request";
  corpus.push_back(f);
  f.type = net::FrameType::kStepAck;
  f.payload = "authentication_response";
  corpus.push_back(f);
  f.type = net::FrameType::kReset;
  f.payload.clear();
  corpus.push_back(f);
  f.type = net::FrameType::kPing;
  f.epoch = 0xFFFFFFFF;
  f.seq = 0xFFFFFFFF;
  corpus.push_back(f);
  f.type = net::FrameType::kError;
  f.payload = std::string(512, 'x');  // a fat diagnostic
  corpus.push_back(f);
  // Wire v3 word/batch shapes: a whole-word query, a multi-word batch (with
  // a duplicate and a prefix chain), and a mixed-status batch ack.
  f.type = net::FrameType::kQueryWord;
  f.epoch = 2;
  f.seq = 9;
  f.payload = net::encode_word({"power_on", "authentication_request", "security_mode_command"});
  corpus.push_back(f);
  f.type = net::FrameType::kQueryBatch;
  f.payload = net::encode_batch({{"power_on"},
                                 {"power_on"},
                                 {"power_on", "authentication_request"},
                                 {"paging", "detach_request"}});
  corpus.push_back(f);
  f.type = net::FrameType::kBatchAck;
  f.payload = net::encode_batch_ack([] {
    std::vector<net::BatchItem> items(3);
    items[0].ok = true;
    items[0].outputs = {"attach_request"};
    items[1].ok = false;
    items[1].error = net::kReasonBadWord;
    items[2].ok = true;
    items[2].outputs = {"attach_request", "authentication_response"};
    return items;
  }());
  corpus.push_back(f);
  return corpus;
}

TEST(FuzzSmoke, BatchPayloadCodecsTotalAndRoundTrip) {
  // The v3 payload codecs under the same mutation pressure as the frame
  // layer: decode is total, and whatever it accepts re-encodes to the same
  // value (otherwise the server could ack a batch the client never sent).
  Rng rng(0xBA7C4C0DECULL);
  const std::vector<std::string> seeds = {
      net::encode_word({"power_on", "authentication_request"}),
      net::encode_batch({{"power_on"}, {"power_on", "paging"}, {"detach_request"}}),
      net::encode_batch_ack([] {
        std::vector<net::BatchItem> items(2);
        items[0].ok = true;
        items[0].outputs = {"null", "attach_request"};
        items[1].ok = false;
        items[1].error = net::kReasonBadBatch;
        return items;
      }()),
  };
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (int round = 0; round < 3000; ++round) {
    std::string text = seeds[rng.next_below(seeds.size())];
    std::uint64_t depth = 1 + rng.next_below(3);
    for (std::uint64_t d = 0; d < depth; ++d) {
      Bytes bytes(text.begin(), text.end());
      bytes = mutate_bytes(bytes, rng);
      text.assign(bytes.begin(), bytes.end());
    }

    bool ok = false;
    if (auto word = net::decode_word(text)) {
      EXPECT_EQ(net::decode_word(net::encode_word(*word)), *word);
      ok = true;
    }
    if (auto batch = net::decode_batch(text, net::kMaxBatchWords)) {
      EXPECT_EQ(net::decode_batch(net::encode_batch(*batch), net::kMaxBatchWords), *batch);
      ok = true;
    }
    if (auto ack = net::decode_batch_ack(text, net::kMaxBatchWords)) {
      auto again = net::decode_batch_ack(net::encode_batch_ack(*ack), net::kMaxBatchWords);
      ASSERT_TRUE(again.has_value());
      ASSERT_EQ(again->size(), ack->size());
      for (std::size_t i = 0; i < ack->size(); ++i) {
        EXPECT_EQ((*again)[i].ok, (*ack)[i].ok);
        EXPECT_EQ((*again)[i].outputs, (*ack)[i].outputs);
        EXPECT_EQ((*again)[i].error, (*ack)[i].error);
      }
      ok = true;
    }
    (ok ? accepted : rejected) += 1;
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
  std::printf("[fuzz] batch codec: %zu accepted, %zu rejected\n", accepted, rejected);
}

TEST(FuzzSmoke, WireFrameDecodeTotalAndRoundTrips) {
  Rng rng(0x31BEF2A3EULL);
  std::vector<net::Frame> corpus = frame_corpus();
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (int round = 0; round < 4000; ++round) {
    Bytes wire = net::encode_frame(corpus[rng.next_below(corpus.size())]);
    std::uint64_t depth = 1 + rng.next_below(3);
    for (std::uint64_t d = 0; d < depth; ++d) wire = mutate_bytes(wire, rng);

    std::size_t consumed = 0;
    net::Decoded decoded = net::decode_frame(wire, &consumed);
    if (decoded.status != net::DecodeStatus::kFrame) {
      ++rejected;
      continue;
    }
    ++accepted;
    ASSERT_LE(consumed, wire.size());
    // Decode–encode–decode fixpoint: whatever the decoder accepted must
    // survive a round trip bit-exactly, or the transport invents traffic.
    Bytes re = net::encode_frame(decoded.frame);
    net::Decoded again = net::decode_frame(re);
    ASSERT_EQ(again.status, net::DecodeStatus::kFrame) << "re-encode rejected";
    EXPECT_EQ(again.frame, decoded.frame);
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
  std::printf("[fuzz] wire frame: %zu accepted, %zu rejected\n", accepted, rejected);
}

TEST(FuzzSmoke, WireSingleBitCorruptionAlwaysDetected) {
  // The chaos proxy's corruption regime relies on this exhaustively: any
  // single flipped bit anywhere in a frame (length prefix, header, payload,
  // CRC) must yield a framing error or a request for more bytes — NEVER a
  // successfully decoded frame carrying mangled data.
  for (const net::Frame& frame : frame_corpus()) {
    Bytes wire = net::encode_frame(frame);
    for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
      Bytes mutated = wire;
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      net::Decoded d = net::decode_frame(mutated);
      ASSERT_NE(d.status, net::DecodeStatus::kFrame)
          << "bit " << bit << " of a " << wire.size() << "-byte frame slipped through";
    }
  }
}

TEST(FuzzSmoke, FrameReaderNeverCrashesOnMutatedStreams) {
  Rng rng(0x57E0A0F1ULL);
  std::vector<net::Frame> corpus = frame_corpus();
  std::size_t clean_streams = 0;
  std::size_t poisoned_streams = 0;
  for (int round = 0; round < 1500; ++round) {
    // A stream of several frames, then mutated as one byte blob.
    Bytes stream;
    std::uint64_t count = 1 + rng.next_below(4);
    for (std::uint64_t i = 0; i < count; ++i) {
      Bytes one = net::encode_frame(corpus[rng.next_below(corpus.size())]);
      stream.insert(stream.end(), one.begin(), one.end());
    }
    std::uint64_t depth = rng.next_below(3);  // depth 0 = clean stream
    for (std::uint64_t d = 0; d < depth; ++d) stream = mutate_bytes(stream, rng);

    // Feed in random-sized chunks; pop everything. The reader must stay
    // total: frames, need-more, or a sticky poison — never a crash.
    net::FrameReader reader;
    std::size_t pos = 0;
    std::size_t frames = 0;
    while (pos < stream.size()) {
      std::size_t n = std::min<std::size_t>(1 + rng.next_below(19), stream.size() - pos);
      reader.feed(stream.data() + pos, n);
      pos += n;
      for (;;) {
        net::Decoded d = reader.next();
        if (d.status == net::DecodeStatus::kFrame) {
          ++frames;
          continue;
        }
        if (d.status == net::DecodeStatus::kBadFrame) {
          EXPECT_TRUE(reader.poisoned());
          // Poison is sticky until reset().
          EXPECT_EQ(reader.next().status, net::DecodeStatus::kBadFrame);
        }
        break;
      }
      if (reader.poisoned()) break;
    }
    if (depth == 0) {
      EXPECT_EQ(frames, count) << "clean stream lost frames";
      EXPECT_FALSE(reader.poisoned());
    }
    (reader.poisoned() ? poisoned_streams : clean_streams) += 1;
  }
  EXPECT_GT(clean_streams, 0u);
  EXPECT_GT(poisoned_streams, 0u);
  std::printf("[fuzz] wire stream: %zu clean, %zu poisoned\n", clean_streams, poisoned_streams);
}

// --- Handshake fuzz against a live server ------------------------------------

namespace handshake {

bool send_bytes(net::TcpConn& conn, const Bytes& wire) { return conn.send_all(wire, 1.0); }

std::optional<net::Frame> read_one(net::TcpConn& conn, net::FrameReader& reader,
                                   double budget = 1.0) {
  const auto start = std::chrono::steady_clock::now();
  Bytes chunk;
  bool eof = false;
  for (;;) {
    net::Decoded d = reader.next();
    if (d.status == net::DecodeStatus::kFrame) return d.frame;
    if (d.status == net::DecodeStatus::kBadFrame) return std::nullopt;
    // The peer closed and the buffer is drained: nothing more will come.
    if (eof) return std::nullopt;
    if (std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() >
        budget) {
      return std::nullopt;
    }
    chunk.clear();
    auto status = conn.recv_some(chunk, 4096, 0.05);
    if (status == net::TcpConn::RecvStatus::kData) {
      reader.feed(chunk);
    } else if (status != net::TcpConn::RecvStatus::kTimeout) {
      eof = true;
    }
  }
}

}  // namespace handshake

// Satellite: structure-aware mutation of the hello/auth handshake against a
// *live* multi-session server. The contract under fuzz: a mutated or
// replayed handshake always ends in a clean structured refusal (or a dead
// connection) — NEVER a crash and NEVER an authenticated session without
// the correct per-connection MAC. This covers the anti-replay nonce path:
// replayed auth responses are drawn from earlier rounds' captured MACs.
TEST(FuzzSmoke, MutatedHandshakesNeverCrashOrAuthenticate) {
  constexpr const char* kPsk = "fuzz-psk";
  net::SulServerOptions sopts;
  sopts.psk = kPsk;
  sopts.nonce_seed = 0xF022;       // reproducible challenge stream
  sopts.max_sessions = 16;         // absorb teardown overlap across rounds
  sopts.handshake_timeout_seconds = 0.2;  // truncated hellos time out fast
  net::SulServer server(ue::StackProfile::cls(), sopts);
  ASSERT_TRUE(server.start());

  Rng rng(0x4A5D54A3ULL);
  std::vector<std::string> captured_macs;  // replay ammunition
  std::size_t refusals = 0;
  std::size_t legit = 0;
  std::size_t busy = 0;

  for (int round = 0; round < 250; ++round) {
    auto conn = net::TcpConn::connect("127.0.0.1", server.port(), 1.0);
    ASSERT_TRUE(conn.has_value()) << "round " << round;
    net::FrameReader reader;

    net::Frame hello;
    hello.type = net::FrameType::kHello;
    hello.epoch = 1;
    hello.seq = 1;
    hello.payload = "fuzz-client";

    // Mutation menu: 0 = mangled hello bytes, 1 = mangled auth bytes,
    // 2 = replayed MAC from an earlier connection, 3 = MAC over the wrong
    // epoch, 4 = fully legitimate handshake (keeps the corpus honest and
    // feeds the replay pool).
    // Every 7th round is forced-legitimate so the replay pool seeds on round
    // 0 (mode 2 draws from it) and the corpus keeps an authenticated path.
    const std::uint64_t mode = (round % 7 == 0) ? 4 : rng.next_below(5);
    bool supplied_correct_mac = false;

    if (mode == 0) {
      Bytes wire = net::encode_frame(hello);
      std::uint64_t depth = 1 + rng.next_below(3);
      for (std::uint64_t d = 0; d < depth; ++d) wire = mutate_bytes(wire, rng);
      if (!handshake::send_bytes(*conn, wire)) continue;
    } else {
      if (!handshake::send_bytes(*conn, net::encode_frame(hello))) continue;
      auto challenge = handshake::read_one(*conn, reader);
      if (!challenge || challenge->type != net::FrameType::kChallenge) {
        if (challenge && challenge->type == net::FrameType::kServerBusy) ++busy;
        continue;  // refused before auth: structured either way
      }
      net::Frame auth;
      auth.type = net::FrameType::kAuthResponse;
      auth.epoch = 1;
      auth.seq = 2;
      switch (mode) {
        case 1: {  // well-formed frame carrying a mangled MAC, or mangled bytes
          auth.payload = net::auth_mac(kPsk, challenge->payload, auth.epoch);
          Bytes wire = net::encode_frame(auth);
          wire = mutate_bytes(wire, rng);
          if (!handshake::send_bytes(*conn, wire)) continue;
          break;
        }
        case 2:  // anti-replay: a MAC captured from an earlier connection
          auth.payload = captured_macs[rng.next_below(captured_macs.size())];
          if (!handshake::send_bytes(*conn, net::encode_frame(auth))) continue;
          break;
        case 3:  // right nonce, wrong epoch binding
          auth.payload = net::auth_mac(kPsk, challenge->payload, auth.epoch + 1);
          if (!handshake::send_bytes(*conn, net::encode_frame(auth))) continue;
          break;
        default:  // legitimate
          auth.payload = net::auth_mac(kPsk, challenge->payload, auth.epoch);
          supplied_correct_mac = true;
          captured_macs.push_back(auth.payload);
          if (!handshake::send_bytes(*conn, net::encode_frame(auth))) continue;
          break;
      }
    }

    // THE invariant: a hello-ack may only ever follow the correct MAC for
    // *this* connection's nonce. (Mode 1 can mutate into a no-op or hit
    // non-MAC bytes; only an actually-correct MAC may authenticate.)
    auto response = handshake::read_one(*conn, reader);
    if (response && response->type == net::FrameType::kHelloAck) {
      if (mode == 1) {
        // The mutation must have left the MAC bytes (and framing) intact.
        continue;
      }
      ASSERT_TRUE(supplied_correct_mac) << "round " << round << " mode " << mode
                                        << ": authenticated without the key";
      ++legit;
    } else {
      ++refusals;
    }
  }

  // Liveness after the storm: a clean handshake and a real query still work,
  // so none of the 250 mangled handshakes wedged or crashed the server.
  {
    auto conn = net::TcpConn::connect("127.0.0.1", server.port(), 1.0);
    ASSERT_TRUE(conn.has_value());
    net::FrameReader reader;
    net::Frame hello;
    hello.type = net::FrameType::kHello;
    hello.epoch = 1;
    hello.seq = 1;
    ASSERT_TRUE(handshake::send_bytes(*conn, net::encode_frame(hello)));
    auto challenge = handshake::read_one(*conn, reader, 2.0);
    ASSERT_TRUE(challenge.has_value());
    ASSERT_EQ(challenge->type, net::FrameType::kChallenge);
    net::Frame auth;
    auth.type = net::FrameType::kAuthResponse;
    auth.epoch = 1;
    auth.seq = 2;
    auth.payload = net::auth_mac(kPsk, challenge->payload, auth.epoch);
    ASSERT_TRUE(handshake::send_bytes(*conn, net::encode_frame(auth)));
    auto ack = handshake::read_one(*conn, reader, 2.0);
    ASSERT_TRUE(ack.has_value());
    ASSERT_EQ(ack->type, net::FrameType::kHelloAck);
    net::Frame reset;
    reset.type = net::FrameType::kReset;
    reset.epoch = 1;
    reset.seq = 3;
    ASSERT_TRUE(handshake::send_bytes(*conn, net::encode_frame(reset)));
    auto reset_ack = handshake::read_one(*conn, reader, 2.0);
    ASSERT_TRUE(reset_ack.has_value());
    EXPECT_EQ(reset_ack->type, net::FrameType::kResetAck);
  }

  server.stop();
  const net::SulServerStats stats = server.stats();
  EXPECT_EQ(stats.session_errors, 0) << "a mangled handshake crashed a session";
  EXPECT_GT(stats.auth_failures, 0) << "the mutator never reached the MAC check";
  EXPECT_GT(refusals, 0u);
  EXPECT_GT(legit, 0u) << "no legitimate handshake ever completed";
  std::printf("[fuzz] handshake: %zu refusals, %zu authenticated, %zu busy, "
              "%ld server auth failures\n",
              refusals, legit, busy, stats.auth_failures);
}

// Satellite: structure-aware mutation of v3 batch queries against a *live*
// admitted session. The contract under fuzz: every kQueryBatch — valid-ish,
// mutated, or deliberately oversized — is answered with a kBatchAck or a
// structured kError refusal; the session is never corrupted (a clean probe
// word keeps answering correctly between mutations) and never crashes.
TEST(FuzzSmoke, MutatedBatchQueriesNeverCrashOrCorruptSession) {
  net::SulServer server(ue::StackProfile::cls());
  ASSERT_TRUE(server.start());

  auto conn = net::TcpConn::connect("127.0.0.1", server.port(), 1.0);
  ASSERT_TRUE(conn.has_value());
  net::FrameReader reader;
  net::Frame hello;
  hello.type = net::FrameType::kHello;
  hello.epoch = 1;
  hello.seq = 1;
  hello.payload = net::with_batch_token("fuzz-client", 8);
  ASSERT_TRUE(handshake::send_bytes(*conn, net::encode_frame(hello)));
  auto ack = handshake::read_one(*conn, reader);
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, net::FrameType::kHelloAck);
  ASSERT_EQ(net::parse_batch_token(ack->payload), 8);

  // The clean probe the session must keep answering correctly: cls boots
  // with an attach_request and answers the auth challenge.
  const std::vector<std::string> probe = {"power_on", "authentication_request"};
  const std::vector<std::string> probe_expect = {"attach_request", "authentication_response"};

  const std::vector<std::string> seeds = {
      net::encode_batch({{"power_on"}, {"power_on", "authentication_request"}}),
      net::encode_batch({{"paging"}, {"paging"}, {"detach_request", "power_on"}}),
      net::encode_batch({{"power_on", "identity_request"}}),
      std::string(),  // the one-item epsilon batch
  };

  Rng rng(0xBA7C11FEULL);
  std::uint32_t seq = 1;
  std::size_t acked = 0;
  std::size_t refused = 0;
  std::size_t oversized_refusals = 0;

  for (int round = 0; round < 300; ++round) {
    std::string payload;
    bool oversized = false;
    const std::uint64_t mode = rng.next_below(4);
    if (mode == 3) {
      // Deliberately over the negotiated 8-word grant (sometimes over the
      // hard kMaxBatchWords bound too): must refuse as batch_too_large.
      const std::uint64_t n = 9 + rng.next_below(70);
      std::vector<std::vector<std::string>> words;
      for (std::uint64_t i = 0; i < n; ++i) words.push_back({"paging"});
      payload = net::encode_batch(words);
      oversized = true;
    } else {
      payload = seeds[rng.next_below(seeds.size())];
      std::uint64_t depth = rng.next_below(3);  // depth 0 = pristine seed
      for (std::uint64_t d = 0; d < depth; ++d) {
        Bytes bytes(payload.begin(), payload.end());
        bytes = mutate_bytes(bytes, rng);
        payload.assign(bytes.begin(), bytes.end());
        if (payload.size() > net::kMaxFramePayload) payload.resize(64);
      }
    }

    net::Frame batch;
    batch.type = net::FrameType::kQueryBatch;
    batch.epoch = 1;
    batch.seq = ++seq;
    batch.payload = payload;
    ASSERT_TRUE(handshake::send_bytes(*conn, net::encode_frame(batch))) << "round " << round;
    auto reply = handshake::read_one(*conn, reader);
    ASSERT_TRUE(reply.has_value()) << "round " << round << ": no structured reply";
    if (reply->type == net::FrameType::kBatchAck) {
      ASSERT_FALSE(oversized) << "round " << round << ": oversized batch was served";
      auto items = net::decode_batch_ack(reply->payload, 8);
      ASSERT_TRUE(items.has_value()) << "round " << round << ": ack does not decode";
      ++acked;
    } else {
      ASSERT_EQ(reply->type, net::FrameType::kError) << "round " << round;
      EXPECT_TRUE(reply->payload == net::kReasonBadBatch ||
                  reply->payload == net::kReasonBatchTooLarge)
          << "round " << round << ": " << reply->payload;
      if (oversized) {
        EXPECT_EQ(reply->payload, net::kReasonBatchTooLarge) << "round " << round;
        ++oversized_refusals;
      }
      ++refused;
    }

    // Every 25 rounds: the admitted session must still answer the clean
    // probe correctly — refusals and mutations corrupt no SUL state.
    if (round % 25 == 0) {
      net::Frame word;
      word.type = net::FrameType::kQueryWord;
      word.epoch = 1;
      word.seq = ++seq;
      word.payload = net::encode_word(probe);
      ASSERT_TRUE(handshake::send_bytes(*conn, net::encode_frame(word)));
      auto answer = handshake::read_one(*conn, reader);
      ASSERT_TRUE(answer.has_value()) << "round " << round;
      ASSERT_EQ(answer->type, net::FrameType::kWordAck) << "round " << round;
      EXPECT_EQ(net::decode_word(answer->payload), probe_expect) << "round " << round;
    }
  }

  server.stop();
  const net::SulServerStats stats = server.stats();
  EXPECT_EQ(stats.session_errors, 0) << "a mutated batch killed the session";
  EXPECT_GT(acked, 0u) << "the mutator starved the server of valid batches";
  EXPECT_GT(refused, 0u) << "the mutator never produced a refusable batch";
  EXPECT_GT(oversized_refusals, 0u);
  EXPECT_EQ(stats.batch_refusals, static_cast<long>(refused));
  std::printf("[fuzz] batch queries: %zu acked, %zu refused (%zu oversized)\n", acked, refused,
              oversized_refusals);
}

// --- Log-parser fuzz --------------------------------------------------------

std::string mutate_text(const std::string& input, Rng& rng) {
  Bytes bytes(input.begin(), input.end());
  bytes = mutate_bytes(bytes, rng);
  return {bytes.begin(), bytes.end()};
}

std::string log_corpus_text() {
  instrument::TraceLogger log;
  log.test_case("attach_basic");
  log.enter("emm_send_attach_request");
  log.global("emm_state", "EMM_REGISTERED_INITIATED");
  log.global("t3410_running", std::uint64_t{1});
  log.enter("recv_authentication_request");
  log.local("mac_valid", std::uint64_t{1});
  log.local("cause", "none");
  log.test_case("detach_basic");
  log.enter("emm_send_detach_request");
  log.global("emm_state", "EMM_DEREGISTERED_INITIATED");
  return log.text();
}

TEST(FuzzSmoke, LogParserTotalAndAccountingConserved) {
  Rng rng(0x10AB00C5ULL);
  const std::string corpus = log_corpus_text();
  std::size_t with_records = 0;
  std::size_t fully_shed = 0;
  for (int round = 0; round < 3000; ++round) {
    std::string text = corpus;
    std::uint64_t depth = 1 + rng.next_below(4);
    for (std::uint64_t d = 0; d < depth; ++d) text = mutate_text(text, rng);

    instrument::ParseStats stats;
    std::vector<instrument::LogRecord> records = instrument::parse_log(text, &stats);
    // Conservation: every input line is parsed, skipped, or truncated.
    EXPECT_EQ(records.size(), stats.records);
    EXPECT_LE(stats.records + stats.skipped + stats.truncated, stats.lines)
        << "accounting invented lines";
    (records.empty() ? fully_shed : with_records) += 1;

    // Render→reparse agreement: the canonical text of whatever survived
    // parses back to the identical record sequence.
    std::string canonical;
    for (const instrument::LogRecord& rec : records) {
      canonical += instrument::render(rec);
      canonical += '\n';
    }
    instrument::ParseStats again_stats;
    std::vector<instrument::LogRecord> again = instrument::parse_log(canonical, &again_stats);
    EXPECT_EQ(again, records);
    EXPECT_EQ(again_stats.records, records.size());
    EXPECT_EQ(again_stats.truncated, 0u);
  }
  EXPECT_GT(with_records, 0u);
  std::printf("[fuzz] log parser: %zu inputs kept records, %zu fully shed\n", with_records,
              fully_shed);
}

// --- Learn-journal fuzz ------------------------------------------------------

/// Structure-aware journal mutations: the byte-level mutator plus line-level
/// edits (duplicate / delete / swap / splice) that survive the CRC tags.
std::string mutate_journal(const std::string& input, Rng& rng) {
  if (rng.next_below(2) == 0) return mutate_text(input, rng);
  std::vector<std::string> lines;
  std::istringstream in(input);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  if (lines.empty()) return mutate_text(input, rng);
  switch (rng.next_below(4)) {
    case 0: {  // duplicate a line in place
      std::size_t i = rng.next_below(lines.size());
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(i), lines[i]);
      break;
    }
    case 1: {  // delete a line
      lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(rng.next_below(lines.size())));
      break;
    }
    case 2: {  // swap two lines (header included — may demote it)
      std::size_t a = rng.next_below(lines.size());
      std::size_t b = rng.next_below(lines.size());
      std::swap(lines[a], lines[b]);
      break;
    }
    default: {  // splice: a prefix joined to a suffix from elsewhere
      std::size_t cut = rng.next_below(lines.size() + 1);
      std::size_t from = rng.next_below(lines.size() + 1);
      std::vector<std::string> out(lines.begin(),
                                   lines.begin() + static_cast<std::ptrdiff_t>(cut));
      out.insert(out.end(), lines.begin() + static_cast<std::ptrdiff_t>(from), lines.end());
      lines = std::move(out);
      break;
    }
  }
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

// Every mutated learn journal must resume to one of three structured
// outcomes: the true machine (a valid prefix was adopted and completed), a
// structured refusal (abort), or a structured inconclusive — never a crash,
// a hang, or a silently wrong machine.
TEST(FuzzSmoke, MutatedLearnJournalsResumeOrRefuseNeverLie) {
  learner::LearnOptions lopts;
  lopts.eq_test_words = 8;
  lopts.eq_test_max_length = 3;
  lopts.seed = 0xF0220;

  const std::string path = ::testing::TempDir() + "fuzz_learn.journal";
  auto scrub = [&path] {
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
    std::remove((path + ".tmp").c_str());
  };
  scrub();
  std::string corpus;
  std::string reference_fsm;
  {
    learner::LearnSupervisorOptions o;
    o.learn = lopts;
    o.journal_path = path;
    o.run_tag = "cls";
    learner::UeSul sul(ue::StackProfile::cls());
    const learner::SupervisedLearn run = learner::learn_supervised(sul, o);
    ASSERT_TRUE(run.result.converged) << run.result.note;
    reference_fsm = run.result.machine.to_fsm().to_dot("learned");
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    corpus = ss.str();
  }
  ASSERT_FALSE(corpus.empty());

  Rng rng(0x10AD9A11ULL);
  std::size_t converged = 0, refused = 0, inconclusive = 0;
  for (int round = 0; round < 400; ++round) {
    std::string text = corpus;
    const std::uint64_t depth = 1 + rng.next_below(4);
    for (std::uint64_t d = 0; d < depth; ++d) text = mutate_journal(text, rng);

    scrub();
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << text;
    }
    learner::LearnSupervisorOptions o;
    o.learn = lopts;
    o.journal_path = path;
    o.resume = true;
    o.run_tag = "cls";
    learner::UeSul sul(ue::StackProfile::cls());
    const learner::SupervisedLearn run = learner::learn_supervised(sul, o);
    if (run.aborted) {
      EXPECT_FALSE(run.abort_reason.empty()) << "refusal without a reason";
      ++refused;
    } else if (run.result.converged) {
      // Whatever prefix was adopted, the machine must be the true one.
      EXPECT_EQ(run.result.machine.to_fsm().to_dot("learned"), reference_fsm)
          << "round " << round << " silently learned a wrong machine";
      ++converged;
    } else {
      EXPECT_TRUE(run.result.inconclusive) << "unstructured failure in round " << round;
      EXPECT_FALSE(run.result.note.empty());
      ++inconclusive;
    }
  }
  scrub();
  EXPECT_GT(converged, 0u) << "the mutator starved the resume path of valid prefixes";
  std::printf("[fuzz] learn journals: %zu converged, %zu refused, %zu inconclusive\n", converged,
              refused, inconclusive);
}

// --- Diff-report JSON codec (DESIGN.md §16) ----------------------------------

/// Small but shape-complete reports — every divergence kind, every finding
/// class, non-ASCII and quote-bearing strings — the corpus the mutator
/// starts from.
std::vector<diff::DiffReport> diff_report_corpus() {
  std::vector<diff::DiffReport> corpus;
  corpus.push_back({});  // all-default empty report

  diff::DiffReport equivalent;
  equivalent.left_name = "profile:cls";
  equivalent.right_name = "profile:cls";
  equivalent.equivalent = true;
  equivalent.product_pairs = 8;
  equivalent.edges.push_back({"A | A", "B | B", "m1 & x=1"});
  corpus.push_back(equivalent);

  diff::DiffReport divergent;
  divergent.left_name = "log:trace \"weird\" name.log";
  divergent.right_name = "remote:127.0.0.1:4242";
  divergent.product_pairs = 3;
  int i = 0;
  for (diff::DivergenceKind kind :
       {diff::DivergenceKind::kOutputMismatch, diff::DivergenceKind::kMissingLeft,
        diff::DivergenceKind::kMissingRight, diff::DivergenceKind::kExtraStateLeft,
        diff::DivergenceKind::kExtraStateRight}) {
    diff::Divergence d;
    d.kind = kind;
    d.input = "attach_accept & mac_valid=" + std::to_string(i++);
    d.sequence = {"power_on_trigger", d.input};
    d.left_state = "EMM_REGISTERED_INITIATED";
    d.right_state = "EMM_REGISTERED_INITIATED";
    d.left_edge = "A --[m / a]--> B";
    d.right_edge = "-";
    d.properties = {"S05", "P03"};
    divergent.divergences.push_back(std::move(d));
  }
  for (diff::Finding::Class cls :
       {diff::Finding::Class::kDivergent, diff::Finding::Class::kCommon,
        diff::Finding::Class::kInconclusive}) {
    diff::Finding f;
    f.property_id = "S05";
    f.attack_id = "I1";
    f.cls = cls;
    f.violates = cls == diff::Finding::Class::kCommon ? "both" : "right";
    f.left_status = "verified";
    f.right_status = "attack";
    f.note = cls == diff::Finding::Class::kInconclusive ? "watchdog élapsed\n" : "";
    divergent.findings.push_back(std::move(f));
  }
  corpus.push_back(divergent);

  diff::DiffReport inconclusive;
  inconclusive.left_name = "l";
  inconclusive.right_name = "r";
  inconclusive.inconclusive = true;
  inconclusive.note = "product walk capped at 65536 pairs; extra-state analysis skipped";
  corpus.push_back(inconclusive);
  return corpus;
}

/// Structure-aware mutation: half the time raw byte mutation, half the time
/// a token-level edit that keeps the document JSON-shaped — swapping kind /
/// class / status tokens, twiddling digits, or duplicating a key — to reach
/// the deep validation paths the byte mutator rarely survives to.
std::string mutate_diff_json(const std::string& input, Rng& rng) {
  if (rng.next_below(2) == 0) return mutate_text(input, rng);
  std::string out = input;
  static const std::vector<std::pair<std::string, std::string>> swaps = {
      {"output-mismatch", "missing-left"},
      {"missing-right", "extra-state-left"},
      {"extra-state-right", "sideways"},  // unknown kind: must reject whole doc
      {"divergent", "common"},
      {"inconclusive", "divergent"},
      {"\"equivalent\":true", "\"equivalent\":false"},
      {"\"pairs\":", "\"pairs\":-"},
      {"\"sequence\":[", "\"sequence\":[1,"},  // non-string element
      {"\"diff\":1", "\"diff\":2"},
      {"\"left\":", "\"Left\":"},
      {"},{", "},{},{"},  // inject an empty object into an array
  };
  const auto& [from, to] = swaps[rng.next_below(swaps.size())];
  const std::size_t at = out.find(from);
  if (at != std::string::npos) out.replace(at, from.size(), to);
  return out;
}

TEST(FuzzSmoke, DiffReportCodecTotalAndRoundTrips) {
  Rng rng(0xD1FFC0DECULL);
  std::vector<diff::DiffReport> corpus = diff_report_corpus();
  // The corpus itself must round-trip exactly before any mutation.
  for (const diff::DiffReport& seed : corpus) {
    std::optional<diff::DiffReport> back = diff::decode_report(diff::encode_report(seed));
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(*back, seed);
  }
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (int round = 0; round < 3000; ++round) {
    std::string text = diff::encode_report(corpus[rng.next_below(corpus.size())]);
    std::uint64_t depth = 1 + rng.next_below(3);
    for (std::uint64_t d = 0; d < depth; ++d) text = mutate_diff_json(text, rng);

    // Decode is total: reject (nullopt) or a value — never a crash.
    std::optional<diff::DiffReport> decoded = diff::decode_report(text);
    if (!decoded) {
      ++rejected;
      continue;
    }
    ++accepted;
    // Decode–encode–decode fixpoint: whatever the decoder accepted must
    // survive a round trip exactly, or --json output drifts per hop.
    const std::string re = diff::encode_report(*decoded);
    std::optional<diff::DiffReport> again = diff::decode_report(re);
    ASSERT_TRUE(again.has_value()) << "re-encode rejected";
    EXPECT_EQ(*again, *decoded);
    EXPECT_EQ(diff::encode_report(*again), re);
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
  std::printf("[fuzz] diff report: %zu accepted, %zu rejected\n", accepted, rejected);
}

}  // namespace
}  // namespace procheck
