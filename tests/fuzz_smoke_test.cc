// Deterministic structure-aware fuzz smoke for the two parsing frontends:
// the NAS payload/PDU codec (nas/messages.h) and the execution-log parser
// (instrument/trace_log.h). A seeded mutator perturbs members of a valid
// corpus — bit flips, truncations, extensions, splices — and the harness
// asserts the frontends' contracts on every input:
//
//   * no crash / sanitizer trip (the suite runs under the asan preset too);
//   * decode either rejects (nullopt) or returns a value whose re-encoding
//     decodes to the same value (decode–encode–decode agreement);
//   * the log parser's accounting is conserved (records + skipped +
//     truncated lines never exceed input lines) and render→reparse agrees.
//
// This is a smoke, not a campaign: a few thousand deterministic inputs in
// ~2 s, with the accept/reject coverage counters printed so a shrinking
// corpus is visible in CI logs.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "instrument/trace_log.h"
#include "nas/messages.h"

namespace procheck {
namespace {

// --- Seeded structure-aware mutator ----------------------------------------

Bytes mutate_bytes(const Bytes& input, Rng& rng) {
  Bytes out = input;
  switch (rng.next_below(5)) {
    case 0: {  // bit flip
      if (out.empty()) break;
      std::size_t i = rng.next_below(out.size());
      out[i] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
      break;
    }
    case 1: {  // truncate
      if (out.empty()) break;
      out.resize(rng.next_below(out.size()));
      break;
    }
    case 2: {  // extend with random tail
      Bytes tail = rng.next_bytes(1 + rng.next_below(16));
      out.insert(out.end(), tail.begin(), tail.end());
      break;
    }
    case 3: {  // overwrite a window
      if (out.empty()) break;
      std::size_t i = rng.next_below(out.size());
      std::size_t n = 1 + rng.next_below(8);
      for (std::size_t k = i; k < out.size() && k < i + n; ++k) {
        out[k] = static_cast<std::uint8_t>(rng.next_u64());
      }
      break;
    }
    default: {  // splice with another corpus-shaped prefix/suffix
      std::size_t cut = out.empty() ? 0 : rng.next_below(out.size() + 1);
      Bytes other = rng.next_bytes(rng.next_below(24));
      out.resize(cut);
      out.insert(out.end(), other.begin(), other.end());
      break;
    }
  }
  return out;
}

/// Valid NAS messages spanning the field-map shapes (numeric, string, octet
/// fields; plain and protected headers) — the corpus the mutator starts from.
std::vector<nas::NasMessage> nas_corpus() {
  std::vector<nas::NasMessage> corpus;
  {
    nas::NasMessage m(nas::MsgType::kAttachRequest);
    m.set_s("imsi", "001010123456789").set_u("ue_network_capability", 0xE0);
    corpus.push_back(m);
  }
  {
    nas::NasMessage m(nas::MsgType::kAuthenticationRequest);
    m.set_b("rand", {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08});
    m.set_b("autn", {0xA0, 0xA1, 0xA2, 0xA3});
    m.set_u("ksi", 3);
    corpus.push_back(m);
  }
  {
    nas::NasMessage m(nas::MsgType::kAuthenticationFailure);
    m.set_s("cause", "synch_failure");
    m.set_b("auts", {0x10, 0x20, 0x30});
    corpus.push_back(m);
  }
  {
    nas::NasMessage m(nas::MsgType::kSecurityModeCommand);
    m.sec_hdr = nas::SecHdr::kIntegrity;
    m.count = 7;
    m.mac = 0x1122334455667788ULL;
    m.set_u("eia", 1).set_u("eea", 1).set_u("ue_sequence_number", 0);
    corpus.push_back(m);
  }
  {
    nas::NasMessage m(nas::MsgType::kAttachAccept);
    m.sec_hdr = nas::SecHdr::kIntegrityCiphered;
    m.count = 12;
    m.set_s("guti", "guti-4711").set_u("t3412", 54);
    corpus.push_back(m);
  }
  {
    nas::NasMessage m(nas::MsgType::kTauRequest);
    m.set_s("guti", "guti-old").set_u("eps_update_type", 1);
    corpus.push_back(m);
  }
  return corpus;
}

TEST(FuzzSmoke, NasPayloadDecodeTotalAndRoundTrips) {
  Rng rng(0xF02DECDEULL);
  std::vector<nas::NasMessage> corpus = nas_corpus();
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (int round = 0; round < 4000; ++round) {
    const nas::NasMessage& seed = corpus[rng.next_below(corpus.size())];
    Bytes wire = nas::encode_payload(seed);
    // Stack up to 3 mutations so inputs drift away from the valid shapes.
    std::uint64_t depth = 1 + rng.next_below(3);
    for (std::uint64_t d = 0; d < depth; ++d) wire = mutate_bytes(wire, rng);

    std::optional<nas::NasMessage> decoded = nas::decode_payload(wire);
    if (!decoded) {
      ++rejected;
      continue;
    }
    ++accepted;
    // Decode–encode–decode agreement: whatever the decoder accepted must be
    // a fixpoint of the codec, or the extractor sees phantom fields.
    Bytes re = nas::encode_payload(*decoded);
    std::optional<nas::NasMessage> again = nas::decode_payload(re);
    ASSERT_TRUE(again.has_value()) << "re-encode of accepted input rejected";
    EXPECT_EQ(*again, *decoded);
  }
  // A healthy frontend both accepts and rejects across the mutation space;
  // all-accept means the mutator is toothless, all-reject means the corpus
  // no longer encodes.
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
  std::printf("[fuzz] nas payload: %zu accepted, %zu rejected\n", accepted, rejected);
}

TEST(FuzzSmoke, NasPduDecodeTotalAndRoundTrips) {
  Rng rng(0x9DF00DULL ^ 0x5EED);
  std::vector<nas::NasMessage> corpus = nas_corpus();
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (int round = 0; round < 4000; ++round) {
    const nas::NasMessage& seed = corpus[rng.next_below(corpus.size())];
    nas::NasPdu pdu;
    pdu.sec_hdr = seed.sec_hdr;
    pdu.count = seed.count;
    pdu.mac = seed.mac;
    pdu.payload = nas::encode_payload(seed);
    Bytes wire = pdu.encode();
    std::uint64_t depth = 1 + rng.next_below(3);
    for (std::uint64_t d = 0; d < depth; ++d) wire = mutate_bytes(wire, rng);

    std::optional<nas::NasPdu> decoded = nas::NasPdu::decode(wire);
    if (!decoded) {
      ++rejected;
      continue;
    }
    ++accepted;
    std::optional<nas::NasPdu> again = nas::NasPdu::decode(decoded->encode());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *decoded);
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
  std::printf("[fuzz] nas pdu: %zu accepted, %zu rejected\n", accepted, rejected);
}

// --- Log-parser fuzz --------------------------------------------------------

std::string mutate_text(const std::string& input, Rng& rng) {
  Bytes bytes(input.begin(), input.end());
  bytes = mutate_bytes(bytes, rng);
  return {bytes.begin(), bytes.end()};
}

std::string log_corpus_text() {
  instrument::TraceLogger log;
  log.test_case("attach_basic");
  log.enter("emm_send_attach_request");
  log.global("emm_state", "EMM_REGISTERED_INITIATED");
  log.global("t3410_running", std::uint64_t{1});
  log.enter("recv_authentication_request");
  log.local("mac_valid", std::uint64_t{1});
  log.local("cause", "none");
  log.test_case("detach_basic");
  log.enter("emm_send_detach_request");
  log.global("emm_state", "EMM_DEREGISTERED_INITIATED");
  return log.text();
}

TEST(FuzzSmoke, LogParserTotalAndAccountingConserved) {
  Rng rng(0x10AB00C5ULL);
  const std::string corpus = log_corpus_text();
  std::size_t with_records = 0;
  std::size_t fully_shed = 0;
  for (int round = 0; round < 3000; ++round) {
    std::string text = corpus;
    std::uint64_t depth = 1 + rng.next_below(4);
    for (std::uint64_t d = 0; d < depth; ++d) text = mutate_text(text, rng);

    instrument::ParseStats stats;
    std::vector<instrument::LogRecord> records = instrument::parse_log(text, &stats);
    // Conservation: every input line is parsed, skipped, or truncated.
    EXPECT_EQ(records.size(), stats.records);
    EXPECT_LE(stats.records + stats.skipped + stats.truncated, stats.lines)
        << "accounting invented lines";
    (records.empty() ? fully_shed : with_records) += 1;

    // Render→reparse agreement: the canonical text of whatever survived
    // parses back to the identical record sequence.
    std::string canonical;
    for (const instrument::LogRecord& rec : records) {
      canonical += instrument::render(rec);
      canonical += '\n';
    }
    instrument::ParseStats again_stats;
    std::vector<instrument::LogRecord> again = instrument::parse_log(canonical, &again_stats);
    EXPECT_EQ(again, records);
    EXPECT_EQ(again_stats.records, records.size());
    EXPECT_EQ(again_stats.truncated, 0u);
  }
  EXPECT_GT(with_records, 0u);
  std::printf("[fuzz] log parser: %zu inputs kept records, %zu fully shed\n", with_records,
              fully_shed);
}

}  // namespace
}  // namespace procheck
