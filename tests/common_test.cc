#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table.h"

namespace procheck {
namespace {

// --- bytes -------------------------------------------------------------

TEST(Hex, RoundTrip) {
  Bytes data{0x00, 0x01, 0xAB, 0xFF};
  std::string hex = to_hex(data);
  EXPECT_EQ(hex, "0001abff");
  auto back = from_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Hex, AcceptsUppercase) {
  auto out = from_hex("ABCDEF");
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(to_hex(*out), "abcdef");
}

TEST(Hex, RejectsOddLength) { EXPECT_FALSE(from_hex("abc").has_value()); }

TEST(Hex, RejectsNonHex) { EXPECT_FALSE(from_hex("zz").has_value()); }

TEST(Hex, EmptyIsEmpty) {
  EXPECT_EQ(to_hex({}), "");
  auto out = from_hex("");
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(ByteWriterReader, PrimitiveRoundTrip) {
  ByteWriter w;
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789ABCDE);
  w.u64(0x0123456789ABCDEFULL);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0x12);
  EXPECT_EQ(r.u16(), 0x3456);
  EXPECT_EQ(r.u32(), 0x789ABCDEu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.at_end());
  EXPECT_TRUE(r.ok());
}

TEST(ByteWriterReader, BigEndianLayout) {
  ByteWriter w;
  w.u16(0x0102);
  EXPECT_EQ(w.bytes(), (Bytes{0x01, 0x02}));
}

TEST(ByteWriterReader, BlobAndStringRoundTrip) {
  ByteWriter w;
  w.blob({0xDE, 0xAD});
  w.str("attach_request");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.blob(), (Bytes{0xDE, 0xAD}));
  EXPECT_EQ(r.str(), "attach_request");
  EXPECT_TRUE(r.at_end());
}

TEST(ByteReader, OutOfBoundsReturnsNullopt) {
  Bytes buf{0x01};
  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0x01);
  EXPECT_FALSE(r.u8().has_value());
  EXPECT_FALSE(r.ok());
  // Further reads keep failing; no UB.
  EXPECT_FALSE(r.u32().has_value());
}

TEST(ByteReader, TruncatedBlobFails) {
  ByteWriter w;
  w.u16(10);  // claims 10 bytes
  w.u8(0x01);
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.blob().has_value());
}

TEST(ByteReader, EmptyBlob) {
  ByteWriter w;
  w.blob({});
  ByteReader r(w.bytes());
  auto b = r.blob();
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(b->empty());
}

// --- rng ---------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(13), 13u);
}

TEST(Rng, BytesLength) {
  Rng r(9);
  EXPECT_EQ(r.next_bytes(17).size(), 17u);
  EXPECT_TRUE(r.next_bytes(0).empty());
}

TEST(Prf, DeterministicAndKeyed) {
  Bytes data{1, 2, 3};
  EXPECT_EQ(prf64(5, data), prf64(5, data));
  EXPECT_NE(prf64(5, data), prf64(6, data));
  EXPECT_NE(prf64(5, data), prf64(5, Bytes{1, 2, 4}));
}

TEST(Prf, LengthSensitive) {
  EXPECT_NE(prf64(1, Bytes{0}), prf64(1, Bytes{0, 0}));
}

TEST(PrfStream, DeterministicLengthAndIv) {
  Bytes a = prf_stream(1, 2, 32);
  Bytes b = prf_stream(1, 2, 32);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 32u);
  EXPECT_NE(prf_stream(1, 3, 32), a);
  EXPECT_NE(prf_stream(2, 2, 32), a);
  // Prefix property: a longer stream extends a shorter one.
  Bytes longer = prf_stream(1, 2, 64);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), longer.begin()));
}

// --- strings -----------------------------------------------------------

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, SplitLinesDropsTrailing) {
  EXPECT_EQ(split_lines("a\nb\n"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split_lines("a\nb"), (std::vector<std::string>{"a", "b"}));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"x", "y"}, " & "), "x & y");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Predicates) {
  EXPECT_TRUE(starts_with("recv_attach", "recv_"));
  EXPECT_FALSE(starts_with("recv", "recv_"));
  EXPECT_TRUE(ends_with("x_trigger", "_trigger"));
  EXPECT_FALSE(ends_with("trig", "_trigger"));
  EXPECT_TRUE(contains("abc", "b"));
  EXPECT_FALSE(contains("abc", "d"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("abc", "x", "y"), "abc");
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("AbC"), "abc"); }

// --- table -------------------------------------------------------------

TEST(TextTable, AlignsColumns) {
  TextTable t({"Attack", "srsLTE", "OAI"});
  t.add_row({"P1", "yes", "yes"});
  t.add_row({"longer-name", "no", "yes"});
  std::string out = t.render();
  EXPECT_NE(out.find("Attack"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Every data line has the separator in the same column.
  auto lines = split_lines(out);
  ASSERT_GE(lines.size(), 4u);
  std::size_t sep = lines[0].find('|');
  EXPECT_EQ(lines[2].find('|'), sep);
  EXPECT_EQ(lines[3].find('|'), sep);
}

TEST(TextTable, SectionsAndRules) {
  TextTable t({"a", "b"});
  t.add_section("New Attacks");
  t.add_row({"x", "y"});
  t.add_rule();
  t.add_row({"z", "w"});
  std::string out = t.render();
  EXPECT_NE(out.find("New Attacks"), std::string::npos);
  EXPECT_EQ(t.row_count(), 4u);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW(t.render());
}

}  // namespace
}  // namespace procheck
