#include <gtest/gtest.h>

#include "common/strings.h"
#include "fsm/fsm.h"
#include "fsm/refinement.h"

namespace procheck::fsm {
namespace {

Transition make(std::string from, std::string to, std::set<Atom> cond, std::set<Atom> act) {
  Transition t;
  t.from = std::move(from);
  t.to = std::move(to);
  t.conditions = std::move(cond);
  t.actions = std::move(act);
  return t;
}

Fsm two_state_machine() {
  Fsm m;
  m.set_initial("A");
  m.add_transition(make("A", "B", {"msg1"}, {"act1"}));
  m.add_transition(make("B", "A", {"msg2"}, {kNullAction}));
  return m;
}

// --- Fsm core ---------------------------------------------------------------

TEST(Fsm, CollectsAlphabets) {
  Fsm m = two_state_machine();
  EXPECT_EQ(m.states(), (std::set<std::string>{"A", "B"}));
  EXPECT_EQ(m.conditions(), (std::set<Atom>{"msg1", "msg2"}));
  EXPECT_EQ(m.actions(), (std::set<Atom>{"act1", kNullAction}));
  EXPECT_EQ(m.initial(), "A");
}

TEST(Fsm, DeduplicatesTransitions) {
  Fsm m;
  m.add_transition(make("A", "B", {"m"}, {"a"}));
  m.add_transition(make("A", "B", {"m"}, {"a"}));
  EXPECT_EQ(m.transitions().size(), 1u);
  m.add_transition(make("A", "B", {"m", "x=1"}, {"a"}));
  EXPECT_EQ(m.transitions().size(), 2u);
}

TEST(Fsm, FromQuery) {
  Fsm m = two_state_machine();
  auto out = m.from("A");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->to, "B");
  EXPECT_TRUE(m.from("missing").empty());
}

TEST(Fsm, Reachability) {
  Fsm m = two_state_machine();
  m.add_state("island");
  EXPECT_EQ(m.reachable(), (std::set<std::string>{"A", "B"}));
  EXPECT_TRUE(m.has_state("island"));
}

TEST(Fsm, ReachabilityEmptyInitial) {
  Fsm m;
  m.add_transition(make("A", "B", {"m"}, {"a"}));
  EXPECT_TRUE(m.reachable().empty());
}

TEST(Fsm, Determinism) {
  Fsm m = two_state_machine();
  EXPECT_TRUE(m.deterministic());
  m.add_transition(make("A", "A", {"msg1"}, {"other"}));  // same (state, cond)
  EXPECT_FALSE(m.deterministic());
}

TEST(Fsm, DuplicateTransitionDoesNotBreakDeterminism) {
  Fsm m;
  m.add_transition(make("A", "B", {"m"}, {"a"}));
  m.add_transition(make("A", "B", {"m"}, {"a"}));
  EXPECT_TRUE(m.deterministic());
}

TEST(Fsm, Stats) {
  Fsm m = two_state_machine();
  Fsm::Stats s = m.stats();
  EXPECT_EQ(s.states, 2u);
  EXPECT_EQ(s.transitions, 2u);
  EXPECT_EQ(s.conditions, 2u);
  EXPECT_EQ(s.actions, 2u);
}

TEST(Fsm, SameConditionsDifferentTargetIsNondeterministic) {
  // Identical (from, conditions) and actions, but two successor states —
  // the outcome comparison must catch target-only divergence too.
  Fsm m;
  m.set_initial("A");
  m.add_transition(make("A", "B", {"m"}, {"a"}));
  m.add_transition(make("A", "C", {"m"}, {"a"}));
  EXPECT_EQ(m.transitions().size(), 2u);
  EXPECT_FALSE(m.deterministic());
}

TEST(Fsm, StatsCountUnreachableStates) {
  // stats() reports the declared 5-tuple, not the reachable core: islands
  // and dead-end transitions still count.
  Fsm m = two_state_machine();
  m.add_state("island");
  m.add_transition(make("orphan", "orphan2", {"ghost_msg"}, {"ghost_act"}));
  Fsm::Stats s = m.stats();
  EXPECT_EQ(s.states, 5u);
  EXPECT_EQ(s.transitions, 3u);
  EXPECT_EQ(s.conditions, 3u);
  EXPECT_EQ(s.actions, 3u);
  EXPECT_EQ(m.reachable(), (std::set<std::string>{"A", "B"}));
}

TEST(Fsm, EmptyMachineIsWellBehaved) {
  // The ε machine: no states, no alphabets, no initial. Every query must
  // degrade gracefully rather than crash or invent structure.
  Fsm m;
  Fsm::Stats s = m.stats();
  EXPECT_EQ(s.states, 0u);
  EXPECT_EQ(s.transitions, 0u);
  EXPECT_EQ(s.conditions, 0u);
  EXPECT_EQ(s.actions, 0u);
  EXPECT_TRUE(m.deterministic());
  EXPECT_TRUE(m.reachable().empty());
  EXPECT_TRUE(m.from("anything").empty());
  EXPECT_TRUE(contains(m.to_dot("empty"), "digraph empty"));
}

TEST(Fsm, EmptyConditionSetTransitions) {
  // A transition with σ = ∅ (no condition atoms) is legal; two of them from
  // the same state with different outcomes collide on the empty key.
  Fsm m;
  m.set_initial("A");
  m.add_transition(make("A", "B", {}, {"a"}));
  EXPECT_TRUE(m.deterministic());
  EXPECT_EQ(m.reachable(), (std::set<std::string>{"A", "B"}));
  EXPECT_TRUE(m.conditions().empty());
  m.add_transition(make("A", "C", {}, {"a"}));
  EXPECT_FALSE(m.deterministic());
}

TEST(Fsm, DotExport) {
  Fsm m = two_state_machine();
  std::string dot = m.to_dot("ue");
  EXPECT_TRUE(contains(dot, "digraph ue"));
  EXPECT_TRUE(contains(dot, "\"A\" -> \"B\""));
  EXPECT_TRUE(contains(dot, "msg1"));
  EXPECT_TRUE(contains(dot, "__start -> \"A\""));
}

TEST(Transition, Label) {
  Transition t = make("A", "B", {"msg", "x=1"}, {"act"});
  EXPECT_EQ(t.label(), "A --[msg & x=1 / act]--> B");
  Transition n = make("A", "A", {"msg"}, {});
  EXPECT_TRUE(contains(n.label(), kNullAction));
}

// --- Refinement (paper §VII-B) ----------------------------------------------

Fsm abstract_machine() {
  Fsm m;
  m.set_initial("s0");
  m.add_transition(make("s0", "s1", {"attach_accept"}, {"attach_complete"}));
  m.add_transition(make("s1", "s1", {"security_mode_command"}, {"security_mode_complete"}));
  m.add_transition(make("s1", "s0", {"detach_request"}, {"detach_accept"}));
  return m;
}

TEST(Refinement, IdenticalMachineRefinesItself) {
  Fsm m = abstract_machine();
  RefinementReport r = check_refinement(m, m, {});
  EXPECT_TRUE(r.refines);
  EXPECT_EQ(r.count(TransitionMatch::kDirect), 3);
  // Identical machines are supersets but not *strict* supersets.
  EXPECT_TRUE(r.conditions_superset);
  EXPECT_FALSE(r.conditions_strict_superset);
}

TEST(Refinement, ConditionRefinedMatch) {
  // Fig. 7(i): the refined machine adds predicate conditions to the SMC
  // transition.
  Fsm refined = abstract_machine();
  Fsm abstract = abstract_machine();
  refined = Fsm();
  refined.set_initial("s0");
  refined.add_transition(make("s0", "s1", {"attach_accept"}, {"attach_complete"}));
  refined.add_transition(make("s1", "s1",
                              {"security_mode_command", "ue_sequence_number=0", "mac_valid=1"},
                              {"security_mode_complete"}));
  refined.add_transition(make("s1", "s0", {"detach_request"}, {"detach_accept"}));
  RefinementReport r = check_refinement(abstract, refined, {});
  EXPECT_TRUE(r.refines);
  EXPECT_EQ(r.count(TransitionMatch::kConditionRefined), 1);
  EXPECT_TRUE(r.conditions_strict_superset);
}

TEST(Refinement, SplitTransitionMatch) {
  // Fig. 7(ii): the refined machine introduces an intermediate state on the
  // detach path.
  Fsm abstract;
  abstract.set_initial("ue_registered");
  abstract.add_transition(
      make("ue_registered", "ue_deregistered", {"detach_request"}, {"detach_accept"}));

  Fsm refined;
  refined.set_initial("R");
  refined.add_transition(
      make("R", "ATTACH_NEEDED", {"detach_request", "reattach_required=1"}, {kNullAction}));
  refined.add_transition(
      make("ATTACH_NEEDED", "D", {"detach_request"}, {"detach_accept"}));

  std::map<std::string, std::set<std::string>> state_map{
      {"ue_registered", {"R"}}, {"ue_deregistered", {"D", "ATTACH_NEEDED"}}};
  RefinementReport r = check_refinement(abstract, refined, state_map);
  EXPECT_TRUE(r.refines) << r.summary();
  // The direct case also qualifies here (R -> ATTACH_NEEDED lacks the
  // action), so the checker must have used the split path.
  EXPECT_EQ(r.count(TransitionMatch::kSplit), 1);
  ASSERT_EQ(r.transition_mappings.size(), 1u);
  EXPECT_EQ(r.transition_mappings[0].refined.size(), 2u);
}

TEST(Refinement, UnmappedStateFails) {
  Fsm abstract = abstract_machine();
  Fsm refined;
  refined.set_initial("s0");
  refined.add_transition(make("s0", "s0", {"attach_accept"}, {"attach_complete"}));
  RefinementReport r = check_refinement(abstract, refined, {});
  EXPECT_FALSE(r.refines);
  EXPECT_FALSE(r.states_mapped);
  EXPECT_FALSE(r.unmapped_states.empty());
}

TEST(Refinement, MissingTransitionFails) {
  Fsm abstract = abstract_machine();
  Fsm refined = abstract_machine();
  Fsm smaller;
  smaller.set_initial("s0");
  smaller.add_state("s1");
  smaller.add_transition(make("s0", "s1", {"attach_accept"}, {"attach_complete"}));
  RefinementReport r = check_refinement(abstract, smaller, {});
  EXPECT_FALSE(r.refines);
  EXPECT_GT(r.count(TransitionMatch::kUnmatched), 0);
  EXPECT_TRUE(contains(r.summary(), "unmatched transition"));
}

TEST(Refinement, MissingConditionVocabularyFails) {
  Fsm abstract;
  abstract.set_initial("a");
  abstract.add_transition(make("a", "a", {"exotic_message"}, {kNullAction}));
  Fsm refined;
  refined.set_initial("a");
  refined.add_transition(make("a", "a", {"other_message"}, {kNullAction}));
  RefinementReport r = check_refinement(abstract, refined, {});
  EXPECT_FALSE(r.refines);
  EXPECT_FALSE(r.conditions_superset);
}

TEST(Refinement, NullActionRequirementIsVacuous) {
  Fsm abstract;
  abstract.set_initial("a");
  abstract.add_transition(make("a", "b", {"m"}, {kNullAction}));
  Fsm refined;
  refined.set_initial("a");
  refined.add_transition(make("a", "b", {"m"}, {"extra_response"}));
  refined.add_transition(make("b", "a", {"m2"}, {kNullAction}));
  RefinementReport r = check_refinement(abstract, refined, {});
  EXPECT_TRUE(r.refines) << r.summary();
}

TEST(Refinement, SummaryMentionsVerdict) {
  Fsm m = abstract_machine();
  RefinementReport r = check_refinement(m, m, {});
  EXPECT_TRUE(contains(r.summary(), "REFINES"));
}

}  // namespace
}  // namespace procheck::fsm
